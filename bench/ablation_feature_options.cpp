// Ablation bench for the optional feature-function extensions the paper
// sketches but does not evaluate (Section III-B):
//   - time-decaying distance impact in f_st / f_sc ("including a
//     time-decaying multiplier e^{-γ'(t_{i+1}-t_i)}"),
//   - normalized historical region frequency as an f_sm multiplier,
// plus two implementation choices documented in DESIGN.md:
//   - per-record f_sm normalization,
//   - smoothed observation centers for the uncertainty region.

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Ablation: optional feature extensions of Section III-B",
              "design alternatives discussed with Eqs. 3-5");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  Rng rng(scale.seed + 14);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);
  const TrainOptions topts = DefaultTrainOptions(scale);

  struct Setting {
    std::string name;
    FeatureOptions fopts;
  };
  std::vector<Setting> settings;
  {
    Setting s{"C2MN (default)", FeatureOptions()};
    settings.push_back(s);
  }
  {
    Setting s{"+ time decay (f_st, f_sc)", FeatureOptions()};
    s.fopts.use_time_decay = true;
    settings.push_back(s);
  }
  {
    Setting s{"+ region frequency (f_sm)", FeatureOptions()};
    s.fopts.use_region_frequency = true;
    settings.push_back(s);
  }
  {
    Setting s{"- f_sm normalization", FeatureOptions()};
    s.fopts.normalize_fsm = false;
    settings.push_back(s);
  }
  {
    Setting s{"- observation smoothing", FeatureOptions()};
    s.fopts.smooth_observations = false;
    settings.push_back(s);
  }

  TablePrinter table({"Setting", "RA", "EA", "CA", "PA"});
  for (const Setting& setting : settings) {
    C2mnMethod method(world, FullC2mn(), setting.fopts, topts);
    const MethodEvaluation eval = EvaluateMethod(&method, split);
    table.AddRow({setting.name,
                  TablePrinter::Fmt(eval.accuracy.region_accuracy),
                  TablePrinter::Fmt(eval.accuracy.event_accuracy),
                  TablePrinter::Fmt(eval.accuracy.combined_accuracy),
                  TablePrinter::Fmt(eval.accuracy.perfect_accuracy)});
  }
  table.Print();
  return 0;
}
