#ifndef C2MN_BENCH_BENCH_JSON_H_
#define C2MN_BENCH_BENCH_JSON_H_

// Shared result-capture and JSON plumbing for the google-benchmark-based
// micro_* binaries (micro_inference, micro_train, ...).  Kept separate
// from bench_util.h because the fig/table drivers include that header and
// must stay buildable when Google Benchmark is absent.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

namespace c2mn {
namespace bench {

/// One benchmark run flattened to what the JSON emitters need.
struct CapturedRun {
  std::string name;
  double real_ms = 0.0;
  std::map<std::string, double> counters;
};

/// Console reporter that additionally captures every plain iteration run
/// (field names for skipped/errored runs differ across google-benchmark
/// versions; aggregates are excluded).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration) continue;
      CapturedRun captured;
      captured.name = run.benchmark_name();
      captured.real_ms =
          1e3 * run.real_accumulated_time /
          static_cast<double>(run.iterations > 0 ? run.iterations : 1);
      for (const auto& [key, counter] : run.counters) {
        captured.counters[key] = counter.value;
      }
      runs_.push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<CapturedRun>& runs() const { return runs_; }

 private:
  std::vector<CapturedRun> runs_;
};

/// Minimal JSON string escaping (backslash, quote, control characters).
inline std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Emits the `"results": [...]` array shared by every BENCH_*.json:
/// one object per run with name, real_ms, caller-supplied extra fields
/// (`extra(out, run)` runs between real_ms and the counters), and every
/// counter.  Writes no trailing newline after "]" so the caller can
/// continue the enclosing object (",\n") or close it ("\n").
template <typename ExtraFieldsFn>
void WriteRunsArray(std::ostream& out, const std::vector<CapturedRun>& runs,
                    ExtraFieldsFn&& extra) {
  out << "  \"results\": [\n";
  for (size_t r = 0; r < runs.size(); ++r) {
    const CapturedRun& run = runs[r];
    out << "    {\"name\": \"" << EscapeJson(run.name)
        << "\", \"real_ms\": " << run.real_ms;
    extra(out, run);
    for (const auto& [key, value] : run.counters) {
      out << ", \"" << EscapeJson(key) << "\": " << value;
    }
    out << "}" << (r + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]";
}

/// Parses "name=ms,name=ms" (the C2MN_BENCH_BASELINE format).
inline std::map<std::string, double> ParseBaseline(const char* spec) {
  std::map<std::string, double> baseline;
  if (spec == nullptr) return baseline;
  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    baseline[entry.substr(0, eq)] = std::atof(entry.c_str() + eq + 1);
  }
  return baseline;
}

}  // namespace bench
}  // namespace c2mn

#endif  // C2MN_BENCH_BENCH_JSON_H_
