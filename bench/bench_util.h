#ifndef C2MN_BENCH_BENCH_UTIL_H_
#define C2MN_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "common/env.h"
#include "common/logging.h"
#include "core/trainer.h"
#include "sim/scenarios.h"

namespace c2mn {
namespace bench {

/// Shared experiment scale knobs.  Defaults keep the full bench suite in
/// the minutes range; raise them toward the paper's scale via environment
/// variables (e.g. C2MN_BENCH_OBJECTS=2000 C2MN_BENCH_MAXITER=90).
struct BenchScale {
  int objects;
  int max_iter;
  int mcmc_samples;
  uint64_t seed;

  static BenchScale FromEnv() {
    BenchScale s;
    s.objects = EnvInt("C2MN_BENCH_OBJECTS", 90);
    s.max_iter = EnvInt("C2MN_BENCH_MAXITER", 60);
    s.mcmc_samples = EnvInt("C2MN_BENCH_MCMC", 40);
    s.seed = static_cast<uint64_t>(EnvInt("C2MN_BENCH_SEED", 7));
    return s;
  }
};

inline void BenchInit() { Logger::Global().set_level(LogLevel::kWarning); }

/// The default mall scenario used by the real-data experiments
/// (Tables III/IV, Figs 5-13).
inline Scenario MallScenario(const BenchScale& scale) {
  ScenarioOptions options;
  options.num_objects = scale.objects;
  options.seed = scale.seed;
  return MakeMallScenario(options);
}

inline TrainOptions DefaultTrainOptions(const BenchScale& scale) {
  TrainOptions topts;
  topts.max_iter = scale.max_iter;
  topts.mcmc_samples = scale.mcmc_samples;
  topts.seed = scale.seed + 1;
  // Trainer worker threads (0 = all cores).  Safe to set for any driver:
  // the trainer is bit-identical across thread counts, so this only
  // changes wall time, never a reproduced number.
  topts.num_threads = EnvInt("C2MN_TRAIN_THREADS", 0);
  return topts;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace c2mn

#endif  // C2MN_BENCH_BENCH_UTIL_H_
