// Reproduces Figure 10 of the paper: training time of the C2MN-based
// methods as the training-data fraction varies from 40% to 80%.
//
// Expected shape: time grows with the number of training records for
// every method; parameter sharing keeps the growth linear.

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figure 10: Training Time vs Training Data Fraction",
              "Fig. 10, Section V-B3");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  FeatureOptions fopts;

  const std::vector<double> fractions = {0.4, 0.5, 0.6, 0.7, 0.8};
  std::vector<std::string> header = {"Method"};
  for (double f : fractions) {
    header.push_back(std::to_string(static_cast<int>(f * 100)) + "%");
  }
  TablePrinter table(header);

  for (const C2mnVariant& variant : TableFourVariants()) {
    std::vector<std::string> row = {variant.name};
    for (double fraction : fractions) {
      Rng rng(scale.seed + 6);
      const TrainTestSplit split =
          SplitDataset(scenario.dataset, fraction, &rng);
      TrainOptions topts = DefaultTrainOptions(scale);
      topts.delta = 0.0;  // Measure full max_iter runs.
      AlternateTrainer trainer(world, fopts, variant.structure, topts);
      const TrainResult result = trainer.Train(split.train);
      row.push_back(TablePrinter::Fmt(result.train_seconds, 2) + " s");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
