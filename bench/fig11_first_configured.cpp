// Reproduces Figure 11 of the paper: training time of C2MN (events
// first-configured via st-DBSCAN) vs C2MN@R (regions first-configured via
// nearest-neighbor matching) across max_iter settings, plus their final
// accuracy, using Algorithm 1's strict alternation.
//
// Expected shape: the two work about equally well in accuracy, but the
// E-first variant trains faster — the event variable has only two labels,
// so its initial configuration is cheap and reliable, while @R starts
// from a noisier region configuration.

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figure 11: Effect of the First-Configured Variable",
              "Fig. 11, Section V-B3");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  FeatureOptions fopts;
  Rng rng(scale.seed + 7);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);

  const std::vector<int> iter_grid = {15, 30, 45, 60};
  std::vector<std::string> header = {"Method"};
  for (int it : iter_grid) header.push_back("iter=" + std::to_string(it));
  header.push_back("final CA");
  TablePrinter table(header);

  for (const C2mnVariant& variant : {FullC2mn(), C2mnAtR()}) {
    std::vector<std::string> row = {variant.name};
    MethodEvaluation last_eval;
    for (int iters : iter_grid) {
      TrainOptions topts = DefaultTrainOptions(scale);
      topts.max_iter = iters;
      topts.delta = 0.0;
      topts.strict_alternation = true;  // Algorithm 1's literal loop.
      C2mnMethod method(world, variant, fopts, topts);
      last_eval = EvaluateMethod(&method, split);
      row.push_back(TablePrinter::Fmt(last_eval.train_seconds, 2) + " s");
    }
    row.push_back(TablePrinter::Fmt(last_eval.accuracy.combined_accuracy));
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
