// Reproduces Figures 12 and 13 of the paper: precision of TkPRQ (top-k
// popular region query) and TkFRPQ (top-k frequent region pair query)
// answered from each method's annotated m-semantics, for query time
// windows QT of 60 / 120 / 180 minutes.
//
// Expected shape: precision decreases as QT grows (more data errors fall
// inside the window); C2MN-based methods decrease slowly, the two-way and
// two-step baselines decrease faster and sit lower.

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figures 12 & 13: TkPRQ / TkFRPQ Precision vs QT",
              "Figs. 12-13, Section V-B4");

  // Query precision needs a sizable test corpus to avoid top-k count
  // ties: double the objects and split 50/50.
  ScenarioOptions options;
  options.num_objects = 2 * scale.objects;
  options.seed = scale.seed;
  Scenario scenario = MakeMallScenario(options);
  const World& world = *scenario.world;
  const size_t num_regions = world.plan().regions().size();
  FeatureOptions fopts;
  const TrainOptions topts = DefaultTrainOptions(scale);
  Rng rng(scale.seed + 8);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.5, &rng);
  const AnnotatedCorpus truth = GroundTruthCorpus(split.test);

  const std::vector<double> windows_minutes = {60.0, 120.0, 180.0};
  TablePrinter prq({"Method", "QT=60", "QT=120", "QT=180"});
  TablePrinter frpq({"Method", "QT=60", "QT=120", "QT=180"});

  for (auto& method : MakeAllMethods(world, fopts, topts)) {
    const MethodEvaluation eval = EvaluateMethod(method.get(), split);
    std::vector<std::string> prq_row = {eval.name};
    std::vector<std::string> frpq_row = {eval.name};
    for (double qt : windows_minutes) {
      QueryWorkloadOptions qopts;
      // Paper: k = 60, |Q| = 50% of regions for TkPRQ; smaller query set
      // for TkFRPQ (|Q| = 25) due to the larger ranking space.
      qopts.k = 20;
      qopts.query_set_size = num_regions / 2;
      qopts.window_minutes = qt;
      qopts.num_queries = 20;
      qopts.seed = scale.seed + 9;
      prq_row.push_back(TablePrinter::Fmt(
          AverageTkprqPrecision(truth, eval.predicted, num_regions, qopts)));
      qopts.query_set_size = 25;
      qopts.k = 10;
      frpq_row.push_back(TablePrinter::Fmt(
          AverageTkfrpqPrecision(truth, eval.predicted, num_regions, qopts)));
    }
    prq.AddRow(std::move(prq_row));
    frpq.AddRow(std::move(frpq_row));
  }
  std::printf("Figure 12: TkPRQ precision vs QT (minutes)\n");
  prq.Print();
  std::printf("\nFigure 13: TkFRPQ precision vs QT (minutes)\n");
  frpq.Print();
  return 0;
}
