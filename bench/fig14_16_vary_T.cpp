// Reproduces Figures 14, 15 and 16 of the paper: perfect accuracy, TkPRQ
// precision and TkFRPQ precision on the synthetic ten-floor building as
// the maximum positioning period T grows (5 / 10 / 15 s) with μ fixed at
// 7 m — the temporal-sparsity robustness study.
//
// Expected shape: all methods degrade as data gets sparser, C2MN degrades
// the slowest; CMN suffers the most from missing region/event coupling.

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figures 14-16: PA and Query Precision vs T (synthetic)",
              "Figs. 14-16, Section V-C");

  const std::vector<double> T_grid = {5.0, 10.0, 15.0};
  const double mu = 7.0;

  // Methods compared in the synthetic study: the classic baselines, CMN,
  // and C2MN (paper Figs. 14-19 legend).
  TablePrinter pa({"Method", "T=5", "T=10", "T=15"});
  TablePrinter prq({"Method", "T=5", "T=10", "T=15"});
  TablePrinter frpq({"Method", "T=5", "T=10", "T=15"});
  std::vector<std::vector<std::string>> pa_rows, prq_rows, frpq_rows;

  for (size_t t_idx = 0; t_idx < T_grid.size(); ++t_idx) {
    ScenarioOptions options;
    // Synthetic traces are much denser than mall traces (T down to 5 s):
    // a third of the objects over a two-hour horizon matches the mall
    // benches' record volume.
    options.num_objects = std::max(15, scale.objects / 3);
    options.horizon_seconds = 2 * 3600.0;
    options.seed = scale.seed;
    Scenario scenario = MakeSyntheticScenario(options, T_grid[t_idx], mu);
    const World& world = *scenario.world;
    const size_t num_regions = world.plan().regions().size();

    // Synthetic-data training settings (paper: sigma^2 = 0.2, v = 10 m).
    FeatureOptions fopts;
    fopts.uncertainty_radius_v = 10.0;
    // Cluster-size threshold scales with the sampling rate of this T.
    fopts.dbscan = TuneForSamplingPeriod(0.5 * (1.0 + T_grid[t_idx]));
    TrainOptions topts = DefaultTrainOptions(scale);
    topts.sigma2 = 0.2;

    Rng rng(scale.seed + 10);
    const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);
    const AnnotatedCorpus truth = GroundTruthCorpus(split.test);

    QueryWorkloadOptions qopts;
    qopts.k = 20;
    qopts.query_set_size = num_regions / 2;
    qopts.window_minutes = 120.0;
    qopts.num_queries = 10;
    qopts.seed = scale.seed + 11;

    auto methods = MakeClassicBaselines(world, fopts.dbscan);
    for (const C2mnVariant& v : {DecoupledCmn(), FullC2mn()}) {
      methods.push_back(std::make_unique<C2mnMethod>(world, v, fopts, topts));
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      const MethodEvaluation eval = EvaluateMethod(methods[m].get(), split);
      if (t_idx == 0) {
        pa_rows.push_back({eval.name});
        prq_rows.push_back({eval.name});
        frpq_rows.push_back({eval.name});
      }
      pa_rows[m].push_back(
          TablePrinter::Fmt(eval.accuracy.perfect_accuracy));
      prq_rows[m].push_back(TablePrinter::Fmt(
          AverageTkprqPrecision(truth, eval.predicted, num_regions, qopts)));
      QueryWorkloadOptions fr = qopts;
      fr.query_set_size = 25;
      fr.k = 10;
      frpq_rows[m].push_back(TablePrinter::Fmt(
          AverageTkfrpqPrecision(truth, eval.predicted, num_regions, fr)));
    }
  }
  for (auto& r : pa_rows) pa.AddRow(std::move(r));
  for (auto& r : prq_rows) prq.AddRow(std::move(r));
  for (auto& r : frpq_rows) frpq.AddRow(std::move(r));

  std::printf("Figure 14: Perfect Accuracy vs T (sec), mu = 7 m\n");
  pa.Print();
  std::printf("\nFigure 15: TkPRQ precision vs T\n");
  prq.Print();
  std::printf("\nFigure 16: TkFRPQ precision vs T\n");
  frpq.Print();
  return 0;
}
