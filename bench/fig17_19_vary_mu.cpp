// Reproduces Figures 17, 18 and 19 of the paper: perfect accuracy, TkPRQ
// precision and TkFRPQ precision on the synthetic building as the
// positioning error factor μ grows (3 / 5 / 7 m) with T fixed at 5 s.
//
// Expected shape: μ has a modest effect on most methods, but the
// speed-based SMoT and SAPDV are the most susceptible to positioning
// errors; C2MN stays on top throughout.

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figures 17-19: PA and Query Precision vs mu (synthetic)",
              "Figs. 17-19, Section V-C");

  const std::vector<double> mu_grid = {3.0, 5.0, 7.0};
  const double T = 5.0;

  TablePrinter pa({"Method", "mu=3", "mu=5", "mu=7"});
  TablePrinter prq({"Method", "mu=3", "mu=5", "mu=7"});
  TablePrinter frpq({"Method", "mu=3", "mu=5", "mu=7"});
  std::vector<std::vector<std::string>> pa_rows, prq_rows, frpq_rows;

  for (size_t mu_idx = 0; mu_idx < mu_grid.size(); ++mu_idx) {
    ScenarioOptions options;
    // Synthetic traces are much denser than mall traces (T down to 5 s):
    // a third of the objects over a two-hour horizon matches the mall
    // benches' record volume.
    options.num_objects = std::max(15, scale.objects / 3);
    options.horizon_seconds = 2 * 3600.0;
    options.seed = scale.seed;
    Scenario scenario = MakeSyntheticScenario(options, T, mu_grid[mu_idx]);
    const World& world = *scenario.world;
    const size_t num_regions = world.plan().regions().size();

    FeatureOptions fopts;
    fopts.uncertainty_radius_v = 10.0;
    fopts.dbscan = TuneForSamplingPeriod(0.5 * (1.0 + T));
    TrainOptions topts = DefaultTrainOptions(scale);
    topts.sigma2 = 0.2;

    Rng rng(scale.seed + 12);
    const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);
    const AnnotatedCorpus truth = GroundTruthCorpus(split.test);

    QueryWorkloadOptions qopts;
    qopts.k = 20;
    qopts.query_set_size = num_regions / 2;
    qopts.window_minutes = 120.0;
    qopts.num_queries = 10;
    qopts.seed = scale.seed + 13;

    auto methods = MakeClassicBaselines(world, fopts.dbscan);
    for (const C2mnVariant& v : {DecoupledCmn(), FullC2mn()}) {
      methods.push_back(std::make_unique<C2mnMethod>(world, v, fopts, topts));
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      const MethodEvaluation eval = EvaluateMethod(methods[m].get(), split);
      if (mu_idx == 0) {
        pa_rows.push_back({eval.name});
        prq_rows.push_back({eval.name});
        frpq_rows.push_back({eval.name});
      }
      pa_rows[m].push_back(
          TablePrinter::Fmt(eval.accuracy.perfect_accuracy));
      prq_rows[m].push_back(TablePrinter::Fmt(
          AverageTkprqPrecision(truth, eval.predicted, num_regions, qopts)));
      QueryWorkloadOptions fr = qopts;
      fr.query_set_size = 25;
      fr.k = 10;
      frpq_rows[m].push_back(TablePrinter::Fmt(
          AverageTkfrpqPrecision(truth, eval.predicted, num_regions, fr)));
    }
  }
  for (auto& r : pa_rows) pa.AddRow(std::move(r));
  for (auto& r : prq_rows) prq.AddRow(std::move(r));
  for (auto& r : frpq_rows) frpq.AddRow(std::move(r));

  std::printf("Figure 17: Perfect Accuracy vs mu (m), T = 5 s\n");
  pa.Print();
  std::printf("\nFigure 18: TkPRQ precision vs mu\n");
  prq.Print();
  std::printf("\nFigure 19: TkFRPQ precision vs mu\n");
  frpq.Print();
  return 0;
}
