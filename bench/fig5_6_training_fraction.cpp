// Reproduces Figures 5 and 6 of the paper: combined accuracy (CA) and
// perfect accuracy (PA) of the C2MN family as the training-data fraction
// varies over 40%..80%.
//
// Expected shape: both measures increase moderately with more training
// data and flatten around 70%; C2MN stays on top, CMN and the ablations
// below.

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figures 5 & 6: CA / PA vs Training Data Fraction",
              "Figs. 5-6, Section V-B2");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  FeatureOptions fopts;
  const TrainOptions topts = DefaultTrainOptions(scale);

  const std::vector<double> fractions = {0.4, 0.5, 0.6, 0.7, 0.8};
  TablePrinter ca_table({"Method", "40%", "50%", "60%", "70%", "80%"});
  TablePrinter pa_table({"Method", "40%", "50%", "60%", "70%", "80%"});

  for (const C2mnVariant& variant : TableFourVariants()) {
    std::vector<std::string> ca_row = {variant.name};
    std::vector<std::string> pa_row = {variant.name};
    for (double fraction : fractions) {
      Rng rng(scale.seed + 3);
      const TrainTestSplit split =
          SplitDataset(scenario.dataset, fraction, &rng);
      C2mnMethod method(world, variant, fopts, topts);
      const MethodEvaluation eval = EvaluateMethod(&method, split);
      ca_row.push_back(TablePrinter::Fmt(eval.accuracy.combined_accuracy));
      pa_row.push_back(TablePrinter::Fmt(eval.accuracy.perfect_accuracy));
    }
    ca_table.AddRow(std::move(ca_row));
    pa_table.AddRow(std::move(pa_row));
  }
  std::printf("Figure 5: Combined Accuracy vs %% of training data\n");
  ca_table.Print();
  std::printf("\nFigure 6: Perfect Accuracy vs %% of training data\n");
  pa_table.Print();
  return 0;
}
