// Reproduces Figures 7 and 8 of the paper: region accuracy (RA) and event
// accuracy (EA) of the C2MN family as the number M of MCMC instances per
// learning step varies.
//
// The paper sweeps M over 400..1000 at its data scale; the bench default
// sweeps a proportionally scaled grid (override with C2MN_BENCH_MCMC_GRID
// as a comma list).  Expected shape: RA stabilizes once M is large enough
// to approximate the region-variable distribution; EA is flat because the
// event variable has only two labels.

#include <sstream>

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

namespace {

std::vector<int> McmcGrid() {
  const char* env = std::getenv("C2MN_BENCH_MCMC_GRID");
  std::vector<int> grid;
  if (env != nullptr && *env != '\0') {
    std::stringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ',')) grid.push_back(std::atoi(item.c_str()));
  }
  if (grid.empty()) grid = {10, 20, 40, 80};
  return grid;
}

}  // namespace

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figures 7 & 8: RA / EA vs MCMC instances M",
              "Figs. 7-8, Section V-B2");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  FeatureOptions fopts;
  Rng rng(scale.seed + 4);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);

  const std::vector<int> grid = McmcGrid();
  std::vector<std::string> header = {"Method"};
  for (int m : grid) header.push_back("M=" + std::to_string(m));
  TablePrinter ra_table(header);
  TablePrinter ea_table(header);

  for (const C2mnVariant& variant : TableFourVariants()) {
    std::vector<std::string> ra_row = {variant.name};
    std::vector<std::string> ea_row = {variant.name};
    for (int m : grid) {
      TrainOptions topts = DefaultTrainOptions(scale);
      topts.mcmc_samples = m;
      C2mnMethod method(world, variant, fopts, topts);
      const MethodEvaluation eval = EvaluateMethod(&method, split);
      ra_row.push_back(TablePrinter::Fmt(eval.accuracy.region_accuracy));
      ea_row.push_back(TablePrinter::Fmt(eval.accuracy.event_accuracy));
    }
    ra_table.AddRow(std::move(ra_row));
    ea_table.AddRow(std::move(ea_row));
  }
  std::printf("Figure 7: Region Accuracy vs M\n");
  ra_table.Print();
  std::printf("\nFigure 8: Event Accuracy vs M\n");
  ea_table.Print();
  return 0;
}
