// Reproduces Figure 9 of the paper: training time of the C2MN-based
// methods for different max_iter settings.
//
// Expected shape: time grows roughly linearly in max_iter; CMN is the
// cheapest (no segmentation-clique bookkeeping), C2MN/ES and C2MN/SS sit
// below the full C2MN, which is the most expensive.

#include "baselines/c2mn_method.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Figure 9: Training Time vs max_iter",
              "Fig. 9, Section V-B3");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  FeatureOptions fopts;
  Rng rng(scale.seed + 5);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);

  const std::vector<int> iter_grid = {15, 30, 45, 60};
  std::vector<std::string> header = {"Method"};
  for (int it : iter_grid) header.push_back("iter=" + std::to_string(it));
  TablePrinter table(header);

  for (const C2mnVariant& variant : TableFourVariants()) {
    std::vector<std::string> row = {variant.name};
    for (int iters : iter_grid) {
      TrainOptions topts = DefaultTrainOptions(scale);
      topts.max_iter = iters;
      topts.delta = 0.0;  // Disable early convergence: measure full runs.
      AlternateTrainer trainer(world, fopts, variant.structure, topts);
      const TrainResult result = trainer.Train(split.train);
      row.push_back(TablePrinter::Fmt(result.train_seconds, 2) + " s");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
