// Micro-benchmarks of the streaming analytics engine (google-benchmark).
//
// BM_Ingest measures the per-m-semantics cost of the shard-local
// accumulators (visit counters, dwell histogram, flow matrix, occupancy,
// retention ring, pre-aggregation sketch) — the overhead the
// AnnotationService pays per emission when AnalyticsOptions::enabled is
// set.  BM_IngestEvicting drives a deliberately tiny retention horizon
// so every few ingests recycle a ring bucket.  The read side runs both
// top-k paths against the same pre-loaded engine:
// BM_TopK*PreAgg answers from the incrementally maintained per-shard
// sketches via the bounded threshold merge over their cached sorted
// views (the warm path a poll loop sees), BM_TopKFrequentRegionPairsMerge
// ingests one visit per iteration so every poll pays the sorted-view
// rebuild too (the cold path under live ingest), and BM_TopK*Scan forces
// the fallback that re-evaluates the predicate over every retained
// visit — preagg vs. scan is the pre-aggregation win.
// BM_StandingQueryPush measures the ingest path with a standing
// continuous query subscribed, reporting how long a delta push takes end
// to end; BM_SlidingWindowAdvance does the same with a trailing-window
// standing query, so each ingest pays watermark rotation + window expiry
// on top of the sketch update.
//
// Results are emitted as machine-readable JSON (default
// BENCH_analytics.json in the working directory; override with
// C2MN_BENCH_JSON).  Scale knob: C2MN_BENCH_ANALYTICS_VISITS (retained
// visits the query benchmarks run against, default 100000).
//
// Everything here is synthetic m-semantics — no venue, no training — so
// the binary starts instantly and isolates the engine's own costs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "analytics/analytics_engine.h"
#include "bench/bench_json.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/streaming_histogram.h"

namespace c2mn {
namespace {

constexpr int kRegions = 64;
constexpr int kObjects = 512;

/// A deterministic synthetic m-semantics stream: objects hop between
/// regions, alternating stays and passes, timestamps advancing so the
/// retention ring sees realistic watermark movement.
struct SyntheticStream {
  std::vector<int64_t> object_ids;
  std::vector<MSemantics> semantics;
  /// Largest clock reached; replaying the stream again shifted by this
  /// keeps timestamps advancing instead of jumping behind the watermark.
  double span_seconds = 0.0;

  explicit SyntheticStream(size_t n, double seconds_per_step = 30.0) {
    Rng rng(1234);
    object_ids.reserve(n);
    semantics.reserve(n);
    std::vector<double> clocks(kObjects, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const int64_t object = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(kObjects)));
      double& clock = clocks[static_cast<size_t>(object)];
      MSemantics ms;
      ms.region = static_cast<RegionId>(rng.UniformInt(static_cast<uint64_t>(kRegions)));
      ms.event = rng.Bernoulli(0.5) ? MobilityEvent::kStay
                                             : MobilityEvent::kPass;
      ms.t_start = clock;
      ms.t_end = clock + rng.Uniform(5.0, seconds_per_step);
      ms.support = 1;
      clock = ms.t_end;
      span_seconds = std::max(span_seconds, clock);
      object_ids.push_back(object);
      semantics.push_back(ms);
    }
  }
};

/// Replays `stream` through `engine` for the benchmark's duration,
/// shifting each pass forward in time so the watermark keeps advancing
/// (a plain wrap-around would land every record behind the retention
/// horizon and measure only the late-dropped early-return).
void RunIngestLoop(benchmark::State& state, const SyntheticStream& stream,
                   AnalyticsEngine* engine) {
  size_t i = 0;
  double offset = 0.0;
  const size_t n = stream.semantics.size();
  for (auto _ : state) {
    MSemantics ms = stream.semantics[i];
    ms.t_start += offset;
    ms.t_end += offset;
    engine->Ingest(stream.object_ids[i], ms);
    if (++i == n) {
      i = 0;
      offset += stream.span_seconds;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

AnalyticsEngine::Options EngineOptions(int shards) {
  AnalyticsEngine::Options options;
  options.num_shards = shards;
  options.bucket_seconds = 60.0;
  options.horizon_seconds = 1e9;  // Nothing ages out mid-benchmark.
  options.min_visit_seconds = 10.0;
  return options;
}

/// Ingest cost per m-semantics, single producer, `shards` shards.
void BM_Ingest(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16);
  const int shards = static_cast<int>(state.range(0));
  AnalyticsEngine engine(EngineOptions(shards));
  RunIngestLoop(state, stream, &engine);
}
BENCHMARK(BM_Ingest)->Arg(1)->Arg(4);

/// Ingest with constant retention churn: a horizon of a few buckets, so
/// the watermark advance recycles ring slots throughout.
void BM_IngestEvicting(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16, 120.0);
  AnalyticsEngine::Options options = EngineOptions(1);
  options.bucket_seconds = 30.0;
  options.horizon_seconds = 300.0;
  AnalyticsEngine engine(options);
  RunIngestLoop(state, stream, &engine);
}
BENCHMARK(BM_IngestEvicting);

/// A fresh 4-shard engine pre-loaded with C2MN_BENCH_ANALYTICS_VISITS
/// retained stays; `stream` (when non-null) receives the stream it was
/// loaded from so callers can keep replaying it.
AnalyticsEngine* MakeLoadedEngine(const SyntheticStream** stream) {
  const size_t n =
      static_cast<size_t>(EnvInt("C2MN_BENCH_ANALYTICS_VISITS", 100000));
  static const SyntheticStream& load = *new SyntheticStream(n);
  auto* e = new AnalyticsEngine(EngineOptions(4));
  for (size_t i = 0; i < load.semantics.size(); ++i) {
    e->Ingest(load.object_ids[i], load.semantics[i]);
  }
  if (stream != nullptr) *stream = &load;
  return e;
}

/// The shared read-only pre-loaded engine (the mutating merge benchmark
/// loads its own copy so this one's retained set stays fixed).
AnalyticsEngine& LoadedEngine() {
  static AnalyticsEngine* engine = MakeLoadedEngine(nullptr);
  return *engine;
}

std::vector<RegionId> AllRegions() {
  std::vector<RegionId> regions;
  for (int r = 0; r < kRegions; ++r) regions.push_back(r);
  return regions;
}

/// Served by the pre-aggregated sketches: min_visit matches the
/// engine's maintained threshold and the window covers every retained
/// visit.  Aborts if the fast path was not actually taken — the
/// benchmark exists to track that win, not a silent fallback.
void BM_TopKPopularRegionsPreAgg(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  const std::vector<RegionId> regions = AllRegions();
  const TimeWindow window{0.0, 1e18};
  const AnalyticsSnapshot before = engine.Snapshot();
  for (auto _ : state) {
    auto top = engine.TopKPopularRegions(regions, window, 10, 10.0);
    benchmark::DoNotOptimize(top);
  }
  const AnalyticsSnapshot after = engine.Snapshot();
  // Per-kind guard: the *region* polls specifically must have taken the
  // merge path, and none may have leaked to the scan.
  if (after.preagg_region_queries == before.preagg_region_queries ||
      after.scan_region_queries != before.scan_region_queries) {
    std::fprintf(stderr,
                 "BM_TopKPopularRegionsPreAgg did not hit the "
                 "pre-aggregated region path\n");
    std::abort();
  }
  state.counters["retained_visits"] = static_cast<double>(
      engine.Snapshot().retained_visits);
}
BENCHMARK(BM_TopKPopularRegionsPreAgg);

/// The scan fallback over the same engine and window: a min_visit that
/// differs from the maintained spec forces the predicate re-evaluation
/// over every retained visit.  PreAgg time vs. this is the headline
/// ratio.
void BM_TopKPopularRegionsScan(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  const std::vector<RegionId> regions = AllRegions();
  const TimeWindow window{0.0, 1e18};
  for (auto _ : state) {
    auto top = engine.TopKPopularRegions(regions, window, 10, 9.999);
    benchmark::DoNotOptimize(top);
  }
  state.counters["retained_visits"] = static_cast<double>(
      engine.Snapshot().retained_visits);
}
BENCHMARK(BM_TopKPopularRegionsScan);

void BM_TopKFrequentRegionPairsPreAgg(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  const std::vector<RegionId> regions = AllRegions();
  const TimeWindow window{0.0, 1e18};
  const AnalyticsSnapshot before = engine.Snapshot();
  for (auto _ : state) {
    auto top = engine.TopKFrequentRegionPairs(regions, window, 10, 10.0);
    benchmark::DoNotOptimize(top);
  }
  const AnalyticsSnapshot after = engine.Snapshot();
  // Per-kind guard: the *pair* polls specifically must have taken the
  // merge path — the old combined counter could not tell a fast pair
  // poll from a fast region poll.
  if (after.preagg_pair_queries == before.preagg_pair_queries ||
      after.scan_pair_queries != before.scan_pair_queries) {
    std::fprintf(stderr,
                 "BM_TopKFrequentRegionPairsPreAgg did not hit the "
                 "pre-aggregated pair path\n");
    std::abort();
  }
  state.counters["retained_visits"] = static_cast<double>(
      engine.Snapshot().retained_visits);
}
BENCHMARK(BM_TopKFrequentRegionPairsPreAgg);

/// The pair merge under live ingest: one visit lands between polls, so
/// every poll pays the per-shard sorted-view rebuild before the bounded
/// threshold merge (the PreAgg benchmark above amortizes the rebuild
/// away via the sketch's cache).
void BM_TopKFrequentRegionPairsMerge(benchmark::State& state) {
  static const SyntheticStream* stream = nullptr;
  static AnalyticsEngine* engine = MakeLoadedEngine(&stream);
  const std::vector<RegionId> regions = AllRegions();
  const TimeWindow window{0.0, 1e18};
  const AnalyticsSnapshot before = engine->Snapshot();
  size_t i = 0;
  double offset = stream->span_seconds;
  for (auto _ : state) {
    state.PauseTiming();
    MSemantics ms = stream->semantics[i];
    ms.t_start += offset;
    ms.t_end += offset;
    engine->Ingest(stream->object_ids[i], ms);
    if (++i == stream->semantics.size()) {
      i = 0;
      offset += stream->span_seconds;
    }
    state.ResumeTiming();
    auto top = engine->TopKFrequentRegionPairs(regions, window, 10, 10.0);
    benchmark::DoNotOptimize(top);
  }
  const AnalyticsSnapshot after = engine->Snapshot();
  if (after.preagg_pair_queries == before.preagg_pair_queries ||
      after.scan_pair_queries != before.scan_pair_queries) {
    std::fprintf(stderr,
                 "BM_TopKFrequentRegionPairsMerge did not hit the "
                 "pre-aggregated pair path\n");
    std::abort();
  }
  state.counters["retained_visits"] =
      static_cast<double>(after.retained_visits);
}
BENCHMARK(BM_TopKFrequentRegionPairsMerge);

void BM_TopKFrequentRegionPairsScan(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  const std::vector<RegionId> regions = AllRegions();
  const TimeWindow window{0.0, 1e18};
  for (auto _ : state) {
    auto top = engine.TopKFrequentRegionPairs(regions, window, 10, 9.999);
    benchmark::DoNotOptimize(top);
  }
}
BENCHMARK(BM_TopKFrequentRegionPairsScan);

/// Ingest with a standing top-10 subscribed: every m-semantics pays the
/// incremental sketch update, and answer-set changes push a delta.  The
/// counters report how many deltas fired and the p50/p99 time from the
/// Ingest call to the callback's return — the engine-side half of the
/// service's submit-to-push latency.
void BM_StandingQueryPush(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16);
  AnalyticsEngine engine(EngineOptions(1));
  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.spec.min_visit_seconds = 10.0;
  standing.k = 10;
  StreamingHistogram push_latency(1e-9, 1.0, 1.5);
  std::chrono::steady_clock::time_point ingest_start;
  uint64_t deltas = 0;
  engine.Subscribe(standing, [&](const StandingQueryDelta&) {
    ++deltas;
    push_latency.Add(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - ingest_start)
                         .count());
  });
  size_t i = 0;
  double offset = 0.0;
  const size_t n = stream.semantics.size();
  for (auto _ : state) {
    MSemantics ms = stream.semantics[i];
    ms.t_start += offset;
    ms.t_end += offset;
    ingest_start = std::chrono::steady_clock::now();
    engine.Ingest(stream.object_ids[i], ms);
    if (++i == n) {
      i = 0;
      offset += stream.span_seconds;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["deltas"] = static_cast<double>(deltas);
  state.counters["push_p50_us"] = push_latency.Quantile(0.5) * 1e6;
  state.counters["push_p99_us"] = push_latency.Quantile(0.99) * 1e6;
}
BENCHMARK(BM_StandingQueryPush);

/// Ingest with a sliding-window standing top-10 subscribed (trailing
/// 600 s over 60 s buckets): each retained stay rotates the trailing
/// window on watermark advance, expires visits that slid out, and
/// pushes a delta when the in-window answer changed.  The rotation /
/// expiry counters verify the window actually slid during the run.
void BM_SlidingWindowAdvance(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16);
  AnalyticsEngine engine(EngineOptions(1));
  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.spec.min_visit_seconds = 10.0;
  standing.k = 10;
  standing.trailing_seconds = 600.0;
  uint64_t deltas = 0;
  engine.Subscribe(standing,
                   [&deltas](const StandingQueryDelta&) { ++deltas; });
  size_t i = 0;
  double offset = 0.0;
  const size_t n = stream.semantics.size();
  for (auto _ : state) {
    MSemantics ms = stream.semantics[i];
    ms.t_start += offset;
    ms.t_end += offset;
    engine.Ingest(stream.object_ids[i], ms);
    if (++i == n) {
      i = 0;
      offset += stream.span_seconds;
    }
  }
  state.SetItemsProcessed(state.iterations());
  const AnalyticsSnapshot snap = engine.Snapshot();
  // Calibration passes run a handful of iterations — too few to cross a
  // 60 s bucket boundary.  Only enforce rotation on real runs.
  if (state.iterations() >= 10000 && snap.window_rotations == 0) {
    std::fprintf(stderr,
                 "BM_SlidingWindowAdvance: the trailing window never "
                 "rotated\n");
    std::abort();
  }
  state.counters["deltas"] = static_cast<double>(deltas);
  state.counters["rotations"] = static_cast<double>(snap.window_rotations);
  state.counters["expired"] =
      static_cast<double>(snap.window_expired_visits);
}
BENCHMARK(BM_SlidingWindowAdvance);

void BM_Snapshot(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  for (auto _ : state) {
    AnalyticsSnapshot snapshot = engine.Snapshot();
    benchmark::DoNotOptimize(snapshot.regions.size());
  }
}
BENCHMARK(BM_Snapshot);

void WriteJson(const std::string& path,
               const std::vector<bench::CapturedRun>& runs) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n";
  out << "  \"benchmark\": \"micro_analytics\",\n";
  bench::WriteRunsArray(out, runs,
                        [](std::ostream&, const bench::CapturedRun&) {});
  out << "\n";
  out << "}\n";
}

}  // namespace
}  // namespace c2mn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  c2mn::bench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* json_path = std::getenv("C2MN_BENCH_JSON");
  c2mn::WriteJson(json_path != nullptr ? json_path : "BENCH_analytics.json",
                  reporter.runs());
  return 0;
}
