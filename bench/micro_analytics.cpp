// Micro-benchmarks of the streaming analytics engine (google-benchmark).
//
// BM_Ingest measures the per-m-semantics cost of the shard-local
// accumulators (visit counters, dwell histogram, flow matrix, occupancy,
// retention ring) — the overhead the AnnotationService pays per emission
// when AnalyticsOptions::enabled is set.  BM_IngestEvicting drives a
// deliberately tiny retention horizon so every few ingests recycle a
// ring bucket.  BM_TopKPopularRegions / BM_TopKFrequentRegionPairs /
// BM_Snapshot measure the read side against a pre-loaded engine.
//
// Results are emitted as machine-readable JSON (default
// BENCH_analytics.json in the working directory; override with
// C2MN_BENCH_JSON).  Scale knob: C2MN_BENCH_ANALYTICS_VISITS (retained
// visits the query benchmarks run against, default 100000).
//
// Everything here is synthetic m-semantics — no venue, no training — so
// the binary starts instantly and isolates the engine's own costs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "analytics/analytics_engine.h"
#include "bench/bench_json.h"
#include "common/env.h"
#include "common/rng.h"

namespace c2mn {
namespace {

constexpr int kRegions = 64;
constexpr int kObjects = 512;

/// A deterministic synthetic m-semantics stream: objects hop between
/// regions, alternating stays and passes, timestamps advancing so the
/// retention ring sees realistic watermark movement.
struct SyntheticStream {
  std::vector<int64_t> object_ids;
  std::vector<MSemantics> semantics;
  /// Largest clock reached; replaying the stream again shifted by this
  /// keeps timestamps advancing instead of jumping behind the watermark.
  double span_seconds = 0.0;

  explicit SyntheticStream(size_t n, double seconds_per_step = 30.0) {
    Rng rng(1234);
    object_ids.reserve(n);
    semantics.reserve(n);
    std::vector<double> clocks(kObjects, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const int64_t object = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(kObjects)));
      double& clock = clocks[static_cast<size_t>(object)];
      MSemantics ms;
      ms.region = static_cast<RegionId>(rng.UniformInt(static_cast<uint64_t>(kRegions)));
      ms.event = rng.Bernoulli(0.5) ? MobilityEvent::kStay
                                             : MobilityEvent::kPass;
      ms.t_start = clock;
      ms.t_end = clock + rng.Uniform(5.0, seconds_per_step);
      ms.support = 1;
      clock = ms.t_end;
      span_seconds = std::max(span_seconds, clock);
      object_ids.push_back(object);
      semantics.push_back(ms);
    }
  }
};

/// Replays `stream` through `engine` for the benchmark's duration,
/// shifting each pass forward in time so the watermark keeps advancing
/// (a plain wrap-around would land every record behind the retention
/// horizon and measure only the late-dropped early-return).
void RunIngestLoop(benchmark::State& state, const SyntheticStream& stream,
                   AnalyticsEngine* engine) {
  size_t i = 0;
  double offset = 0.0;
  const size_t n = stream.semantics.size();
  for (auto _ : state) {
    MSemantics ms = stream.semantics[i];
    ms.t_start += offset;
    ms.t_end += offset;
    engine->Ingest(stream.object_ids[i], ms);
    if (++i == n) {
      i = 0;
      offset += stream.span_seconds;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

AnalyticsEngine::Options EngineOptions(int shards) {
  AnalyticsEngine::Options options;
  options.num_shards = shards;
  options.bucket_seconds = 60.0;
  options.horizon_seconds = 1e9;  // Nothing ages out mid-benchmark.
  options.min_visit_seconds = 10.0;
  return options;
}

/// Ingest cost per m-semantics, single producer, `shards` shards.
void BM_Ingest(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16);
  const int shards = static_cast<int>(state.range(0));
  AnalyticsEngine engine(EngineOptions(shards));
  RunIngestLoop(state, stream, &engine);
}
BENCHMARK(BM_Ingest)->Arg(1)->Arg(4);

/// Ingest with constant retention churn: a horizon of a few buckets, so
/// the watermark advance recycles ring slots throughout.
void BM_IngestEvicting(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16, 120.0);
  AnalyticsEngine::Options options = EngineOptions(1);
  options.bucket_seconds = 30.0;
  options.horizon_seconds = 300.0;
  AnalyticsEngine engine(options);
  RunIngestLoop(state, stream, &engine);
}
BENCHMARK(BM_IngestEvicting);

/// An engine pre-loaded with C2MN_BENCH_ANALYTICS_VISITS retained stays,
/// shared by the read-side benchmarks.
AnalyticsEngine& LoadedEngine() {
  static AnalyticsEngine* engine = [] {
    const size_t n = static_cast<size_t>(
        EnvInt("C2MN_BENCH_ANALYTICS_VISITS", 100000));
    auto* e = new AnalyticsEngine(EngineOptions(4));
    const SyntheticStream stream(n);
    for (size_t i = 0; i < stream.semantics.size(); ++i) {
      e->Ingest(stream.object_ids[i], stream.semantics[i]);
    }
    return e;
  }();
  return *engine;
}

std::vector<RegionId> AllRegions() {
  std::vector<RegionId> regions;
  for (int r = 0; r < kRegions; ++r) regions.push_back(r);
  return regions;
}

void BM_TopKPopularRegions(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  const std::vector<RegionId> regions = AllRegions();
  const TimeWindow window{0.0, 1e18};
  for (auto _ : state) {
    auto top = engine.TopKPopularRegions(regions, window, 10, 10.0);
    benchmark::DoNotOptimize(top);
  }
  state.counters["retained_visits"] = static_cast<double>(
      engine.Snapshot().retained_visits);
}
BENCHMARK(BM_TopKPopularRegions);

void BM_TopKFrequentRegionPairs(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  const std::vector<RegionId> regions = AllRegions();
  const TimeWindow window{0.0, 1e18};
  for (auto _ : state) {
    auto top = engine.TopKFrequentRegionPairs(regions, window, 10, 10.0);
    benchmark::DoNotOptimize(top);
  }
}
BENCHMARK(BM_TopKFrequentRegionPairs);

void BM_Snapshot(benchmark::State& state) {
  AnalyticsEngine& engine = LoadedEngine();
  for (auto _ : state) {
    AnalyticsSnapshot snapshot = engine.Snapshot();
    benchmark::DoNotOptimize(snapshot.regions.size());
  }
}
BENCHMARK(BM_Snapshot);

void WriteJson(const std::string& path,
               const std::vector<bench::CapturedRun>& runs) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n";
  out << "  \"benchmark\": \"micro_analytics\",\n";
  bench::WriteRunsArray(out, runs,
                        [](std::ostream&, const bench::CapturedRun&) {});
  out << "\n";
  out << "}\n";
}

}  // namespace
}  // namespace c2mn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  c2mn::bench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* json_path = std::getenv("C2MN_BENCH_JSON");
  c2mn::WriteJson(json_path != nullptr ? json_path : "BENCH_analytics.json",
                  reporter.runs());
  return 0;
}
