// Micro-benchmarks of the annotation hot paths (google-benchmark).
//
// Section V-B1 of the paper reports that "labeling a p-sequence with
// around 100 positioning records takes less than 600 ms"; BM_AnnotateSeq
// measures the equivalent figure here.

#include <benchmark/benchmark.h>

#include "baselines/c2mn_method.h"
#include "common/logging.h"
#include "core/annotator.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "sim/scenarios.h"

namespace c2mn {
namespace {

/// Shared fixture state: one scenario + one trained model.
struct InferenceState {
  Scenario scenario;
  std::vector<double> weights;
  FeatureOptions fopts;

  static InferenceState& Get() {
    static InferenceState* state = [] {
      Logger::Global().set_level(LogLevel::kOff);
      auto* s = new InferenceState();
      ScenarioOptions options;
      options.num_objects = 40;
      options.seed = 7;
      s->scenario = MakeMallScenario(options);
      Rng rng(11);
      const TrainTestSplit split = SplitDataset(s->scenario.dataset, 0.7, &rng);
      TrainOptions topts;
      topts.max_iter = 20;
      topts.mcmc_samples = 30;
      AlternateTrainer trainer(*s->scenario.world, s->fopts, C2mnStructure{},
                               topts);
      s->weights = trainer.Train(split.train).weights;
      return s;
    }();
    return *state;
  }
};

/// Joint (R, E) annotation of one p-sequence with ~`records` records.
void BM_AnnotateSequence(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const size_t target = static_cast<size_t>(state.range(0));
  // Pick the test sequence whose length is closest to the target.
  const LabeledSequence* best = &s.scenario.dataset.sequences.front();
  for (const LabeledSequence& ls : s.scenario.dataset.sequences) {
    if (std::llabs(static_cast<long long>(ls.size()) -
                   static_cast<long long>(target)) <
        std::llabs(static_cast<long long>(best->size()) -
                   static_cast<long long>(target))) {
      best = &ls;
    }
  }
  const C2mnAnnotator annotator(*s.scenario.world, s.fopts, C2mnStructure{},
                                s.weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(annotator.Annotate(best->sequence));
  }
  state.counters["records"] = static_cast<double>(best->size());
  state.counters["ms_per_100rec"] = benchmark::Counter(
      100.0 * 1e3 / static_cast<double>(best->size()),
      benchmark::Counter::kDefaults);
}
BENCHMARK(BM_AnnotateSequence)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// Unrolling one sequence into a SequenceGraph (candidates, st-DBSCAN,
/// geometry), the fixed cost before any decoding.
void BM_BuildSequenceGraph(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& ls = s.scenario.dataset.sequences.front();
  for (auto _ : state) {
    SequenceGraph graph(*s.scenario.world, ls.sequence, s.fopts, nullptr);
    benchmark::DoNotOptimize(graph.size());
  }
  state.counters["records"] = static_cast<double>(ls.size());
}
BENCHMARK(BM_BuildSequenceGraph)->Unit(benchmark::kMillisecond);

/// Label-and-merge only (given labels), the cheap tail of the pipeline.
void BM_MergeLabels(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& ls = s.scenario.dataset.sequences.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeLabels(ls.sequence, ls.labels));
  }
}
BENCHMARK(BM_MergeLabels);

}  // namespace
}  // namespace c2mn

BENCHMARK_MAIN();
