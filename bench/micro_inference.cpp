// Micro-benchmarks of the annotation hot paths (google-benchmark).
//
// Section V-B1 of the paper reports that "labeling a p-sequence with
// around 100 positioning records takes less than 600 ms"; BM_AnnotateSeq
// measures the equivalent figure here.
//
// Beyond wall-clock timing, this binary tracks the allocation behavior of
// the flat arena-backed inference core via a counting global operator new:
//   * allocs_per_decode counters on the annotate benchmarks;
//   * a hard steady-state check that OnlineAnnotator::Push performs ZERO
//     heap allocations on pushes that do not trigger a window decode
//     (the process exits non-zero if that invariant breaks).
// Results are emitted as machine-readable JSON (default
// BENCH_inference.json in the working directory; override with
// C2MN_BENCH_JSON).  Set C2MN_BENCH_BASELINE to
// "name=ms,name=ms,..." (and optionally C2MN_BENCH_BASELINE_COMMIT) to
// embed a baseline and per-benchmark speedups in the JSON.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench/bench_json.h"
#include "baselines/c2mn_method.h"
#include "common/logging.h"
#include "core/annotator.h"
#include "core/online_annotator.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "service/annotation_service.h"
#include "sim/scenarios.h"

// ---------------------------------------------------------------------------
// Counting allocator: every global new/delete in this binary bumps a relaxed
// atomic, so benchmarks can report exact allocations-per-operation deltas.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace c2mn {
namespace {

uint64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

/// Shared fixture state: one scenario + one trained model.
struct InferenceState {
  Scenario scenario;
  std::vector<double> weights;
  FeatureOptions fopts;

  static InferenceState& Get() {
    static InferenceState* state = [] {
      Logger::Global().set_level(LogLevel::kOff);
      auto* s = new InferenceState();
      ScenarioOptions options;
      options.num_objects = 40;
      options.seed = 7;
      s->scenario = MakeMallScenario(options);
      Rng rng(11);
      const TrainTestSplit split = SplitDataset(s->scenario.dataset, 0.7, &rng);
      TrainOptions topts;
      topts.max_iter = 20;
      topts.mcmc_samples = 30;
      AlternateTrainer trainer(*s->scenario.world, s->fopts, C2mnStructure{},
                               topts);
      s->weights = trainer.Train(split.train).weights;
      return s;
    }();
    return *state;
  }
};

const LabeledSequence& SequenceNear(const InferenceState& s, size_t target) {
  const LabeledSequence* best = &s.scenario.dataset.sequences.front();
  for (const LabeledSequence& ls : s.scenario.dataset.sequences) {
    if (std::llabs(static_cast<long long>(ls.size()) -
                   static_cast<long long>(target)) <
        std::llabs(static_cast<long long>(best->size()) -
                   static_cast<long long>(target))) {
      best = &ls;
    }
  }
  return *best;
}

/// Joint (R, E) annotation of one p-sequence with ~`records` records,
/// cold workspace per decode (the historical BM_AnnotateSeq figure).
void BM_AnnotateSequence(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& best =
      SequenceNear(s, static_cast<size_t>(state.range(0)));
  const C2mnAnnotator annotator(*s.scenario.world, s.fopts, C2mnStructure{},
                                s.weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(annotator.Annotate(best.sequence));
  }
  const uint64_t before = AllocCount();
  benchmark::DoNotOptimize(annotator.Annotate(best.sequence));
  state.counters["allocs_per_decode"] =
      static_cast<double>(AllocCount() - before);
  state.counters["records"] = static_cast<double>(best.size());
  state.counters["ms_per_100rec"] = benchmark::Counter(
      100.0 * 1e3 / static_cast<double>(best.size()),
      benchmark::Counter::kDefaults);
}
BENCHMARK(BM_AnnotateSequence)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

/// Same decode through a reused DecodeWorkspace — the streaming-service
/// configuration, where the arena and label buffers persist across calls.
void BM_AnnotateSequenceReusedWorkspace(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& best =
      SequenceNear(s, static_cast<size_t>(state.range(0)));
  const C2mnAnnotator annotator(*s.scenario.world, s.fopts, C2mnStructure{},
                                s.weights);
  DecodeWorkspace workspace;
  LabelSequence labels;
  annotator.AnnotateInto(best.sequence, &workspace, &labels);  // Warm up.
  for (auto _ : state) {
    annotator.AnnotateInto(best.sequence, &workspace, &labels);
    benchmark::DoNotOptimize(labels.regions.data());
  }
  const uint64_t before = AllocCount();
  annotator.AnnotateInto(best.sequence, &workspace, &labels);
  state.counters["allocs_per_decode"] =
      static_cast<double>(AllocCount() - before);
  state.counters["records"] = static_cast<double>(best.size());
}
BENCHMARK(BM_AnnotateSequenceReusedWorkspace)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Unrolling one sequence into a SequenceGraph (candidates, st-DBSCAN,
/// geometry), the fixed cost before any decoding.
void BM_BuildSequenceGraph(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& ls = s.scenario.dataset.sequences.front();
  for (auto _ : state) {
    SequenceGraph graph(*s.scenario.world, ls.sequence, s.fopts, nullptr);
    benchmark::DoNotOptimize(graph.size());
  }
  state.counters["records"] = static_cast<double>(ls.size());
}
BENCHMARK(BM_BuildSequenceGraph)->Unit(benchmark::kMillisecond);

/// Label-and-merge only (given labels), the cheap tail of the pipeline.
void BM_MergeLabels(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& ls = s.scenario.dataset.sequences.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeLabels(ls.sequence, ls.labels));
  }
}
BENCHMARK(BM_MergeLabels);

/// Candidate generation primitive: k-nearest distinct regions.  Covers
/// the reserve()d, set-free RegionIndex::NearestRegionsInto path.
void BM_NearestRegions(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const World& world = *s.scenario.world;
  const LabeledSequence& ls = s.scenario.dataset.sequences.front();
  std::vector<RegionIndex::RegionDistance> buffer;
  size_t i = 0;
  const size_t n = ls.sequence.size();
  for (auto _ : state) {
    world.index().NearestRegionsInto(ls.sequence[i++ % n].location, 6, 40.0,
                                     &buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  const uint64_t before = AllocCount();
  for (int q = 0; q < 64; ++q) {
    world.index().NearestRegionsInto(ls.sequence[q % n].location, 6, 40.0,
                                     &buffer);
  }
  state.counters["allocs_per_64_queries"] =
      static_cast<double>(AllocCount() - before);
}
BENCHMARK(BM_NearestRegions);

/// Streaming push throughput through a single OnlineAnnotator session.
void BM_OnlinePush(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& ls = SequenceNear(s, 400);
  OnlineAnnotator::Options opts;
  OnlineAnnotator annotator(*s.scenario.world, s.fopts, C2mnStructure{},
                            s.weights, opts);
  size_t i = 0;
  const size_t n = ls.sequence.size();
  double t = 0.0;
  for (auto _ : state) {
    PositioningRecord r = ls.sequence.records[i++ % n];
    r.timestamp = (t += 1.0);  // Keep the stream time-ordered across wraps.
    benchmark::DoNotOptimize(annotator.Push(r));
  }
  state.counters["records_consumed"] =
      static_cast<double>(annotator.records_consumed());
}
BENCHMARK(BM_OnlinePush)->Unit(benchmark::kMicrosecond);

/// Cross-session batched decode through the AnnotationService: one shard,
/// `Arg(0)` concurrent sessions submitted round-robin so the shard queue
/// carries a heavy session mix and window decodes drain through the
/// shard's shared-workspace decode batches.  Reports sessions/sec/core
/// (wall-clock sessions completed per second, divided by the hardware
/// thread count) plus the realized batch fill.
void BM_ServiceBatchedDecode(benchmark::State& state) {
  InferenceState& s = InferenceState::Get();
  const int kSessions = static_cast<int>(state.range(0));
  constexpr size_t kRecordsPerSession = 96;

  // One source stream per session, truncated; timestamps already ordered.
  std::vector<std::vector<PositioningRecord>> streams;
  for (int i = 0; i < kSessions; ++i) {
    const auto& seqs = s.scenario.dataset.sequences;
    std::vector<PositioningRecord> records =
        seqs[static_cast<size_t>(i) % seqs.size()].sequence.records;
    if (records.size() > kRecordsPerSession) records.resize(kRecordsPerSession);
    streams.push_back(std::move(records));
  }

  AnnotationService::Options options;
  options.num_shards = 1;  // All sessions share one queue: maximal mixing.
  options.queue_capacity = 1024;
  options.annotator.window_records = 24;
  options.annotator.finalize_lag = 6;
  options.annotator.decode_stride = 4;
  AnnotationService service(*s.scenario.world, s.fopts, C2mnStructure{},
                            s.weights, options);

  std::atomic<uint64_t> emitted{0};
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (int64_t id = 0; id < kSessions; ++id) {
      service.OpenSession(id, [&emitted](int64_t, const MSemantics&) {
        emitted.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Round-robin across sessions: consecutive queue entries belong to
    // different sessions, the worst case for per-session decode locality
    // and the exact case batching is for.  Session `id` starts `id`
    // rounds late so the per-session decode strides de-phase — real
    // sessions never open simultaneously, and an all-in-phase replay
    // would park every decode right before that same session's next
    // record, completing each one individually by construction.
    const size_t rounds =
        kRecordsPerSession + static_cast<size_t>(kSessions);
    for (size_t i = 0; i < rounds; ++i) {
      for (int64_t id = 0; id < kSessions; ++id) {
        if (i < static_cast<size_t>(id)) continue;
        const size_t k = i - static_cast<size_t>(id);
        const auto& records = streams[static_cast<size_t>(id)];
        if (k < records.size()) service.Submit(id, records[k]);
      }
    }
    for (int64_t id = 0; id < kSessions; ++id) service.CloseSession(id);
    service.Drain();
  }

  // Rate over *wall* time: the decode work happens on the shard worker
  // thread while this thread blocks in Drain(), so a CPU-time rate
  // (benchmark::Counter::kIsRate) would overstate throughput ~100x.
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const ServiceStats stats = service.Stats();
  const double sessions_total =
      static_cast<double>(kSessions) * static_cast<double>(state.iterations());
  const double cores =
      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));
  state.counters["sessions_per_sec"] =
      wall_seconds > 0 ? sessions_total / wall_seconds : 0.0;
  state.counters["sessions_per_sec_per_core"] =
      wall_seconds > 0 ? sessions_total / (wall_seconds * cores) : 0.0;
  state.counters["batched_decodes"] =
      static_cast<double>(stats.batched_decodes);
  state.counters["decode_batches"] = static_cast<double>(stats.decode_batches);
  state.counters["batch_fill_mean"] =
      stats.decode_batches > 0
          ? static_cast<double>(stats.batched_decodes) /
                static_cast<double>(stats.decode_batches)
          : 0.0;
  state.counters["emitted"] =
      static_cast<double>(emitted.load(std::memory_order_relaxed));
}
BENCHMARK(BM_ServiceBatchedDecode)->Arg(16)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Steady-state allocation check (not a google-benchmark): replays a long
// stream through OnlineAnnotator and verifies that pushes which do not
// trigger a window decode perform exactly zero heap allocations.
// ---------------------------------------------------------------------------

struct PushAllocStats {
  uint64_t steady_push_allocs_max = 0;   // Must be 0.
  uint64_t steady_pushes_checked = 0;
  double decode_push_allocs_mean = 0.0;  // Amortized cost of decode pushes.
  uint64_t decode_pushes_checked = 0;
  uint64_t warm_decode_allocs = 0;       // Must be 0.
};

/// Decode pushes may allocate only for the emitted MSemantics they hand
/// back (vector growth, pending-run splices); the decode itself is
/// arena-backed.  Anything above this bound means a fresh heap path crept
/// back into the warm decode cycle.
constexpr double kMaxDecodePushAllocsMean = 24.0;

/// A warm C2mnAnnotator::AnnotateInto through a reused DecodeWorkspace
/// must not heap-allocate at all: the arena, label buffers, and every
/// scratch vector reach steady-state capacity after the first decode.
uint64_t RunWarmDecodeAllocCheck() {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& ls = SequenceNear(s, 200);
  const C2mnAnnotator annotator(*s.scenario.world, s.fopts, C2mnStructure{},
                                s.weights);
  DecodeWorkspace workspace;
  LabelSequence labels;
  annotator.AnnotateInto(ls.sequence, &workspace, &labels);  // Warm up.
  annotator.AnnotateInto(ls.sequence, &workspace, &labels);
  const uint64_t before = AllocCount();
  annotator.AnnotateInto(ls.sequence, &workspace, &labels);
  benchmark::DoNotOptimize(labels.regions.data());
  return AllocCount() - before;
}

PushAllocStats RunPushAllocCheck() {
  InferenceState& s = InferenceState::Get();
  const LabeledSequence& ls = SequenceNear(s, 400);
  const OnlineAnnotator::Options opts = OnlineAnnotator::Options().Validated();
  OnlineAnnotator annotator(*s.scenario.world, s.fopts, C2mnStructure{},
                            s.weights, opts);
  // Mirror of Push()'s decode trigger, so each push can be classified
  // without touching annotator internals.
  int window = 0;
  int since_decode = 0;
  auto push_decodes = [&]() {
    ++window;
    ++since_decode;
    if (window >= opts.window_records && since_decode >= opts.decode_stride) {
      window = opts.finalize_lag;
      since_decode = 0;
      return true;
    }
    return false;
  };

  PushAllocStats stats;
  const size_t n = ls.sequence.size();
  double t = 0.0;
  size_t i = 0;
  auto next_record = [&]() {
    PositioningRecord r = ls.sequence.records[i++ % n];
    r.timestamp = (t += 1.0);
    return r;
  };
  // Warm-up: several full decode cycles grow every buffer to its
  // steady-state capacity (arena blocks, window, emit scratch).
  for (int p = 0; p < 3 * opts.window_records; ++p) {
    annotator.Push(next_record());
    push_decodes();
  }
  uint64_t decode_allocs = 0;
  for (int p = 0; p < 4 * opts.window_records; ++p) {
    const PositioningRecord r = next_record();
    const bool expect_decode = push_decodes();
    const uint64_t before = AllocCount();
    const std::vector<MSemantics> emitted = annotator.Push(r);
    const uint64_t allocs = AllocCount() - before;
    benchmark::DoNotOptimize(emitted.size());
    if (expect_decode) {
      decode_allocs += allocs;
      ++stats.decode_pushes_checked;
    } else {
      stats.steady_push_allocs_max =
          std::max(stats.steady_push_allocs_max, allocs);
      ++stats.steady_pushes_checked;
    }
  }
  if (stats.decode_pushes_checked > 0) {
    stats.decode_push_allocs_mean =
        static_cast<double>(decode_allocs) /
        static_cast<double>(stats.decode_pushes_checked);
  }
  stats.warm_decode_allocs = RunWarmDecodeAllocCheck();
  return stats;
}

// ---------------------------------------------------------------------------
// JSON emission (capture/escape plumbing shared via bench/bench_json.h).
// ---------------------------------------------------------------------------

using bench::CapturedRun;
using bench::EscapeJson;
using bench::ParseBaseline;

void WriteJson(const std::string& path, const std::vector<CapturedRun>& runs,
               const PushAllocStats& push_stats) {
  const std::map<std::string, double> baseline =
      ParseBaseline(std::getenv("C2MN_BENCH_BASELINE"));
  const char* baseline_commit = std::getenv("C2MN_BENCH_BASELINE_COMMIT");
  std::ofstream out(path);
  out.precision(6);
  out << "{\n";
  out << "  \"benchmark\": \"micro_inference\",\n";
  if (baseline_commit != nullptr) {
    out << "  \"baseline_commit\": \"" << EscapeJson(baseline_commit)
        << "\",\n";
  }
  out << "  \"steady_state_push\": {\n";
  out << "    \"non_decode_push_allocs_max\": "
      << push_stats.steady_push_allocs_max << ",\n";
  out << "    \"non_decode_pushes_checked\": "
      << push_stats.steady_pushes_checked << ",\n";
  out << "    \"decode_push_allocs_mean\": "
      << push_stats.decode_push_allocs_mean << ",\n";
  out << "    \"decode_pushes_checked\": " << push_stats.decode_pushes_checked
      << ",\n";
  out << "    \"warm_decode_allocs\": " << push_stats.warm_decode_allocs
      << "\n";
  out << "  },\n";
  bench::WriteRunsArray(out, runs,
                        [&baseline](std::ostream& o, const CapturedRun& run) {
                          const auto base = baseline.find(run.name);
                          if (base != baseline.end() && run.real_ms > 0) {
                            o << ", \"baseline_ms\": " << base->second
                              << ", \"speedup\": "
                              << base->second / run.real_ms;
                          }
                        });
  out << "\n";
  out << "}\n";
}

}  // namespace
}  // namespace c2mn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  const c2mn::PushAllocStats push_stats = c2mn::RunPushAllocCheck();

  c2mn::bench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const char* json_path = std::getenv("C2MN_BENCH_JSON");
  c2mn::WriteJson(json_path != nullptr ? json_path : "BENCH_inference.json",
                  reporter.runs(), push_stats);

  if (push_stats.steady_push_allocs_max != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state OnlineAnnotator::Push allocated "
                 "(max %llu allocations on a non-decode push; expected 0)\n",
                 static_cast<unsigned long long>(
                     push_stats.steady_push_allocs_max));
    return 1;
  }
  if (push_stats.warm_decode_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: warm AnnotateInto through a reused DecodeWorkspace "
                 "allocated (%llu allocations; expected 0)\n",
                 static_cast<unsigned long long>(
                     push_stats.warm_decode_allocs));
    return 1;
  }
  if (push_stats.decode_push_allocs_mean > c2mn::kMaxDecodePushAllocsMean) {
    std::fprintf(stderr,
                 "FAIL: decode pushes averaged %.1f allocations "
                 "(gate: <= %.0f) — a heap path crept back into the warm "
                 "decode cycle\n",
                 push_stats.decode_push_allocs_mean,
                 c2mn::kMaxDecodePushAllocsMean);
    return 1;
  }
  std::printf("steady-state push check: 0 allocations over %llu non-decode "
              "pushes; %.1f allocs/decode-push over %llu decode pushes "
              "(gate <= %.0f); warm reused-workspace decode: 0 allocations\n",
              static_cast<unsigned long long>(push_stats.steady_pushes_checked),
              push_stats.decode_push_allocs_mean,
              static_cast<unsigned long long>(
                  push_stats.decode_pushes_checked),
              c2mn::kMaxDecodePushAllocsMean);
  return 0;
}
