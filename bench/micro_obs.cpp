// Micro-benchmarks of the observability substrate (google-benchmark).
//
// Three questions, answered in BENCH_observability.json:
//   1. What does one metric write cost?  Counter::Increment, Gauge::Set/
//      Add, Histogram::Observe, and a full per-record trace span
//      (Start + 4 FinishStage + PipelineTracer::Record) are timed
//      individually, single-threaded and contended.
//   2. Do metric writes allocate?  A counting global operator new checks
//      that steady-state writes perform ZERO heap allocations (the
//      process exits non-zero if that breaks — metrics must fit inside
//      the decode path's zero-alloc invariant).
//   3. What does tracing cost end to end?  The same stream replays
//      through an AnnotationService with stage tracing off and on; the
//      JSON records both throughputs and the delta fraction (the
//      acceptance budget is 5%).
// Default output BENCH_observability.json; override with C2MN_BENCH_JSON.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "common/logging.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "obs/metrics_registry.h"
#include "obs/pipeline_trace.h"
#include "service/annotation_service.h"
#include "sim/scenarios.h"

// ---------------------------------------------------------------------------
// Counting allocator (same pattern as micro_inference): every global
// new/delete bumps a relaxed atomic so per-operation deltas are exact.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace c2mn {
namespace {

uint64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

// ------------------------------------------------------------ per-op cost

void BM_CounterIncrement(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  static obs::Counter* counter =
      registry.GetCounter("c2mn_bench_total", "bench");
  for (auto _ : state) counter->Increment();
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrement);

/// Contended increments: the striped cells should keep per-op cost flat
/// as threads are added (each thread folds into its own cache line).
void BM_CounterIncrementContended(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  static obs::Counter* counter =
      registry.GetCounter("c2mn_bench_contended_total", "bench");
  for (auto _ : state) counter->Increment();
  if (state.thread_index() == 0) benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrementContended)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  static obs::Gauge* gauge = registry.GetGauge("c2mn_bench_gauge", "bench");
  double v = 0.0;
  for (auto _ : state) gauge->Set(v += 1.0);
  benchmark::DoNotOptimize(gauge->Value());
}
BENCHMARK(BM_GaugeSet);

void BM_GaugeAdd(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  static obs::Gauge* gauge = registry.GetGauge("c2mn_bench_gauge2", "bench");
  for (auto _ : state) gauge->Add(0.5);
  benchmark::DoNotOptimize(gauge->Value());
}
BENCHMARK(BM_GaugeAdd);

void BM_HistogramObserve(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  static obs::Histogram* hist = registry.GetHistogram(
      "c2mn_bench_seconds", "bench", obs::Histogram::Config{1e-9, 1e3, 2.0});
  // Cycle across buckets so the log + fetch_add path is not trivially
  // branch-predicted into one cache line.
  static const double kValues[] = {3e-7, 1.1e-4, 2.9e-3, 8e-2, 0.7, 4.2};
  size_t i = 0;
  for (auto _ : state) hist->Observe(kValues[i++ % 6]);
  benchmark::DoNotOptimize(hist->count());
}
BENCHMARK(BM_HistogramObserve);

/// The full per-record tracing cost the service pays: re-arm a span,
/// close all four stages, fold it into the histograms.  This is an upper
/// bound — in the pipeline the clock reads double as the latency
/// measurement the legacy stats needed anyway.
void BM_SpanRecord(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  static obs::PipelineTracer tracer(&registry, obs::PipelineTracer::Options{});
  obs::PipelineTracer::Span span;
  for (auto _ : state) {
    span.Start(std::chrono::steady_clock::now());
    span.FinishStage(obs::PipelineStage::kQueueWait);
    span.FinishStage(obs::PipelineStage::kDecode);
    span.FinishStage(obs::PipelineStage::kSinkEmit);
    span.FinishStage(obs::PipelineStage::kAnalyticsIngest);
    tracer.Record(span, /*object_id=*/1, /*shard=*/0);
  }
}
BENCHMARK(BM_SpanRecord);

/// Re-registration (the slow path subsystems hit once per constructor):
/// a mutex + map lookup, for contrast with the wait-free writes above.
void BM_RegistryLookup(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  registry.GetCounter("c2mn_bench_lookup_total", "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.GetCounter("c2mn_bench_lookup_total", "bench"));
  }
}
BENCHMARK(BM_RegistryLookup);

// ------------------------------------------------- zero-alloc write check

struct WriteAllocStats {
  uint64_t writes_checked = 0;
  uint64_t allocs = 0;  // Must be 0.
};

/// Registers one metric of each kind plus a tracer (registration is the
/// allocating slow path, done once here), then verifies that a long run
/// of steady-state writes performs exactly zero heap allocations.
WriteAllocStats RunWriteAllocCheck() {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c2mn_check_total", "check");
  obs::Gauge* gauge = registry.GetGauge("c2mn_check_gauge", "check");
  obs::Histogram* hist = registry.GetHistogram(
      "c2mn_check_seconds", "check", obs::Histogram::Config{1e-9, 1e3, 2.0});
  obs::PipelineTracer tracer(&registry, obs::PipelineTracer::Options{});
  obs::PipelineTracer::Span span;
  // One write each first: the thread's stripe ordinal is assigned on
  // first use and must not count against the steady state.
  counter->Increment();
  gauge->Set(1.0);
  hist->Observe(1e-4);
  span.Start(std::chrono::steady_clock::now());
  tracer.Record(span, 0, 0);

  WriteAllocStats stats;
  const uint64_t before = AllocCount();
  for (int i = 0; i < 100000; ++i) {
    counter->Increment();
    gauge->Set(static_cast<double>(i));
    gauge->Add(0.25);
    hist->Observe(1e-6 * (1 + i % 1000));
    span.Start(std::chrono::steady_clock::now());
    span.FinishStage(obs::PipelineStage::kQueueWait);
    span.FinishStage(obs::PipelineStage::kDecode);
    tracer.Record(span, i, 0);
    stats.writes_checked += 6;
  }
  stats.allocs = AllocCount() - before;
  return stats;
}

// ------------------------------------------- end-to-end tracing overhead

struct TracingOverhead {
  uint64_t records = 0;
  double off_records_per_sec = 0.0;
  double on_records_per_sec = 0.0;
  /// (off - on) / off; positive means tracing costs throughput.
  double delta_frac = 0.0;
};

struct ServiceState {
  Scenario scenario;
  std::vector<double> weights;
  std::vector<std::vector<PositioningRecord>> sources;

  static ServiceState& Get() {
    static ServiceState* state = [] {
      auto* s = new ServiceState();
      ScenarioOptions options;
      options.num_objects = 40;
      options.seed = 7;
      s->scenario = MakeMallScenario(options);
      Rng rng(11);
      const TrainTestSplit split = SplitDataset(s->scenario.dataset, 0.7, &rng);
      TrainOptions topts;
      topts.max_iter = 12;
      topts.mcmc_samples = 15;
      AlternateTrainer trainer(*s->scenario.world, FeatureOptions{},
                               C2mnStructure{}, topts);
      s->weights = trainer.Train(split.train).weights;
      for (const LabeledSequence& ls : s->scenario.dataset.sequences) {
        std::vector<PositioningRecord> records = ls.sequence.records;
        if (records.size() > 200) records.resize(200);
        s->sources.push_back(std::move(records));
      }
      return s;
    }();
    return *state;
  }
};

/// Replays every source through a fresh service and returns the wall
/// seconds from first Submit to Drain returning.
double ReplayOnce(bool stage_tracing, uint64_t* records_out) {
  ServiceState& s = ServiceState::Get();
  constexpr int kObjects = 48;
  AnnotationService::Options options;
  options.num_shards = 4;
  options.queue_capacity = 1024;
  options.annotator.window_records = 24;
  options.annotator.finalize_lag = 6;
  options.annotator.decode_stride = 4;
  options.obs.stage_tracing = stage_tracing;
  AnnotationService service(*s.scenario.world, FeatureOptions{},
                            C2mnStructure{}, s.weights, options);
  uint64_t records = 0;
  for (int64_t id = 0; id < kObjects; ++id) {
    service.OpenSession(id, [](int64_t, const MSemantics&) {});
  }
  const auto start = std::chrono::steady_clock::now();
  const size_t longest =
      std::max_element(s.sources.begin(), s.sources.end(),
                       [](const auto& a, const auto& b) {
                         return a.size() < b.size();
                       })
          ->size();
  // Round-robin across sessions so every shard queue stays busy.
  for (size_t i = 0; i < longest; ++i) {
    for (int64_t id = 0; id < kObjects; ++id) {
      const auto& source = s.sources[id % s.sources.size()];
      if (i < source.size()) {
        service.Submit(id, source[i]);
        ++records;
      }
    }
  }
  for (int64_t id = 0; id < kObjects; ++id) service.CloseSession(id);
  service.Drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (records_out != nullptr) *records_out = records;
  return seconds;
}

TracingOverhead RunTracingOverhead() {
  TracingOverhead result;
  // Interleave off/on runs and keep each config's best time, damping
  // one-off scheduler noise without a long measurement campaign.
  double best_off = 1e300;
  double best_on = 1e300;
  for (int round = 0; round < 3; ++round) {
    best_off = std::min(best_off, ReplayOnce(false, &result.records));
    best_on = std::min(best_on, ReplayOnce(true, &result.records));
  }
  result.off_records_per_sec = static_cast<double>(result.records) / best_off;
  result.on_records_per_sec = static_cast<double>(result.records) / best_on;
  result.delta_frac = (best_on - best_off) / best_off;
  return result;
}

// --------------------------------------------------------- JSON emission

using bench::CapturedRun;
using bench::EscapeJson;

void WriteJson(const std::string& path, const std::vector<CapturedRun>& runs,
               const WriteAllocStats& alloc_stats,
               const TracingOverhead& overhead) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n";
  out << "  \"benchmark\": \"micro_obs\",\n";
  out << "  \"metric_write_allocs\": {\n";
  out << "    \"writes_checked\": " << alloc_stats.writes_checked << ",\n";
  out << "    \"allocs\": " << alloc_stats.allocs << "\n";
  out << "  },\n";
  out << "  \"tracing_overhead\": {\n";
  out << "    \"records\": " << overhead.records << ",\n";
  out << "    \"off_records_per_sec\": " << overhead.off_records_per_sec
      << ",\n";
  out << "    \"on_records_per_sec\": " << overhead.on_records_per_sec
      << ",\n";
  out << "    \"delta_frac\": " << overhead.delta_frac << "\n";
  out << "  },\n";
  bench::WriteRunsArray(out, runs, [](std::ostream&, const CapturedRun&) {});
  out << "\n";
  out << "}\n";
}

}  // namespace
}  // namespace c2mn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  c2mn::Logger::Global().set_level(c2mn::LogLevel::kOff);

  const c2mn::WriteAllocStats alloc_stats = c2mn::RunWriteAllocCheck();

  c2mn::bench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const c2mn::TracingOverhead overhead = c2mn::RunTracingOverhead();

  const char* json_path = std::getenv("C2MN_BENCH_JSON");
  c2mn::WriteJson(
      json_path != nullptr ? json_path : "BENCH_observability.json",
      reporter.runs(), alloc_stats, overhead);

  if (alloc_stats.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state metric writes allocated (%llu "
                 "allocations over %llu writes; expected 0)\n",
                 static_cast<unsigned long long>(alloc_stats.allocs),
                 static_cast<unsigned long long>(alloc_stats.writes_checked));
    return 1;
  }
  std::printf(
      "metric write check: 0 allocations over %llu writes\n"
      "tracing overhead: %.0f rec/s off, %.0f rec/s on (delta %.2f%%)\n",
      static_cast<unsigned long long>(alloc_stats.writes_checked),
      overhead.off_records_per_sec, overhead.on_records_per_sec,
      overhead.delta_frac * 100.0);
  return 0;
}
