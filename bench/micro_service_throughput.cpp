// Load generator for the concurrent AnnotationService: sweeps shard
// count x concurrent objects, replaying simulated mall streams from a
// fixed pool of producer threads, and reports records/sec plus the
// 1-shard -> N-shard scaling ratio.  Scaling tops out at the machine's
// core count — on a single-core box every configuration is decode-bound
// on one CPU and the ratios hover near 1.
//
// Env knobs: C2MN_BENCH_OBJECTS (dataset size), C2MN_BENCH_SEED,
// C2MN_BENCH_SERVICE_ITERS (training iterations),
// C2MN_BENCH_SERVICE_STREAMS (max concurrent sessions),
// C2MN_BENCH_SERVICE_RECORDS (records replayed per stream).

#include <cinttypes>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "service/annotation_service.h"

namespace c2mn {
namespace {

struct Workload {
  const World* world;
  std::vector<double> weights;
  /// Source record streams, one per virtual object (replicated from the
  /// simulated dataset and truncated to a fixed length).
  std::vector<std::vector<PositioningRecord>> streams;
};

/// Replays every stream through a service with `num_shards` shards from
/// `producers` threads; returns processed records per second.
double RunConfig(const Workload& load, int num_shards, int producers,
                 ServiceStats* stats_out) {
  AnnotationService::Options options;
  options.num_shards = num_shards;
  options.queue_capacity = 1024;
  // Small windows keep per-record decode cost realistic for an online
  // service while the benchmark stays in the seconds range.
  options.annotator.window_records = 24;
  options.annotator.finalize_lag = 6;
  options.annotator.decode_stride = 4;
  AnnotationService service(*load.world, FeatureOptions{}, C2mnStructure{},
                            load.weights, options);

  const size_t n = load.streams.size();
  for (size_t i = 0; i < n; ++i) {
    service.OpenSession(static_cast<int64_t>(i),
                        [](int64_t, const MSemantics&) {});
  }
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&load, &service, p, producers, n] {
      for (size_t i = static_cast<size_t>(p); i < n;
           i += static_cast<size_t>(producers)) {
        for (const PositioningRecord& rec : load.streams[i]) {
          service.Submit(static_cast<int64_t>(i), rec);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < n; ++i) service.CloseSession(static_cast<int64_t>(i));
  service.Drain();
  const double seconds = timer.ElapsedSeconds();
  const ServiceStats stats = service.Stats();
  if (stats_out != nullptr) *stats_out = stats;
  return seconds > 0.0 ? static_cast<double>(stats.records_processed) / seconds
                       : 0.0;
}

int Main() {
  bench::BenchInit();
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::PrintHeader(
      "micro_service_throughput — AnnotationService scaling sweep",
      "the service layer; no paper figure");

  std::printf("hardware concurrency: %u\n",
              std::thread::hardware_concurrency());
  const Scenario scenario = bench::MallScenario(scale);

  TrainOptions topts = bench::DefaultTrainOptions(scale);
  topts.max_iter = EnvInt("C2MN_BENCH_SERVICE_ITERS", 12);
  std::vector<const LabeledSequence*> train;
  for (const LabeledSequence& ls : scenario.dataset.sequences) {
    train.push_back(&ls);
  }
  AlternateTrainer trainer(*scenario.world, FeatureOptions{}, C2mnStructure{},
                           topts);

  Workload load;
  load.world = scenario.world.get();
  load.weights = trainer.Train(train).weights;

  const int max_streams = EnvInt("C2MN_BENCH_SERVICE_STREAMS", 128);
  const size_t records_per_stream =
      static_cast<size_t>(EnvInt("C2MN_BENCH_SERVICE_RECORDS", 120));
  const int producers = EnvInt("C2MN_BENCH_SERVICE_PRODUCERS", 4);

  TablePrinter table({"shards", "streams", "records", "records/sec",
                      "p50 ms", "p99 ms", "vs 1 shard"});
  for (int streams : {max_streams / 4, max_streams}) {
    if (streams < 1) continue;
    load.streams.clear();
    uint64_t total_records = 0;
    for (int i = 0; i < streams; ++i) {
      const PSequence& source =
          scenario.dataset
              .sequences[static_cast<size_t>(i) %
                         scenario.dataset.sequences.size()]
              .sequence;
      std::vector<PositioningRecord> records = source.records;
      if (records.size() > records_per_stream) {
        records.resize(records_per_stream);
      }
      total_records += records.size();
      load.streams.push_back(std::move(records));
    }

    double base_rate = 0.0;
    for (int shards : {1, 2, 4}) {
      ServiceStats stats;
      const double rate = RunConfig(load, shards, producers, &stats);
      if (shards == 1) base_rate = rate;
      table.AddRow({std::to_string(shards), std::to_string(streams),
                    std::to_string(total_records),
                    TablePrinter::Fmt(rate, 0),
                    TablePrinter::Fmt(stats.latency_p50_ms, 3),
                    TablePrinter::Fmt(stats.latency_p99_ms, 3),
                    TablePrinter::Fmt(base_rate > 0 ? rate / base_rate : 0.0,
                                        2) +
                        "x"});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace c2mn

int main() { return c2mn::Main(); }
