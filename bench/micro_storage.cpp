// Micro-benchmarks of the durable-state layer (google-benchmark).
//
// BM_IngestBaseline replays a synthetic stream through the engine
// alone; BM_IngestLogged replays the identical stream but pays the full
// durability path per m-semantics: apply to the engine, buffer the
// write-ahead log record with the engine-assigned sequence, and let the
// buffer threshold hand batches to the background writer — exactly what
// the AnnotationService does when Options::storage.state_dir is set.
// The logging-overhead number the durability work is budgeted against
// (target: within 15%) is the ratio between those two, taken from the
// SAME run: absolute items/s on a shared box swings far more between
// runs than the logged/unlogged gap does, so cross-file comparison
// against BENCH_analytics.json is only a sanity check.  Both benches
// also report thread_ns_per_item (CLOCK_THREAD_CPUTIME_ID across the
// loop), since the JSON otherwise only carries wall time.  Note that
// on a single-core host the background writer competes with the ingest
// thread for the one CPU — its cache/scheduler interference shows up
// in both numbers — so the ratio here is an upper bound on what a
// multi-core service pays; isolated probes put the hot-path append +
// hand-off work itself at ~20-25 ns/record.
//
// BM_Checkpoint runs full checkpoint cycles (rotate + SaveState +
// encode + atomic publish with fsync + segment compaction) against an
// engine pre-loaded with C2MN_BENCH_STORAGE_VISITS retained visits —
// the latency a live service absorbs per background checkpoint.
// BM_SnapshotEncode / BM_SnapshotDecode isolate the codec from the
// filesystem.  BM_Replay measures recovery throughput: a fresh engine
// plus a fresh manager re-reading a synced log of the same size, in
// records/s — the restart-cost half of the durability trade.
//
// Results are emitted as machine-readable JSON (default
// BENCH_storage.json in the working directory; override with
// C2MN_BENCH_JSON).  Scale knob: C2MN_BENCH_STORAGE_VISITS (default
// 100000).

#include <sys/stat.h>
#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "analytics/analytics_engine.h"
#include "bench/bench_json.h"
#include "common/env.h"
#include "common/rng.h"
#include "storage/snapshot_codec.h"
#include "storage/storage_manager.h"

namespace c2mn {
namespace {

constexpr int kRegions = 64;
constexpr int kObjects = 512;

/// A deterministic synthetic m-semantics stream: objects hop between
/// regions, alternating stays and passes, timestamps advancing so the
/// retention ring sees realistic watermark movement.  Same generator
/// (and seed) as micro_analytics, so the logged and unlogged ingest
/// numbers are comparable record for record.
struct SyntheticStream {
  std::vector<int64_t> object_ids;
  std::vector<MSemantics> semantics;
  /// Largest clock reached; replaying the stream again shifted by this
  /// keeps timestamps advancing instead of jumping behind the watermark.
  double span_seconds = 0.0;

  explicit SyntheticStream(size_t n, double seconds_per_step = 30.0) {
    Rng rng(1234);
    object_ids.reserve(n);
    semantics.reserve(n);
    std::vector<double> clocks(kObjects, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const int64_t object = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(kObjects)));
      double& clock = clocks[static_cast<size_t>(object)];
      MSemantics ms;
      ms.region = static_cast<RegionId>(
          rng.UniformInt(static_cast<uint64_t>(kRegions)));
      ms.event = rng.Bernoulli(0.5) ? MobilityEvent::kStay
                                    : MobilityEvent::kPass;
      ms.t_start = clock;
      ms.t_end = clock + rng.Uniform(5.0, seconds_per_step);
      ms.support = 1;
      clock = ms.t_end;
      span_seconds = std::max(span_seconds, clock);
      object_ids.push_back(object);
      semantics.push_back(ms);
    }
  }
};

/// Mirrors AnalyticsEngine::ShardOf / AnnotationService::ShardOf (both
/// private): the sharded Ingest overload that exposes the applied
/// sequence needs the shard picked the same way the service would.
int ShardOf(int64_t object_id, int shards) {
  return static_cast<int>(std::hash<int64_t>{}(object_id) %
                          static_cast<size_t>(shards));
}

AnalyticsEngine::Options EngineOptions(int shards) {
  AnalyticsEngine::Options options;
  options.num_shards = shards;
  options.bucket_seconds = 60.0;
  options.horizon_seconds = 1e9;  // Nothing ages out mid-benchmark.
  options.min_visit_seconds = 10.0;
  return options;
}

/// A fresh state directory, removed (with contents) when it goes out of
/// scope, so repeated benchmark runs never replay each other's logs.
struct StateDir {
  std::string path;

  StateDir() {
    const char* base = std::getenv("TMPDIR");
    std::string templ = std::string(base != nullptr ? base : "/tmp") +
                        "/c2mn_bench_storage_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      std::perror("mkdtemp");
      std::abort();
    }
    path = buf.data();
  }

  ~StateDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "failed to remove %s\n", path.c_str());
    }
  }
};

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// CPU nanoseconds consumed by the calling thread alone.  The ingest
/// benches report this per item: unlike wall or process CPU time it
/// excludes the background writer, so it is the cost a multi-core
/// service pays on its hot path — the number the 15% overhead budget
/// is really about.
double ThreadCpuNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return 1e9 * static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec);
}

/// The same loop as BM_IngestLogged minus the storage manager: the
/// in-run baseline the logging overhead is measured against.
void BM_IngestBaseline(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16);
  const int shards = static_cast<int>(state.range(0));
  AnalyticsEngine engine(EngineOptions(shards));

  size_t i = 0;
  double offset = 0.0;
  uint64_t seq = 0;
  const size_t n = stream.semantics.size();
  const double cpu_start = ThreadCpuNanos();
  for (auto _ : state) {
    MSemantics ms = stream.semantics[i];
    ms.t_start += offset;
    ms.t_end += offset;
    const int64_t object = stream.object_ids[i];
    engine.Ingest(ShardOf(object, shards), object, ms, &seq);
    if (++i == n) {
      i = 0;
      offset += stream.span_seconds;
    }
  }
  const double cpu_ns = ThreadCpuNanos() - cpu_start;
  state.SetItemsProcessed(state.iterations());
  state.counters["thread_ns_per_item"] =
      cpu_ns / static_cast<double>(state.iterations());
}
BENCHMARK(BM_IngestBaseline)->Arg(1)->Arg(4);

/// The steady-state service write path: apply, buffer the log record,
/// and let the 64 KiB buffer threshold hand batches to the background
/// writer.  fsync stays off the hot path exactly as in the service
/// (only checkpoints and shutdown sync); explicit FlushShard calls at
/// service batch boundaries only move the hand-off point earlier, so
/// steady-state cost is what this loop measures.
void BM_IngestLogged(benchmark::State& state) {
  static const SyntheticStream& stream = *new SyntheticStream(1 << 16);
  const int shards = static_cast<int>(state.range(0));
  StateDir dir;
  AnalyticsEngine engine(EngineOptions(shards));
  storage::StorageManager::Options options;
  options.state_dir = dir.path;
  storage::StorageManager manager(options, shards);
  CheckOk(manager.Start(), "StorageManager::Start");

  size_t i = 0;
  double offset = 0.0;
  uint64_t seq = 0;
  const size_t n = stream.semantics.size();
  const double cpu_start = ThreadCpuNanos();
  for (auto _ : state) {
    MSemantics ms = stream.semantics[i];
    ms.t_start += offset;
    ms.t_end += offset;
    const int64_t object = stream.object_ids[i];
    const int shard = ShardOf(object, shards);
    engine.Ingest(shard, object, ms, &seq);
    manager.BufferIngest(shard, seq, object, ms);
    if (++i == n) {
      i = 0;
      offset += stream.span_seconds;
    }
  }
  const double cpu_ns = ThreadCpuNanos() - cpu_start;
  CheckOk(manager.Sync(), "StorageManager::Sync");
  state.SetItemsProcessed(state.iterations());
  state.counters["thread_ns_per_item"] =
      cpu_ns / static_cast<double>(state.iterations());
  state.counters["log_bytes"] = static_cast<double>(manager.log_bytes());
}
BENCHMARK(BM_IngestLogged)->Arg(1)->Arg(4);

size_t BenchVisits() {
  return static_cast<size_t>(EnvInt("C2MN_BENCH_STORAGE_VISITS", 100000));
}

/// Loads `engine` with BenchVisits() synthetic records through the
/// sharded path, optionally logging them through `manager`.
void LoadEngine(AnalyticsEngine* engine, storage::StorageManager* manager,
                int shards) {
  const SyntheticStream stream(BenchVisits());
  uint64_t seq = 0;
  for (size_t i = 0; i < stream.semantics.size(); ++i) {
    const int64_t object = stream.object_ids[i];
    const int shard = ShardOf(object, shards);
    engine->Ingest(shard, object, stream.semantics[i], &seq);
    if (manager != nullptr) {
      manager->BufferIngest(shard, seq, object, stream.semantics[i]);
    }
  }
}

/// One full checkpoint cycle per iteration — rotation, state save,
/// snapshot encode, fsync'd atomic publish, segment compaction — over a
/// loaded engine.  This is the pause-free background cost the service's
/// checkpoint thread pays; the recorded latency feeds the same
/// distribution c2mn_storage_checkpoint_seconds tracks in production.
void BM_Checkpoint(benchmark::State& state) {
  const int shards = 4;
  StateDir dir;
  AnalyticsEngine engine(EngineOptions(shards));
  LoadEngine(&engine, nullptr, shards);
  storage::StorageManager::Options options;
  options.state_dir = dir.path;  // fsync_on_checkpoint stays on.
  storage::StorageManager manager(options, shards);
  CheckOk(manager.Start(), "StorageManager::Start");
  for (auto _ : state) {
    CheckOk(manager.Checkpoint(engine), "StorageManager::Checkpoint");
  }
  state.counters["snapshot_bytes"] =
      static_cast<double>(FileBytes(dir.path + "/snapshot.c2mn"));
  state.counters["retained_visits"] =
      static_cast<double>(engine.Snapshot().retained_visits);
}
BENCHMARK(BM_Checkpoint);

/// The codec alone, no filesystem: serialize a loaded engine's saved
/// state to the versioned snapshot byte string.
void BM_SnapshotEncode(benchmark::State& state) {
  const int shards = 4;
  AnalyticsEngine engine(EngineOptions(shards));
  LoadEngine(&engine, nullptr, shards);
  storage::SnapshotData data;
  data.wal_epoch_covered = 1;
  data.engine = engine.SaveState();
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    storage::EncodeSnapshot(data, &bytes);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_SnapshotEncode);

/// ...and parse it back, CRC check included.
void BM_SnapshotDecode(benchmark::State& state) {
  const int shards = 4;
  AnalyticsEngine engine(EngineOptions(shards));
  LoadEngine(&engine, nullptr, shards);
  storage::SnapshotData data;
  data.wal_epoch_covered = 1;
  data.engine = engine.SaveState();
  std::string bytes;
  storage::EncodeSnapshot(data, &bytes);
  for (auto _ : state) {
    storage::SnapshotData decoded;
    CheckOk(storage::DecodeSnapshot(bytes, &decoded), "DecodeSnapshot");
    benchmark::DoNotOptimize(decoded.engine.shards.size());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_SnapshotDecode);

/// Crash-restart throughput: rebuild a fresh engine by replaying a
/// synced log of BenchVisits() records (no snapshot, worst case — every
/// record replays).  Items are replayed records, so items/s is the
/// recovery rate to weigh against checkpoint frequency.
void BM_Replay(benchmark::State& state) {
  const int shards = 4;
  const size_t n = BenchVisits();
  StateDir dir;
  storage::StorageManager::Options options;
  options.state_dir = dir.path;
  {
    AnalyticsEngine writer_engine(EngineOptions(shards));
    storage::StorageManager writer(options, shards);
    CheckOk(writer.Start(), "StorageManager::Start");
    LoadEngine(&writer_engine, &writer, shards);
    CheckOk(writer.Sync(), "StorageManager::Sync");
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    AnalyticsEngine engine(EngineOptions(shards));
    storage::StorageManager reader(options, shards);
    storage::RecoveryStats stats;
    CheckOk(reader.Recover(&engine, &stats), "StorageManager::Recover");
    replayed = stats.replayed_records;
    benchmark::DoNotOptimize(replayed);
  }
  if (replayed < n) {
    std::fprintf(stderr, "BM_Replay: expected %zu records, replayed %llu\n",
                 n, static_cast<unsigned long long>(replayed));
    std::abort();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(replayed));
  state.counters["replayed_records"] = static_cast<double>(replayed);
}
BENCHMARK(BM_Replay);

void WriteJson(const std::string& path,
               const std::vector<bench::CapturedRun>& runs) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n";
  out << "  \"benchmark\": \"micro_storage\",\n";
  bench::WriteRunsArray(out, runs,
                        [](std::ostream&, const bench::CapturedRun&) {});
  out << "\n";
  out << "}\n";
}

}  // namespace
}  // namespace c2mn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  c2mn::bench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* json_path = std::getenv("C2MN_BENCH_JSON");
  c2mn::WriteJson(json_path != nullptr ? json_path : "BENCH_storage.json",
                  reporter.runs());
  return 0;
}
