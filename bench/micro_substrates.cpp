// Micro-benchmarks of the indoor-space substrates (google-benchmark):
// MIWD distance queries, R-tree nearest-region lookups, st-DBSCAN
// clustering, and simulator throughput.

#include <benchmark/benchmark.h>

#include "clustering/st_dbscan.h"
#include "common/logging.h"
#include "common/rng.h"
#include "sim/scenarios.h"

namespace c2mn {
namespace {

struct SubstrateState {
  Scenario scenario;

  static SubstrateState& Get() {
    static SubstrateState* state = [] {
      Logger::Global().set_level(LogLevel::kOff);
      auto* s = new SubstrateState();
      ScenarioOptions options;
      options.num_objects = 20;
      options.seed = 7;
      s->scenario = MakeMallScenario(options);
      return s;
    }();
    return *state;
  }
};

IndoorPoint RandomIndoorPoint(const World& world, Rng* rng) {
  const auto& parts = world.plan().partitions();
  const Partition& part = parts[rng->UniformInt(parts.size())];
  const Vec2 c = part.shape.Centroid();
  return IndoorPoint(c, part.floor);
}

void BM_MiwdPointToPoint(benchmark::State& state) {
  const World& world = *SubstrateState::Get().scenario.world;
  Rng rng(3);
  std::vector<std::pair<IndoorPoint, IndoorPoint>> queries;
  for (int i = 0; i < 256; ++i) {
    queries.emplace_back(RandomIndoorPoint(world, &rng),
                         RandomIndoorPoint(world, &rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [p, q] = queries[i++ & 255];
    benchmark::DoNotOptimize(world.oracle().PointToPoint(p, q));
  }
}
BENCHMARK(BM_MiwdPointToPoint);

void BM_RegionToRegionDistance(benchmark::State& state) {
  const World& world = *SubstrateState::Get().scenario.world;
  const int nr = static_cast<int>(world.plan().regions().size());
  Rng rng(4);
  int a = 0, b = 1;
  for (auto _ : state) {
    a = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(nr)));
    b = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(nr)));
    benchmark::DoNotOptimize(world.oracle().RegionToRegion(a, b));
  }
}
BENCHMARK(BM_RegionToRegionDistance);

void BM_NearestRegions(benchmark::State& state) {
  const World& world = *SubstrateState::Get().scenario.world;
  Rng rng(5);
  std::vector<IndoorPoint> points;
  for (int i = 0; i < 256; ++i) points.push_back(RandomIndoorPoint(world, &rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.index().NearestRegions(points[i++ & 255], 6, 40.0));
  }
}
BENCHMARK(BM_NearestRegions);

void BM_StDbscan(benchmark::State& state) {
  const Scenario& scenario = SubstrateState::Get().scenario;
  const PSequence& seq = scenario.dataset.sequences.front().sequence;
  StDbscanParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StDbscan(seq, params));
  }
  state.counters["records"] = static_cast<double>(seq.size());
}
BENCHMARK(BM_StDbscan)->Unit(benchmark::kMicrosecond);

void BM_SimulateObject(benchmark::State& state) {
  const World& world = *SubstrateState::Get().scenario.world;
  MobilityConfig config;
  config.min_lifespan_seconds = 1800;
  config.max_lifespan_seconds = 1800;
  MobilitySimulator simulator(world, config);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.SimulateObject(0, 0.0, 1800.0, &rng));
  }
  state.SetLabel("30min trace");
}
BENCHMARK(BM_SimulateObject)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2mn

BENCHMARK_MAIN();
