// Micro-benchmarks of the alternating trainer (google-benchmark).
//
// BM_Train sweeps training-set size x worker-thread count over
// AlternateTrainer::Train, the Algorithm-1 hot loop: per-sequence MCMC
// sampling and gradient accumulation sharded over a worker pool.  Because
// every sequence owns its RNG stream and the reduction order is fixed, the
// learned weights are bit-identical for every thread count — this binary
// re-verifies that invariant at startup (1 vs 2 vs 4 threads) and exits
// non-zero if it ever breaks, so the CI bench-smoke job doubles as a
// determinism gate.
//
// Results are emitted as machine-readable JSON (default BENCH_training.json
// in the working directory; override with C2MN_BENCH_JSON), including
// per-configuration speedups over the 1-thread run of the same training
// set.  On a single-core box the thread sweep degenerates to ~1.0x, which
// is expected; the tracked numbers come from a multi-core runner.
//
// Scale knobs (environment): C2MN_BENCH_TRAIN_OBJECTS (default 24),
// C2MN_BENCH_TRAIN_ITERS (default 3), C2MN_BENCH_TRAIN_MCMC (default 40).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "common/env.h"
#include "common/logging.h"
#include "core/trainer.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "sim/scenarios.h"

namespace c2mn {
namespace {

/// Shared fixture: one simulated corpus, reused by every configuration.
struct TrainState {
  Scenario scenario;
  std::vector<const LabeledSequence*> sequences;

  static TrainState& Get() {
    static TrainState* state = [] {
      Logger::Global().set_level(LogLevel::kOff);
      auto* s = new TrainState();
      ScenarioOptions options;
      options.num_objects = EnvInt("C2MN_BENCH_TRAIN_OBJECTS", 24);
      options.seed = 7;
      s->scenario = MakeMallScenario(options);
      for (const LabeledSequence& ls : s->scenario.dataset.sequences) {
        s->sequences.push_back(&ls);
      }
      return s;
    }();
    return *state;
  }
};

TrainOptions BenchTrainOptions(int num_threads) {
  TrainOptions topts;
  topts.max_iter = EnvInt("C2MN_BENCH_TRAIN_ITERS", 3);
  topts.mcmc_samples = EnvInt("C2MN_BENCH_TRAIN_MCMC", 40);
  topts.seed = 13;
  topts.num_threads = num_threads;
  return topts;
}

std::vector<const LabeledSequence*> FirstN(
    const std::vector<const LabeledSequence*>& all, size_t n) {
  std::vector<const LabeledSequence*> subset(all.begin(),
                                             all.begin() + std::min(n, all.size()));
  return subset;
}

/// Full training runs over `range(0)` sequences with `range(1)` worker
/// threads — the sequences x threads sweep behind BENCH_training.json.
void BM_Train(benchmark::State& state) {
  TrainState& s = TrainState::Get();
  const auto train = FirstN(s.sequences, static_cast<size_t>(state.range(0)));
  const TrainOptions topts = BenchTrainOptions(static_cast<int>(state.range(1)));
  int iterations = 0;
  int threads_used = 0;
  size_t records = 0;
  for (const LabeledSequence* ls : train) records += ls->size();
  for (auto _ : state) {
    AlternateTrainer trainer(*s.scenario.world, FeatureOptions{},
                             C2mnStructure{}, topts);
    const TrainResult result = trainer.Train(train);
    benchmark::DoNotOptimize(result.weights.data());
    iterations = result.iterations;
    threads_used = result.num_threads_used;
  }
  state.counters["sequences"] = static_cast<double>(train.size());
  state.counters["records"] = static_cast<double>(records);
  state.counters["threads"] = static_cast<double>(threads_used);
  state.counters["outer_iters"] = static_cast<double>(iterations);
}
BENCHMARK(BM_Train)
    ->ArgsProduct({{8, 16}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The fixed setup cost the parallel sweep does not touch: unrolling the
/// training set into SequenceGraphs (candidates, st-DBSCAN, geometry).
void BM_TrainUnrollOnly(benchmark::State& state) {
  TrainState& s = TrainState::Get();
  const auto train = FirstN(s.sequences, 8);
  const FeatureOptions fopts;
  for (auto _ : state) {
    for (const LabeledSequence* ls : train) {
      SequenceGraph graph(*s.scenario.world, ls->sequence, fopts,
                          &ls->labels);
      benchmark::DoNotOptimize(graph.size());
    }
  }
}
BENCHMARK(BM_TrainUnrollOnly)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Determinism gate: bit-identical weights for 1 / 2 / 4 threads.
// ---------------------------------------------------------------------------

struct DeterminismCheck {
  bool bit_identical = true;
  int configs_checked = 0;
};

DeterminismCheck RunDeterminismCheck() {
  TrainState& s = TrainState::Get();
  const auto train = FirstN(s.sequences, 8);
  DeterminismCheck check;
  std::vector<double> reference;
  for (const int threads : {1, 2, 4}) {
    TrainOptions topts = BenchTrainOptions(threads);
    topts.max_iter = 2;  // Two outer iterations exercise the full loop.
    AlternateTrainer trainer(*s.scenario.world, FeatureOptions{},
                             C2mnStructure{}, topts);
    const TrainResult result = trainer.Train(train);
    ++check.configs_checked;
    if (threads == 1) {
      reference = result.weights;
    } else if (result.weights.size() != reference.size() ||
               std::memcmp(result.weights.data(), reference.data(),
                           reference.size() * sizeof(double)) != 0) {
      check.bit_identical = false;
      std::fprintf(stderr,
                   "FAIL: %d-thread training diverged from the 1-thread "
                   "weights\n",
                   threads);
    }
  }
  return check;
}

// ---------------------------------------------------------------------------
// JSON emission (same shape as micro_inference's BENCH_inference.json;
// capture/escape plumbing shared via bench/bench_json.h).
// ---------------------------------------------------------------------------

using bench::CapturedRun;
using bench::EscapeJson;

/// The 1-thread wall time of the same training-set size, keyed by the
/// "sequences" counter — baseline for per-configuration speedups.
std::map<double, double> SingleThreadTimes(
    const std::vector<CapturedRun>& runs) {
  std::map<double, double> base;
  for (const CapturedRun& run : runs) {
    const auto threads = run.counters.find("threads");
    const auto sequences = run.counters.find("sequences");
    if (threads == run.counters.end() || sequences == run.counters.end()) {
      continue;
    }
    if (threads->second == 1.0) base[sequences->second] = run.real_ms;
  }
  return base;
}

void WriteJson(const std::string& path, const std::vector<CapturedRun>& runs,
               const DeterminismCheck& check) {
  const std::map<double, double> base = SingleThreadTimes(runs);
  double max_speedup = 1.0;
  std::ofstream out(path);
  out.precision(6);
  out << "{\n";
  out << "  \"benchmark\": \"micro_train\",\n";
  if (const char* commit = std::getenv("C2MN_BENCH_BASELINE_COMMIT")) {
    out << "  \"baseline_commit\": \"" << EscapeJson(commit) << "\",\n";
  }
  out << "  \"determinism\": {\n";
  out << "    \"bit_identical_across_thread_counts\": "
      << (check.bit_identical ? "true" : "false") << ",\n";
  out << "    \"thread_counts_checked\": " << check.configs_checked << "\n";
  out << "  },\n";
  bench::WriteRunsArray(
      out, runs, [&base, &max_speedup](std::ostream& o, const CapturedRun& run) {
        const auto sequences = run.counters.find("sequences");
        if (sequences == run.counters.end() || run.real_ms <= 0) return;
        const auto b = base.find(sequences->second);
        if (b == base.end()) return;
        const double speedup = b->second / run.real_ms;
        o << ", \"speedup_vs_1thread\": " << speedup;
        max_speedup = std::max(max_speedup, speedup);
      });
  out << ",\n";
  out << "  \"max_speedup_vs_1thread\": " << max_speedup << "\n";
  out << "}\n";
}

}  // namespace
}  // namespace c2mn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  const c2mn::DeterminismCheck check = c2mn::RunDeterminismCheck();

  c2mn::bench::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const char* json_path = std::getenv("C2MN_BENCH_JSON");
  c2mn::WriteJson(json_path != nullptr ? json_path : "BENCH_training.json",
                  reporter.runs(), check);

  if (!check.bit_identical) {
    std::fprintf(stderr,
                 "FAIL: trainer output is not thread-count invariant\n");
    return 1;
  }
  std::printf("determinism check: weights bit-identical across %d thread "
              "counts\n",
              check.configs_checked);
  return 0;
}
