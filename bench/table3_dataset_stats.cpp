// Reproduces Table III of the paper: statistics of the (surrogate) real
// dataset after the η = 3 min split / ψ = 30 min filter preprocessing,
// plus the memory footprint of the indoor-space structures reported in
// Section V-B1 (accessibility graph + R-tree, and the pre-computed
// door-to-door shortest distances).

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "data/dataset.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Table III: Statistics of the (surrogate) Real Dataset",
              "Table III, Section V-B1");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  const DatasetStats stats = ComputeStats(scenario.dataset);

  std::printf("venue: %d floors, %zu partitions, %zu doors, %zu semantic "
              "regions\n",
              world.plan().num_floors(), world.plan().partitions().size(),
              world.plan().doors().size(), world.plan().regions().size());
  std::printf("door-to-door distance matrix: %.2f MB precomputed\n\n",
              world.graph().AllPairsBytes() / (1024.0 * 1024.0));

  TablePrinter table({"statistic", "value", "paper"});
  table.AddRow({"p-sequences (after preprocessing)",
                std::to_string(stats.num_sequences), "44,863"});
  table.AddRow({"positioning records", std::to_string(stats.num_records),
                "5,218,361"});
  table.AddRow({"average number of records per sequence",
                TablePrinter::Fmt(stats.avg_records_per_sequence, 2),
                "116.32"});
  table.AddRow({"average duration per sequence (sec)",
                TablePrinter::Fmt(stats.avg_duration_seconds, 1), "2227.9"});
  table.AddRow({"average sampling rate (Hz)",
                TablePrinter::Fmt(stats.avg_sampling_rate_hz, 4), "~1/15"});
  table.Print();
  std::printf("\n(Counts are smaller than the paper's: the surrogate runs at "
              "bench scale;\n raise C2MN_BENCH_OBJECTS to approach the "
              "paper's volume.)\n");
  return 0;
}
