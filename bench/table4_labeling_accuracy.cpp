// Reproduces Table IV of the paper: labeling accuracy (RA / EA / CA / PA)
// of SMoT, HMM+DC, SAPDV, SAPDA, CMN, the four C2MN ablations, and the
// full C2MN on the mall dataset with a 70/30 split and λ = 0.7.
//
// Expected shape (paper): separated two-step/two-way methods stay around
// RA 0.70-0.74; CRF-style methods improve; the full C2MN is best on every
// measure and clearly best on PA.

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/harness.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Table IV: Results of Labeling Accuracy",
              "Table IV, Section V-B2");

  Scenario scenario = MallScenario(scale);
  const World& world = *scenario.world;
  std::printf("dataset: %zu sequences, %zu records, %zu regions\n\n",
              scenario.dataset.NumSequences(), scenario.dataset.NumRecords(),
              world.plan().regions().size());

  Rng rng(scale.seed + 2);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);

  FeatureOptions fopts;
  const TrainOptions topts = DefaultTrainOptions(scale);

  TablePrinter table({"Methods", "RA", "EA", "CA", "PA"});
  for (auto& method : MakeAllMethods(world, fopts, topts)) {
    const MethodEvaluation eval = EvaluateMethod(method.get(), split);
    table.AddRow({eval.name, TablePrinter::Fmt(eval.accuracy.region_accuracy),
                  TablePrinter::Fmt(eval.accuracy.event_accuracy),
                  TablePrinter::Fmt(eval.accuracy.combined_accuracy),
                  TablePrinter::Fmt(eval.accuracy.perfect_accuracy)});
  }
  table.Print();
  return 0;
}
