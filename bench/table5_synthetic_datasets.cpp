// Reproduces Table V of the paper: the synthetic mobility datasets
// generated in the ten-floor Vita-style building for the (T, μ) grid —
// T ∈ {5, 10, 15} s maximum positioning period, μ ∈ {3, 5, 7} m error —
// along with the building inventory of Section V-C and the memory cost of
// the indoor-space structures.

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "data/dataset.h"

using namespace c2mn;
using namespace c2mn::bench;

int main() {
  BenchInit();
  const BenchScale scale = BenchScale::FromEnv();
  PrintHeader("Table V: Synthetic Mobility Datasets",
              "Table V, Section V-C");

  struct Setting {
    const char* name;
    double T, mu;
  };
  const Setting settings[] = {{"T5mu3", 5, 3},
                              {"T5mu5", 5, 5},
                              {"T5mu7", 5, 7},
                              {"T10mu7", 10, 7},
                              {"T15mu7", 15, 7}};

  TablePrinter table(
      {"Dataset", "Parameter Setting", "# Sequences", "# Records"});
  bool printed_building = false;
  for (const Setting& s : settings) {
    ScenarioOptions options;
    options.num_objects = scale.objects;
    options.seed = scale.seed;
    Scenario scenario = MakeSyntheticScenario(options, s.T, s.mu);
    if (!printed_building) {
      const World& world = *scenario.world;
      std::printf("building: %d floors, %zu partitions, %zu doors, %zu "
                  "regions, 4 staircases\n",
                  world.plan().num_floors(),
                  world.plan().partitions().size(),
                  world.plan().doors().size(),
                  world.plan().regions().size());
      std::printf("indoor-space structures: %.1f MB door-distance matrix\n\n",
                  world.graph().AllPairsBytes() / (1024.0 * 1024.0));
      printed_building = true;
    }
    const DatasetStats stats = ComputeStats(scenario.dataset);
    char setting[64];
    std::snprintf(setting, sizeof(setting), "T = %.0fs, mu = %.0fm", s.T,
                  s.mu);
    table.AddRow({s.name, setting, std::to_string(stats.num_sequences),
                  std::to_string(stats.num_records)});
  }
  table.Print();
  std::printf("\n(The paper generates 10K objects / ~15M records; bench "
              "scale is smaller.\n Record counts follow the same ordering: "
              "smaller T => more records.)\n");
  return 0;
}
