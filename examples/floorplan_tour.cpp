// Floorplan tour: the indoor-space substrate API on its own.
//
// Builds a small two-floor venue by hand with FloorplanBuilder, prepares
// the derived structures (accessibility graph, R-tree index, MIWD
// oracle), and walks through the spatial queries the annotation models
// rely on: point location, nearest regions, shortest indoor routes, and
// expected region-to-region walking distances.

#include <cstdio>

#include "common/logging.h"
#include "sim/path_planner.h"
#include "sim/world.h"

using namespace c2mn;

int main() {
  Logger::Global().set_level(LogLevel::kWarning);

  // Ground floor: two shops off a corridor; a staircase leads upstairs to
  // a third shop.
  FloorplanBuilder builder;
  const PartitionId corridor0 = builder.AddPartition(
      0, PartitionKind::kHallway, Polygon::Rectangle({0, 8}, {30, 12}));
  const PartitionId cafe = builder.AddPartition(
      0, PartitionKind::kRoom, Polygon::Rectangle({0, 0}, {15, 8}));
  const PartitionId books = builder.AddPartition(
      0, PartitionKind::kRoom, Polygon::Rectangle({15, 0}, {30, 8}));
  builder.AddDoor(cafe, corridor0, {7.5, 8});
  builder.AddDoor(books, corridor0, {22.5, 8});
  const PartitionId stairs0 = builder.AddPartition(
      0, PartitionKind::kStaircase, Polygon::Rectangle({30, 8}, {34, 12}));
  builder.AddDoor(corridor0, stairs0, {30, 10});

  const PartitionId corridor1 = builder.AddPartition(
      1, PartitionKind::kHallway, Polygon::Rectangle({0, 8}, {30, 12}));
  const PartitionId gallery = builder.AddPartition(
      1, PartitionKind::kRoom, Polygon::Rectangle({0, 0}, {30, 8}));
  builder.AddDoor(gallery, corridor1, {15, 8});
  const PartitionId stairs1 = builder.AddPartition(
      1, PartitionKind::kStaircase, Polygon::Rectangle({30, 8}, {34, 12}));
  builder.AddDoor(corridor1, stairs1, {30, 10});
  builder.AddStairDoor(stairs0, stairs1, {32, 10}, /*traversal_cost=*/14.0);

  builder.AddRegion("Cafe", {cafe});
  builder.AddRegion("Bookshop", {books});
  builder.AddRegion("Gallery", {gallery});

  auto plan_result = builder.Build();
  if (!plan_result.ok()) {
    std::printf("floorplan invalid: %s\n",
                plan_result.status().ToString().c_str());
    return 1;
  }
  World world = World::Create(std::move(plan_result).ValueOrDie());
  const Floorplan& plan = world.plan();
  std::printf("venue: %zu partitions, %zu doors, %zu regions, %d floors\n\n",
              plan.partitions().size(), plan.doors().size(),
              plan.regions().size(), plan.num_floors());

  // Point location and nearest regions.
  const IndoorPoint in_cafe(5, 4, 0);
  const IndoorPoint in_corridor(18, 10, 0);
  std::printf("(5, 4, F0) is inside: %s\n",
              plan.region(world.index().RegionAt(in_cafe)).name.c_str());
  std::printf("(18, 10, F0) nearest regions:\n");
  for (const auto& [region, dist] :
       world.index().NearestRegions(in_corridor, 3)) {
    std::printf("  %-9s at %.1f m\n", plan.region(region).name.c_str(), dist);
  }

  // Minimum indoor walking distances: Euclidean inside a room, through
  // doors across rooms, up the stairs across floors.
  const IndoorPoint in_books(22, 4, 0);
  const IndoorPoint in_gallery(15, 4, 1);
  std::printf("\nMIWD cafe->bookshop: %.1f m (Euclidean: %.1f m)\n",
              world.oracle().PointToPoint(in_cafe, in_books),
              HorizontalDistance(in_cafe, in_books));
  std::printf("MIWD cafe->gallery (upstairs): %.1f m\n",
              world.oracle().PointToPoint(in_cafe, in_gallery));
  std::printf("expected walk Cafe->Gallery (region level): %.1f m\n",
              world.oracle().RegionToRegion(0, 2));

  // A concrete route, door by door.
  PathPlanner planner(plan, world.graph());
  std::printf("\nroute cafe -> gallery:\n");
  for (const IndoorPoint& p : planner.PlanWaypoints(in_cafe, in_gallery)) {
    std::printf("  (%5.1f, %5.1f) floor %d\n", p.xy.x, p.xy.y, p.floor);
  }
  return 0;
}
