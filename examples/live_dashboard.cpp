// live_dashboard — the analytics engine as a venue operations console.
//
// Simulates a morning of mall visitors, streams their positioning
// records through the concurrent AnnotationService with live analytics
// enabled, and renders a dashboard snapshot mid-replay and at the end:
// top regions by visits, dwell-time quantiles, live occupancy, and the
// busiest region-to-region flows.  Everything shown comes from
// AnalyticsEngine queries that are safe to run while ingestion is still
// in full swing.  A standing continuous query runs alongside: instead
// of polling, the dashboard's "trending now" ticker is pushed a delta
// from the shard workers whenever the top-3 answer set changes.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/table_printer.h"
#include "core/trainer.h"
#include "obs/metrics_registry.h"
#include "service/annotation_service.h"
#include "sim/scenarios.h"

using namespace c2mn;

namespace {

void PrintDashboard(const AnnotationService& service, const World& world,
                    const char* title) {
  const AnalyticsSnapshot snap = service.AnalyticsStats();
  const ServiceStats stats = service.Stats();
  std::printf("\n=== %s ===\n", title);
  std::printf("records %" PRIu64 "  |  m-semantics %" PRIu64
              "  |  visits retained %" PRIu64 "  |  objects live %zu\n",
              stats.records_processed, snap.semantics_ingested,
              snap.retained_visits, snap.objects_tracked);

  // Top regions by cumulative visits, with their gauges.
  std::vector<RegionAnalytics> regions = snap.regions;
  std::sort(regions.begin(), regions.end(),
            [](const RegionAnalytics& a, const RegionAnalytics& b) {
              if (a.visits != b.visits) return a.visits > b.visits;
              return a.region < b.region;
            });
  TablePrinter table({"region", "visits", "dwell p50 s", "dwell p99 s",
                      "total dwell s", "occupancy"});
  for (size_t i = 0; i < regions.size() && i < 6; ++i) {
    const RegionAnalytics& r = regions[i];
    table.AddRow({world.plan().region(r.region).name,
                  std::to_string(r.visits),
                  TablePrinter::Fmt(r.dwell_p50_seconds, 1),
                  TablePrinter::Fmt(r.dwell_p99_seconds, 1),
                  TablePrinter::Fmt(r.total_dwell_seconds, 0),
                  std::to_string(r.occupancy)});
  }
  table.Print();

  if (!snap.flows.empty()) {
    std::printf("busiest flows:");
    for (size_t i = 0; i < snap.flows.size() && i < 3; ++i) {
      std::printf("  %s->%s (%" PRIu64 ")",
                  world.plan().region(snap.flows[i].from).name.c_str(),
                  world.plan().region(snap.flows[i].to).name.c_str(),
                  snap.flows[i].count);
    }
    std::printf("\n");
  }
}

/// Where does a record's latency go?  The service's pipeline tracer
/// keeps one histogram per stage; this renders the breakdown straight
/// off the service's metrics registry (the same data `c2mn_cli metrics`
/// exports in Prometheus/JSON form).
void PrintStageBreakdown(const AnnotationService& service) {
  const auto snaps = service.metrics_registry().Snapshot();
  const obs::HistogramSnapshot* end_to_end = nullptr;
  std::vector<std::pair<std::string, const obs::HistogramSnapshot*>> stages;
  for (const obs::MetricSnapshot& snap : snaps) {
    if (snap.name == "c2mn_pipeline_stage_seconds" && !snap.labels.empty()) {
      stages.emplace_back(snap.labels.front().second, &snap.histogram);
    } else if (snap.name == "c2mn_pipeline_record_seconds") {
      end_to_end = &snap.histogram;
    }
  }
  if (end_to_end == nullptr || end_to_end->count == 0) return;

  std::printf("\nwhere the latency goes (per traced pipeline op):\n");
  TablePrinter table({"stage", "samples", "p50 ms", "p99 ms", "max ms",
                     "share"});
  for (const auto& [name, hist] : stages) {
    table.AddRow({name, std::to_string(hist->count),
                  TablePrinter::Fmt(hist->Quantile(0.5) * 1e3, 3),
                  TablePrinter::Fmt(hist->Quantile(0.99) * 1e3, 3),
                  TablePrinter::Fmt(hist->max * 1e3, 3),
                  TablePrinter::Fmt(100.0 * hist->sum / end_to_end->sum, 1) +
                      "%"});
  }
  table.AddRow({"end-to-end", std::to_string(end_to_end->count),
                TablePrinter::Fmt(end_to_end->Quantile(0.5) * 1e3, 3),
                TablePrinter::Fmt(end_to_end->Quantile(0.99) * 1e3, 3),
                TablePrinter::Fmt(end_to_end->max * 1e3, 3), "100%"});
  table.Print();
}

}  // namespace

int main() {
  Logger::Global().set_level(LogLevel::kWarning);

  ScenarioOptions sopts;
  sopts.num_objects = 24;
  sopts.seed = 33;
  std::printf("simulating %d visitors...\n", sopts.num_objects);
  const Scenario scenario = MakeMallScenario(sopts);

  TrainOptions topts;
  topts.max_iter = 10;
  topts.mcmc_samples = 15;
  std::vector<const LabeledSequence*> train;
  for (const LabeledSequence& ls : scenario.dataset.sequences) {
    train.push_back(&ls);
  }
  AlternateTrainer trainer(*scenario.world, FeatureOptions{}, C2mnStructure{},
                           topts);
  std::printf("training weights on the simulated visits...\n");
  const std::vector<double> weights = trainer.Train(train).weights;

  AnnotationService::Options options;
  options.num_shards = 2;
  options.analytics.enabled = true;
  options.analytics.engine.min_visit_seconds = 30.0;
  options.analytics.engine.bucket_seconds = 120.0;
  options.analytics.engine.horizon_seconds = 24 * 3600.0;

  // The pushed "trending now" ticker: a standing top-3 by visits over
  // everything inside the retention horizon.  The callback runs on the
  // shard workers, so the print is serialized by its own mutex — both
  // declared before the service so they outlive its teardown.
  std::mutex ticker_mu;
  uint64_t ticker_updates = 0;

  AnnotationService service(*scenario.world, FeatureOptions{}, C2mnStructure{},
                            weights, options);
  StandingQuery trending;
  trending.spec.all_regions = true;
  trending.spec.min_visit_seconds = 30.0;
  trending.k = 3;
  service.SubscribeAnalytics(
      trending, [&ticker_mu, &ticker_updates, &scenario](
                    const StandingQueryDelta& delta) {
        std::lock_guard<std::mutex> lock(ticker_mu);
        ++ticker_updates;
        std::printf("[trending #%02" PRIu64 "]", delta.sequence);
        for (RegionId region : delta.regions) {
          std::printf("  %s",
                      scenario.world->plan().region(region).name.c_str());
        }
        std::printf("\n");
      });

  const size_t streams = scenario.dataset.sequences.size();
  for (size_t i = 0; i < streams; ++i) {
    service.OpenSession(static_cast<int64_t>(i),
                        [](int64_t, const MSemantics&) {});
  }

  std::printf("streaming %zu visits with live analytics...\n", streams);
  std::thread producer([&] {
    for (size_t i = 0; i < streams; ++i) {
      for (const PositioningRecord& rec :
           scenario.dataset.sequences[i].sequence.records) {
        service.Submit(static_cast<int64_t>(i), rec);
      }
    }
  });
  // Poll the dashboard while the replay is still running — analytics
  // queries never block ingestion for long.  Wait until the workers are
  // genuinely mid-stream so the snapshot has something to show.
  for (int i = 0; i < 2000 && service.Stats().records_processed < 500; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  PrintDashboard(service, *scenario.world, "mid-replay snapshot");
  producer.join();
  for (size_t i = 0; i < streams; ++i) {
    service.CloseSession(static_cast<int64_t>(i));
  }
  service.Drain();
  PrintDashboard(service, *scenario.world, "final (all sessions closed)");
  PrintStageBreakdown(service);

  // A windowed headline query, straight off the live engine.
  const AnalyticsEngine& engine = *service.analytics();
  std::vector<RegionId> query_regions;
  for (const SemanticRegion& region : scenario.world->plan().regions()) {
    query_regions.push_back(region.id);
  }
  const AnalyticsSnapshot snap = service.AnalyticsStats();
  const TimeWindow window{0.0, snap.watermark_seconds};
  const auto popular = engine.TopKPopularRegions(query_regions, window, 3,
                                                 30.0);
  std::printf("\ntop-3 popular regions over the whole morning:");
  for (RegionId region : popular) {
    std::printf("  %s", scenario.world->plan().region(region).name.c_str());
  }
  std::printf("\n");
  {
    std::lock_guard<std::mutex> lock(ticker_mu);
    std::printf("standing query pushed %" PRIu64
                " ticker updates (p99 push latency %.3f ms); the final "
                "pushed answer matches the poll above by construction.\n",
                ticker_updates, snap.push_p99_ms);
  }
  return 0;
}
