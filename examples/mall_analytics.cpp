// Mall analytics: the paper's motivating application (Section I).
//
// A mall operator wants per-shop visit statistics from raw Wi-Fi
// positioning logs: how many people *stayed* in a shop (potential
// customers) vs merely *passed by* (foot traffic) — the conversion-rate
// question of the Food Market example — plus the most popular shops
// (TkPRQ) and the shop pairs most often visited together (TkFRPQ).
//
// Pipeline: simulate the venue and its logs, train C2MN on an annotated
// subset, annotate the rest, merge into m-semantics, aggregate.

#include <algorithm>
#include <cstdio>
#include <map>

#include "baselines/c2mn_method.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "sim/scenarios.h"

using namespace c2mn;

int main() {
  Logger::Global().set_level(LogLevel::kWarning);

  ScenarioOptions options;
  options.num_objects = EnvInt("C2MN_EXAMPLE_OBJECTS", 80);
  options.seed = 11;
  Scenario scenario = MakeMallScenario(options);
  const World& world = *scenario.world;
  std::printf("mall: %zu shops across %d floors; %zu visitor sequences\n\n",
              world.plan().regions().size(), world.plan().num_floors(),
              scenario.dataset.NumSequences());

  // Train on 70% "annotated" visits, analyze the rest.
  Rng rng(3);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);
  TrainOptions topts;
  topts.max_iter = EnvInt("C2MN_EXAMPLE_ITERS", 40);
  C2mnMethod c2mn(world, FullC2mn(), FeatureOptions{}, topts);
  c2mn.Train(split.train);
  std::printf("trained C2MN on %zu annotated sequences (%.1f s)\n\n",
              split.train.size(), c2mn.train_seconds());

  // Annotate the analysis corpus.
  AnnotatedCorpus corpus;
  for (const LabeledSequence* ls : split.test) {
    corpus.Add(ls->sequence.object_id,
               c2mn.AnnotateSemantics(ls->sequence));
  }

  // Per-shop stays vs passes ("conversion"): distinct objects per shop.
  struct ShopStats {
    int stays = 0;
    int passes = 0;
  };
  std::map<RegionId, ShopStats> stats;
  for (size_t s = 0; s < corpus.size(); ++s) {
    std::map<RegionId, std::pair<bool, bool>> seen;  // (stayed, passed).
    for (const MSemantics& ms : corpus.semantics[s]) {
      auto& flags = seen[ms.region];
      (ms.event == MobilityEvent::kStay ? flags.first : flags.second) = true;
    }
    for (const auto& [region, flags] : seen) {
      if (flags.first) ++stats[region].stays;
      if (flags.second) ++stats[region].passes;
    }
  }
  std::vector<std::pair<RegionId, ShopStats>> ranked(stats.begin(),
                                                     stats.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.stays + a.second.passes >
           b.second.stays + b.second.passes;
  });
  std::printf("top shops by foot traffic (stay = potential customer):\n");
  TablePrinter traffic({"shop", "visitors staying", "visitors passing",
                        "conversion"});
  for (size_t i = 0; i < ranked.size() && i < 8; ++i) {
    const auto& [region, st] = ranked[i];
    const double conversion =
        st.stays + st.passes > 0
            ? static_cast<double>(st.stays) / (st.stays + st.passes)
            : 0.0;
    traffic.AddRow({world.plan().region(region).name,
                    std::to_string(st.stays), std::to_string(st.passes),
                    TablePrinter::Fmt(conversion, 2)});
  }
  traffic.Print();

  // Top-k popular shops in a two-hour window.
  std::vector<RegionId> all_regions;
  for (const SemanticRegion& r : world.plan().regions()) {
    all_regions.push_back(r.id);
  }
  const TimeWindow window{0.0, 7200.0};
  std::printf("\nTkPRQ: top-5 popular shops in the first two hours:\n");
  for (RegionId r : TopKPopularRegions(corpus, all_regions, window, 5)) {
    std::printf("  %s\n", world.plan().region(r).name.c_str());
  }
  std::printf("\nTkFRPQ: top-5 shop pairs visited by the same person:\n");
  for (const auto& [a, b] :
       TopKFrequentRegionPairs(corpus, all_regions, window, 5)) {
    std::printf("  %s + %s\n", world.plan().region(a).name.c_str(),
                world.plan().region(b).name.c_str());
  }
  return 0;
}
