// Quickstart: generate a small mall scenario, train a C2MN, annotate a
// held-out p-sequence, and print the resulting m-semantics.
//
// This walks the whole public API end to end:
//   building generation -> World -> simulated labeled data -> training
//   (Algorithm 1) -> joint (region, event) decoding -> label-and-merge.
//
// Run time is a few seconds; scale up with C2MN_BENCH_SEQS etc.

#include <cstdio>

#include "common/env.h"
#include "common/logging.h"
#include "core/trainer.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "eval/harness.h"
#include "sim/scenarios.h"

using namespace c2mn;

int main() {
  Logger::Global().set_level(LogLevel::kWarning);

  // 1. A 7-floor mall-style venue with simulated Wi-Fi positioning data.
  ScenarioOptions options;
  options.num_objects = EnvInt("C2MN_QUICKSTART_OBJECTS", 60);
  options.seed = 7;
  Scenario scenario = MakeMallScenario(options);
  const World& world = *scenario.world;

  std::printf("venue: %d floors, %zu partitions, %zu doors, %zu regions\n",
              world.plan().num_floors(), world.plan().partitions().size(),
              world.plan().doors().size(), world.plan().regions().size());
  const DatasetStats stats = ComputeStats(scenario.dataset);
  std::printf("data: %zu sequences, %zu records (avg %.1f records/seq, "
              "%.0f s/seq)\n\n",
              stats.num_sequences, stats.num_records,
              stats.avg_records_per_sequence, stats.avg_duration_seconds);

  // 2. Split 70/30 and train the full C2MN.
  Rng rng(13);
  const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);
  FeatureOptions fopts;
  TrainOptions topts;
  topts.max_iter = EnvInt("C2MN_QUICKSTART_ITERS", 15);
  topts.mcmc_samples = 40;

  AlternateTrainer trainer(world, fopts, C2mnStructure{}, topts);
  const TrainResult result = trainer.Train(split.train);
  std::printf("trained C2MN: %d iterations in %.1f s (converged: %s)\n",
              result.iterations, result.train_seconds,
              result.converged ? "yes" : "no");
  std::printf("weights:");
  for (double w : result.weights) std::printf(" %.3f", w);
  std::printf("\n\n");

  // 3. Annotate one held-out sequence and print its m-semantics.
  const C2mnAnnotator annotator = trainer.MakeAnnotator(result);
  if (split.test.empty()) {
    std::printf("no test sequences generated; increase num_objects\n");
    return 1;
  }
  const LabeledSequence& example = *split.test.front();
  const MSemanticsSequence semantics =
      annotator.AnnotateSemantics(example.sequence);
  std::printf("object %lld: %zu records -> %zu m-semantics\n",
              static_cast<long long>(example.sequence.object_id),
              example.size(), semantics.size());
  for (const MSemantics& ms : semantics) {
    std::printf("  (%-14s [%7.0f s, %7.0f s] %s)  x%d records\n",
                world.plan().region(ms.region).name.c_str(), ms.t_start,
                ms.t_end, MobilityEventName(ms.event), ms.support);
  }

  // 4. Accuracy on the full test side.
  AccuracyAccumulator acc;
  for (const LabeledSequence* ls : split.test) {
    acc.Add(ls->labels, annotator.Annotate(ls->sequence));
  }
  const AccuracyReport report = acc.Report();
  std::printf("\ntest accuracy: RA=%.4f EA=%.4f CA=%.4f PA=%.4f "
              "(%zu records)\n",
              report.region_accuracy, report.event_accuracy,
              report.combined_accuracy, report.perfect_accuracy,
              report.num_records);
  return 0;
}
