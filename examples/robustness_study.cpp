// Robustness study: how annotation quality degrades with sparser and
// noisier positioning data (the Section V-C experiments in miniature).
//
// Generates the ten-floor synthetic building at several (T, mu) settings
// and compares the full C2MN against a speed-threshold baseline (SMoT),
// showing the paper's headline robustness claim: the learned joint model
// degrades slowly where threshold-based methods fall apart.

#include <cstdio>

#include "baselines/c2mn_method.h"
#include "baselines/smot.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "sim/scenarios.h"

using namespace c2mn;

int main() {
  Logger::Global().set_level(LogLevel::kWarning);

  TablePrinter table({"setting", "method", "RA", "EA", "PA"});
  const struct {
    double T, mu;
  } settings[] = {{5, 3}, {10, 5}, {15, 7}};

  for (const auto& s : settings) {
    ScenarioOptions options;
    options.num_objects = EnvInt("C2MN_EXAMPLE_OBJECTS", 25);
    options.horizon_seconds = 2 * 3600.0;
    options.seed = 21;
    Scenario scenario = MakeSyntheticScenario(options, s.T, s.mu);
    const World& world = *scenario.world;
    Rng rng(5);
    const TrainTestSplit split = SplitDataset(scenario.dataset, 0.7, &rng);

    FeatureOptions fopts;
    fopts.uncertainty_radius_v = 10.0;  // Paper's synthetic setting.
    fopts.dbscan = TuneForSamplingPeriod(0.5 * (1.0 + s.T));
    TrainOptions topts;
    topts.max_iter = EnvInt("C2MN_EXAMPLE_ITERS", 30);
    topts.sigma2 = 0.2;

    C2mnMethod c2mn(world, FullC2mn(), fopts, topts);
    SmotMethod smot(world);
    char setting[32];
    std::snprintf(setting, sizeof(setting), "T=%.0fs mu=%.0fm", s.T, s.mu);
    for (AnnotationMethod* method :
         std::initializer_list<AnnotationMethod*>{&c2mn, &smot}) {
      const MethodEvaluation eval = EvaluateMethod(method, split);
      table.AddRow({setting, eval.name,
                    TablePrinter::Fmt(eval.accuracy.region_accuracy),
                    TablePrinter::Fmt(eval.accuracy.event_accuracy),
                    TablePrinter::Fmt(eval.accuracy.perfect_accuracy)});
    }
  }
  table.Print();
  std::printf("\nExpected shape: C2MN's accuracies decay gently with T and "
              "mu;\nSMoT's event accuracy collapses as speed estimates "
              "become unreliable.\n");
  return 0;
}
