// streaming_service — minimal tour of the concurrent AnnotationService.
//
// Simulates a handful of mall visitors, opens one streaming session per
// visitor, submits their positioning records from two producer threads,
// and prints each visitor's m-semantics as the sinks deliver them.  The
// same records fed to a standalone OnlineAnnotator would produce exactly
// the same output; the service only adds concurrency.

#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/trainer.h"
#include "service/annotation_service.h"
#include "sim/scenarios.h"

using namespace c2mn;

int main() {
  Logger::Global().set_level(LogLevel::kWarning);

  ScenarioOptions sopts;
  sopts.num_objects = 8;
  sopts.seed = 21;
  std::printf("simulating %d visitors...\n", sopts.num_objects);
  const Scenario scenario = MakeMallScenario(sopts);

  TrainOptions topts;
  topts.max_iter = 10;
  topts.mcmc_samples = 15;
  std::vector<const LabeledSequence*> train;
  for (const LabeledSequence& ls : scenario.dataset.sequences) {
    train.push_back(&ls);
  }
  AlternateTrainer trainer(*scenario.world, FeatureOptions{}, C2mnStructure{},
                           topts);
  std::printf("training weights on the simulated visits...\n");
  const std::vector<double> weights = trainer.Train(train).weights;

  AnnotationService::Options options;
  options.num_shards = 2;
  AnnotationService service(*scenario.world, FeatureOptions{}, C2mnStructure{},
                            weights, options);

  // Sinks run on shard worker threads; serialize printing.
  std::mutex print_mu;
  const auto sink = [&](int64_t object_id, const MSemantics& ms) {
    std::lock_guard<std::mutex> lock(print_mu);
    std::printf("  visitor %" PRId64 ": %s region %d for %.0f s "
                "[t=%.0f..%.0f]\n",
                object_id, MobilityEventName(ms.event),
                static_cast<int>(ms.region), ms.DurationSeconds(), ms.t_start,
                ms.t_end);
  };

  const size_t streams = scenario.dataset.sequences.size();
  for (size_t i = 0; i < streams; ++i) {
    service.OpenSession(static_cast<int64_t>(i), sink);
  }

  std::printf("streaming %zu visits through %d shards...\n", streams,
              service.num_shards());
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = static_cast<size_t>(p); i < streams; i += 2) {
        for (const PositioningRecord& rec :
             scenario.dataset.sequences[i].sequence.records) {
          service.Submit(static_cast<int64_t>(i), rec);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (size_t i = 0; i < streams; ++i) {
    service.CloseSession(static_cast<int64_t>(i));
  }
  service.Drain();

  const ServiceStats stats = service.Stats();
  std::printf("\nprocessed %" PRIu64 " records into %" PRIu64
              " m-semantics (p50 submit-to-emit %.2f ms, p99 %.2f ms)\n",
              stats.records_processed, stats.semantics_emitted,
              stats.latency_p50_ms, stats.latency_p99_ms);
  return 0;
}
