#include "analytics/analytics_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"
#include "common/streaming_histogram.h"
#include "common/sync.h"
#include "query/sliding_window.h"

namespace c2mn {

namespace {

/// Packs a directed region edge into one map key.
uint64_t FlowKey(RegionId from, RegionId to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

/// The elements of `current` not in `previous` (answer order preserved).
template <typename Key>
std::vector<Key> SetDifference(const std::vector<Key>& current,
                               const std::vector<Key>& previous) {
  std::vector<Key> out;
  for (const Key& key : current) {
    if (std::find(previous.begin(), previous.end(), key) == previous.end()) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace

/// All per-shard state.  The worker feeding the shard and any thread
/// querying it synchronize on `mu`; there is no cross-shard locking, so
/// ingest on different shards never contends.
struct AnalyticsEngine::Shard {
  /// Cumulative gauges for one region.
  struct RegionAccum {
    RegionAccum(double dwell_min, double dwell_max, double growth)
        : dwell(dwell_min, dwell_max, growth) {}
    uint64_t visits = 0;
    uint64_t stays = 0;
    uint64_t passes = 0;
    double total_dwell_seconds = 0.0;
    StreamingHistogram dwell;
    int64_t occupancy = 0;
  };

  /// Where one object's stream currently stands.
  struct ObjectState {
    RegionId last_region = kInvalidId;
    bool occupying = false;
    RegionId occupied_region = kInvalidId;
  };

  /// One live retention bucket, with the bounds the pre-aggregation
  /// coverage check needs (a query window covers every visit here iff it
  /// reaches max_t_start on the right and min_t_end on the left).
  struct Bucket {
    std::vector<StayVisit> visits;
    double max_t_start = -std::numeric_limits<double>::infinity();
    double min_t_end = std::numeric_limits<double>::infinity();
  };

  explicit Shard(const query::CompiledSpec* preagg_spec)
      : preagg(preagg_spec) {}

  mutable Mutex mu{LockRank::kAnalyticsShard, "AnalyticsEngine::Shard::mu"};
  std::unordered_map<RegionId, RegionAccum> regions C2MN_GUARDED_BY(mu);
  std::unordered_map<uint64_t, uint64_t> flows C2MN_GUARDED_BY(mu);
  std::unordered_map<int64_t, ObjectState> objects C2MN_GUARDED_BY(mu);
  /// The coarse time-bucketed retention window: live buckets keyed by
  /// bucket index, ascending.  Only occupied buckets exist, so memory
  /// and query cost track the retained data, not the horizon width; at
  /// most ring_buckets_ buckets are ever live at once.
  std::map<int64_t, Bucket> buckets C2MN_GUARDED_BY(mu);
  /// Incrementally maintained counters over the retained visits for the
  /// engine's default query spec; updated on ingest and aging, folded
  /// across shards (in shard order) to answer matching polls without a
  /// scan.
  query::TopKSketch preagg C2MN_GUARDED_BY(mu);
  /// Highest bucket index written so far; INT64_MIN before any stay.
  int64_t max_bucket C2MN_GUARDED_BY(mu) = INT64_MIN;
  double watermark_seconds C2MN_GUARDED_BY(mu) = 0.0;
  /// Bumped on every Ingest; subscriptions seeded at sequence S ignore
  /// visit deltas tagged <= S (they already saw that state).
  uint64_t mutation_seq C2MN_GUARDED_BY(mu) = 0;
};

/// One standing continuous query: a global (cross-shard) sketch plus the
/// last pushed answer, all behind `mu` so deltas carry consistent
/// sequence numbers no matter which worker fires them.
struct AnalyticsEngine::Subscription {
  /// `window_options` non-null makes this a sliding-window subscription
  /// (the caller has already derived window_buckets from
  /// trailing_seconds and clamped it to the retention ring).
  Subscription(StandingQuery q, StandingQueryCallback cb,
               const query::SlidingWindowSketch::Options* window_options)
      : query(std::move(q)),
        spec(query.spec),
        sketch(&spec),
        callback(std::move(cb)) {
    if (window_options != nullptr) {
      window = std::make_unique<query::SlidingWindowSketch>(&spec,
                                                            *window_options);
    }
  }

  /// Written once (under subs_mu_ + mu) before the subscription is
  /// published; immutable afterwards, so readers need no lock.
  int id = -1;
  const StandingQuery query;
  const query::CompiledSpec spec;

  Mutex mu{LockRank::kAnalyticsSubscription,
           "AnalyticsEngine::Subscription::mu"};
  query::TopKSketch sketch C2MN_GUARDED_BY(mu);
  /// Non-null iff query.trailing_seconds > 0: the trailing-window
  /// counters the answer ranks over instead of `sketch` (which stays
  /// unused for sliding subscriptions).
  std::unique_ptr<query::SlidingWindowSketch> window C2MN_GUARDED_BY(mu);
  StandingQueryCallback callback C2MN_GUARDED_BY(mu);
  std::vector<RegionId> last_regions C2MN_GUARDED_BY(mu);
  std::vector<RegionPair> last_pairs C2MN_GUARDED_BY(mu);
  uint64_t sequence C2MN_GUARDED_BY(mu) = 0;
  /// Per shard: the mutation sequence the sketch was seeded through.
  std::vector<uint64_t> seeded_seq C2MN_GUARDED_BY(mu);

  /// Recomputes the answer; if it differs from the last pushed one,
  /// emits the delta.  Caller holds `mu`.
  bool EmitIfChanged() C2MN_REQUIRES(mu) {
    StandingQueryDelta delta;
    delta.subscription_id = id;
    if (query.kind == StandingQuery::Kind::kPopularRegions) {
      std::vector<RegionId> answer = window != nullptr
                                         ? window->TopKRegions(query.k)
                                         : sketch.TopKRegions(query.k);
      if (answer == last_regions && sequence > 0) return false;
      delta.regions_entered = SetDifference(answer, last_regions);
      delta.regions_exited = SetDifference(last_regions, answer);
      delta.regions = answer;
      last_regions = std::move(answer);
    } else {
      std::vector<RegionPair> answer = window != nullptr
                                           ? window->TopKPairs(query.k)
                                           : sketch.TopKPairs(query.k);
      if (answer == last_pairs && sequence > 0) return false;
      delta.pairs_entered = SetDifference(answer, last_pairs);
      delta.pairs_exited = SetDifference(last_pairs, answer);
      delta.pairs = answer;
      last_pairs = std::move(answer);
    }
    delta.sequence = ++sequence;
    if (callback) callback(delta);
    return true;
  }
};

AnalyticsEngine::Options AnalyticsEngine::Options::Validated() const {
  Options v = *this;
  v.num_shards = std::max(v.num_shards, 1);
  if (!(v.bucket_seconds > 0.0) || !std::isfinite(v.bucket_seconds)) {
    v.bucket_seconds = 60.0;
  }
  if (!std::isfinite(v.horizon_seconds)) v.horizon_seconds = 86400.0;
  v.horizon_seconds = std::max(v.horizon_seconds, v.bucket_seconds);
  if (!(v.min_visit_seconds >= 0.0)) v.min_visit_seconds = 0.0;
  if (!(v.dwell_min_seconds > 0.0)) v.dwell_min_seconds = 1.0;
  if (!(v.dwell_max_seconds > v.dwell_min_seconds)) {
    v.dwell_max_seconds = v.dwell_min_seconds * 1e5;
  }
  if (!(v.dwell_growth > 1.0)) v.dwell_growth = 1.3;
  return v;
}

AnalyticsEngine::AnalyticsEngine(Options options)
    : options_(options.Validated()) {
  ring_buckets_ = static_cast<int64_t>(
                      std::ceil(options_.horizon_seconds /
                                options_.bucket_seconds)) +
                  1;
  if (options_.metrics_registry != nullptr) {
    registry_ = options_.metrics_registry;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  semantics_ingested_total_ = registry_->GetCounter(
      "c2mn_analytics_semantics_ingested_total",
      "M-semantics folded into the analytics accumulators");
  late_dropped_total_ = registry_->GetCounter(
      "c2mn_analytics_late_dropped_total",
      "Stay visits dropped because their bucket had already aged out");
  invalid_dropped_total_ = registry_->GetCounter(
      "c2mn_analytics_invalid_dropped_total",
      "M-semantics dropped for non-finite or unbucketable time periods");
  buckets_evicted_total_ = registry_->GetCounter(
      "c2mn_analytics_buckets_evicted_total",
      "Retention ring buckets recycled (each forgets its visits)");
  deltas_pushed_total_ = registry_->GetCounter(
      "c2mn_analytics_deltas_pushed_total",
      "Standing-query deltas delivered to subscriber callbacks");
  preagg_region_queries_total_ = registry_->GetCounter(
      "c2mn_query_topk_total",
      "Top-k polls by serving path and query kind",
      {{"kind", "regions"}, {"path", "preagg"}});
  preagg_pair_queries_total_ = registry_->GetCounter(
      "c2mn_query_topk_total",
      "Top-k polls by serving path and query kind",
      {{"kind", "pairs"}, {"path", "preagg"}});
  scan_region_queries_total_ = registry_->GetCounter(
      "c2mn_query_topk_total",
      "Top-k polls by serving path and query kind",
      {{"kind", "regions"}, {"path", "scan"}});
  scan_pair_queries_total_ = registry_->GetCounter(
      "c2mn_query_topk_total",
      "Top-k polls by serving path and query kind",
      {{"kind", "pairs"}, {"path", "scan"}});
  window_rotations_total_ = registry_->GetCounter(
      "c2mn_analytics_window_rotations_total",
      "Watermark bucket rotations absorbed by sliding standing queries");
  window_expired_total_ = registry_->GetCounter(
      "c2mn_analytics_window_expired_total",
      "Visits retracted because a trailing window slid past them");
  standing_queries_gauge_ = registry_->GetGauge(
      "c2mn_analytics_standing_queries",
      "Standing continuous queries currently subscribed");
  sliding_queries_gauge_ = registry_->GetGauge(
      "c2mn_analytics_sliding_queries",
      "Standing queries with a trailing window currently subscribed");
  const obs::Histogram::Config fold_cfg{1e-8, 1e2, 2.0};
  preagg_fold_seconds_ = registry_->GetHistogram(
      "c2mn_query_fold_seconds", "Time to answer one top-k poll, by path",
      fold_cfg, {{"path", "preagg"}});
  scan_fold_seconds_ = registry_->GetHistogram(
      "c2mn_query_fold_seconds", "Time to answer one top-k poll, by path",
      fold_cfg, {{"path", "scan"}});
  standing_push_seconds_ = registry_->GetHistogram(
      "c2mn_analytics_standing_push_seconds",
      "Ingest-side time applying visit deltas to standing queries",
      obs::Histogram::Config{1e-8, 1e2, 2.0});
  query::VisitSpec preagg_spec;
  preagg_spec.all_regions = true;
  preagg_spec.window = TimeWindow::All();
  preagg_spec.min_visit_seconds = options_.min_visit_seconds;
  preagg_spec_ = std::make_unique<query::CompiledSpec>(std::move(preagg_spec));
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(preagg_spec_.get()));
  }
}

AnalyticsEngine::~AnalyticsEngine() = default;

int AnalyticsEngine::ShardOf(int64_t object_id) const {
  // Matches AnnotationService::ShardOf so a session and its analytics
  // always live on the same shard.
  const size_t h = std::hash<int64_t>{}(object_id);
  return static_cast<int>(h % shards_.size());
}

int AnalyticsEngine::Ingest(int64_t object_id, const MSemantics& ms) {
  return Ingest(ShardOf(object_id), object_id, ms);
}

void AnalyticsEngine::NoteSessionClosed(int64_t object_id) {
  NoteSessionClosed(ShardOf(object_id), object_id);
}

int AnalyticsEngine::Ingest(int shard, int64_t object_id,
                            const MSemantics& ms, uint64_t* applied_seq) {
  const int shard_index = static_cast<int>(
      static_cast<size_t>(shard) % shards_.size());
  Shard& s = *shards_[static_cast<size_t>(shard_index)];
  // Visit deltas collected under the shard lock, then forwarded to the
  // standing queries after it drops (never hold a shard mutex while
  // acquiring subs_mu_ — see the lock-order comment in the header).
  StayVisit added{};
  bool has_added = false;
  std::vector<StayVisit> evicted;
  uint64_t mutation_seq = 0;
  bool notify = false;
  {
    MutexLock lock(&s.mu);
    // Read under the shard lock: a Subscribe bumps the count before
    // seeding from this shard (under this same mutex), so any mutation
    // its seed missed sees a non-zero count here.  Zero means the
    // delta bookkeeping below is dead weight — skip it.
    notify = standing_count_.load(std::memory_order_relaxed) > 0;
    mutation_seq = ++s.mutation_seq;
    // Report the sequence before any early return below: dropped or
    // non-retained m-semantics still consumed a sequence number, and the
    // write-ahead log must record it for replay to line up.
    if (applied_seq != nullptr) *applied_seq = mutation_seq;
    semantics_ingested_total_->Increment();
    // Reject time periods that are non-finite or too extreme to bucket:
    // casting an out-of-range double to int64_t below would be undefined
    // behavior (the StreamingHistogram NaN-cast class of bug).
    const double bucket_d = std::floor(ms.t_end / options_.bucket_seconds);
    if (!std::isfinite(ms.t_start) || !std::isfinite(ms.t_end) ||
        !(bucket_d >= -9.0e18 && bucket_d <= 9.0e18)) {
      invalid_dropped_total_->Increment();
      return 0;
    }
    const int64_t bucket = static_cast<int64_t>(bucket_d);

    // --- cumulative region gauges -----------------------------------
    auto region_it = s.regions.find(ms.region);
    if (region_it == s.regions.end()) {
      region_it = s.regions
                      .emplace(ms.region,
                               Shard::RegionAccum(options_.dwell_min_seconds,
                                                  options_.dwell_max_seconds,
                                                  options_.dwell_growth))
                      .first;
    }
    Shard::RegionAccum& acc = region_it->second;
    const double duration = ms.DurationSeconds();
    if (ms.event == MobilityEvent::kStay) {
      ++acc.stays;
      acc.total_dwell_seconds += duration;
      acc.dwell.Add(duration);
      if (duration >= options_.min_visit_seconds) ++acc.visits;
    } else {
      ++acc.passes;
    }

    // --- flow matrix + occupancy gauge ------------------------------
    Shard::ObjectState& obj = s.objects[object_id];
    if (obj.last_region != kInvalidId && obj.last_region != ms.region) {
      ++s.flows[FlowKey(obj.last_region, ms.region)];
    }
    obj.last_region = ms.region;
    if (obj.occupying) {
      --s.regions.at(obj.occupied_region).occupancy;
      obj.occupying = false;
    }
    if (ms.event == MobilityEvent::kStay) {
      ++acc.occupancy;
      obj.occupying = true;
      obj.occupied_region = ms.region;
    }

    // --- retention window (stay visits only: the windowed queries
    // never look at passes) -------------------------------------------
    if (ms.event != MobilityEvent::kStay) return 0;
    if (s.max_bucket != INT64_MIN && bucket <= s.max_bucket - ring_buckets_) {
      late_dropped_total_->Increment();  // Already aged out of the horizon.
      return 0;
    }
    if (bucket > s.max_bucket) {
      // Advance the watermark, evicting every bucket the horizon left
      // behind.  Evicted visits leave the pre-aggregation sketch too —
      // a stale counter here would make the sketch-served answers drift
      // from what a scan of the retained visits returns.
      s.max_bucket = bucket;
      const int64_t min_keep = bucket - ring_buckets_ + 1;
      while (!s.buckets.empty() && s.buckets.begin()->first < min_keep) {
        buckets_evicted_total_->Increment();
        for (const StayVisit& visit : s.buckets.begin()->second.visits) {
          s.preagg.RemoveVisit(visit.object_id, visit.region, visit.t_start,
                               visit.t_end);
          if (notify) evicted.push_back(visit);
        }
        s.buckets.erase(s.buckets.begin());
      }
    }
    s.watermark_seconds = std::max(s.watermark_seconds, ms.t_end);
    Shard::Bucket& slot = s.buckets[bucket];
    slot.visits.push_back(
        StayVisit{object_id, ms.region, ms.t_start, ms.t_end});
    slot.max_t_start = std::max(slot.max_t_start, ms.t_start);
    slot.min_t_end = std::min(slot.min_t_end, ms.t_end);
    s.preagg.AddVisit(object_id, ms.region, ms.t_start, ms.t_end);
    if (notify) {
      added = StayVisit{object_id, ms.region, ms.t_start, ms.t_end};
      has_added = true;
    }
  }
  if (!has_added && evicted.empty()) return 0;
  const Stopwatch push_watch;
  const int fired = NotifySubscriptions(shard_index, mutation_seq,
                                        has_added ? &added : nullptr, evicted);
  standing_push_seconds_->Observe(push_watch.ElapsedSeconds());
  return fired;
}

void AnalyticsEngine::NoteSessionClosed(int shard, int64_t object_id,
                                        uint64_t* applied_seq) {
  Shard& s = *shards_[static_cast<size_t>(shard) % shards_.size()];
  MutexLock lock(&s.mu);
  // A close mutates shard state (occupancy, the object table), so it
  // takes a sequence number like any ingest: the write-ahead log can
  // then replay closes in exactly their original position.
  const uint64_t seq = ++s.mutation_seq;
  if (applied_seq != nullptr) *applied_seq = seq;
  const auto it = s.objects.find(object_id);
  if (it == s.objects.end()) return;
  if (it->second.occupying) {
    --s.regions.at(it->second.occupied_region).occupancy;
  }
  // Retained visits (and so the sketches and standing answers) survive
  // the close on purpose: a departed visitor still counts toward what
  // was popular, exactly like the batch corpus.  Only the live
  // per-object state goes.
  s.objects.erase(it);
}

int AnalyticsEngine::NotifySubscriptions(int shard_index,
                                         uint64_t mutation_seq,
                                         const StayVisit* added,
                                         const std::vector<StayVisit>& evicted) {
  int fired = 0;
  uint64_t rotations = 0;
  uint64_t expired = 0;
  ReaderMutexLock lock(&subs_mu_);
  for (const auto& sub : subs_) {
    MutexLock sub_lock(&sub->mu);
    // Seeded at or past this mutation: the seed already saw its effect.
    if (mutation_seq <= sub->seeded_seq[static_cast<size_t>(shard_index)]) {
      continue;
    }
    bool changed = false;
    if (sub->window != nullptr) {
      // Every retained stay rotates the window (watermark advance can
      // change the answer even when the visit itself matches nothing);
      // retention evictions are retracted no-op-safely — with the
      // window clamped to the retention ring they have already expired
      // out of it.
      const uint64_t rotations_before = sub->window->rotations();
      const uint64_t expired_before = sub->window->expired_visits();
      if (added != nullptr) {
        changed |= sub->window->AddVisit(added->object_id, added->region,
                                         added->t_start, added->t_end);
      }
      for (const StayVisit& visit : evicted) {
        changed |= sub->window->RemoveVisit(visit.object_id, visit.region,
                                            visit.t_start, visit.t_end);
      }
      rotations += sub->window->rotations() - rotations_before;
      expired += sub->window->expired_visits() - expired_before;
    } else {
      if (added != nullptr) {
        changed |= sub->sketch.AddVisit(added->object_id, added->region,
                                        added->t_start, added->t_end);
      }
      for (const StayVisit& visit : evicted) {
        changed |= sub->sketch.RemoveVisit(visit.object_id, visit.region,
                                           visit.t_start, visit.t_end);
      }
    }
    if (changed && sub->EmitIfChanged()) ++fired;
  }
  if (rotations > 0) window_rotations_total_->Increment(rotations);
  if (expired > 0) window_expired_total_->Increment(expired);
  if (fired > 0) {
    deltas_pushed_total_->Increment(static_cast<uint64_t>(fired));
  }
  return fired;
}

int AnalyticsEngine::Subscribe(StandingQuery query,
                               StandingQueryCallback callback) {
  // A usable trailing window is finite and positive; anything else
  // (including the default 0) means the legacy whole-horizon behavior.
  // The width is quantized to retention buckets and clamped to the
  // ring: a window wider than retention cannot see more than retention
  // holds anyway.
  query::SlidingWindowSketch::Options window_options;
  bool sliding = false;
  if (std::isfinite(query.trailing_seconds) && query.trailing_seconds > 0.0) {
    sliding = true;
    window_options.bucket_seconds = options_.bucket_seconds;
    const double buckets_d =
        std::ceil(query.trailing_seconds / options_.bucket_seconds);
    window_options.window_buckets =
        buckets_d >= static_cast<double>(ring_buckets_)
            ? ring_buckets_
            : std::max<int64_t>(static_cast<int64_t>(buckets_d), 1);
  }
  auto sub = std::make_shared<Subscription>(
      std::move(query), std::move(callback),
      sliding ? &window_options : nullptr);
  // Lock order everywhere: subs_mu_ -> sub->mu -> a shard mutex.  The
  // subscription's own mutex stays held across seeding + publication +
  // the initial emit, so any worker that sees the subscription right
  // after publication waits for sequence 1 to go out first; subs_mu_ is
  // dropped before the initial emit so the callback may hit any engine
  // API except Subscribe / Unsubscribe.
  {
    WriterMutexLock lock(&subs_mu_);
    sub->mu.Lock();
    // Raise the count before seeding: an ingest the seed misses is
    // ordered after the seed by the shard mutex, so it observes a
    // non-zero count and collects its delta for us.
    standing_count_.fetch_add(1, std::memory_order_relaxed);
    standing_queries_gauge_->Set(
        static_cast<double>(standing_count_.load(std::memory_order_relaxed)));
    if (sliding) {
      sliding_count_.fetch_add(1, std::memory_order_relaxed);
      sliding_queries_gauge_->Set(
          static_cast<double>(sliding_count_.load(std::memory_order_relaxed)));
    }
    sub->id = next_subscription_id_++;
    sub->seeded_seq.assign(shards_.size(), 0);
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = *shards_[i];
      MutexLock shard_lock(&s.mu);
      for (const auto& [index, bucket] : s.buckets) {
        (void)index;
        for (const StayVisit& visit : bucket.visits) {
          // The sliding seed converges regardless of the cross-shard
          // interleaving: window membership depends only on the final
          // watermark, and visits a low-watermark shard admitted expire
          // as soon as a later shard advances it.
          if (sub->window != nullptr) {
            sub->window->AddVisit(visit.object_id, visit.region,
                                  visit.t_start, visit.t_end);
          } else {
            sub->sketch.AddVisit(visit.object_id, visit.region, visit.t_start,
                                 visit.t_end);
          }
        }
      }
      sub->seeded_seq[i] = s.mutation_seq;
    }
    subs_.push_back(sub);
  }
  // Initial snapshot (sequence 1), on the subscriber's thread.
  if (sub->EmitIfChanged()) {
    deltas_pushed_total_->Increment();
  }
  sub->mu.Unlock();
  return sub->id;
}

bool AnalyticsEngine::Unsubscribe(int subscription_id) {
  WriterMutexLock lock(&subs_mu_);
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if ((*it)->id == subscription_id) {
      const bool sliding = std::isfinite((*it)->query.trailing_seconds) &&
                           (*it)->query.trailing_seconds > 0.0;
      subs_.erase(it);
      standing_count_.fetch_sub(1, std::memory_order_relaxed);
      standing_queries_gauge_->Set(
          static_cast<double>(standing_count_.load(std::memory_order_relaxed)));
      if (sliding) {
        sliding_count_.fetch_sub(1, std::memory_order_relaxed);
        sliding_queries_gauge_->Set(static_cast<double>(
            sliding_count_.load(std::memory_order_relaxed)));
      }
      return true;
    }
  }
  return false;
}

template <typename Fn>
void AnalyticsEngine::ForEachRetainedVisit(const TimeWindow& window,
                                           Fn&& fn) const {
  // Buckets are keyed by floor(t_end / bucket_seconds), so every visit
  // with t_end >= window.t_start lives at or after the window-start
  // bucket: older buckets cannot intersect the window and are skipped.
  int64_t min_bucket = INT64_MIN;
  const double bucket_d = std::floor(window.t_start / options_.bucket_seconds);
  if (bucket_d >= -9.0e18 && bucket_d <= 9.0e18) {
    min_bucket = static_cast<int64_t>(bucket_d);
  } else if (bucket_d > 9.0e18) {
    min_bucket = INT64_MAX;  // The window starts after any bucketable time.
  }
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (auto it = shard->buckets.lower_bound(min_bucket);
         it != shard->buckets.end(); ++it) {
      for (const StayVisit& visit : it->second.visits) fn(visit);
    }
  }
}

template <typename Key>
bool AnalyticsEngine::CollectPreAggSorted(
    const TimeWindow& window,
    std::vector<std::shared_ptr<const query::SortedCounts<Key>>>* views)
    const {
  // The sketches count every retained visit (their window is unbounded),
  // so their counters answer exactly when the query window covers all of
  // them: it must reach past the latest visit start and before the
  // earliest visit end.  Each shard's sorted view and the bounds that
  // validate it are read under one lock acquisition, so a racing ingest
  // can only fail the coverage check (routing the query to the scan),
  // never slip an out-of-window visit into an accepted merge.  Bounds
  // come from the per-bucket aggregates: O(live buckets), not
  // O(visits); the sorted views are cached inside the sketches, so an
  // unchanged shard costs a shared_ptr copy here.
  double max_t_start = -std::numeric_limits<double>::infinity();
  double min_t_end = std::numeric_limits<double>::infinity();
  views->reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [index, bucket] : shard->buckets) {
      (void)index;
      max_t_start = std::max(max_t_start, bucket.max_t_start);
      min_t_end = std::min(min_t_end, bucket.min_t_end);
    }
    // Coverage only shrinks as bounds widen, so a failure here is
    // final: skip building the remaining views.
    if (!(window.t_start <= min_t_end && window.t_end >= max_t_start)) {
      return false;
    }
    if constexpr (std::is_same_v<Key, RegionId>) {
      views->push_back(shard->preagg.SortedRegions());
    } else {
      views->push_back(shard->preagg.SortedPairs());
    }
  }
  return true;
}

std::vector<RegionId> AnalyticsEngine::TopKPopularRegions(
    const std::vector<RegionId>& query_regions, const TimeWindow& window,
    size_t k, double min_visit_seconds) const {
  const Stopwatch fold_watch;
  if (min_visit_seconds == options_.min_visit_seconds) {
    std::vector<std::shared_ptr<const query::SortedCounts<RegionId>>> views;
    if (CollectPreAggSorted(window, &views)) {
      preagg_region_queries_total_->Increment();
      const std::unordered_set<RegionId> query_set(query_regions.begin(),
                                                   query_regions.end());
      auto answer = query::ThresholdMergeTopK(
          views, k,
          [&query_set](const RegionId& region) {
            return query_set.count(region) > 0;
          });
      preagg_fold_seconds_->Observe(fold_watch.ElapsedSeconds());
      return answer;
    }
  }
  scan_region_queries_total_->Increment();
  // Scan fallback: the same shared predicate and accumulation, applied
  // to each retained visit the window can reach.
  const query::CompiledSpec spec(
      query::VisitSpec{query_regions, false, window, min_visit_seconds});
  query::TopKSketch sketch(&spec);
  ForEachRetainedVisit(window, [&](const StayVisit& visit) {
    sketch.AddVisit(visit.object_id, visit.region, visit.t_start,
                    visit.t_end);
  });
  auto answer = sketch.TopKRegions(k);
  scan_fold_seconds_->Observe(fold_watch.ElapsedSeconds());
  return answer;
}

std::vector<std::pair<RegionId, RegionId>>
AnalyticsEngine::TopKFrequentRegionPairs(
    const std::vector<RegionId>& query_regions, const TimeWindow& window,
    size_t k, double min_visit_seconds) const {
  const Stopwatch fold_watch;
  if (min_visit_seconds == options_.min_visit_seconds) {
    std::vector<std::shared_ptr<const query::SortedCounts<RegionPair>>> views;
    if (CollectPreAggSorted(window, &views)) {
      preagg_pair_queries_total_->Increment();
      // A pair qualifies iff both endpoints are queried; its co-visit
      // count never depends on other regions, so endpoint filtering is
      // exact.
      const std::unordered_set<RegionId> query_set(query_regions.begin(),
                                                   query_regions.end());
      auto answer = query::ThresholdMergeTopK(
          views, k,
          [&query_set](const RegionPair& pair) {
            return query_set.count(pair.first) > 0 &&
                   query_set.count(pair.second) > 0;
          });
      preagg_fold_seconds_->Observe(fold_watch.ElapsedSeconds());
      return answer;
    }
  }
  scan_pair_queries_total_->Increment();
  const query::CompiledSpec spec(
      query::VisitSpec{query_regions, false, window, min_visit_seconds});
  query::TopKSketch sketch(&spec);
  ForEachRetainedVisit(window, [&](const StayVisit& visit) {
    sketch.AddVisit(visit.object_id, visit.region, visit.t_start,
                    visit.t_end);
  });
  auto answer = sketch.TopKPairs(k);
  scan_fold_seconds_->Observe(fold_watch.ElapsedSeconds());
  return answer;
}

AnalyticsSnapshot AnalyticsEngine::Snapshot() const {
  AnalyticsSnapshot snapshot;
  // Deterministic shard order; region / flow maps are re-sorted below,
  // so the merged result is independent of hash-map iteration order too.
  struct MergedRegion {
    uint64_t visits = 0;
    uint64_t stays = 0;
    uint64_t passes = 0;
    double total_dwell_seconds = 0.0;
    int64_t occupancy = 0;
    StreamingHistogram dwell;
    MergedRegion(double lo, double hi, double growth) : dwell(lo, hi, growth) {}
  };
  std::map<RegionId, MergedRegion> regions;
  std::map<uint64_t, uint64_t> flows;
  // Counts are thin views over the registry counters (cached handles, no
  // registry lock): safe from a standing-query delta callback.
  snapshot.semantics_ingested = semantics_ingested_total_->Value();
  snapshot.late_dropped = late_dropped_total_->Value();
  snapshot.invalid_dropped = invalid_dropped_total_->Value();
  snapshot.buckets_evicted = buckets_evicted_total_->Value();
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    snapshot.objects_tracked += shard->objects.size();
    snapshot.watermark_seconds =
        std::max(snapshot.watermark_seconds, shard->watermark_seconds);
    for (const auto& [index, bucket] : shard->buckets) {
      (void)index;
      snapshot.retained_visits += bucket.visits.size();
    }
    for (const auto& [region, acc] : shard->regions) {
      auto it = regions.find(region);
      if (it == regions.end()) {
        it = regions
                 .emplace(region,
                          MergedRegion(options_.dwell_min_seconds,
                                       options_.dwell_max_seconds,
                                       options_.dwell_growth))
                 .first;
      }
      MergedRegion& merged = it->second;
      merged.visits += acc.visits;
      merged.stays += acc.stays;
      merged.passes += acc.passes;
      merged.total_dwell_seconds += acc.total_dwell_seconds;
      merged.occupancy += acc.occupancy;
      merged.dwell.Merge(acc.dwell);
    }
    for (const auto& [key, count] : shard->flows) flows[key] += count;
  }
  snapshot.preagg_region_queries = preagg_region_queries_total_->Value();
  snapshot.preagg_pair_queries = preagg_pair_queries_total_->Value();
  snapshot.scan_region_queries = scan_region_queries_total_->Value();
  snapshot.scan_pair_queries = scan_pair_queries_total_->Value();
  snapshot.preagg_queries =
      snapshot.preagg_region_queries + snapshot.preagg_pair_queries;
  snapshot.scan_queries =
      snapshot.scan_region_queries + snapshot.scan_pair_queries;
  snapshot.window_rotations = window_rotations_total_->Value();
  snapshot.window_expired_visits = window_expired_total_->Value();
  // The atomic mirrors, not subs_mu_: a standing-query delta callback
  // may call Snapshot() without self-deadlocking on the notify walk's
  // lock.
  snapshot.standing_queries = standing_count_.load(std::memory_order_relaxed);
  snapshot.sliding_queries = sliding_count_.load(std::memory_order_relaxed);
  snapshot.deltas_pushed = deltas_pushed_total_->Value();
  snapshot.regions.reserve(regions.size());
  for (const auto& [region, merged] : regions) {
    RegionAnalytics out;
    out.region = region;
    out.visits = merged.visits;
    out.stays = merged.stays;
    out.passes = merged.passes;
    out.total_dwell_seconds = merged.total_dwell_seconds;
    out.dwell_p50_seconds = merged.dwell.Quantile(0.5);
    out.dwell_p99_seconds = merged.dwell.Quantile(0.99);
    out.dwell_mean_seconds = merged.dwell.Mean();
    out.dwell_max_seconds = merged.dwell.max();
    out.occupancy = merged.occupancy;
    snapshot.regions.push_back(out);
  }
  snapshot.flows.reserve(flows.size());
  for (const auto& [key, count] : flows) {
    RegionFlow flow;
    flow.from = static_cast<RegionId>(static_cast<int32_t>(key >> 32));
    flow.to = static_cast<RegionId>(static_cast<int32_t>(key & 0xffffffffu));
    flow.count = count;
    snapshot.flows.push_back(flow);
  }
  std::sort(snapshot.flows.begin(), snapshot.flows.end(),
            [](const RegionFlow& a, const RegionFlow& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  return snapshot;
}

AnalyticsEngineState AnalyticsEngine::SaveState() const {
  AnalyticsEngineState state;
  state.num_shards = num_shards();
  state.bucket_seconds = options_.bucket_seconds;
  state.horizon_seconds = options_.horizon_seconds;
  state.min_visit_seconds = options_.min_visit_seconds;
  state.dwell_min_seconds = options_.dwell_min_seconds;
  state.dwell_max_seconds = options_.dwell_max_seconds;
  state.dwell_growth = options_.dwell_growth;
  state.semantics_ingested = semantics_ingested_total_->Value();
  state.late_dropped = late_dropped_total_->Value();
  state.invalid_dropped = invalid_dropped_total_->Value();
  state.buckets_evicted = buckets_evicted_total_->Value();
  state.shards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    AnalyticsShardState& out = state.shards[i];
    MutexLock lock(&s.mu);
    out.mutation_seq = s.mutation_seq;
    out.watermark_seconds = s.watermark_seconds;
    out.max_bucket = s.max_bucket;
    out.regions.reserve(s.regions.size());
    for (const auto& [region, acc] : s.regions) {
      AnalyticsShardState::Region r;
      r.region = region;
      r.visits = acc.visits;
      r.stays = acc.stays;
      r.passes = acc.passes;
      r.total_dwell_seconds = acc.total_dwell_seconds;
      r.occupancy = acc.occupancy;
      r.dwell = acc.dwell.SaveState();
      out.regions.push_back(std::move(r));
    }
    std::sort(out.regions.begin(), out.regions.end(),
              [](const AnalyticsShardState::Region& a,
                 const AnalyticsShardState::Region& b) {
                return a.region < b.region;
              });
    out.flows.reserve(s.flows.size());
    for (const auto& [key, count] : s.flows) {
      AnalyticsShardState::Flow flow;
      flow.from = static_cast<RegionId>(static_cast<int32_t>(key >> 32));
      flow.to = static_cast<RegionId>(static_cast<int32_t>(key & 0xffffffffu));
      flow.count = count;
      out.flows.push_back(flow);
    }
    std::sort(out.flows.begin(), out.flows.end(),
              [](const AnalyticsShardState::Flow& a,
                 const AnalyticsShardState::Flow& b) {
                if (a.from != b.from) return a.from < b.from;
                return a.to < b.to;
              });
    out.objects.reserve(s.objects.size());
    for (const auto& [object_id, obj] : s.objects) {
      out.objects.push_back(AnalyticsShardState::Object{
          object_id, obj.last_region, obj.occupying, obj.occupied_region});
    }
    std::sort(out.objects.begin(), out.objects.end(),
              [](const AnalyticsShardState::Object& a,
                 const AnalyticsShardState::Object& b) {
                return a.object_id < b.object_id;
              });
    for (const auto& [index, bucket] : s.buckets) {
      (void)index;
      for (const StayVisit& visit : bucket.visits) {
        out.visits.push_back(AnalyticsShardState::Visit{
            visit.object_id, visit.region, visit.t_start, visit.t_end});
      }
    }
    out.preagg = s.preagg.SaveState();
  }
  return state;
}

Status AnalyticsEngine::RestoreState(const AnalyticsEngineState& state) {
  if (state.num_shards != num_shards() ||
      state.shards.size() != shards_.size()) {
    return Status::InvalidArgument(
        "analytics restore: shard count does not match engine options");
  }
  if (state.bucket_seconds != options_.bucket_seconds ||
      state.horizon_seconds != options_.horizon_seconds ||
      state.min_visit_seconds != options_.min_visit_seconds ||
      state.dwell_min_seconds != options_.dwell_min_seconds ||
      state.dwell_max_seconds != options_.dwell_max_seconds ||
      state.dwell_growth != options_.dwell_growth) {
    return Status::InvalidArgument(
        "analytics restore: state was saved under different accumulator "
        "options; refusing to reinterpret it");
  }
  if (standing_count_.load(std::memory_order_relaxed) > 0) {
    return Status::FailedPrecondition(
        "analytics restore: standing queries already subscribed");
  }
  // Counters restore by increment, so the engine must not have counted
  // anything yet (a fresh engine, or a fresh registry after restart).
  if (semantics_ingested_total_->Value() > state.semantics_ingested ||
      late_dropped_total_->Value() > state.late_dropped ||
      invalid_dropped_total_->Value() > state.invalid_dropped ||
      buckets_evicted_total_->Value() > state.buckets_evicted) {
    return Status::FailedPrecondition(
        "analytics restore: engine counters already ahead of the state");
  }
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    if (shard->mutation_seq != 0 || !shard->regions.empty() ||
        !shard->objects.empty() || !shard->buckets.empty()) {
      return Status::FailedPrecondition(
          "analytics restore: engine has already ingested");
    }
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    const AnalyticsShardState& in = state.shards[i];
    MutexLock lock(&s.mu);
    s.mutation_seq = in.mutation_seq;
    s.watermark_seconds = in.watermark_seconds;
    s.max_bucket = in.max_bucket;
    for (const auto& r : in.regions) {
      if (r.dwell.min_value != options_.dwell_min_seconds ||
          r.dwell.max_value != options_.dwell_max_seconds ||
          r.dwell.growth != options_.dwell_growth) {
        return Status::InvalidArgument(
            "analytics restore: dwell histogram config does not match "
            "engine options");
      }
      Result<StreamingHistogram> dwell = StreamingHistogram::FromState(r.dwell);
      C2MN_RETURN_NOT_OK(dwell.status());
      auto [it, inserted] = s.regions.emplace(
          r.region, Shard::RegionAccum(options_.dwell_min_seconds,
                                       options_.dwell_max_seconds,
                                       options_.dwell_growth));
      if (!inserted) {
        return Status::InvalidArgument(
            "analytics restore: duplicate region in shard state");
      }
      Shard::RegionAccum& acc = it->second;
      acc.visits = r.visits;
      acc.stays = r.stays;
      acc.passes = r.passes;
      acc.total_dwell_seconds = r.total_dwell_seconds;
      acc.occupancy = r.occupancy;
      acc.dwell = *dwell;
    }
    for (const auto& flow : in.flows) {
      const uint64_t key = FlowKey(flow.from, flow.to);
      if (s.flows.count(key) > 0) {
        return Status::InvalidArgument(
            "analytics restore: duplicate flow edge in shard state");
      }
      s.flows[key] = flow.count;
    }
    for (const auto& obj : in.objects) {
      if (s.objects.count(obj.object_id) > 0) {
        return Status::InvalidArgument(
            "analytics restore: duplicate object in shard state");
      }
      s.objects[obj.object_id] =
          Shard::ObjectState{obj.last_region, obj.occupying,
                             obj.occupied_region};
    }
    // Occupancy is derivable from the object table; a disagreement means
    // the two sections of the snapshot do not describe the same moment.
    std::unordered_map<RegionId, int64_t> occupancy;
    for (const auto& [object_id, obj] : s.objects) {
      (void)object_id;
      if (obj.occupying) ++occupancy[obj.occupied_region];
    }
    for (const auto& [region, acc] : s.regions) {
      const auto it = occupancy.find(region);
      const int64_t derived = it != occupancy.end() ? it->second : 0;
      if (acc.occupancy != derived) {
        return Status::Internal(
            "analytics restore: region occupancy disagrees with the "
            "object table");
      }
    }
    // Re-bucket the retained visits from their timestamps (the bucket
    // index is derived state) and rebuild the pre-aggregation sketch by
    // refolding them — then cross-check against the sketch counters the
    // snapshot carried.  Any drift means a corrupt or inconsistent
    // snapshot and the restore is refused.
    for (const auto& visit : in.visits) {
      const double bucket_d = std::floor(visit.t_end / options_.bucket_seconds);
      if (!std::isfinite(visit.t_start) || !std::isfinite(visit.t_end) ||
          !(bucket_d >= -9.0e18 && bucket_d <= 9.0e18)) {
        return Status::InvalidArgument(
            "analytics restore: retained visit with unbucketable time");
      }
      const int64_t bucket = static_cast<int64_t>(bucket_d);
      if (s.max_bucket == INT64_MIN || bucket > s.max_bucket ||
          bucket <= s.max_bucket - ring_buckets_) {
        return Status::Internal(
            "analytics restore: retained visit outside the shard's "
            "retention window");
      }
      Shard::Bucket& slot = s.buckets[bucket];
      slot.visits.push_back(StayVisit{visit.object_id, visit.region,
                                      visit.t_start, visit.t_end});
      slot.max_t_start = std::max(slot.max_t_start, visit.t_start);
      slot.min_t_end = std::min(slot.min_t_end, visit.t_end);
      s.preagg.AddVisit(visit.object_id, visit.region, visit.t_start,
                        visit.t_end);
    }
    if (s.preagg.SaveState() != in.preagg) {
      return Status::Internal(
          "analytics restore: pre-aggregation rebuilt from the retained "
          "visits disagrees with the saved sketch");
    }
  }
  semantics_ingested_total_->Increment(state.semantics_ingested -
                                       semantics_ingested_total_->Value());
  late_dropped_total_->Increment(state.late_dropped -
                                 late_dropped_total_->Value());
  invalid_dropped_total_->Increment(state.invalid_dropped -
                                    invalid_dropped_total_->Value());
  buckets_evicted_total_->Increment(state.buckets_evicted -
                                    buckets_evicted_total_->Value());
  return Status::OK();
}

}  // namespace c2mn
