#include "analytics/analytics_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/streaming_histogram.h"

namespace c2mn {

namespace {

/// Packs a directed region edge into one map key.
uint64_t FlowKey(RegionId from, RegionId to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

}  // namespace

/// All per-shard state.  The worker feeding the shard and any thread
/// querying it synchronize on `mu`; there is no cross-shard locking, so
/// ingest on different shards never contends.
struct AnalyticsEngine::Shard {
  /// Cumulative gauges for one region.
  struct RegionAccum {
    RegionAccum(double dwell_min, double dwell_max, double growth)
        : dwell(dwell_min, dwell_max, growth) {}
    uint64_t visits = 0;
    uint64_t stays = 0;
    uint64_t passes = 0;
    double total_dwell_seconds = 0.0;
    StreamingHistogram dwell;
    int64_t occupancy = 0;
  };

  /// Where one object's stream currently stands.
  struct ObjectState {
    RegionId last_region = kInvalidId;
    bool occupying = false;
    RegionId occupied_region = kInvalidId;
  };

  mutable std::mutex mu;
  std::unordered_map<RegionId, RegionAccum> regions;
  std::unordered_map<uint64_t, uint64_t> flows;
  std::unordered_map<int64_t, ObjectState> objects;
  /// The coarse time-bucketed retention window: live buckets keyed by
  /// bucket index, ascending.  Only occupied buckets exist, so memory
  /// and query cost track the retained data, not the horizon width; at
  /// most ring_buckets_ buckets are ever live at once.
  std::map<int64_t, std::vector<StayVisit>> buckets;
  /// Highest bucket index written so far; INT64_MIN before any stay.
  int64_t max_bucket = INT64_MIN;
  double watermark_seconds = 0.0;

  uint64_t semantics_ingested = 0;
  uint64_t late_dropped = 0;
  uint64_t invalid_dropped = 0;
  uint64_t buckets_evicted = 0;
};

AnalyticsEngine::Options AnalyticsEngine::Options::Validated() const {
  Options v = *this;
  v.num_shards = std::max(v.num_shards, 1);
  if (!(v.bucket_seconds > 0.0) || !std::isfinite(v.bucket_seconds)) {
    v.bucket_seconds = 60.0;
  }
  if (!std::isfinite(v.horizon_seconds)) v.horizon_seconds = 86400.0;
  v.horizon_seconds = std::max(v.horizon_seconds, v.bucket_seconds);
  if (!(v.min_visit_seconds >= 0.0)) v.min_visit_seconds = 0.0;
  if (!(v.dwell_min_seconds > 0.0)) v.dwell_min_seconds = 1.0;
  if (!(v.dwell_max_seconds > v.dwell_min_seconds)) {
    v.dwell_max_seconds = v.dwell_min_seconds * 1e5;
  }
  if (!(v.dwell_growth > 1.0)) v.dwell_growth = 1.3;
  return v;
}

AnalyticsEngine::AnalyticsEngine(Options options)
    : options_(options.Validated()) {
  ring_buckets_ = static_cast<int64_t>(
                      std::ceil(options_.horizon_seconds /
                                options_.bucket_seconds)) +
                  1;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnalyticsEngine::~AnalyticsEngine() = default;

int AnalyticsEngine::ShardOf(int64_t object_id) const {
  // Matches AnnotationService::ShardOf so a session and its analytics
  // always live on the same shard.
  const size_t h = std::hash<int64_t>{}(object_id);
  return static_cast<int>(h % shards_.size());
}

void AnalyticsEngine::Ingest(int64_t object_id, const MSemantics& ms) {
  Ingest(ShardOf(object_id), object_id, ms);
}

void AnalyticsEngine::NoteSessionClosed(int64_t object_id) {
  NoteSessionClosed(ShardOf(object_id), object_id);
}

void AnalyticsEngine::Ingest(int shard, int64_t object_id,
                             const MSemantics& ms) {
  Shard& s = *shards_[static_cast<size_t>(shard) % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.semantics_ingested;
  // Reject time periods that are non-finite or too extreme to bucket:
  // casting an out-of-range double to int64_t below would be undefined
  // behavior (the StreamingHistogram NaN-cast class of bug).
  const double bucket_d = std::floor(ms.t_end / options_.bucket_seconds);
  if (!std::isfinite(ms.t_start) || !std::isfinite(ms.t_end) ||
      !(bucket_d >= -9.0e18 && bucket_d <= 9.0e18)) {
    ++s.invalid_dropped;
    return;
  }
  const int64_t bucket = static_cast<int64_t>(bucket_d);

  // --- cumulative region gauges -------------------------------------
  auto region_it = s.regions.find(ms.region);
  if (region_it == s.regions.end()) {
    region_it = s.regions
                    .emplace(ms.region,
                             Shard::RegionAccum(options_.dwell_min_seconds,
                                                options_.dwell_max_seconds,
                                                options_.dwell_growth))
                    .first;
  }
  Shard::RegionAccum& acc = region_it->second;
  const double duration = ms.DurationSeconds();
  if (ms.event == MobilityEvent::kStay) {
    ++acc.stays;
    acc.total_dwell_seconds += duration;
    acc.dwell.Add(duration);
    if (duration >= options_.min_visit_seconds) ++acc.visits;
  } else {
    ++acc.passes;
  }

  // --- flow matrix + occupancy gauge --------------------------------
  Shard::ObjectState& obj = s.objects[object_id];
  if (obj.last_region != kInvalidId && obj.last_region != ms.region) {
    ++s.flows[FlowKey(obj.last_region, ms.region)];
  }
  obj.last_region = ms.region;
  if (obj.occupying) {
    --s.regions.at(obj.occupied_region).occupancy;
    obj.occupying = false;
  }
  if (ms.event == MobilityEvent::kStay) {
    ++acc.occupancy;
    obj.occupying = true;
    obj.occupied_region = ms.region;
  }

  // --- retention window (stay visits only: the windowed queries never
  // look at passes) ---------------------------------------------------
  if (ms.event != MobilityEvent::kStay) return;
  if (s.max_bucket != INT64_MIN && bucket <= s.max_bucket - ring_buckets_) {
    ++s.late_dropped;  // Already aged out of the horizon.
    return;
  }
  if (bucket > s.max_bucket) {
    // Advance the watermark, evicting every bucket the horizon left
    // behind.
    s.max_bucket = bucket;
    const int64_t min_keep = bucket - ring_buckets_ + 1;
    while (!s.buckets.empty() && s.buckets.begin()->first < min_keep) {
      ++s.buckets_evicted;
      s.buckets.erase(s.buckets.begin());
    }
  }
  s.watermark_seconds = std::max(s.watermark_seconds, ms.t_end);
  s.buckets[bucket].push_back(
      StayVisit{object_id, ms.region, ms.t_start, ms.t_end});
}

void AnalyticsEngine::NoteSessionClosed(int shard, int64_t object_id) {
  Shard& s = *shards_[static_cast<size_t>(shard) % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.objects.find(object_id);
  if (it == s.objects.end()) return;
  if (it->second.occupying) {
    --s.regions.at(it->second.occupied_region).occupancy;
  }
  s.objects.erase(it);
}

template <typename Fn>
void AnalyticsEngine::ForEachRetainedVisit(Fn&& fn) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [index, visits] : shard->buckets) {
      (void)index;
      for (const StayVisit& visit : visits) fn(visit);
    }
  }
}

std::vector<RegionId> AnalyticsEngine::TopKPopularRegions(
    const std::vector<RegionId>& query_regions, const TimeWindow& window,
    size_t k, double min_visit_seconds) const {
  const std::unordered_set<RegionId> query_set(query_regions.begin(),
                                               query_regions.end());
  // Mirrors the batch implementation's predicate and accumulator types
  // exactly: a visit is a stay intersecting the window, lasting at least
  // the threshold, at a queried region.
  std::unordered_map<RegionId, int> visits;
  ForEachRetainedVisit([&](const StayVisit& visit) {
    if (visit.t_end - visit.t_start < min_visit_seconds) return;
    if (!window.Overlaps(visit.t_start, visit.t_end)) return;
    if (query_set.count(visit.region) == 0) return;
    ++visits[visit.region];
  });
  std::vector<std::pair<RegionId, int>> ranked(visits.begin(), visits.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<RegionId> out;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    out.push_back(ranked[i].first);
  }
  return out;
}

std::vector<std::pair<RegionId, RegionId>>
AnalyticsEngine::TopKFrequentRegionPairs(
    const std::vector<RegionId>& query_regions, const TimeWindow& window,
    size_t k, double min_visit_seconds) const {
  const std::unordered_set<RegionId> query_set(query_regions.begin(),
                                               query_regions.end());
  // Group by object (the streaming analogue of "per corpus sequence"),
  // then count each unordered pair once per object, exactly like the
  // batch StayedRegions + pair loop.
  std::unordered_map<int64_t, std::unordered_set<RegionId>> stayed;
  ForEachRetainedVisit([&](const StayVisit& visit) {
    if (visit.t_end - visit.t_start < min_visit_seconds) return;
    if (!window.Overlaps(visit.t_start, visit.t_end)) return;
    if (query_set.count(visit.region) == 0) return;
    stayed[visit.object_id].insert(visit.region);
  });
  std::map<std::pair<RegionId, RegionId>, int> counts;
  for (const auto& [object_id, region_set] : stayed) {
    (void)object_id;
    std::vector<RegionId> regions(region_set.begin(), region_set.end());
    std::sort(regions.begin(), regions.end());
    for (size_t i = 0; i < regions.size(); ++i) {
      for (size_t j = i + 1; j < regions.size(); ++j) {
        ++counts[{regions[i], regions[j]}];
      }
    }
  }
  std::vector<std::pair<std::pair<RegionId, RegionId>, int>> ranked(
      counts.begin(), counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::pair<RegionId, RegionId>> out;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    out.push_back(ranked[i].first);
  }
  return out;
}

AnalyticsSnapshot AnalyticsEngine::Snapshot() const {
  AnalyticsSnapshot snapshot;
  // Deterministic shard order; region / flow maps are re-sorted below,
  // so the merged result is independent of hash-map iteration order too.
  struct MergedRegion {
    uint64_t visits = 0;
    uint64_t stays = 0;
    uint64_t passes = 0;
    double total_dwell_seconds = 0.0;
    int64_t occupancy = 0;
    StreamingHistogram dwell;
    MergedRegion(double lo, double hi, double growth) : dwell(lo, hi, growth) {}
  };
  std::map<RegionId, MergedRegion> regions;
  std::map<uint64_t, uint64_t> flows;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    snapshot.semantics_ingested += shard->semantics_ingested;
    snapshot.late_dropped += shard->late_dropped;
    snapshot.invalid_dropped += shard->invalid_dropped;
    snapshot.buckets_evicted += shard->buckets_evicted;
    snapshot.objects_tracked += shard->objects.size();
    snapshot.watermark_seconds =
        std::max(snapshot.watermark_seconds, shard->watermark_seconds);
    for (const auto& [index, visits] : shard->buckets) {
      (void)index;
      snapshot.retained_visits += visits.size();
    }
    for (const auto& [region, acc] : shard->regions) {
      auto it = regions.find(region);
      if (it == regions.end()) {
        it = regions
                 .emplace(region,
                          MergedRegion(options_.dwell_min_seconds,
                                       options_.dwell_max_seconds,
                                       options_.dwell_growth))
                 .first;
      }
      MergedRegion& merged = it->second;
      merged.visits += acc.visits;
      merged.stays += acc.stays;
      merged.passes += acc.passes;
      merged.total_dwell_seconds += acc.total_dwell_seconds;
      merged.occupancy += acc.occupancy;
      merged.dwell.Merge(acc.dwell);
    }
    for (const auto& [key, count] : shard->flows) flows[key] += count;
  }
  snapshot.regions.reserve(regions.size());
  for (const auto& [region, merged] : regions) {
    RegionAnalytics out;
    out.region = region;
    out.visits = merged.visits;
    out.stays = merged.stays;
    out.passes = merged.passes;
    out.total_dwell_seconds = merged.total_dwell_seconds;
    out.dwell_p50_seconds = merged.dwell.Quantile(0.5);
    out.dwell_p99_seconds = merged.dwell.Quantile(0.99);
    out.dwell_mean_seconds = merged.dwell.Mean();
    out.dwell_max_seconds = merged.dwell.max();
    out.occupancy = merged.occupancy;
    snapshot.regions.push_back(out);
  }
  snapshot.flows.reserve(flows.size());
  for (const auto& [key, count] : flows) {
    RegionFlow flow;
    flow.from = static_cast<RegionId>(static_cast<int32_t>(key >> 32));
    flow.to = static_cast<RegionId>(static_cast<int32_t>(key & 0xffffffffu));
    flow.count = count;
    snapshot.flows.push_back(flow);
  }
  std::sort(snapshot.flows.begin(), snapshot.flows.end(),
            [](const RegionFlow& a, const RegionFlow& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  return snapshot;
}

}  // namespace c2mn
