#ifndef C2MN_ANALYTICS_ANALYTICS_ENGINE_H_
#define C2MN_ANALYTICS_ANALYTICS_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/streaming_histogram.h"
#include "common/sync.h"
#include "data/msemantics.h"
#include "obs/metrics_registry.h"
#include "query/query_core.h"

namespace c2mn {

/// Cumulative per-region gauges, merged across shards at snapshot time.
struct RegionAnalytics {
  RegionId region = kInvalidId;
  /// Stay m-semantics lasting at least Options::min_visit_seconds.
  uint64_t visits = 0;
  /// All stay / pass m-semantics at the region, regardless of duration.
  uint64_t stays = 0;
  uint64_t passes = 0;
  /// Seconds spent staying at the region, summed over all stays.
  double total_dwell_seconds = 0.0;
  /// Dwell-time distribution over stays (StreamingHistogram quantiles).
  double dwell_p50_seconds = 0.0;
  double dwell_p99_seconds = 0.0;
  double dwell_mean_seconds = 0.0;
  double dwell_max_seconds = 0.0;
  /// Objects whose most recent m-semantics is a stay at this region and
  /// whose stream has not been closed: the live occupancy gauge.
  int64_t occupancy = 0;
};

/// One directed edge of the region->region flow matrix: how many times
/// any object's consecutive m-semantics moved `from` -> `to`.
struct RegionFlow {
  RegionId from = kInvalidId;
  RegionId to = kInvalidId;
  uint64_t count = 0;
};

/// A merge of every shard's accumulators, assembled in deterministic
/// shard order (0, 1, ...).  Each shard's contribution is internally
/// consistent, but under live ingestion the shards are read at slightly
/// different instants — quiesce the stream (AnnotationService::Drain)
/// first for an exact global view.
struct AnalyticsSnapshot {
  uint64_t semantics_ingested = 0;
  /// Stay visits currently retained in the time-bucket ring (the data
  /// windowed queries can still see).
  uint64_t retained_visits = 0;
  /// Stay visits whose bucket had already aged out when they arrived.
  uint64_t late_dropped = 0;
  /// M-semantics dropped because their time period was non-finite or
  /// too extreme to bucket.
  uint64_t invalid_dropped = 0;
  /// Ring buckets recycled so far (each eviction forgets its visits).
  uint64_t buckets_evicted = 0;
  /// Objects with live per-object state (stream seen, not yet closed).
  size_t objects_tracked = 0;
  /// Largest finite stay end-timestamp ingested so far (the retention
  /// watermark); 0 before any stay arrives.
  double watermark_seconds = 0.0;
  /// Top-k polls answered from the pre-aggregated sketches vs. by
  /// scanning retained visits (a query falls back to the scan when its
  /// window or threshold does not match the maintained spec).  The
  /// totals are the sums of the per-kind splits below.
  uint64_t preagg_queries = 0;
  uint64_t scan_queries = 0;
  /// The same counts split by query kind (region vs pair polls), so the
  /// pair fast path is assertable on its own — the bench guard needs to
  /// know the *pair* poll took the merge path, not just that some poll
  /// did.
  uint64_t preagg_region_queries = 0;
  uint64_t preagg_pair_queries = 0;
  uint64_t scan_region_queries = 0;
  uint64_t scan_pair_queries = 0;
  /// Sliding-window standing queries (StandingQuery::trailing_seconds >
  /// 0) currently subscribed, the watermark bucket rotations their
  /// windows have absorbed, and the visits retracted because a window
  /// slid past them.
  size_t sliding_queries = 0;
  uint64_t window_rotations = 0;
  uint64_t window_expired_visits = 0;
  /// Standing continuous queries currently subscribed, and the total
  /// deltas pushed to their callbacks so far.
  size_t standing_queries = 0;
  uint64_t deltas_pushed = 0;
  /// Submit-to-delta push latency over ingests that fired at least one
  /// standing-query delta.  Filled by AnnotationService::AnalyticsStats()
  /// (the engine alone has no submit timestamps); zero when standalone.
  uint64_t push_samples = 0;
  double push_p50_ms = 0.0;
  double push_p99_ms = 0.0;
  double push_max_ms = 0.0;
  /// Per-region gauges, sorted by region id.
  std::vector<RegionAnalytics> regions;
  /// Flow matrix edges, sorted by count desc, then (from, to) asc.
  std::vector<RegionFlow> flows;
};

/// \brief The complete durable state of one analytics shard, in canonical
/// (sorted) order so two equivalent shards always serialize identically.
/// Produced by AnalyticsEngine::SaveState and consumed by RestoreState;
/// src/storage/ encodes it into the versioned snapshot file.
struct AnalyticsShardState {
  struct Region {
    RegionId region = kInvalidId;
    uint64_t visits = 0;
    uint64_t stays = 0;
    uint64_t passes = 0;
    double total_dwell_seconds = 0.0;
    int64_t occupancy = 0;
    StreamingHistogram::State dwell;
  };
  struct Flow {
    RegionId from = kInvalidId;
    RegionId to = kInvalidId;
    uint64_t count = 0;
  };
  struct Object {
    int64_t object_id = 0;
    RegionId last_region = kInvalidId;
    bool occupying = false;
    RegionId occupied_region = kInvalidId;
  };
  struct Visit {
    int64_t object_id = 0;
    RegionId region = kInvalidId;
    double t_start = 0.0;
    double t_end = 0.0;
  };

  /// The shard's mutation sequence at save time.  Write-ahead-log records
  /// carry the sequence their mutation was assigned, so replay skips
  /// records with seq <= this value: they are already inside the snapshot.
  uint64_t mutation_seq = 0;
  double watermark_seconds = 0.0;
  /// Highest retention-bucket index written; INT64_MIN before any stay.
  int64_t max_bucket = 0;
  /// Sorted by region id.
  std::vector<Region> regions;
  /// Sorted by (from, to).
  std::vector<Flow> flows;
  /// Sorted by object id.
  std::vector<Object> objects;
  /// Retained stay visits in bucket order, insertion order within a
  /// bucket — exactly the order a replay of the surviving stream would
  /// recreate them in.
  std::vector<Visit> visits;
  /// The pre-aggregation sketch's counters, kept alongside the visits
  /// they were derived from so restore can cross-check the rebuild.
  query::TopKSketch::State preagg;
};

/// Everything AnalyticsEngine needs to rebuild itself bit-identically:
/// the config the accumulators were built under (restore refuses a
/// mismatch rather than reinterpreting foreign state), the cumulative
/// counters, and every shard's state.
struct AnalyticsEngineState {
  int num_shards = 0;
  double bucket_seconds = 0.0;
  double horizon_seconds = 0.0;
  double min_visit_seconds = 0.0;
  double dwell_min_seconds = 0.0;
  double dwell_max_seconds = 0.0;
  double dwell_growth = 0.0;
  uint64_t semantics_ingested = 0;
  uint64_t late_dropped = 0;
  uint64_t invalid_dropped = 0;
  uint64_t buckets_evicted = 0;
  std::vector<AnalyticsShardState> shards;
};

/// \brief An incremental analytics engine over streaming m-semantics: the
/// read-side companion of AnnotationService.
///
/// The batch queries in eval/queries need a fully materialized
/// AnnotatedCorpus; this engine answers the same top-k questions while
/// the stream is still running.  Each shard owns thread-local
/// accumulators (visit counts, dwell histograms, a region->region flow
/// matrix, occupancy gauges), a coarse time-bucketed ring of stay
/// visits, and a query::TopKSketch pre-aggregating the engine's default
/// query spec (all regions, unbounded window, Options::min_visit_seconds)
/// so matching top-k polls fold sorted counters instead of scanning
/// every retained visit.  Queries lock and fold the shards in
/// deterministic shard order, so the answer never depends on thread
/// scheduling.
///
/// Determinism / equivalence guarantee: TopKPopularRegions and
/// TopKFrequentRegionPairs return exactly what the batch implementation
/// returns on an AnnotatedCorpus holding the same m-semantics (one corpus
/// sequence per object id), for any shard count and regardless of which
/// path (pre-aggregated or scan) serves the query, as long as no queried
/// visit has aged out of the retention horizon.  Both paths share the
/// predicate and ranking in query/query_core.h with the batch
/// implementation, so they cannot drift apart.
///
/// Thread model: Ingest / NoteSessionClosed for one shard must not race
/// themselves (AnnotationService guarantees this by construction — one
/// worker per shard); queries, snapshots, and Subscribe / Unsubscribe are
/// safe from any thread at any time.
class AnalyticsEngine {
 public:
  struct Options {
    /// Number of independent accumulator shards.  When the engine is
    /// wired into an AnnotationService this is overridden with the
    /// service's shard count.
    int num_shards = 1;
    /// Width of one retention ring bucket, in seconds.
    double bucket_seconds = 60.0;
    /// Stay visits whose end time falls more than this far behind the
    /// shard's watermark age out (bounded memory).  Rounded up to a
    /// whole number of buckets.
    double horizon_seconds = 86400.0;
    /// Minimum stay duration for the cumulative `visits` gauge and the
    /// pre-aggregated top-k sketches.  The windowed queries take their
    /// own threshold parameter, mirroring the batch API; a poll whose
    /// threshold equals this value (and whose window covers everything
    /// retained) is served from the sketches.
    double min_visit_seconds = 0.0;
    /// Dwell-time histogram bucketization (seconds).
    double dwell_min_seconds = 1.0;
    double dwell_max_seconds = 1e5;
    double dwell_growth = 1.3;

    /// Registry for the engine's counters and query-timing histograms.
    /// nullptr (the default) gives the engine a private registry; an
    /// embedding AnnotationService passes its own so one export covers
    /// the whole pipeline.  Not owned; must outlive the engine.
    obs::MetricsRegistry* metrics_registry = nullptr;

    /// Repairs inconsistent settings (shards >= 1, positive bucket
    /// width, horizon >= one bucket, sane histogram bounds) so a service
    /// embedding the engine never crashes on a bad config.
    Options Validated() const;
  };

  explicit AnalyticsEngine(Options options);
  ~AnalyticsEngine();

  AnalyticsEngine(const AnalyticsEngine&) = delete;
  AnalyticsEngine& operator=(const AnalyticsEngine&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const Options& options() const { return options_; }

  /// The registry holding the engine's metrics (the injected one, or
  /// the private per-instance default).
  obs::MetricsRegistry& metrics_registry() const { return *registry_; }

  /// Folds one completed m-semantics of `object_id` into shard `shard`.
  /// All m-semantics of one object must go to the same shard, in stream
  /// order (AnnotationService's object->shard mapping satisfies both).
  /// Returns the number of standing-query deltas this ingest pushed
  /// (counting aging-driven evictions it triggered).  When `applied_seq`
  /// is non-null it receives the shard mutation sequence this ingest was
  /// assigned — the write-ahead log records it so replay after a restore
  /// can skip mutations the snapshot already contains.
  int Ingest(int shard, int64_t object_id, const MSemantics& ms,
             uint64_t* applied_seq = nullptr);

  /// Single-shard-keyed convenience: shards by object id the same way
  /// AnnotationService does, for standalone use against OnlineAnnotator.
  int Ingest(int64_t object_id, const MSemantics& ms);

  /// Drops `object_id`'s per-object state (occupancy gauge, flow
  /// predecessor).  Retained visits — and therefore the pre-aggregated
  /// sketches and standing-query answers — are unaffected: a departed
  /// visitor still counts toward what was popular, exactly as in the
  /// batch corpus.  Counts as a shard mutation (reported through
  /// `applied_seq` like Ingest) so closes are replayable from the log.
  void NoteSessionClosed(int shard, int64_t object_id,
                         uint64_t* applied_seq = nullptr);
  void NoteSessionClosed(int64_t object_id);

  /// \brief The k regions from `query_regions` with the most stay visits
  /// intersecting `window` — result-identical to the batch
  /// c2mn::TopKPopularRegions on the same stream.  Served from the
  /// per-shard pre-aggregated sketches (O(distinct regions), independent
  /// of retained-visit count) when `min_visit_seconds` equals
  /// Options::min_visit_seconds and `window` covers every retained
  /// visit; otherwise falls back to a window-pruned scan.
  std::vector<RegionId> TopKPopularRegions(
      const std::vector<RegionId>& query_regions, const TimeWindow& window,
      size_t k, double min_visit_seconds = 0.0) const;

  /// \brief The k unordered region pairs most frequently co-visited by
  /// the same object within `window` — result-identical to the batch
  /// c2mn::TopKFrequentRegionPairs on the same stream.  Same
  /// pre-aggregated fast path as TopKPopularRegions.
  std::vector<std::pair<RegionId, RegionId>> TopKFrequentRegionPairs(
      const std::vector<RegionId>& query_regions, const TimeWindow& window,
      size_t k, double min_visit_seconds = 0.0) const;

  /// \brief Registers a standing continuous query.  The subscription is
  /// seeded from the currently retained visits and `callback` is invoked
  /// immediately (on this thread) with the initial answer as delta
  /// sequence 1; afterwards deltas fire on the worker whose ingest (or
  /// retention-aging) changed the answer set.  A query with
  /// trailing_seconds > 0 ranks only the trailing window behind the
  /// watermark (see StandingQuery), re-evaluated on every watermark
  /// advance; its window width is clamped to the retention ring.
  /// Returns the subscription id.
  int Subscribe(StandingQuery query, StandingQueryCallback callback);

  /// Removes a subscription; no callbacks fire after this returns.
  /// Returns false if the id is unknown (or already unsubscribed).
  bool Unsubscribe(int subscription_id);

  /// Merged view of every accumulator, deterministic for a quiesced
  /// stream regardless of shard count.
  AnalyticsSnapshot Snapshot() const;

  /// \brief The engine's complete durable state, in canonical order:
  /// calling this twice on a quiesced engine yields equal states, and
  /// RestoreState on a fresh engine with the same Options reproduces
  /// every poll and snapshot bit-identically.  Locks one shard at a
  /// time; quiesce the stream first for a consistent cross-shard cut
  /// (the storage checkpoint relies on the log for anything in flight).
  AnalyticsEngineState SaveState() const;

  /// \brief Rebuilds the engine from `state`.  The engine must be fresh
  /// and quiesced: nothing ingested yet and no standing queries
  /// subscribed (kFailedPrecondition otherwise).  Refuses state saved
  /// under a different config — shard count or any accumulator-shaping
  /// option (kInvalidArgument): reinterpreting state bucketed under
  /// other parameters would silently corrupt the analytics.  The
  /// pre-aggregation sketches are rebuilt by refolding the restored
  /// visits and cross-checked against the saved sketch state; a
  /// mismatch (corrupt or internally inconsistent snapshot) fails with
  /// kInternal and leaves the engine unusable for restore retries on
  /// different state (restart with a fresh engine instead).
  Status RestoreState(const AnalyticsEngineState& state);

 private:
  struct Shard;
  struct Subscription;

  /// One retained stay: enough to re-evaluate the batch visit predicate.
  struct StayVisit {
    int64_t object_id = 0;
    RegionId region = kInvalidId;
    double t_start = 0.0;
    double t_end = 0.0;
  };

  int ShardOf(int64_t object_id) const;
  /// Walks every retained visit (of every shard, in shard order) whose
  /// bucket can intersect `window` — buckets are keyed by visit end
  /// time, so buckets entirely before the window's start are skipped.
  template <typename Fn>
  void ForEachRetainedVisit(const TimeWindow& window, Fn&& fn) const;
  /// Collects each shard's count-descending counter snapshot (region or
  /// pair, by Key) for the bounded threshold merge, validating window
  /// coverage from the retained-visit time bounds in the same per-shard
  /// lock acquisition — a race with ingest can only route the query to
  /// the scan fallback, never slip an out-of-window visit into an
  /// accepted merge.  Returns true when `window` covers every retained
  /// visit (the merged counters answer the query exactly).
  template <typename Key>
  bool CollectPreAggSorted(
      const TimeWindow& window,
      std::vector<std::shared_ptr<const query::SortedCounts<Key>>>* views)
      const;
  /// Applies one ingest's visit delta (an added visit and/or evicted
  /// visits) to every subscription; returns the number of deltas pushed.
  int NotifySubscriptions(int shard_index, uint64_t mutation_seq,
                          const StayVisit* added,
                          const std::vector<StayVisit>& evicted);

  Options options_;
  int64_t ring_buckets_ = 1;

  /// Private registry when none was injected; registry_ points at it or
  /// at the injected one.  Counter/histogram handles are cached here so
  /// snapshots and delta callbacks never take the registry mutex.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* semantics_ingested_total_ = nullptr;
  obs::Counter* late_dropped_total_ = nullptr;
  obs::Counter* invalid_dropped_total_ = nullptr;
  obs::Counter* buckets_evicted_total_ = nullptr;
  obs::Counter* deltas_pushed_total_ = nullptr;
  /// Top-k poll counters split by serving path *and* query kind, so
  /// dashboards (and the bench fast-path guard) can watch the pair
  /// merge path specifically.
  obs::Counter* preagg_region_queries_total_ = nullptr;
  obs::Counter* preagg_pair_queries_total_ = nullptr;
  obs::Counter* scan_region_queries_total_ = nullptr;
  obs::Counter* scan_pair_queries_total_ = nullptr;
  /// Sliding-window standing queries: bucket rotations absorbed and
  /// visits expired out of trailing windows, across all subscriptions.
  obs::Counter* window_rotations_total_ = nullptr;
  obs::Counter* window_expired_total_ = nullptr;
  obs::Gauge* standing_queries_gauge_ = nullptr;
  obs::Gauge* sliding_queries_gauge_ = nullptr;
  /// Fold time of one top-k poll, labeled by the path that served it.
  obs::Histogram* preagg_fold_seconds_ = nullptr;
  obs::Histogram* scan_fold_seconds_ = nullptr;
  /// Ingest-side time spent applying visit deltas to standing queries
  /// (the NotifySubscriptions walk), over ingests that had deltas.
  obs::Histogram* standing_push_seconds_ = nullptr;
  /// The spec the per-shard sketches maintain: every region, unbounded
  /// window, Options::min_visit_seconds.
  std::unique_ptr<query::CompiledSpec> preagg_spec_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Subscriptions: the list is guarded by subs_mu_ (shared for the
  /// ingest-side notify walk, exclusive for Subscribe / Unsubscribe);
  /// each subscription's counters live behind its own mutex.  One lock
  /// order everywhere: subs_mu_ -> subscription mutex -> shard mutex —
  /// now spelled out by the declared ranks (kAnalyticsSubscribers <
  /// kAnalyticsSubscription < kAnalyticsShard) and enforced by the
  /// runtime checker.  Ingest never violates it because it collects its
  /// visit deltas under the shard lock, releases it, and only then
  /// acquires subs_mu_ and the per-subscription mutexes.
  mutable SharedMutex subs_mu_{LockRank::kAnalyticsSubscribers,
                               "AnalyticsEngine::subs_mu_"};
  std::vector<std::shared_ptr<Subscription>> subs_ C2MN_GUARDED_BY(subs_mu_);
  int next_subscription_id_ C2MN_GUARDED_BY(subs_mu_) = 1;
  /// Mirrors subs_.size() / total deltas so Snapshot() (and therefore a
  /// delta callback calling it) never touches subs_mu_.  standing_count_
  /// also lets Ingest skip delta collection entirely when nobody is
  /// subscribed: it is incremented before a new subscription seeds from
  /// the shards, so any mutation a seed misses sees a non-zero count
  /// (the shard mutex orders the two).
  std::atomic<size_t> standing_count_{0};
  /// Subset of standing_count_ with a trailing window, mirrored for the
  /// same Snapshot()-without-subs_mu_ reason.
  std::atomic<size_t> sliding_count_{0};
};

}  // namespace c2mn

#endif  // C2MN_ANALYTICS_ANALYTICS_ENGINE_H_
