#ifndef C2MN_ANALYTICS_ANALYTICS_ENGINE_H_
#define C2MN_ANALYTICS_ANALYTICS_ENGINE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "data/msemantics.h"
#include "eval/queries.h"

namespace c2mn {

/// Cumulative per-region gauges, merged across shards at snapshot time.
struct RegionAnalytics {
  RegionId region = kInvalidId;
  /// Stay m-semantics lasting at least Options::min_visit_seconds.
  uint64_t visits = 0;
  /// All stay / pass m-semantics at the region, regardless of duration.
  uint64_t stays = 0;
  uint64_t passes = 0;
  /// Seconds spent staying at the region, summed over all stays.
  double total_dwell_seconds = 0.0;
  /// Dwell-time distribution over stays (StreamingHistogram quantiles).
  double dwell_p50_seconds = 0.0;
  double dwell_p99_seconds = 0.0;
  double dwell_mean_seconds = 0.0;
  double dwell_max_seconds = 0.0;
  /// Objects whose most recent m-semantics is a stay at this region and
  /// whose stream has not been closed: the live occupancy gauge.
  int64_t occupancy = 0;
};

/// One directed edge of the region->region flow matrix: how many times
/// any object's consecutive m-semantics moved `from` -> `to`.
struct RegionFlow {
  RegionId from = kInvalidId;
  RegionId to = kInvalidId;
  uint64_t count = 0;
};

/// A merge of every shard's accumulators, assembled in deterministic
/// shard order (0, 1, ...).  Each shard's contribution is internally
/// consistent, but under live ingestion the shards are read at slightly
/// different instants — quiesce the stream (AnnotationService::Drain)
/// first for an exact global view.
struct AnalyticsSnapshot {
  uint64_t semantics_ingested = 0;
  /// Stay visits currently retained in the time-bucket ring (the data
  /// windowed queries can still see).
  uint64_t retained_visits = 0;
  /// Stay visits whose bucket had already aged out when they arrived.
  uint64_t late_dropped = 0;
  /// M-semantics dropped because their time period was non-finite or
  /// too extreme to bucket.
  uint64_t invalid_dropped = 0;
  /// Ring buckets recycled so far (each eviction forgets its visits).
  uint64_t buckets_evicted = 0;
  /// Objects with live per-object state (stream seen, not yet closed).
  size_t objects_tracked = 0;
  /// Largest finite stay end-timestamp ingested so far (the retention
  /// watermark); 0 before any stay arrives.
  double watermark_seconds = 0.0;
  /// Per-region gauges, sorted by region id.
  std::vector<RegionAnalytics> regions;
  /// Flow matrix edges, sorted by count desc, then (from, to) asc.
  std::vector<RegionFlow> flows;
};

/// \brief An incremental analytics engine over streaming m-semantics: the
/// read-side companion of AnnotationService.
///
/// The batch queries in eval/queries.cc need a fully materialized
/// AnnotatedCorpus; this engine answers the same top-k questions while
/// the stream is still running.  Each shard owns thread-local
/// accumulators (visit counts, dwell histograms, a region->region flow
/// matrix, occupancy gauges) plus a coarse time-bucketed ring of stay
/// visits; queries lock and fold the shards in deterministic shard order,
/// so the answer never depends on thread scheduling.
///
/// Determinism / equivalence guarantee: TopKPopularRegions and
/// TopKFrequentRegionPairs return exactly what the batch implementation
/// returns on an AnnotatedCorpus holding the same m-semantics (one corpus
/// sequence per object id), for any shard count, as long as no queried
/// visit has aged out of the retention horizon.
///
/// Thread model: Ingest / NoteSessionClosed for one shard must not race
/// themselves (AnnotationService guarantees this by construction — one
/// worker per shard); queries and snapshots are safe from any thread at
/// any time.
class AnalyticsEngine {
 public:
  struct Options {
    /// Number of independent accumulator shards.  When the engine is
    /// wired into an AnnotationService this is overridden with the
    /// service's shard count.
    int num_shards = 1;
    /// Width of one retention ring bucket, in seconds.
    double bucket_seconds = 60.0;
    /// Stay visits whose end time falls more than this far behind the
    /// shard's watermark age out (bounded memory).  Rounded up to a
    /// whole number of buckets.
    double horizon_seconds = 86400.0;
    /// Minimum stay duration for the cumulative `visits` gauge.  The
    /// windowed queries take their own threshold parameter, mirroring
    /// the batch API.
    double min_visit_seconds = 0.0;
    /// Dwell-time histogram bucketization (seconds).
    double dwell_min_seconds = 1.0;
    double dwell_max_seconds = 1e5;
    double dwell_growth = 1.3;

    /// Repairs inconsistent settings (shards >= 1, positive bucket
    /// width, horizon >= one bucket, sane histogram bounds) so a service
    /// embedding the engine never crashes on a bad config.
    Options Validated() const;
  };

  explicit AnalyticsEngine(Options options);
  ~AnalyticsEngine();

  AnalyticsEngine(const AnalyticsEngine&) = delete;
  AnalyticsEngine& operator=(const AnalyticsEngine&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const Options& options() const { return options_; }

  /// Folds one completed m-semantics of `object_id` into shard `shard`.
  /// All m-semantics of one object must go to the same shard, in stream
  /// order (AnnotationService's object->shard mapping satisfies both).
  void Ingest(int shard, int64_t object_id, const MSemantics& ms);

  /// Single-shard-keyed convenience: shards by object id the same way
  /// AnnotationService does, for standalone use against OnlineAnnotator.
  void Ingest(int64_t object_id, const MSemantics& ms);

  /// Drops `object_id`'s per-object state (occupancy gauge, flow
  /// predecessor).  Retained visits are unaffected.
  void NoteSessionClosed(int shard, int64_t object_id);
  void NoteSessionClosed(int64_t object_id);

  /// \brief The k regions from `query_regions` with the most stay visits
  /// intersecting `window` — result-identical to the batch
  /// c2mn::TopKPopularRegions on the same stream.
  std::vector<RegionId> TopKPopularRegions(
      const std::vector<RegionId>& query_regions, const TimeWindow& window,
      size_t k, double min_visit_seconds = 0.0) const;

  /// \brief The k unordered region pairs most frequently co-visited by
  /// the same object within `window` — result-identical to the batch
  /// c2mn::TopKFrequentRegionPairs on the same stream.
  std::vector<std::pair<RegionId, RegionId>> TopKFrequentRegionPairs(
      const std::vector<RegionId>& query_regions, const TimeWindow& window,
      size_t k, double min_visit_seconds = 0.0) const;

  /// Merged view of every accumulator, deterministic for a quiesced
  /// stream regardless of shard count.
  AnalyticsSnapshot Snapshot() const;

 private:
  struct Shard;

  /// One retained stay: enough to re-evaluate the batch visit predicate.
  struct StayVisit {
    int64_t object_id = 0;
    RegionId region = kInvalidId;
    double t_start = 0.0;
    double t_end = 0.0;
  };

  int ShardOf(int64_t object_id) const;
  /// Walks every retained visit of every shard in shard order.
  template <typename Fn>
  void ForEachRetainedVisit(Fn&& fn) const;

  Options options_;
  int64_t ring_buckets_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace c2mn

#endif  // C2MN_ANALYTICS_ANALYTICS_ENGINE_H_
