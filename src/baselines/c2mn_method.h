#ifndef C2MN_BASELINES_C2MN_METHOD_H_
#define C2MN_BASELINES_C2MN_METHOD_H_

#include <memory>
#include <optional>

#include "baselines/method.h"
#include "core/trainer.h"
#include "core/variants.h"

namespace c2mn {

/// \brief Adapter exposing the C2MN family (full model, the four
/// structure ablations, the decoupled CMN, and C2MN@R) through the common
/// AnnotationMethod interface used by the experiment harnesses.
class C2mnMethod : public AnnotationMethod {
 public:
  C2mnMethod(const World& world, C2mnVariant variant,
             FeatureOptions feature_options, TrainOptions train_options)
      : world_(world),
        variant_(std::move(variant)),
        fopts_(std::move(feature_options)),
        topts_(train_options) {
    topts_.first_configure_region = variant_.first_configure_region;
  }

  std::string name() const override { return variant_.name; }

  void Train(const std::vector<const LabeledSequence*>& train) override {
    AlternateTrainer trainer(world_, fopts_, variant_.structure, topts_);
    result_ = trainer.Train(train);
    annotator_.emplace(trainer.MakeAnnotator(*result_));
    train_seconds_ = result_->train_seconds;
  }

  LabelSequence Annotate(const PSequence& sequence) const override {
    return annotator_->Annotate(sequence);
  }

  /// Training diagnostics of the last Train() call.
  const TrainResult& train_result() const { return *result_; }

 private:
  const World& world_;
  C2mnVariant variant_;
  FeatureOptions fopts_;
  TrainOptions topts_;
  std::optional<TrainResult> result_;
  std::optional<C2mnAnnotator> annotator_;
};

}  // namespace c2mn

#endif  // C2MN_BASELINES_C2MN_METHOD_H_
