#ifndef C2MN_BASELINES_GRID_H_
#define C2MN_BASELINES_GRID_H_

#include <algorithm>
#include <cmath>

#include "indoor/floorplan.h"

namespace c2mn {

/// \brief Uniform discretization of the venue into per-floor grid cells.
///
/// HMM+DC distributes positioning records to grid cells and uses the cell
/// ids as HMM observations; SAP uses the cell of a segment centroid.
class ObservationGrid {
 public:
  ObservationGrid(const Floorplan& plan, double cell_size)
      : cell_size_(cell_size), num_floors_(plan.num_floors()) {
    for (const Partition& part : plan.partitions()) {
      bounds_.Extend(part.shape.bbox());
    }
    cols_ = std::max(
        1, static_cast<int>(
               std::ceil((bounds_.max.x - bounds_.min.x) / cell_size_)));
    rows_ = std::max(
        1, static_cast<int>(
               std::ceil((bounds_.max.y - bounds_.min.y) / cell_size_)));
  }

  int num_cells() const { return num_floors_ * rows_ * cols_; }

  /// Cell id of a location; out-of-bounds coordinates and floors clamp to
  /// the nearest valid cell.
  int CellOf(const IndoorPoint& p) const {
    const int col = std::clamp(
        static_cast<int>((p.xy.x - bounds_.min.x) / cell_size_), 0,
        cols_ - 1);
    const int row = std::clamp(
        static_cast<int>((p.xy.y - bounds_.min.y) / cell_size_), 0,
        rows_ - 1);
    const int floor = std::clamp(p.floor, 0, num_floors_ - 1);
    return (floor * rows_ + row) * cols_ + col;
  }

  /// The spatial extent of a cell (all cells share the floor layout).
  BoundingBox CellBox(int cell) const {
    const int in_floor = cell % (rows_ * cols_);
    const int row = in_floor / cols_;
    const int col = in_floor % cols_;
    BoundingBox box;
    box.Extend({bounds_.min.x + col * cell_size_,
                bounds_.min.y + row * cell_size_});
    box.Extend({bounds_.min.x + (col + 1) * cell_size_,
                bounds_.min.y + (row + 1) * cell_size_});
    return box;
  }

  /// Floor of a cell id.
  int CellFloor(int cell) const { return cell / (rows_ * cols_); }

  /// Cell ids on `floor` whose boxes intersect `query`.
  std::vector<int> CellsInBox(int floor, const BoundingBox& query) const {
    std::vector<int> out;
    const int col_lo = std::clamp(
        static_cast<int>((query.min.x - bounds_.min.x) / cell_size_), 0,
        cols_ - 1);
    const int col_hi = std::clamp(
        static_cast<int>((query.max.x - bounds_.min.x) / cell_size_), 0,
        cols_ - 1);
    const int row_lo = std::clamp(
        static_cast<int>((query.min.y - bounds_.min.y) / cell_size_), 0,
        rows_ - 1);
    const int row_hi = std::clamp(
        static_cast<int>((query.max.y - bounds_.min.y) / cell_size_), 0,
        rows_ - 1);
    for (int row = row_lo; row <= row_hi; ++row) {
      for (int col = col_lo; col <= col_hi; ++col) {
        out.push_back((floor * rows_ + row) * cols_ + col);
      }
    }
    return out;
  }

 private:
  double cell_size_;
  int num_floors_;
  BoundingBox bounds_;
  int rows_ = 1;
  int cols_ = 1;
};

}  // namespace c2mn

#endif  // C2MN_BASELINES_GRID_H_
