#include "baselines/hmm_dc.h"

#include "common/stopwatch.h"
#include "geometry/circle_overlap.h"

namespace c2mn {

HmmDcMethod::HmmDcMethod(const World& world, Params params)
    : world_(world),
      params_(params),
      grid_(world.plan(), params.grid_cell_meters) {}

void HmmDcMethod::Train(const std::vector<const LabeledSequence*>& train) {
  Stopwatch watch;
  const int num_regions = static_cast<int>(world_.plan().regions().size());
  hmm_ = std::make_unique<Hmm>(num_regions, grid_.num_cells(),
                               params_.laplace_smoothing);
  // Geometric emission prior: distribute pseudo-counts of each region over
  // the grid cells its footprint (dilated by the typical positioning
  // error) covers.  At the paper's data volume raw frequency counts
  // suffice; at bench scale this keeps unseen (region, cell) pairs from
  // collapsing to the uniform Laplace floor.
  for (const SemanticRegion& region : world_.plan().regions()) {
    for (PartitionId pid : region.partitions) {
      const Partition& part = world_.plan().partition(pid);
      BoundingBox dilated = part.shape.bbox();
      dilated.Extend(
          {dilated.min.x - params_.emission_prior_dilation_meters,
           dilated.min.y - params_.emission_prior_dilation_meters});
      dilated.Extend(
          {dilated.max.x + params_.emission_prior_dilation_meters,
           dilated.max.y + params_.emission_prior_dilation_meters});
      for (int cell : grid_.CellsInBox(part.floor, dilated)) {
        const BoundingBox cell_box = grid_.CellBox(cell);
        // Overlap of the dilated partition with the cell, as a fraction
        // of the cell area.
        const double ix =
            std::min(dilated.max.x, cell_box.max.x) -
            std::max(dilated.min.x, cell_box.min.x);
        const double iy =
            std::min(dilated.max.y, cell_box.max.y) -
            std::max(dilated.min.y, cell_box.min.y);
        if (ix <= 0 || iy <= 0) continue;
        const double fraction = (ix * iy) / cell_box.Area();
        hmm_->AddEmissionPseudoCount(
            region.id, cell, params_.emission_prior_weight * fraction);
      }
    }
  }
  for (const LabeledSequence* ls : train) {
    std::vector<int> states;
    std::vector<int> observations;
    states.reserve(ls->size());
    observations.reserve(ls->size());
    for (size_t i = 0; i < ls->size(); ++i) {
      const RegionId r = ls->labels.regions[i];
      if (r == kInvalidId) continue;
      states.push_back(r);
      observations.push_back(grid_.CellOf(ls->sequence[i].location));
    }
    hmm_->AddSequence(states, observations);
  }
  hmm_->Fit();
  train_seconds_ = watch.ElapsedSeconds();
}

LabelSequence HmmDcMethod::Annotate(const PSequence& sequence) const {
  const int n = static_cast<int>(sequence.size());
  LabelSequence labels(n);
  if (n == 0) return labels;

  // Regions: Viterbi over the grid observations.
  std::vector<int> observations(n);
  for (int i = 0; i < n; ++i) {
    observations[i] = grid_.CellOf(sequence[i].location);
  }
  const std::vector<int> states = hmm_->Decode(observations);
  for (int i = 0; i < n; ++i) labels.regions[i] = states[i];

  // Events: density clustering, independently of the regions.
  const StDbscanResult clustering = StDbscan(sequence, params_.dbscan);
  for (int i = 0; i < n; ++i) {
    labels.events[i] = clustering.classes[i] == DensityClass::kNoise
                           ? MobilityEvent::kPass
                           : MobilityEvent::kStay;
  }
  return labels;
}

}  // namespace c2mn
