#ifndef C2MN_BASELINES_HMM_DC_H_
#define C2MN_BASELINES_HMM_DC_H_

#include <memory>

#include "baselines/grid.h"
#include "baselines/method.h"
#include "clustering/st_dbscan.h"
#include "crf/hmm.h"
#include "sim/world.h"

namespace c2mn {

/// \brief The HMM+DC baseline (Section V-A, previously used in the
/// authors' TRIPS system [12]).
///
/// Regions: an HMM whose hidden states are the semantic regions and whose
/// observations are grid cells of the positioning records; parameters are
/// frequency-counted from training data and decoding is Viterbi.
/// Events: st-DBSCAN Clustering (DC) — core and border points are stay,
/// noise points are pass.  The two labelings are computed independently.
class HmmDcMethod : public AnnotationMethod {
 public:
  struct Params {
    double grid_cell_meters = 6.0;
    StDbscanParams dbscan;
    double laplace_smoothing = 0.2;
    /// Weight of the geometric emission prior (pseudo-counts per fully
    /// covered cell) and how far a region's footprint is dilated to
    /// account for positioning error.
    double emission_prior_weight = 20.0;
    double emission_prior_dilation_meters = 4.0;
  };

  explicit HmmDcMethod(const World& world)
      : HmmDcMethod(world, Params()) {}
  HmmDcMethod(const World& world, Params params);

  std::string name() const override { return "HMM+DC"; }
  void Train(const std::vector<const LabeledSequence*>& train) override;
  LabelSequence Annotate(const PSequence& sequence) const override;

 private:
  const World& world_;
  Params params_;
  ObservationGrid grid_;
  std::unique_ptr<Hmm> hmm_;
};

}  // namespace c2mn

#endif  // C2MN_BASELINES_HMM_DC_H_
