#ifndef C2MN_BASELINES_METHOD_H_
#define C2MN_BASELINES_METHOD_H_

#include <string>
#include <vector>

#include "data/labels.h"
#include "data/msemantics.h"

namespace c2mn {

/// \brief Common interface of every annotation method in the experimental
/// comparison (Section V-A): supervised training on labeled sequences,
/// then per-sequence record labeling.
///
/// AnnotateSemantics() applies the shared label-and-merge step, so the
/// query-quality experiments (Figs. 12-19) treat all methods uniformly.
class AnnotationMethod {
 public:
  virtual ~AnnotationMethod() = default;

  /// Display name, e.g. "SMoT", "C2MN/Tran".
  virtual std::string name() const = 0;

  /// Fits the method on labeled sequences.  Methods without learned
  /// parameters (SMoT) use this to tune their thresholds, so every method
  /// sees the same labeled data, as in the paper.
  virtual void Train(const std::vector<const LabeledSequence*>& train) = 0;

  /// Labels every record of `sequence` with a region and an event.
  virtual LabelSequence Annotate(const PSequence& sequence) const = 0;

  /// Wall-clock seconds spent in the last Train() call.
  virtual double train_seconds() const { return train_seconds_; }

  /// Label-and-merge annotation into m-semantics.
  MSemanticsSequence AnnotateSemantics(const PSequence& sequence) const {
    return MergeLabels(sequence, Annotate(sequence));
  }

 protected:
  double train_seconds_ = 0.0;
};

}  // namespace c2mn

#endif  // C2MN_BASELINES_METHOD_H_
