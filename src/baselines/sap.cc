#include "baselines/sap.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "crf/chain_model.h"
#include "geometry/circle_overlap.h"

namespace c2mn {

namespace {

/// Mean location, per-axis standard deviation, and majority floor of the
/// records [s, e]: the Gaussian density summary of a stay segment.
struct SegmentDensity {
  IndoorPoint mean;
  double stddev = 0.0;
};

SegmentDensity SegmentGaussian(const PSequence& seq, int s, int e) {
  std::vector<int> floor_votes;
  for (int x = s; x <= e; ++x) {
    const int f = seq[x].location.floor;
    if (f >= static_cast<int>(floor_votes.size())) floor_votes.resize(f + 1, 0);
    if (f >= 0) ++floor_votes[f];
  }
  const int rep_floor =
      floor_votes.empty()
          ? 0
          : static_cast<int>(std::max_element(floor_votes.begin(),
                                              floor_votes.end()) -
                             floor_votes.begin());
  Vec2 mean{0, 0};
  int cnt = 0;
  for (int x = s; x <= e; ++x) {
    if (seq[x].location.floor == rep_floor) {
      mean = mean + seq[x].location.xy;
      ++cnt;
    }
  }
  if (cnt > 0) mean = mean / static_cast<double>(cnt);
  double var = 0.0;
  for (int x = s; x <= e; ++x) {
    if (seq[x].location.floor == rep_floor) {
      var += (seq[x].location.xy - mean).SquaredNorm();
    }
  }
  SegmentDensity density;
  density.mean = IndoorPoint(mean, rep_floor);
  density.stddev = cnt > 1 ? std::sqrt(var / (2.0 * cnt)) : 0.0;
  return density;
}

/// Majority ground-truth region over [s, e]; kInvalidId if none labeled.
RegionId MajorityRegion(const LabeledSequence& ls, int s, int e) {
  std::vector<std::pair<RegionId, int>> counts;
  for (int x = s; x <= e; ++x) {
    const RegionId r = ls.labels.regions[x];
    if (r == kInvalidId) continue;
    bool found = false;
    for (auto& [region, count] : counts) {
      if (region == r) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(r, 1);
  }
  RegionId best = kInvalidId;
  int best_count = 0;
  for (const auto& [region, count] : counts) {
    if (count > best_count) {
      best = region;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

SapMethod::SapMethod(const World& world, SapSegmentation segmentation)
    : SapMethod(world, [&] {
        Params p;
        p.segmentation = segmentation;
        return p;
      }()) {}

SapMethod::SapMethod(const World& world, Params params)
    : world_(world), params_(params) {}

std::vector<MobilityEvent> SapMethod::Segment(
    const PSequence& sequence) const {
  const int n = static_cast<int>(sequence.size());
  std::vector<MobilityEvent> events(n, MobilityEvent::kPass);
  if (n == 0) return events;
  if (params_.segmentation == SapSegmentation::kDensityArea) {
    const StDbscanResult clustering = StDbscan(sequence, params_.dbscan);
    for (int i = 0; i < n; ++i) {
      events[i] = clustering.classes[i] == DensityClass::kNoise
                      ? MobilityEvent::kPass
                      : MobilityEvent::kStay;
    }
    return events;
  }
  // Dynamic velocity: stay iff the smoothed speed falls below a fraction
  // of the sequence's own mean speed.
  std::vector<double> edge(n > 1 ? n - 1 : 0);
  double mean_speed = 0.0;
  for (int i = 0; i + 1 < n; ++i) {
    const double dt =
        std::max(1e-6, sequence[i + 1].timestamp - sequence[i].timestamp);
    edge[i] =
        HorizontalDistance(sequence[i].location, sequence[i + 1].location) /
        dt;
    mean_speed += edge[i];
  }
  if (!edge.empty()) mean_speed /= static_cast<double>(edge.size());
  const double threshold = params_.dv_factor * mean_speed;
  const int w = params_.dv_smoothing_window;
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    int cnt = 0;
    for (int j = i - w; j < i + w; ++j) {
      if (j >= 0 && j < static_cast<int>(edge.size())) {
        sum += edge[j];
        ++cnt;
      }
    }
    const double speed = cnt > 0 ? sum / cnt : 0.0;
    events[i] =
        speed <= threshold ? MobilityEvent::kStay : MobilityEvent::kPass;
  }
  return events;
}

void SapMethod::Train(const std::vector<const LabeledSequence*>& train) {
  Stopwatch watch;
  const int num_regions = static_cast<int>(world_.plan().regions().size());
  std::vector<std::vector<double>> counts(
      num_regions, std::vector<double>(num_regions,
                                       params_.laplace_smoothing));
  // Transition counts between consecutive ground-truth stay segments.
  for (const LabeledSequence* ls : train) {
    const int n = static_cast<int>(ls->size());
    RegionId previous = kInvalidId;
    int s = 0;
    while (s < n) {
      int e = s;
      while (e + 1 < n && ls->labels.events[e + 1] == ls->labels.events[s]) {
        ++e;
      }
      if (ls->labels.events[s] == MobilityEvent::kStay) {
        const RegionId region = MajorityRegion(*ls, s, e);
        if (region != kInvalidId) {
          if (previous != kInvalidId) counts[previous][region] += 1.0;
          previous = region;
        }
      }
      s = e + 1;
    }
  }
  log_transition_.assign(num_regions, std::vector<double>(num_regions, 0.0));
  for (int a = 0; a < num_regions; ++a) {
    double total = 0.0;
    for (double c : counts[a]) total += c;
    for (int b = 0; b < num_regions; ++b) {
      log_transition_[a][b] = std::log(counts[a][b] / total);
    }
  }
  train_seconds_ = watch.ElapsedSeconds();
}

LabelSequence SapMethod::Annotate(const PSequence& sequence) const {
  const int n = static_cast<int>(sequence.size());
  LabelSequence labels(n);
  if (n == 0) return labels;
  labels.events = Segment(sequence);

  // Collect stay segments.
  struct StaySegment {
    int s, e;
    std::vector<RegionId> candidates;
    std::vector<double> log_emission;
  };
  std::vector<StaySegment> stays;
  int s = 0;
  while (s < n) {
    int e = s;
    while (e + 1 < n && labels.events[e + 1] == labels.events[s]) ++e;
    if (labels.events[s] == MobilityEvent::kStay) stays.push_back({s, e, {}, {}});
    s = e + 1;
  }

  // Emission: intersection ratio of the segment's Gaussian density disk
  // with each nearby region's footprint.
  for (StaySegment& seg : stays) {
    const SegmentDensity density = SegmentGaussian(sequence, seg.s, seg.e);
    const double radius =
        std::max(params_.min_density_radius, 2.0 * density.stddev);
    for (const auto& [region, dist] : world_.index().NearestRegions(
             density.mean, params_.candidate_k,
             params_.candidate_max_distance)) {
      double overlap = 0.0;
      for (PartitionId pid : world_.plan().region(region).partitions) {
        const Partition& part = world_.plan().partition(pid);
        if (part.floor != density.mean.floor) continue;
        overlap +=
            CirclePolygonIntersectionArea(density.mean.xy, radius, part.shape);
      }
      const double disk = M_PI * radius * radius;
      seg.candidates.push_back(region);
      seg.log_emission.push_back(std::log(overlap / disk + 1e-6));
    }
    if (seg.candidates.empty()) {
      const RegionId nearest = world_.index().NearestRegion(density.mean);
      seg.candidates.push_back(nearest != kInvalidId ? nearest : 0);
      seg.log_emission.push_back(0.0);
    }
  }

  // Viterbi over the stay-segment chain.
  if (!stays.empty()) {
    ChainPotentials pots;
    pots.node.resize(stays.size());
    pots.edge.resize(stays.size() - 1);
    for (size_t k = 0; k < stays.size(); ++k) {
      pots.node[k] = stays[k].log_emission;
      if (k + 1 < stays.size()) {
        pots.edge[k].assign(
            stays[k].candidates.size(),
            std::vector<double>(stays[k + 1].candidates.size(), 0.0));
        for (size_t a = 0; a < stays[k].candidates.size(); ++a) {
          for (size_t b = 0; b < stays[k + 1].candidates.size(); ++b) {
            pots.edge[k][a][b] =
                log_transition_[stays[k].candidates[a]]
                               [stays[k + 1].candidates[b]];
          }
        }
      }
    }
    const std::vector<int> decoded = ChainModel(std::move(pots)).Viterbi();
    for (size_t k = 0; k < stays.size(); ++k) {
      for (int x = stays[k].s; x <= stays[k].e; ++x) {
        labels.regions[x] = stays[k].candidates[decoded[k]];
      }
    }
  }
  // Pass records: individual nearest region.
  for (int i = 0; i < n; ++i) {
    if (labels.events[i] == MobilityEvent::kPass) {
      const RegionId region =
          world_.index().NearestRegion(sequence[i].location);
      labels.regions[i] = region != kInvalidId ? region : 0;
    }
  }
  return labels;
}

}  // namespace c2mn
