#ifndef C2MN_BASELINES_SAP_H_
#define C2MN_BASELINES_SAP_H_

#include <memory>
#include <vector>

#include "baselines/method.h"
#include "clustering/st_dbscan.h"
#include "sim/world.h"

namespace c2mn {

/// Stop/move segmentation algorithm of the SAP baseline (Yan et al. [26]).
enum class SapSegmentation {
  kDynamicVelocity,  ///< SAPDV: dynamic speed threshold.
  kDensityArea,      ///< SAPDA: density-area (st-DBSCAN) segmentation.
};

/// \brief The layered Semantic Annotation Platform baseline (Section V-A).
///
/// First divides the sequence into stay (stop) and pass (move) segments —
/// dynamic-velocity-based or density-area-based.  Each stay segment is
/// then labeled with a region by an HMM over stay segments: the
/// observation probability between a segment and a region is the
/// intersection ratio of the segment's Gaussian location density (a disk
/// of two standard deviations around the segment mean) with the region's
/// footprint, and transition probabilities are frequency-counted from the
/// ground-truth stay segments.  Records in pass segments take their
/// individual nearest region.
class SapMethod : public AnnotationMethod {
 public:
  struct Params {
    SapSegmentation segmentation = SapSegmentation::kDynamicVelocity;
    StDbscanParams dbscan;            ///< Used by kDensityArea.
    int dv_smoothing_window = 3;      ///< Speed smoothing radius (records).
    double dv_factor = 0.8;           ///< Stay iff speed < factor · mean.
    double laplace_smoothing = 0.5;
    /// Candidate regions per stay segment in Viterbi decoding.
    int candidate_k = 8;
    double candidate_max_distance = 40.0;
    /// Lower bound on the Gaussian-density disk radius (meters).
    double min_density_radius = 5.0;
  };

  SapMethod(const World& world, SapSegmentation segmentation);
  SapMethod(const World& world, Params params);

  std::string name() const override {
    return params_.segmentation == SapSegmentation::kDynamicVelocity
               ? "SAPDV"
               : "SAPDA";
  }
  void Train(const std::vector<const LabeledSequence*>& train) override;
  LabelSequence Annotate(const PSequence& sequence) const override;

 private:
  /// Per-record stay/pass segmentation, before region labeling.
  std::vector<MobilityEvent> Segment(const PSequence& sequence) const;

  const World& world_;
  Params params_;
  /// log P(r_next | r_prev) between consecutive stay segments.
  std::vector<std::vector<double>> log_transition_;
};

}  // namespace c2mn

#endif  // C2MN_BASELINES_SAP_H_
