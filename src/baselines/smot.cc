#include "baselines/smot.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace c2mn {

namespace {

/// Smoothed per-record speed: the mean edge speed over a window around i.
std::vector<double> SmoothedSpeeds(const PSequence& seq, int window) {
  const int n = static_cast<int>(seq.size());
  std::vector<double> edge(n > 1 ? n - 1 : 0);
  for (int i = 0; i + 1 < n; ++i) {
    const double dt =
        std::max(1e-6, seq[i + 1].timestamp - seq[i].timestamp);
    edge[i] = HorizontalDistance(seq[i].location, seq[i + 1].location) / dt;
  }
  std::vector<double> out(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    int cnt = 0;
    for (int j = std::max(0, i - window); j <= i + window - 1; ++j) {
      if (j >= 0 && j < static_cast<int>(edge.size())) {
        sum += edge[j];
        ++cnt;
      }
    }
    out[i] = cnt > 0 ? sum / cnt : 0.0;
  }
  return out;
}

std::vector<MobilityEvent> ThresholdEvents(const std::vector<double>& speeds,
                                           double threshold) {
  std::vector<MobilityEvent> events(speeds.size());
  for (size_t i = 0; i < speeds.size(); ++i) {
    events[i] = speeds[i] <= threshold ? MobilityEvent::kStay
                                       : MobilityEvent::kPass;
  }
  return events;
}

}  // namespace

void SmotMethod::Train(const std::vector<const LabeledSequence*>& train) {
  Stopwatch watch;
  // Grid-search the speed threshold for the best event accuracy.
  double best_threshold = params_.speed_threshold_mps;
  double best_correct = -1.0;
  for (double threshold = 0.1; threshold <= 1.6; threshold += 0.1) {
    double correct = 0.0;
    for (const LabeledSequence* ls : train) {
      const auto speeds =
          SmoothedSpeeds(ls->sequence, params_.smoothing_window);
      const auto events = ThresholdEvents(speeds, threshold);
      for (size_t i = 0; i < events.size(); ++i) {
        if (events[i] == ls->labels.events[i]) correct += 1.0;
      }
    }
    if (correct > best_correct) {
      best_correct = correct;
      best_threshold = threshold;
    }
  }
  params_.speed_threshold_mps = best_threshold;
  train_seconds_ = watch.ElapsedSeconds();
}

LabelSequence SmotMethod::Annotate(const PSequence& sequence) const {
  const int n = static_cast<int>(sequence.size());
  LabelSequence labels(n);
  if (n == 0) return labels;
  const auto speeds = SmoothedSpeeds(sequence, params_.smoothing_window);
  labels.events = ThresholdEvents(speeds, params_.speed_threshold_mps);

  // Nearest region of each event run's representative location.
  int s = 0;
  while (s < n) {
    int e = s;
    while (e + 1 < n && labels.events[e + 1] == labels.events[s]) ++e;
    // Representative: mean location on the run's majority floor.
    std::vector<int> floor_votes;
    for (int x = s; x <= e; ++x) {
      const int f = sequence[x].location.floor;
      if (f >= static_cast<int>(floor_votes.size())) {
        floor_votes.resize(f + 1, 0);
      }
      if (f >= 0) ++floor_votes[f];
    }
    const int rep_floor =
        floor_votes.empty()
            ? 0
            : static_cast<int>(std::max_element(floor_votes.begin(),
                                                floor_votes.end()) -
                               floor_votes.begin());
    Vec2 mean{0, 0};
    int cnt = 0;
    for (int x = s; x <= e; ++x) {
      if (sequence[x].location.floor == rep_floor) {
        mean = mean + sequence[x].location.xy;
        ++cnt;
      }
    }
    if (cnt > 0) mean = mean / static_cast<double>(cnt);
    const RegionId region =
        world_.index().NearestRegion(IndoorPoint(mean, rep_floor));
    for (int x = s; x <= e; ++x) {
      labels.regions[x] = region != kInvalidId ? region : 0;
    }
    s = e + 1;
  }
  return labels;
}

}  // namespace c2mn
