#ifndef C2MN_BASELINES_SMOT_H_
#define C2MN_BASELINES_SMOT_H_

#include "baselines/method.h"
#include "sim/world.h"

namespace c2mn {

/// \brief The SMoT baseline (Alvares et al. [2], as instantiated in
/// Section V-A): "uses a speed threshold to distinguish stay and pass
/// events on a sequence, and the nearest-neighbor regions as region labels
/// for the representative locations in an event."
///
/// Records whose (window-smoothed) speed is below the threshold are stay,
/// others pass.  Each maximal run of equal events takes the semantic
/// region nearest to the run's representative (mean) location.  Train()
/// grid-searches the speed threshold for the best event accuracy on the
/// training data, so SMoT benefits from the labeled data too.
class SmotMethod : public AnnotationMethod {
 public:
  struct Params {
    double speed_threshold_mps = 0.5;
    int smoothing_window = 3;  ///< Records on each side in speed smoothing.
  };

  explicit SmotMethod(const World& world) : world_(world) {}
  SmotMethod(const World& world, Params params)
      : world_(world), params_(params) {}

  std::string name() const override { return "SMoT"; }
  void Train(const std::vector<const LabeledSequence*>& train) override;
  LabelSequence Annotate(const PSequence& sequence) const override;

  const Params& params() const { return params_; }

 private:
  const World& world_;
  Params params_;
};

}  // namespace c2mn

#endif  // C2MN_BASELINES_SMOT_H_
