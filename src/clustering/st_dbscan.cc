#include "clustering/st_dbscan.h"

#include <cassert>
#include <deque>

namespace c2mn {

namespace {

/// Neighborhood of record i, exploiting time order: only a contiguous
/// window around i can be within eps_temporal.
std::vector<int> Neighborhood(const PSequence& seq, int i,
                              const StDbscanParams& params) {
  std::vector<int> out;
  const int n = static_cast<int>(seq.size());
  const PositioningRecord& center = seq[i];
  for (int j = i; j >= 0; --j) {
    if (center.timestamp - seq[j].timestamp > params.eps_temporal) break;
    if (seq[j].location.floor == center.location.floor &&
        HorizontalDistance(seq[j].location, center.location) <=
            params.eps_spatial) {
      out.push_back(j);
    }
  }
  for (int j = i + 1; j < n; ++j) {
    if (seq[j].timestamp - center.timestamp > params.eps_temporal) break;
    if (seq[j].location.floor == center.location.floor &&
        HorizontalDistance(seq[j].location, center.location) <=
            params.eps_spatial) {
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace

StDbscanResult StDbscan(const PSequence& sequence,
                        const StDbscanParams& params) {
  assert(params.min_points >= 1);
  const int n = static_cast<int>(sequence.size());
  StDbscanResult result;
  result.cluster_ids.assign(n, -1);
  result.classes.assign(n, DensityClass::kNoise);
  if (n == 0) return result;

  // Pass 1: find core points.
  std::vector<std::vector<int>> neighbors(n);
  std::vector<bool> is_core(n, false);
  for (int i = 0; i < n; ++i) {
    neighbors[i] = Neighborhood(sequence, i, params);
    is_core[i] = static_cast<int>(neighbors[i].size()) >= params.min_points;
    if (is_core[i]) result.classes[i] = DensityClass::kCore;
  }

  // Pass 2: grow clusters by BFS over core points.
  int next_cluster = 0;
  for (int i = 0; i < n; ++i) {
    if (!is_core[i] || result.cluster_ids[i] != -1) continue;
    const int cid = next_cluster++;
    std::deque<int> frontier = {i};
    result.cluster_ids[i] = cid;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop_front();
      for (int v : neighbors[u]) {
        if (result.cluster_ids[v] == -1) {
          result.cluster_ids[v] = cid;
          if (is_core[v]) {
            frontier.push_back(v);
          } else {
            result.classes[v] = DensityClass::kBorder;
          }
        }
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace c2mn
