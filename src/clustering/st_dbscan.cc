#include "clustering/st_dbscan.h"

#include <cassert>

namespace c2mn {

namespace {

/// Appends the neighborhood of record i to `out`, exploiting time order:
/// only a contiguous window around i can be within eps_temporal.
void AppendNeighborhood(const PSequence& seq, int i,
                        const StDbscanParams& params, std::vector<int>* out) {
  const int n = static_cast<int>(seq.size());
  const PositioningRecord& center = seq[i];
  for (int j = i; j >= 0; --j) {
    if (center.timestamp - seq[j].timestamp > params.eps_temporal) break;
    if (seq[j].location.floor == center.location.floor &&
        HorizontalDistance(seq[j].location, center.location) <=
            params.eps_spatial) {
      out->push_back(j);
    }
  }
  for (int j = i + 1; j < n; ++j) {
    if (seq[j].timestamp - center.timestamp > params.eps_temporal) break;
    if (seq[j].location.floor == center.location.floor &&
        HorizontalDistance(seq[j].location, center.location) <=
            params.eps_spatial) {
      out->push_back(j);
    }
  }
}

}  // namespace

void StDbscanInto(const PSequence& sequence, const StDbscanParams& params,
                  StDbscanScratch* scratch, StDbscanResult* result) {
  assert(params.min_points >= 1);
  const int n = static_cast<int>(sequence.size());
  result->cluster_ids.assign(n, -1);
  result->classes.assign(n, DensityClass::kNoise);
  result->num_clusters = 0;
  if (n == 0) return;

  // Pass 1: find core points.  Neighbor lists are concatenated into one
  // CSR buffer instead of n per-record vectors.
  scratch->neighbor_data.clear();
  scratch->neighbor_off.resize(n + 1);
  scratch->is_core.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    scratch->neighbor_off[i] = scratch->neighbor_data.size();
    AppendNeighborhood(sequence, i, params, &scratch->neighbor_data);
    const size_t count =
        scratch->neighbor_data.size() - scratch->neighbor_off[i];
    scratch->is_core[i] = count >= static_cast<size_t>(params.min_points);
    if (scratch->is_core[i]) result->classes[i] = DensityClass::kCore;
  }
  scratch->neighbor_off[n] = scratch->neighbor_data.size();

  // Pass 2: grow clusters by BFS over core points.  The frontier is a
  // head-indexed vector (FIFO without deque block churn).
  int next_cluster = 0;
  for (int i = 0; i < n; ++i) {
    if (!scratch->is_core[i] || result->cluster_ids[i] != -1) continue;
    const int cid = next_cluster++;
    scratch->frontier.clear();
    scratch->frontier.push_back(i);
    size_t head = 0;
    result->cluster_ids[i] = cid;
    while (head < scratch->frontier.size()) {
      const int u = scratch->frontier[head++];
      const size_t lo = scratch->neighbor_off[u];
      const size_t hi = scratch->neighbor_off[u + 1];
      for (size_t x = lo; x < hi; ++x) {
        const int v = scratch->neighbor_data[x];
        if (result->cluster_ids[v] == -1) {
          result->cluster_ids[v] = cid;
          if (scratch->is_core[v]) {
            scratch->frontier.push_back(v);
          } else {
            result->classes[v] = DensityClass::kBorder;
          }
        }
      }
    }
  }
  result->num_clusters = next_cluster;
}

StDbscanResult StDbscan(const PSequence& sequence,
                        const StDbscanParams& params) {
  StDbscanScratch scratch;
  StDbscanResult result;
  StDbscanInto(sequence, params, &scratch, &result);
  return result;
}

}  // namespace c2mn
