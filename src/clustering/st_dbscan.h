#ifndef C2MN_CLUSTERING_ST_DBSCAN_H_
#define C2MN_CLUSTERING_ST_DBSCAN_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/records.h"

namespace c2mn {

/// \brief Spatiotemporal density class of a positioning record, the θ.D
/// attribute consumed by the event matching feature f_em.
enum class DensityClass : uint8_t {
  kCore = 0,
  kBorder = 1,
  kNoise = 2,
};

inline const char* DensityClassName(DensityClass d) {
  switch (d) {
    case DensityClass::kCore:
      return "core";
    case DensityClass::kBorder:
      return "border";
    case DensityClass::kNoise:
      return "noise";
  }
  return "?";
}

/// \brief Parameters of st-DBSCAN (Birant & Kut [3]) as used by the paper:
/// spatial radius εs, temporal radius εt, and minimum cluster size ptm.
struct StDbscanParams {
  double eps_spatial = 8.0;    ///< εs, meters (paper: 8 m on real data).
  double eps_temporal = 60.0;  ///< εt, seconds (paper: 60 s).
  int min_points = 4;          ///< ptm (paper: 4).
};

/// Scales ptm with the sampling rate: a stay of εt seconds contains about
/// εt / avg_period records, so the cluster-size threshold must grow as
/// sampling gets denser or walking records start forming clusters too.
/// At the paper's mall rate (~1/15 Hz) this returns the paper's ptm = 4.
inline StDbscanParams TuneForSamplingPeriod(double avg_period_seconds) {
  StDbscanParams params;
  const double per_window =
      params.eps_temporal / std::max(1e-6, avg_period_seconds);
  params.min_points =
      std::max(4, static_cast<int>(0.8 * per_window + 0.5));
  return params;
}

/// \brief Clustering output: a cluster id per record (-1 = noise) and a
/// density class per record.
struct StDbscanResult {
  std::vector<int> cluster_ids;
  std::vector<DensityClass> classes;
  int num_clusters = 0;
};

/// \brief Reusable working memory for StDbscanInto: the CSR neighbor
/// lists and the BFS frontier.  Buffers grow to the largest sequence seen
/// and are never shrunk, so a warmed-up scratch makes every clustering
/// call allocation-free (SequenceGraph rebuilds run once per streaming
/// decode, so this is on the annotation hot path).
struct StDbscanScratch {
  std::vector<int> neighbor_data;  ///< Concatenated neighbor lists.
  std::vector<size_t> neighbor_off;  ///< [n + 1] offsets into neighbor_data.
  std::vector<uint8_t> is_core;
  std::vector<int> frontier;  ///< BFS queue (head index, never pops front).
};

/// \brief Runs st-DBSCAN over the records of one p-sequence.
///
/// Two records are neighbors when their horizontal distance is within
/// eps_spatial, they are on the same floor, and their timestamps differ by
/// at most eps_temporal.  A record with at least `min_points` neighbors
/// (itself included) is a core point; a non-core record in some core's
/// neighborhood is a border point; anything else is noise.
///
/// Stays produce dense spatiotemporal blobs, so core/border points signal
/// stay and noise signals pass — this is both the f_em feature and the
/// E-initialization of Algorithm 1 (line 1).
StDbscanResult StDbscan(const PSequence& sequence,
                        const StDbscanParams& params);

/// StDbscan into caller-owned result/scratch buffers (same output, no
/// allocations once both have warmed up to the working-set size).
void StDbscanInto(const PSequence& sequence, const StDbscanParams& params,
                  StDbscanScratch* scratch, StDbscanResult* result);

}  // namespace c2mn

#endif  // C2MN_CLUSTERING_ST_DBSCAN_H_
