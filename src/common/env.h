#ifndef C2MN_COMMON_ENV_H_
#define C2MN_COMMON_ENV_H_

#include <cstdlib>
#include <string>

namespace c2mn {

/// Reads an integer from the environment, falling back to `fallback`.
/// Used by bench binaries so experiment scale can be raised toward the
/// paper's scale without recompiling (e.g. C2MN_BENCH_SEQS=2000).
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

/// Reads a double from the environment, falling back to `fallback`.
inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

}  // namespace c2mn

#endif  // C2MN_COMMON_ENV_H_
