#include "common/logging.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <thread>

namespace c2mn {
namespace {

// Stable short id for the calling thread (std::thread::id has no portable
// compact rendering; hash it once per thread).
unsigned long ThreadTag() {
  static thread_local const unsigned long tag = static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff);
  return tag;
}

}  // namespace

Logger& Logger::Global() {
  static Logger logger;
  return logger;
}

Logger::Logger()
    : level_(ParseLevel(std::getenv("C2MN_LOG_LEVEL"), LogLevel::kInfo)) {}

LogLevel Logger::ParseLevel(const char* spec, LogLevel fallback) {
  if (spec == nullptr || *spec == '\0') return fallback;
  std::string lower;
  for (const char* p = spec; *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return fallback;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      static_cast<int>(level_.load(std::memory_order_relaxed))) {
    return;
  }
  const char* tag = "INFO";
  switch (level) {
    case LogLevel::kDebug:
      tag = "DEBUG";
      break;
    case LogLevel::kInfo:
      tag = "INFO";
      break;
    case LogLevel::kWarning:
      tag = "WARN";
      break;
    case LogLevel::kError:
      tag = "ERROR";
      break;
    case LogLevel::kOff:
      return;
  }

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &secs);
#else
  gmtime_r(&secs, &tm_utc);
#endif
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(millis));

  // Assemble the full line first and emit it with one fwrite so lines from
  // concurrent shard workers never interleave mid-line (POSIX makes a
  // single stdio write atomic with respect to other stdio writes).
  std::string line;
  line.reserve(message.size() + 64);
  line.append("[c2mn ");
  line.append(stamp);
  line.push_back(' ');
  line.append(tag);
  char tid[16];
  std::snprintf(tid, sizeof(tid), " t%06lx] ", ThreadTag());
  line.append(tid);
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace c2mn
