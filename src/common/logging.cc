#include "common/logging.h"

#include <cstdio>

namespace c2mn {

Logger& Logger::Global() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  const char* tag = "INFO";
  switch (level) {
    case LogLevel::kDebug:
      tag = "DEBUG";
      break;
    case LogLevel::kInfo:
      tag = "INFO";
      break;
    case LogLevel::kWarning:
      tag = "WARN";
      break;
    case LogLevel::kError:
      tag = "ERROR";
      break;
    case LogLevel::kOff:
      return;
  }
  std::fprintf(stderr, "[c2mn %s] %s\n", tag, message.c_str());
}

}  // namespace c2mn
