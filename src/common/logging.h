#ifndef C2MN_COMMON_LOGGING_H_
#define C2MN_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

namespace c2mn {

/// \brief Severity levels for the library logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Minimal leveled logger writing to stderr.
///
/// Experiments print their results to stdout; diagnostics go through this
/// logger so they can be silenced (benches set the level to kWarning).
///
/// Multi-thread contract (the annotation service logs from its shard
/// workers while the main thread may call set_level):
///  - the level is atomic, so concurrent set_level/level never race;
///  - each line is emitted with a single write, so lines from concurrent
///    workers never interleave mid-line;
///  - every line carries an ISO-8601 UTC timestamp and the emitting
///    thread's id, so interleaved worker output can be reconstructed.
///
/// The startup level honors the C2MN_LOG_LEVEL environment variable
/// ("debug" | "info" | "warn" | "error" | "off", case-insensitive, or
/// the numeric LogLevel value); set_level overrides it at runtime.
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Global();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Emits one line at `level`, prefixed with the timestamp, severity
  /// tag, and thread id, via a single stderr write.
  void Log(LogLevel level, const std::string& message);

  /// Parses a C2MN_LOG_LEVEL-style spec; returns `fallback` when the
  /// spec is null, empty, or unrecognized.
  static LogLevel ParseLevel(const char* spec, LogLevel fallback);

 private:
  Logger();

  std::atomic<LogLevel> level_;
};

namespace internal {

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace c2mn

#define C2MN_LOG_DEBUG ::c2mn::internal::LogMessage(::c2mn::LogLevel::kDebug)
#define C2MN_LOG_INFO ::c2mn::internal::LogMessage(::c2mn::LogLevel::kInfo)
#define C2MN_LOG_WARN ::c2mn::internal::LogMessage(::c2mn::LogLevel::kWarning)
#define C2MN_LOG_ERROR ::c2mn::internal::LogMessage(::c2mn::LogLevel::kError)

#endif  // C2MN_COMMON_LOGGING_H_
