#ifndef C2MN_COMMON_LOGGING_H_
#define C2MN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace c2mn {

/// \brief Severity levels for the library logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Minimal leveled logger writing to stderr.
///
/// Experiments print their results to stdout; diagnostics go through this
/// logger so they can be silenced (benches set the level to kWarning).
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Global();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits one line at `level`, prefixed with the severity tag.
  void Log(LogLevel level, const std::string& message);

 private:
  LogLevel level_ = LogLevel::kInfo;
};

namespace internal {

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace c2mn

#define C2MN_LOG_DEBUG ::c2mn::internal::LogMessage(::c2mn::LogLevel::kDebug)
#define C2MN_LOG_INFO ::c2mn::internal::LogMessage(::c2mn::LogLevel::kInfo)
#define C2MN_LOG_WARN ::c2mn::internal::LogMessage(::c2mn::LogLevel::kWarning)
#define C2MN_LOG_ERROR ::c2mn::internal::LogMessage(::c2mn::LogLevel::kError)

#endif  // C2MN_COMMON_LOGGING_H_
