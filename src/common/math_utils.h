#ifndef C2MN_COMMON_MATH_UTILS_H_
#define C2MN_COMMON_MATH_UTILS_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace c2mn {

/// Numerically stable log(sum(exp(x_i))).
inline double LogSumExp(const std::vector<double>& xs) {
  assert(!xs.empty());
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

/// In-place softmax over unnormalized log-scores.
inline void SoftmaxInPlace(std::vector<double>* logits) {
  const double lse = LogSumExp(*logits);
  for (double& x : *logits) x = std::exp(x - lse);
}

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

/// Chebyshev (L-infinity) distance between two equal-length vectors;
/// the convergence criterion of Algorithm 1 (line 18).
inline double ChebyshevDistance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  assert(a.size() == b.size());
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

/// Euclidean norm.
inline double L2Norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

/// Dot product of equal-length vectors.
inline double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// a += scale * b (vectors of equal length).
inline void Axpy(double scale, const std::vector<double>& b,
                 std::vector<double>* a) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += scale * b[i];
}

/// Arithmetic mean; 0 for an empty range.
inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Population standard deviation; 0 for fewer than two samples.
inline double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

}  // namespace c2mn

#endif  // C2MN_COMMON_MATH_UTILS_H_
