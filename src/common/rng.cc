#include "common/rng.h"

#include <cmath>

namespace c2mn {
namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  have_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform01();
  } while (u1 <= 1e-300);
  u2 = Uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  have_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = Uniform01() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

Rng Rng::Split() {
  Rng child(Next() ^ 0xD3AD5EEDDEADBEEFull);
  return child;
}

Rng Rng::Stream(uint64_t seed, uint64_t stream) {
  // Two SplitMix64 rounds over a mix of both inputs: adjacent (seed,
  // stream) pairs (the common case: stream = sequence ordinal) land on
  // unrelated points of the seed space before Rng::Seed expands them.
  uint64_t sm = seed ^ Rotl(stream + 0x9E3779B97F4A7C15ull, 31);
  const uint64_t a = SplitMix64(&sm);
  sm ^= stream * 0xBF58476D1CE4E5B9ull;
  const uint64_t b = SplitMix64(&sm);
  return Rng(a ^ Rotl(b, 17));
}

}  // namespace c2mn
