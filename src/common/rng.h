#ifndef C2MN_COMMON_RNG_H_
#define C2MN_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace c2mn {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (simulator, MCMC sampler,
/// weight initialization) takes an explicit Rng so that experiments are
/// reproducible bit-for-bit from a seed.  The generator is cheap to copy,
/// and `Split()` derives an independent stream for parallel components.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xC2F1D00Dull) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 state expansion.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// Samples an index according to the (unnormalized, non-negative)
  /// weights.  Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent generator for a parallel component.
  Rng Split();

  /// Derives the `stream`-th member of a family of statistically
  /// independent generators rooted at `seed`, without consuming state from
  /// any existing generator.  Unlike Split(), which advances the parent,
  /// Stream(seed, k) is a pure function of (seed, k): parallel workers can
  /// each construct their own stream in any order (or concurrently) and
  /// the result is identical to a serial construction — the property the
  /// trainer relies on for thread-count-invariant results.
  static Rng Stream(uint64_t seed, uint64_t stream);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace c2mn

#endif  // C2MN_COMMON_RNG_H_
