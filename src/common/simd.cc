#include "common/simd.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/sync.h"

#if !defined(C2MN_SIMD_DISABLED)
#if defined(__x86_64__)
#define C2MN_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define C2MN_SIMD_ARM 1
#include <arm_neon.h>
#endif
#endif  // !C2MN_SIMD_DISABLED

namespace c2mn {
namespace simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Cephes-style exp constants (double precision).  exp(x) is reduced to
// 2^n * exp(r) with n = floor(x*log2(e) + 0.5) and r = x - n*ln2 (ln2
// split into hi/lo parts C1 + C2 for an exact reduction), then exp(r) is
// a rational approximation in r^2.  Accuracy is ~1 ulp over the reduced
// range; results below kExpMin flush to 0 (the true values there are
// subnormal and contribute nothing to log-sum-exp accumulators).
constexpr double kLog2e = 1.4426950408889634073599;
constexpr double kExpC1 = 6.93145751953125E-1;
constexpr double kExpC2 = 1.42860682030941723212E-6;
constexpr double kExpP0 = 1.26177193074810590878E-4;
constexpr double kExpP1 = 3.02994407707441961300E-2;
constexpr double kExpP2 = 9.99999999999999999910E-1;
constexpr double kExpQ0 = 3.00198505138664455042E-6;
constexpr double kExpQ1 = 2.52448340349684104192E-3;
constexpr double kExpQ2 = 2.27265548208155028766E-1;
constexpr double kExpQ3 = 2.00000000000000000005E0;
constexpr double kExpMax = 709.782712893383996843;
constexpr double kExpMin = simd::kExpFlushMin;

struct OpsTable {
  double (*row_max)(const double*, int);
  void (*bias_add)(double*, const double*, int);
  void (*max_plus_step)(double, const double*, double*, int*, int, int);
  void (*exp_accumulate)(double, const double*, double*, int);
  double (*sum_exp_shifted)(const double*, const double*, double, int);
  double (*exp_sum_row)(double, const double*, int);
  void (*exp_normalize)(double*, double, int);
};

// ---------------------------------------------------------------------------
// Scalar tier.  Uses std::exp so a forced-scalar run reproduces the
// pre-SIMD libm-based numbers bit for bit.
// ---------------------------------------------------------------------------

double RowMaxScalar(const double* x, int n) {
  double m = -kInf;
  for (int i = 0; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void BiasAddScalar(double* x, const double* b, int n) {
  for (int i = 0; i < n; ++i) x[i] += b[i];
}

void MaxPlusStepScalar(double va, const double* row, double* cur, int* back,
                       int a, int n) {
  for (int i = 0; i < n; ++i) {
    const double score = va + row[i];
    if (score > cur[i]) {
      cur[i] = score;
      back[i] = a;
    }
  }
}

void ExpAccumulateScalar(double base, const double* row, double* acc, int n) {
  for (int i = 0; i < n; ++i) acc[i] += std::exp(base + row[i]);
}

double SumExpShiftedScalar(const double* row, const double* v, double shift,
                           int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += std::exp(row[i] + v[i] - shift);
  return acc;
}

double ExpSumRowScalar(double m, const double* x, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += std::exp(x[i] - m);
  return acc;
}

void ExpNormalizeScalar(double* x, double lse, int n) {
  for (int i = 0; i < n; ++i) x[i] = std::exp(x[i] - lse);
}

constexpr OpsTable kScalarOps = {
    RowMaxScalar,        BiasAddScalar,   MaxPlusStepScalar,
    ExpAccumulateScalar, SumExpShiftedScalar, ExpSumRowScalar,
    ExpNormalizeScalar,
};

}  // namespace

namespace internal {

double PolyExp(double x) {
  if (x > kExpMax) return kInf;
  if (x < kExpMin) return 0.0;  // flush-to-zero below the normal range
  const double pxf = std::floor(kLog2e * x + 0.5);
  const int n = static_cast<int>(pxf);
  double r = x - pxf * kExpC1;
  r -= pxf * kExpC2;
  const double rr = r * r;
  const double p = r * ((kExpP0 * rr + kExpP1) * rr + kExpP2);
  const double q = (((kExpQ0 * rr + kExpQ1) * rr + kExpQ2) * rr + kExpQ3);
  const double e = 1.0 + 2.0 * (p / (q - p));
  return std::ldexp(e, n);
}

}  // namespace internal

namespace {

#if defined(C2MN_SIMD_X86)

// ---------------------------------------------------------------------------
// SSE2 tier (x86_64 baseline, no target attribute needed).
// ---------------------------------------------------------------------------

inline __m128d Sse2Floor(__m128d v) {
  // Inputs are bounded (|v| < 2^31), so truncate-and-adjust is exact.
  const __m128d t = _mm_cvtepi32_pd(_mm_cvttpd_epi32(v));
  const __m128d adj = _mm_and_pd(_mm_cmpgt_pd(t, v), _mm_set1_pd(1.0));
  return _mm_sub_pd(t, adj);
}

inline __m128d Sse2Blend(__m128d mask, __m128d yes, __m128d no) {
  return _mm_or_pd(_mm_and_pd(mask, yes), _mm_andnot_pd(mask, no));
}

inline __m128d Sse2Exp(__m128d x) {
  const __m128d big = _mm_cmpgt_pd(x, _mm_set1_pd(kExpMax));
  const __m128d small = _mm_cmplt_pd(x, _mm_set1_pd(kExpMin));
  const __m128d xc = _mm_min_pd(_mm_max_pd(x, _mm_set1_pd(kExpMin)),
                                _mm_set1_pd(kExpMax));
  const __m128d pxf = Sse2Floor(
      _mm_add_pd(_mm_mul_pd(xc, _mm_set1_pd(kLog2e)), _mm_set1_pd(0.5)));
  __m128d r = _mm_sub_pd(xc, _mm_mul_pd(pxf, _mm_set1_pd(kExpC1)));
  r = _mm_sub_pd(r, _mm_mul_pd(pxf, _mm_set1_pd(kExpC2)));
  const __m128d rr = _mm_mul_pd(r, r);
  __m128d p = _mm_add_pd(_mm_mul_pd(_mm_set1_pd(kExpP0), rr),
                         _mm_set1_pd(kExpP1));
  p = _mm_add_pd(_mm_mul_pd(p, rr), _mm_set1_pd(kExpP2));
  p = _mm_mul_pd(p, r);
  __m128d q = _mm_add_pd(_mm_mul_pd(_mm_set1_pd(kExpQ0), rr),
                         _mm_set1_pd(kExpQ1));
  q = _mm_add_pd(_mm_mul_pd(q, rr), _mm_set1_pd(kExpQ2));
  q = _mm_add_pd(_mm_mul_pd(q, rr), _mm_set1_pd(kExpQ3));
  __m128d e = _mm_div_pd(p, _mm_sub_pd(q, p));
  e = _mm_add_pd(_mm_set1_pd(1.0), _mm_mul_pd(_mm_set1_pd(2.0), e));
  // Scale by 2^n in two exact power-of-two steps so |n| up to 1024 (the
  // finite edge of double range) never overflows the exponent field.
  const __m128i ni = _mm_cvtpd_epi32(pxf);
  const __m128i n1 = _mm_srai_epi32(ni, 1);
  const __m128i n2 = _mm_sub_epi32(ni, n1);
  const __m128i n1w = _mm_unpacklo_epi32(n1, _mm_srai_epi32(n1, 31));
  const __m128i n2w = _mm_unpacklo_epi32(n2, _mm_srai_epi32(n2, 31));
  const __m128i bias = _mm_set1_epi64x(1023);
  const __m128d s1 =
      _mm_castsi128_pd(_mm_slli_epi64(_mm_add_epi64(n1w, bias), 52));
  const __m128d s2 =
      _mm_castsi128_pd(_mm_slli_epi64(_mm_add_epi64(n2w, bias), 52));
  e = _mm_mul_pd(_mm_mul_pd(e, s1), s2);
  e = Sse2Blend(big, _mm_set1_pd(kInf), e);
  e = Sse2Blend(small, _mm_setzero_pd(), e);
  return e;
}

double RowMaxSse2(const double* x, int n) {
  int i = 0;
  __m128d vm = _mm_set1_pd(-kInf);
  for (; i + 2 <= n; i += 2) vm = _mm_max_pd(vm, _mm_loadu_pd(x + i));
  double lanes[2];
  _mm_storeu_pd(lanes, vm);
  double m = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void BiasAddSse2(double* x, const double* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_add_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(b + i)));
  }
  for (; i < n; ++i) x[i] += b[i];
}

void MaxPlusStepSse2(double va, const double* row, double* cur, int* back,
                     int a, int n) {
  int i = 0;
  const __m128d vva = _mm_set1_pd(va);
  const __m128i vaid = _mm_set1_epi32(a);
  for (; i + 2 <= n; i += 2) {
    const __m128d score = _mm_add_pd(vva, _mm_loadu_pd(row + i));
    const __m128d old = _mm_loadu_pd(cur + i);
    const __m128d gt = _mm_cmpgt_pd(score, old);
    _mm_storeu_pd(cur + i, Sse2Blend(gt, score, old));
    // Narrow the two 64-bit lane masks to 32 bits each (they are all-ones
    // or all-zeros, so the low words suffice) and blend the back-pointers.
    const __m128i gt32 = _mm_shuffle_epi32(_mm_castpd_si128(gt),
                                           _MM_SHUFFLE(2, 0, 2, 0));
    const __m128i oldb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(back + i));
    const __m128i newb = _mm_or_si128(_mm_and_si128(gt32, vaid),
                                      _mm_andnot_si128(gt32, oldb));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(back + i), newb);
  }
  for (; i < n; ++i) {
    const double score = va + row[i];
    if (score > cur[i]) {
      cur[i] = score;
      back[i] = a;
    }
  }
}

void ExpAccumulateSse2(double base, const double* row, double* acc, int n) {
  int i = 0;
  const __m128d vb = _mm_set1_pd(base);
  for (; i + 2 <= n; i += 2) {
    const __m128d e = Sse2Exp(_mm_add_pd(vb, _mm_loadu_pd(row + i)));
    _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), e));
  }
  for (; i < n; ++i) acc[i] += internal::PolyExp(base + row[i]);
}

double SumExpShiftedSse2(const double* row, const double* v, double shift,
                         int n) {
  int i = 0;
  const __m128d vs = _mm_set1_pd(shift);
  __m128d vacc = _mm_setzero_pd();
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_sub_pd(
        _mm_add_pd(_mm_loadu_pd(row + i), _mm_loadu_pd(v + i)), vs);
    vacc = _mm_add_pd(vacc, Sse2Exp(x));
  }
  double lanes[2];
  _mm_storeu_pd(lanes, vacc);
  double acc = lanes[0] + lanes[1];
  for (; i < n; ++i) acc += internal::PolyExp(row[i] + v[i] - shift);
  return acc;
}

double ExpSumRowSse2(double m, const double* x, int n) {
  int i = 0;
  const __m128d vm = _mm_set1_pd(m);
  __m128d vacc = _mm_setzero_pd();
  for (; i + 2 <= n; i += 2) {
    vacc = _mm_add_pd(vacc, Sse2Exp(_mm_sub_pd(_mm_loadu_pd(x + i), vm)));
  }
  double lanes[2];
  _mm_storeu_pd(lanes, vacc);
  double acc = lanes[0] + lanes[1];
  for (; i < n; ++i) acc += internal::PolyExp(x[i] - m);
  return acc;
}

void ExpNormalizeSse2(double* x, double lse, int n) {
  int i = 0;
  const __m128d vl = _mm_set1_pd(lse);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, Sse2Exp(_mm_sub_pd(_mm_loadu_pd(x + i), vl)));
  }
  for (; i < n; ++i) x[i] = internal::PolyExp(x[i] - lse);
}

constexpr OpsTable kSse2Ops = {
    RowMaxSse2,        BiasAddSse2,       MaxPlusStepSse2, ExpAccumulateSse2,
    SumExpShiftedSse2, ExpSumRowSse2,     ExpNormalizeSse2,
};

// ---------------------------------------------------------------------------
// AVX2 tier.  Per-function target attributes, so this translation unit
// builds without -mavx2 and the scalar/SSE2 tiers stay runnable on any
// x86_64 host; dispatch checks cpuid before ever pointing here.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256d Avx2Exp(__m256d x) {
  const __m256d big = _mm256_cmp_pd(x, _mm256_set1_pd(kExpMax), _CMP_GT_OQ);
  const __m256d small = _mm256_cmp_pd(x, _mm256_set1_pd(kExpMin), _CMP_LT_OQ);
  const __m256d xc = _mm256_min_pd(_mm256_max_pd(x, _mm256_set1_pd(kExpMin)),
                                   _mm256_set1_pd(kExpMax));
  const __m256d pxf = _mm256_floor_pd(_mm256_add_pd(
      _mm256_mul_pd(xc, _mm256_set1_pd(kLog2e)), _mm256_set1_pd(0.5)));
  __m256d r = _mm256_sub_pd(xc, _mm256_mul_pd(pxf, _mm256_set1_pd(kExpC1)));
  r = _mm256_sub_pd(r, _mm256_mul_pd(pxf, _mm256_set1_pd(kExpC2)));
  const __m256d rr = _mm256_mul_pd(r, r);
  __m256d p = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpP0), rr),
                            _mm256_set1_pd(kExpP1));
  p = _mm256_add_pd(_mm256_mul_pd(p, rr), _mm256_set1_pd(kExpP2));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpQ0), rr),
                            _mm256_set1_pd(kExpQ1));
  q = _mm256_add_pd(_mm256_mul_pd(q, rr), _mm256_set1_pd(kExpQ2));
  q = _mm256_add_pd(_mm256_mul_pd(q, rr), _mm256_set1_pd(kExpQ3));
  __m256d e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
  e = _mm256_add_pd(_mm256_set1_pd(1.0),
                    _mm256_mul_pd(_mm256_set1_pd(2.0), e));
  const __m128i ni = _mm256_cvtpd_epi32(pxf);
  const __m128i n1 = _mm_srai_epi32(ni, 1);
  const __m128i n2 = _mm_sub_epi32(ni, n1);
  const __m256i bias = _mm256_set1_epi64x(1023);
  const __m256d s1 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(n1), bias), 52));
  const __m256d s2 = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(n2), bias), 52));
  e = _mm256_mul_pd(_mm256_mul_pd(e, s1), s2);
  e = _mm256_blendv_pd(e, _mm256_set1_pd(kInf), big);
  e = _mm256_blendv_pd(e, _mm256_setzero_pd(), small);
  return e;
}

__attribute__((target("avx2"))) double RowMaxAvx2(const double* x, int n) {
  int i = 0;
  __m256d vm = _mm256_set1_pd(-kInf);
  for (; i + 4 <= n; i += 4) vm = _mm256_max_pd(vm, _mm256_loadu_pd(x + i));
  double lanes[4];
  _mm256_storeu_pd(lanes, vm);
  double m = lanes[0];
  for (int k = 1; k < 4; ++k) m = lanes[k] > m ? lanes[k] : m;
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

__attribute__((target("avx2"))) void BiasAddAvx2(double* x, const double* b,
                                                 int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        x + i, _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) x[i] += b[i];
}

__attribute__((target("avx2"))) void MaxPlusStepAvx2(double va,
                                                     const double* row,
                                                     double* cur, int* back,
                                                     int a, int n) {
  int i = 0;
  const __m256d vva = _mm256_set1_pd(va);
  const __m128i vaid = _mm_set1_epi32(a);
  for (; i + 4 <= n; i += 4) {
    const __m256d score = _mm256_add_pd(vva, _mm256_loadu_pd(row + i));
    const __m256d old = _mm256_loadu_pd(cur + i);
    const __m256d gt = _mm256_cmp_pd(score, old, _CMP_GT_OQ);
    _mm256_storeu_pd(cur + i, _mm256_blendv_pd(old, score, gt));
    // Each 64-bit lane mask is all-ones or all-zeros; pack the low words
    // of the four lanes into a 4x32 mask for the back-pointer blend.
    const __m256 gt8 = _mm256_castpd_ps(gt);
    const __m128 lo = _mm256_castps256_ps128(gt8);
    const __m128 hi = _mm256_extractf128_ps(gt8, 1);
    const __m128i gt32 =
        _mm_castps_si128(_mm_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0)));
    const __m128i oldb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(back + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(back + i),
                     _mm_blendv_epi8(oldb, vaid, gt32));
  }
  for (; i < n; ++i) {
    const double score = va + row[i];
    if (score > cur[i]) {
      cur[i] = score;
      back[i] = a;
    }
  }
}

__attribute__((target("avx2"))) void ExpAccumulateAvx2(double base,
                                                       const double* row,
                                                       double* acc, int n) {
  int i = 0;
  const __m256d vb = _mm256_set1_pd(base);
  for (; i + 4 <= n; i += 4) {
    const __m256d e = Avx2Exp(_mm256_add_pd(vb, _mm256_loadu_pd(row + i)));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), e));
  }
  for (; i < n; ++i) acc[i] += internal::PolyExp(base + row[i]);
}

__attribute__((target("avx2"))) double SumExpShiftedAvx2(const double* row,
                                                         const double* v,
                                                         double shift, int n) {
  int i = 0;
  const __m256d vs = _mm256_set1_pd(shift);
  __m256d vacc = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_sub_pd(
        _mm256_add_pd(_mm256_loadu_pd(row + i), _mm256_loadu_pd(v + i)), vs);
    vacc = _mm256_add_pd(vacc, Avx2Exp(x));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, vacc);
  double acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) acc += internal::PolyExp(row[i] + v[i] - shift);
  return acc;
}

__attribute__((target("avx2"))) double ExpSumRowAvx2(double m, const double* x,
                                                     int n) {
  int i = 0;
  const __m256d vm = _mm256_set1_pd(m);
  __m256d vacc = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    vacc = _mm256_add_pd(vacc,
                         Avx2Exp(_mm256_sub_pd(_mm256_loadu_pd(x + i), vm)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, vacc);
  double acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) acc += internal::PolyExp(x[i] - m);
  return acc;
}

__attribute__((target("avx2"))) void ExpNormalizeAvx2(double* x, double lse,
                                                      int n) {
  int i = 0;
  const __m256d vl = _mm256_set1_pd(lse);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i,
                     Avx2Exp(_mm256_sub_pd(_mm256_loadu_pd(x + i), vl)));
  }
  for (; i < n; ++i) x[i] = internal::PolyExp(x[i] - lse);
}

constexpr OpsTable kAvx2Ops = {
    RowMaxAvx2,        BiasAddAvx2,       MaxPlusStepAvx2, ExpAccumulateAvx2,
    SumExpShiftedAvx2, ExpSumRowAvx2,     ExpNormalizeAvx2,
};

#endif  // C2MN_SIMD_X86

#if defined(C2MN_SIMD_ARM)

// ---------------------------------------------------------------------------
// NEON tier (aarch64; 2 doubles per vector).
// ---------------------------------------------------------------------------

inline float64x2_t NeonExp(float64x2_t x) {
  const uint64x2_t big = vcgtq_f64(x, vdupq_n_f64(kExpMax));
  const uint64x2_t small = vcltq_f64(x, vdupq_n_f64(kExpMin));
  const float64x2_t xc =
      vminq_f64(vmaxq_f64(x, vdupq_n_f64(kExpMin)), vdupq_n_f64(kExpMax));
  const float64x2_t pxf = vrndmq_f64(
      vaddq_f64(vmulq_f64(xc, vdupq_n_f64(kLog2e)), vdupq_n_f64(0.5)));
  float64x2_t r = vsubq_f64(xc, vmulq_f64(pxf, vdupq_n_f64(kExpC1)));
  r = vsubq_f64(r, vmulq_f64(pxf, vdupq_n_f64(kExpC2)));
  const float64x2_t rr = vmulq_f64(r, r);
  float64x2_t p =
      vaddq_f64(vmulq_f64(vdupq_n_f64(kExpP0), rr), vdupq_n_f64(kExpP1));
  p = vaddq_f64(vmulq_f64(p, rr), vdupq_n_f64(kExpP2));
  p = vmulq_f64(p, r);
  float64x2_t q =
      vaddq_f64(vmulq_f64(vdupq_n_f64(kExpQ0), rr), vdupq_n_f64(kExpQ1));
  q = vaddq_f64(vmulq_f64(q, rr), vdupq_n_f64(kExpQ2));
  q = vaddq_f64(vmulq_f64(q, rr), vdupq_n_f64(kExpQ3));
  float64x2_t e = vdivq_f64(p, vsubq_f64(q, p));
  e = vaddq_f64(vdupq_n_f64(1.0), vmulq_f64(vdupq_n_f64(2.0), e));
  const int64x2_t ni = vcvtq_s64_f64(pxf);
  const int64x2_t n1 = vshrq_n_s64(ni, 1);
  const int64x2_t n2 = vsubq_s64(ni, n1);
  const int64x2_t bias = vdupq_n_s64(1023);
  const float64x2_t s1 =
      vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(n1, bias), 52));
  const float64x2_t s2 =
      vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(n2, bias), 52));
  e = vmulq_f64(vmulq_f64(e, s1), s2);
  e = vbslq_f64(big, vdupq_n_f64(kInf), e);
  e = vbslq_f64(small, vdupq_n_f64(0.0), e);
  return e;
}

double RowMaxNeon(const double* x, int n) {
  int i = 0;
  float64x2_t vm = vdupq_n_f64(-kInf);
  for (; i + 2 <= n; i += 2) vm = vmaxq_f64(vm, vld1q_f64(x + i));
  double m = vgetq_lane_f64(vm, 0);
  const double m1 = vgetq_lane_f64(vm, 1);
  m = m1 > m ? m1 : m;
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void BiasAddNeon(double* x, const double* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, vaddq_f64(vld1q_f64(x + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) x[i] += b[i];
}

void MaxPlusStepNeon(double va, const double* row, double* cur, int* back,
                     int a, int n) {
  int i = 0;
  const float64x2_t vva = vdupq_n_f64(va);
  const int32x2_t vaid = vdup_n_s32(a);
  for (; i + 2 <= n; i += 2) {
    const float64x2_t score = vaddq_f64(vva, vld1q_f64(row + i));
    const float64x2_t old = vld1q_f64(cur + i);
    const uint64x2_t gt = vcgtq_f64(score, old);
    vst1q_f64(cur + i, vbslq_f64(gt, score, old));
    const uint32x2_t gt32 = vmovn_u64(gt);
    const int32x2_t oldb = vld1_s32(back + i);
    vst1_s32(back + i, vbsl_s32(gt32, vaid, oldb));
  }
  for (; i < n; ++i) {
    const double score = va + row[i];
    if (score > cur[i]) {
      cur[i] = score;
      back[i] = a;
    }
  }
}

void ExpAccumulateNeon(double base, const double* row, double* acc, int n) {
  int i = 0;
  const float64x2_t vb = vdupq_n_f64(base);
  for (; i + 2 <= n; i += 2) {
    const float64x2_t e = NeonExp(vaddq_f64(vb, vld1q_f64(row + i)));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), e));
  }
  for (; i < n; ++i) acc[i] += internal::PolyExp(base + row[i]);
}

double SumExpShiftedNeon(const double* row, const double* v, double shift,
                         int n) {
  int i = 0;
  const float64x2_t vs = vdupq_n_f64(shift);
  float64x2_t vacc = vdupq_n_f64(0.0);
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x =
        vsubq_f64(vaddq_f64(vld1q_f64(row + i), vld1q_f64(v + i)), vs);
    vacc = vaddq_f64(vacc, NeonExp(x));
  }
  double acc = vgetq_lane_f64(vacc, 0) + vgetq_lane_f64(vacc, 1);
  for (; i < n; ++i) acc += internal::PolyExp(row[i] + v[i] - shift);
  return acc;
}

double ExpSumRowNeon(double m, const double* x, int n) {
  int i = 0;
  const float64x2_t vm = vdupq_n_f64(m);
  float64x2_t vacc = vdupq_n_f64(0.0);
  for (; i + 2 <= n; i += 2) {
    vacc = vaddq_f64(vacc, NeonExp(vsubq_f64(vld1q_f64(x + i), vm)));
  }
  double acc = vgetq_lane_f64(vacc, 0) + vgetq_lane_f64(vacc, 1);
  for (; i < n; ++i) acc += internal::PolyExp(x[i] - m);
  return acc;
}

void ExpNormalizeNeon(double* x, double lse, int n) {
  int i = 0;
  const float64x2_t vl = vdupq_n_f64(lse);
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, NeonExp(vsubq_f64(vld1q_f64(x + i), vl)));
  }
  for (; i < n; ++i) x[i] = internal::PolyExp(x[i] - lse);
}

constexpr OpsTable kNeonOps = {
    RowMaxNeon,        BiasAddNeon,       MaxPlusStepNeon, ExpAccumulateNeon,
    SumExpShiftedNeon, ExpSumRowNeon,     ExpNormalizeNeon,
};

#endif  // C2MN_SIMD_ARM

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

bool LevelSupported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
#if defined(C2MN_SIMD_X86)
    case Level::kSSE2:
      return true;  // x86_64 baseline
    case Level::kAVX2:
      return __builtin_cpu_supports("avx2");
#endif
#if defined(C2MN_SIMD_ARM)
    case Level::kNEON:
      return true;  // aarch64 baseline
#endif
    default:
      return false;
  }
}

const OpsTable* TableFor(Level level) {
  switch (level) {
#if defined(C2MN_SIMD_X86)
    case Level::kSSE2:
      return &kSse2Ops;
    case Level::kAVX2:
      return &kAvx2Ops;
#endif
#if defined(C2MN_SIMD_ARM)
    case Level::kNEON:
      return &kNeonOps;
#endif
    default:
      return &kScalarOps;
  }
}

Level ParseLevelName(const char* s) {
  if (std::strcmp(s, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(s, "sse2") == 0) return Level::kSSE2;
  if (std::strcmp(s, "avx2") == 0) return Level::kAVX2;
  if (std::strcmp(s, "neon") == 0) return Level::kNEON;
  return Level(-1);
}

Mutex g_dispatch_mu{LockRank::kSimdDispatch, "simd::g_dispatch_mu"};
std::atomic<const OpsTable*> g_ops{nullptr};
std::atomic<int> g_level{-1};

const OpsTable* EnsureDispatch() {
  const OpsTable* t = g_ops.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  MutexLock lock(&g_dispatch_mu);
  t = g_ops.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  Level level = DetectedLevel();
  if (const char* env = std::getenv("C2MN_SIMD")) {
    if (*env != '\0' && std::strcmp(env, "auto") != 0) {
      const Level forced = ParseLevelName(env);
      // Unknown or unsupported values silently keep auto-detection: an
      // env var must never turn a working binary into a crashing one.
      if (forced != Level(-1) && LevelSupported(forced)) level = forced;
    }
  }
  t = TableFor(level);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_ops.store(t, std::memory_order_release);
  return t;
}

}  // namespace

Level DetectedLevel() {
#if defined(C2MN_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? Level::kAVX2 : Level::kSSE2;
#elif defined(C2MN_SIMD_ARM)
  return Level::kNEON;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() {
  EnsureDispatch();
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

bool ForceLevel(Level level) {
  if (!LevelSupported(level)) return false;
  MutexLock lock(&g_dispatch_mu);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_ops.store(TableFor(level), std::memory_order_release);
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSSE2:
      return "sse2";
    case Level::kAVX2:
      return "avx2";
    case Level::kNEON:
      return "neon";
  }
  return "unknown";
}

double RowMax(const double* x, int n) { return EnsureDispatch()->row_max(x, n); }

void BiasAdd(double* x, const double* b, int n) {
  EnsureDispatch()->bias_add(x, b, n);
}

void MaxPlusStep(double va, const double* row, double* cur, int* back, int a,
                 int n) {
  EnsureDispatch()->max_plus_step(va, row, cur, back, a, n);
}

void ExpAccumulate(double base, const double* row, double* acc, int n) {
  EnsureDispatch()->exp_accumulate(base, row, acc, n);
}

double SumExpShifted(const double* row, const double* v, double shift, int n) {
  return EnsureDispatch()->sum_exp_shifted(row, v, shift, n);
}

double ExpSumRow(double m, const double* x, int n) {
  return EnsureDispatch()->exp_sum_row(m, x, n);
}

void ExpNormalize(double* x, double lse, int n) {
  EnsureDispatch()->exp_normalize(x, lse, n);
}

}  // namespace simd
}  // namespace c2mn
