#ifndef C2MN_COMMON_SIMD_H_
#define C2MN_COMMON_SIMD_H_

namespace c2mn {
namespace simd {

/// \brief Instruction-set tiers the double-precision kernels dispatch
/// over at runtime.  Detection picks the widest tier the host supports;
/// tests (and the C2MN_SIMD environment variable) can force a narrower
/// one so the scalar fallback stays exercised on wide hosts.
enum class Level {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
  kNEON = 3,
};

/// Widest tier this binary/host combination supports.  Compile-time
/// gating (C2MN_SIMD cmake option off) caps this at kScalar.
Level DetectedLevel();

/// The tier the kernel entry points currently dispatch to.  Initialized
/// lazily from DetectedLevel(), optionally narrowed by the C2MN_SIMD
/// environment variable ("scalar", "sse2", "avx2", "neon", "auto").
Level ActiveLevel();

/// Forces dispatch to `level`; returns false (and leaves dispatch
/// unchanged) when the host does not support it.  kScalar always
/// succeeds.  Not thread-safe against concurrent kernel calls — intended
/// for test setup and process start only.
bool ForceLevel(Level level);

const char* LevelName(Level level);

// ---------------------------------------------------------------------------
// Kernel primitives.  All operate on contiguous double rows of length n
// (n >= 0, no alignment requirements) and dispatch to the active tier.
// Semantics notes:
//  * RowMax matches a left-to-right std::max fold over finite/±inf data
//    (inputs are log-potentials; NaN never reaches these kernels).
//  * MaxPlusStep preserves the scalar Viterbi tie-break exactly: an entry
//    is overwritten only on a strictly greater score, so for equal scores
//    the smallest predecessor index a wins.  It is bit-identical across
//    tiers (pure add/compare, no reassociation).
//  * The exp-based kernels (ExpAccumulate, SumExpShifted, ExpSumRow,
//    ExpNormalize) use a polynomial exp on vector tiers whose result can
//    differ from std::exp by a few ulp; callers must treat cross-tier
//    equivalence as <= 1e-9, not bit-equality.  exp(-inf) = 0 and
//    exp(+inf) = inf hold on every tier.
// ---------------------------------------------------------------------------

/// Arguments below this flush to exactly +0.0 in the vector tiers' exp
/// (the true values are subnormal or smaller).  Callers may skip whole
/// rows whose arguments are all below it: on vector tiers the skipped
/// contributions are exactly +0.0, on the scalar (std::exp) tier they are
/// at most subnormal, far beneath the 1e-9 cross-tier tolerance.
inline constexpr double kExpFlushMin = -708.396418532264106224;

/// max(x[0..n)); -inf for n == 0.
double RowMax(const double* x, int n);

/// x[i] += b[i].
void BiasAdd(double* x, const double* b, int n);

/// Viterbi inner step: for each i, if va + row[i] > cur[i] then
/// cur[i] = va + row[i], back[i] = a.
void MaxPlusStep(double va, const double* row, double* cur, int* back, int a,
                 int n);

/// acc[i] += exp(base + row[i]).
void ExpAccumulate(double base, const double* row, double* acc, int n);

/// Returns sum_i exp(row[i] + v[i] - shift).
double SumExpShifted(const double* row, const double* v, double shift, int n);

/// Returns sum_i exp(x[i] - m).
double ExpSumRow(double m, const double* x, int n);

/// x[i] = exp(x[i] - lse).
void ExpNormalize(double* x, double lse, int n);

namespace internal {
/// The scalar form of the polynomial exp used by the vector tiers —
/// exposed so tests can bound its error against std::exp directly.
double PolyExp(double x);
}  // namespace internal

}  // namespace simd
}  // namespace c2mn

#endif  // C2MN_COMMON_SIMD_H_
