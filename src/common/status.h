#ifndef C2MN_COMMON_STATUS_H_
#define C2MN_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace c2mn {

/// \brief Error category for a failed operation.
///
/// The set mirrors the failure modes that actually arise in this library:
/// malformed inputs, missing entities (regions, doors, floors), numeric
/// trouble during optimization, and violated invariants.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kNumericError,
  kInternal,
};

/// \brief Returns a human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief A lightweight success-or-error value, in the style of
/// arrow::Status / rocksdb::Status.
///
/// Functions that can fail for reasons the caller should handle return a
/// Status (or a Result<T>).  Programming errors (violated internal
/// invariants) use assertions instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: sequence is empty".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status.  Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace c2mn

/// Propagates a non-OK Status out of the enclosing function.
#define C2MN_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::c2mn::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

#endif  // C2MN_COMMON_STATUS_H_
