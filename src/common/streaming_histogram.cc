#include "common/streaming_histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c2mn {

StreamingHistogram::StreamingHistogram(double min_value, double max_value,
                                       double growth)
    : min_value_(min_value),
      max_value_(max_value),
      growth_(growth),
      log_min_(std::log(min_value)),
      inv_log_growth_(1.0 / std::log(growth)),
      log_growth_(std::log(growth)) {
  assert(min_value > 0.0 && max_value > min_value && growth > 1.0);
  const int buckets = static_cast<int>(
      std::ceil((std::log(max_value) - log_min_) * inv_log_growth_));
  counts_.assign(static_cast<size_t>(std::max(buckets, 1)), 0);
}

int StreamingHistogram::BucketIndex(double value) const {
  if (value <= min_value_) return 0;
  const int i =
      static_cast<int>((std::log(value) - log_min_) * inv_log_growth_);
  return std::min(i, static_cast<int>(counts_.size()) - 1);
}

double StreamingHistogram::BucketLower(int i) const {
  return std::exp(log_min_ + i * log_growth_);
}

double StreamingHistogram::BucketUpper(int i) const {
  return std::exp(log_min_ + (i + 1) * log_growth_);
}

void StreamingHistogram::Add(double value) {
  if (!std::isfinite(value)) {
    // BucketIndex would cast NaN/inf to int (undefined behavior), and a
    // NaN would poison sum_/min_/max_ forever; count it instead.
    ++non_finite_;
    return;
  }
  ++counts_[static_cast<size_t>(BucketIndex(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

bool StreamingHistogram::Merge(const StreamingHistogram& other) {
  const bool same_config = min_value_ == other.min_value_ &&
                           max_value_ == other.max_value_ &&
                           growth_ == other.growth_ &&
                           counts_.size() == other.counts_.size();
  if (same_config) {
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  } else {
    // Mismatched bucketizations: fold each foreign bucket in at its
    // log-space midpoint so no samples vanish, at the cost of quantile
    // accuracy.  The summary statistics below stay exact either way.
    for (size_t i = 0; i < other.counts_.size(); ++i) {
      if (other.counts_[i] == 0) continue;
      const double midpoint = std::exp(
          other.log_min_ + (static_cast<double>(i) + 0.5) * other.log_growth_);
      counts_[static_cast<size_t>(BucketIndex(midpoint))] += other.counts_[i];
    }
  }
  if (other.count_ > 0) {
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  non_finite_ += other.non_finite_;
  sum_ += other.sum_;
  return same_config;
}

StreamingHistogram::State StreamingHistogram::SaveState() const {
  State state;
  state.min_value = min_value_;
  state.max_value = max_value_;
  state.growth = growth_;
  state.counts = counts_;
  state.count = count_;
  state.non_finite = non_finite_;
  state.sum = sum_;
  state.min = min_;
  state.max = max_;
  return state;
}

Result<StreamingHistogram> StreamingHistogram::FromState(const State& state) {
  if (!std::isfinite(state.min_value) || !std::isfinite(state.max_value) ||
      !std::isfinite(state.growth) || !(state.min_value > 0.0) ||
      !(state.max_value > state.min_value) || !(state.growth > 1.0)) {
    return Status::InvalidArgument(
        "streaming histogram state: unusable bucket config");
  }
  StreamingHistogram h(state.min_value, state.max_value, state.growth);
  if (state.counts.size() != h.counts_.size()) {
    return Status::InvalidArgument(
        "streaming histogram state: bucket count does not match config");
  }
  uint64_t total = 0;
  for (const uint64_t c : state.counts) total += c;
  if (total != state.count) {
    return Status::InvalidArgument(
        "streaming histogram state: bucket counts do not sum to count");
  }
  h.counts_ = state.counts;
  h.count_ = state.count;
  h.non_finite_ = state.non_finite;
  h.sum_ = state.sum;
  h.min_ = state.min;
  h.max_ = state.max;
  return h;
}

void StreamingHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  non_finite_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double StreamingHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Interpolate within the bucket, clamped to observed extremes so
      // a single-bucket histogram still reports sensible values.
      const double frac =
          counts_[i] > 0
              ? (rank - before) / static_cast<double>(counts_[i])
              : 0.0;
      const int bucket = static_cast<int>(i);
      const double lo = std::max(BucketLower(bucket), min_);
      const double hi = std::min(BucketUpper(bucket), max_);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
  }
  return max_;
}

}  // namespace c2mn
