#include "common/streaming_histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c2mn {

StreamingHistogram::StreamingHistogram(double min_value, double max_value,
                                       double growth)
    : min_value_(min_value),
      max_value_(max_value),
      log_min_(std::log(min_value)),
      inv_log_growth_(1.0 / std::log(growth)),
      log_growth_(std::log(growth)) {
  assert(min_value > 0.0 && max_value > min_value && growth > 1.0);
  const int buckets = static_cast<int>(
      std::ceil((std::log(max_value) - log_min_) * inv_log_growth_));
  counts_.assign(static_cast<size_t>(std::max(buckets, 1)), 0);
}

int StreamingHistogram::BucketIndex(double value) const {
  if (value <= min_value_) return 0;
  const int i =
      static_cast<int>((std::log(value) - log_min_) * inv_log_growth_);
  return std::min(i, static_cast<int>(counts_.size()) - 1);
}

double StreamingHistogram::BucketLower(int i) const {
  return std::exp(log_min_ + i * log_growth_);
}

double StreamingHistogram::BucketUpper(int i) const {
  return std::exp(log_min_ + (i + 1) * log_growth_);
}

void StreamingHistogram::Add(double value) {
  ++counts_[static_cast<size_t>(BucketIndex(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void StreamingHistogram::Merge(const StreamingHistogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void StreamingHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double StreamingHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Interpolate within the bucket, clamped to observed extremes so
      // a single-bucket histogram still reports sensible values.
      const double frac =
          counts_[i] > 0
              ? (rank - before) / static_cast<double>(counts_[i])
              : 0.0;
      const int bucket = static_cast<int>(i);
      const double lo = std::max(BucketLower(bucket), min_);
      const double hi = std::min(BucketUpper(bucket), max_);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
  }
  return max_;
}

}  // namespace c2mn
