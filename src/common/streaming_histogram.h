#ifndef C2MN_COMMON_STREAMING_HISTOGRAM_H_
#define C2MN_COMMON_STREAMING_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace c2mn {

/// \brief A fixed-memory streaming histogram with geometric buckets,
/// built for latency tracking in the annotation service (p50/p99
/// submit-to-emit times in ServiceStats).
///
/// Values are bucketed by log with a constant growth factor, so relative
/// quantile error is bounded by the growth factor regardless of how many
/// samples stream in.  Everything outside [min_value, max_value] clamps
/// into the first / last bucket.  Not thread-safe; owners keep one per
/// writer thread and Merge() snapshots together.
class StreamingHistogram {
 public:
  /// Buckets span [min_value, max_value] with bucket_i covering
  /// [min_value * growth^i, min_value * growth^(i+1)).
  explicit StreamingHistogram(double min_value = 1e-6,
                              double max_value = 1e3,
                              double growth = 1.2);

  /// Records `value`.  Non-finite values (NaN, +/-inf) are never folded
  /// into the buckets or the summary statistics — casting them to a
  /// bucket index would be undefined behavior — they are only counted
  /// in non_finite_count().
  void Add(double value);

  /// Adds every bucket count of `other`.  Returns true when the two
  /// bucketizations match (same constructor arguments) and the merge
  /// was exact.  On a configuration mismatch — checked at runtime, not
  /// by a Release-stripped assert — the summary statistics (count, sum,
  /// min, max) still merge exactly, each of `other`'s buckets is folded
  /// in at its log-space midpoint (approximate quantiles instead of
  /// silently corrupted ones), and false is returned.
  bool Merge(const StreamingHistogram& other);

  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double Mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

  /// Non-finite values passed to Add(); excluded from every other
  /// statistic.
  uint64_t non_finite_count() const { return non_finite_; }

  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// containing bucket; 0 when empty.
  double Quantile(double q) const;

 private:
  int BucketIndex(double value) const;
  double BucketLower(int i) const;
  double BucketUpper(int i) const;

  double min_value_;
  double max_value_;
  double growth_;
  double log_min_;
  double inv_log_growth_;
  double log_growth_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t non_finite_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace c2mn

#endif  // C2MN_COMMON_STREAMING_HISTOGRAM_H_
