#ifndef C2MN_COMMON_STREAMING_HISTOGRAM_H_
#define C2MN_COMMON_STREAMING_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace c2mn {

/// \brief A fixed-memory streaming histogram with geometric buckets,
/// built for latency tracking in the annotation service (p50/p99
/// submit-to-emit times in ServiceStats).
///
/// Values are bucketed by log with a constant growth factor, so relative
/// quantile error is bounded by the growth factor regardless of how many
/// samples stream in.  Everything outside [min_value, max_value] clamps
/// into the first / last bucket.  Not thread-safe; owners keep one per
/// writer thread and Merge() snapshots together.
class StreamingHistogram {
 public:
  /// Buckets span [min_value, max_value] with bucket_i covering
  /// [min_value * growth^i, min_value * growth^(i+1)).
  explicit StreamingHistogram(double min_value = 1e-6,
                              double max_value = 1e3,
                              double growth = 1.2);

  /// Records `value`.  Non-finite values (NaN, +/-inf) are never folded
  /// into the buckets or the summary statistics — casting them to a
  /// bucket index would be undefined behavior — they are only counted
  /// in non_finite_count().
  void Add(double value);

  /// Adds every bucket count of `other`.  Returns true when the two
  /// bucketizations match (same constructor arguments) and the merge
  /// was exact.  On a configuration mismatch — checked at runtime, not
  /// by a Release-stripped assert — the summary statistics (count, sum,
  /// min, max) still merge exactly, each of `other`'s buckets is folded
  /// in at its log-space midpoint (approximate quantiles instead of
  /// silently corrupted ones), and false is returned.
  bool Merge(const StreamingHistogram& other);

  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double Mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

  /// Non-finite values passed to Add(); excluded from every other
  /// statistic.
  uint64_t non_finite_count() const { return non_finite_; }

  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// containing bucket; 0 when empty.
  double Quantile(double q) const;

  /// \brief The complete, round-trippable state of a histogram: the
  /// merge-config fields (the same ones Merge() compares) plus every
  /// counter and summary statistic.  FromState(h.SaveState()) rebuilds a
  /// histogram whose every accessor — including non_finite_count() and
  /// the exact bit patterns of sum/min/max — matches `h`.
  struct State {
    double min_value = 0.0;
    double max_value = 0.0;
    double growth = 0.0;
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    uint64_t non_finite = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  State SaveState() const;

  /// Rebuilds a histogram from a saved state.  Fails (InvalidArgument)
  /// when the config is unusable (non-positive min, max <= min,
  /// growth <= 1, non-finite anywhere) or `counts` does not have the
  /// bucket count that config derives — a decoded state from a corrupt
  /// or version-skewed snapshot must be refused, not trusted.
  static Result<StreamingHistogram> FromState(const State& state);

 private:
  int BucketIndex(double value) const;
  double BucketLower(int i) const;
  double BucketUpper(int i) const;

  double min_value_;
  double max_value_;
  double growth_;
  double log_min_;
  double inv_log_growth_;
  double log_growth_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t non_finite_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace c2mn

#endif  // C2MN_COMMON_STREAMING_HISTOGRAM_H_
