#include "common/sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace c2mn {
namespace sync_internal {

namespace {

std::atomic<ViolationHandler> g_violation_handler{nullptr};

}  // namespace

ViolationHandler SetViolationHandlerForTest(ViolationHandler handler) {
  return g_violation_handler.exchange(handler, std::memory_order_acq_rel);
}

#if defined(C2MN_LOCK_ORDER_CHECK)

namespace {

/// Deeper nesting than this is a design smell long before it is a
/// checker limit; excess acquisitions are counted but not rank-checked.
constexpr int kMaxHeld = 32;

struct HeldLock {
  const void* mu;
  LockRank rank;
  const char* name;
  const char* file;
  int line;
};

/// Per-thread held-lock stack.  Fixed storage: lock acquisition must
/// stay allocation-free (the inference benches enforce zero-alloc
/// steady-state paths that take shard stats locks).
struct ThreadLockState {
  HeldLock held[kMaxHeld];
  int depth = 0;
  int overflow = 0;
};

ThreadLockState& State() {
  thread_local ThreadLockState state;
  return state;
}

[[noreturn]] void AbortWithMessage(const char* message) {
  std::fputs(message, stderr);
  std::fputs("\n", stderr);
  std::fflush(stderr);
  std::abort();
}

void ReportViolation(const char* kind, const HeldLock& held, LockRank rank,
                     const char* name, const char* file, int line) {
  char message[512];
  std::snprintf(message, sizeof(message),
                "lock-order violation (%s): acquiring %s (rank %d) at %s:%d "
                "while holding %s (rank %d) acquired at %s:%d",
                kind, name, static_cast<int>(rank), file, line, held.name,
                static_cast<int>(held.rank), held.file, held.line);
  const ViolationHandler handler =
      g_violation_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(message);
    return;
  }
  AbortWithMessage(message);
}

}  // namespace

void NoteAcquire(const void* mu, LockRank rank, const char* name,
                 const char* file, int line) {
  ThreadLockState& state = State();
  for (int i = 0; i < state.depth; ++i) {
    const HeldLock& held = state.held[i];
    if (held.mu == mu) {
      // Recursive acquisition of a std::mutex is UB (in practice a
      // deadlock); report it before the lock call hangs forever.
      ReportViolation("recursive acquisition", held, rank, name, file, line);
      return;
    }
    if (rank != LockRank::kUnranked && held.rank != LockRank::kUnranked &&
        held.rank >= rank) {
      ReportViolation("rank not increasing", held, rank, name, file, line);
      return;
    }
  }
  if (state.depth < kMaxHeld) {
    state.held[state.depth++] = HeldLock{mu, rank, name, file, line};
  } else {
    ++state.overflow;
  }
}

void NoteRelease(const void* mu) {
  ThreadLockState& state = State();
  if (state.overflow > 0) {
    // Can't tell whether the released lock was a tracked or an overflow
    // one; assume overflow (releases run in reverse acquisition order).
    --state.overflow;
    return;
  }
  for (int i = state.depth - 1; i >= 0; --i) {
    if (state.held[i].mu == mu) {
      for (int j = i; j + 1 < state.depth; ++j) {
        state.held[j] = state.held[j + 1];
      }
      --state.depth;
      return;
    }
  }
  // Releasing an untracked lock: acquired before the checker saw it
  // (e.g. a handler consumed its acquire record).  Nothing to do.
}

#endif  // C2MN_LOCK_ORDER_CHECK

}  // namespace sync_internal
}  // namespace c2mn
