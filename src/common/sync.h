#ifndef C2MN_COMMON_SYNC_H_
#define C2MN_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// \file Annotated synchronization primitives: the one way this codebase
/// takes a lock.
///
/// Two enforcement layers ride on these wrappers, so that the locking
/// discipline is provable instead of being a TSan lottery ticket:
///
///  1. **Clang Thread Safety Analysis** (compile time).  Every wrapper
///     carries capability attributes, every guarded field is declared
///     with C2MN_GUARDED_BY, and every lock-requiring method with
///     C2MN_REQUIRES / C2MN_EXCLUDES.  Under clang the CI builds with
///     `-Werror=thread-safety`, so an unlocked read of a guarded field
///     or a method called without its declared lock is a build error.
///     Under GCC the attributes expand to nothing (zero cost, zero
///     behavior change).
///
///  2. **Runtime lock-rank checking** (every build with
///     C2MN_LOCK_ORDER_CHECK, the default).  Each Mutex/SharedMutex is
///     constructed with a LockRank; acquisitions must be strictly
///     rank-increasing per thread.  A violation aborts immediately with
///     both acquisition sites — on the *first* execution of the inverted
///     path, in any single-threaded unit test, regardless of
///     interleaving.  This is the cross-object complement of the static
///     analysis: clang cannot express "any Subscription::mu before any
///     AnalyticsEngine::Shard::mu", the rank lattice can.
///
/// The rank lattice (see LockRank below) encodes every nesting the
/// repo's subsystems are allowed to form.  Adding a lock means adding a
/// rank here first; an undeclared lock edge cannot merge, because the
/// checker aborts the first test that exercises it.

// --------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-op on non-clang).
// Names and semantics follow the clang documentation; everything is
// namespaced C2MN_ so a future vendored library cannot collide.
// --------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define C2MN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef C2MN_THREAD_ANNOTATION
#define C2MN_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define C2MN_CAPABILITY(x) C2MN_THREAD_ANNOTATION(capability(x))
/// Declares a scoped (RAII) lock type.
#define C2MN_SCOPED_CAPABILITY C2MN_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written while holding the given capability.
#define C2MN_GUARDED_BY(x) C2MN_THREAD_ANNOTATION(guarded_by(x))
/// Pointed-to data may only be accessed while holding the capability.
#define C2MN_PT_GUARDED_BY(x) C2MN_THREAD_ANNOTATION(pt_guarded_by(x))
/// This capability must be acquired before the listed ones.
#define C2MN_ACQUIRED_BEFORE(...) \
  C2MN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
/// This capability must be acquired after the listed ones.
#define C2MN_ACQUIRED_AFTER(...) \
  C2MN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Caller must hold the capability (exclusively) to call this function.
#define C2MN_REQUIRES(...) \
  C2MN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must hold the capability (at least shared).
#define C2MN_REQUIRES_SHARED(...) \
  C2MN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (exclusively); caller must not hold it.
#define C2MN_ACQUIRE(...) \
  C2MN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define C2MN_ACQUIRE_SHARED(...) \
  C2MN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability; caller must hold it.
#define C2MN_RELEASE(...) \
  C2MN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define C2MN_RELEASE_SHARED(...) \
  C2MN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define C2MN_TRY_ACQUIRE(...) \
  C2MN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention for
/// self-locking methods).
#define C2MN_EXCLUDES(...) C2MN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define C2MN_RETURN_CAPABILITY(x) C2MN_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; every use needs a justification comment.
#define C2MN_NO_THREAD_SAFETY_ANALYSIS \
  C2MN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace c2mn {

// --------------------------------------------------------------------------
// Lock ranks: the global acquisition order, lowest first.
// --------------------------------------------------------------------------

/// Every ranked lock acquisition must have a rank strictly greater than
/// any rank the thread already holds (same-rank instances may not be
/// held together either: nothing in the repo legitimately holds two
/// shard locks at once — cross-shard folds lock one shard at a time).
///
/// The lattice encodes, among others, the PR-5 standing-query order
/// (subscribers list -> one subscription -> one analytics shard; the
/// inversion of the last two was the TSan-caught deadlock) and keeps the
/// observability and dispatch leaves below everything that can call out
/// to user code.  kUnranked locks (the default) skip order checking but
/// still detect same-mutex recursive acquisition.
enum class LockRank : int {
  kUnranked = 0,

  // AnalyticsEngine standing queries: list -> subscription -> shard.
  // A subscription's delta callback runs under kAnalyticsSubscription
  // and may legitimately poll/snapshot (kAnalyticsShard) or read service
  // stats (kServiceRegistry, kServiceShardStats), so all of those rank
  // above it.  Calling Subscribe/Unsubscribe from a callback is the
  // self-deadlock the ranks forbid.
  kAnalyticsSubscribers = 100,
  kAnalyticsSubscription = 200,
  kAnalyticsShard = 300,

  // AnnotationService control plane and per-shard stats.
  kServiceRegistry = 400,
  kServiceShardStats = 500,
  kServiceQueue = 600,
  kServiceExport = 650,
  // Durable-state layer: the checkpoint thread's wakeup mutex (held only
  // across its interruptible sleep, like kServiceExport), the flush
  // hand-off queue between shard workers and the background log writer,
  // and the StorageManager's write-ahead-log mutex.  The flush queue
  // ranks below the log mutex so the writer could legally nest them,
  // though it never does (it pops under one, writes under the other).
  // The log mutex is a leaf on the write path — the writer thread holds
  // nothing else — and the checkpoint cycle interleaves it with the
  // analytics shard locks strictly sequentially (rotate, release, then
  // snapshot one shard at a time), so no nesting with kAnalyticsShard
  // ever forms.
  kServiceCheckpoint = 660,
  kStorageFlush = 670,
  kStorageLog = 680,
  kServiceDrain = 700,

  // Observability + dispatch leaves: safe to take from anywhere, must
  // never take anything above themselves.
  kObsSlowOps = 800,
  kObsRegistry = 900,
  kSimdDispatch = 1000,
};

namespace sync_internal {

/// Test hook: replaces abort-on-violation with a callback receiving the
/// formatted message.  Not for production use — after a violation the
/// held-lock stack is left as-is and the offending lock IS acquired.
using ViolationHandler = void (*)(const char* message);
ViolationHandler SetViolationHandlerForTest(ViolationHandler handler);

#if defined(C2MN_LOCK_ORDER_CHECK)
/// Called with the would-be acquisition before the underlying lock call;
/// aborts (or invokes the test handler) on a rank violation, recording
/// the site for the eventual error message.  Allocation-free: the
/// per-thread stack is a fixed array.
void NoteAcquire(const void* mu, LockRank rank, const char* name,
                 const char* file, int line);
void NoteRelease(const void* mu);
#else
inline void NoteAcquire(const void*, LockRank, const char*, const char*,
                        int) {}
inline void NoteRelease(const void*) {}
#endif

}  // namespace sync_internal

// --------------------------------------------------------------------------
// Mutex / SharedMutex
// --------------------------------------------------------------------------

/// std::mutex with a capability annotation and a lock rank.  All new
/// locks take the (rank, name) constructor; the name appears in
/// rank-violation aborts next to both acquisition sites.
class C2MN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) C2MN_ACQUIRE() {
    sync_internal::NoteAcquire(this, rank_, name_, file, line);
    mu_.lock();
  }

  void Unlock() C2MN_RELEASE() {
    mu_.unlock();
    sync_internal::NoteRelease(this);
  }

  bool TryLock(const char* file = __builtin_FILE(),
               int line = __builtin_LINE()) C2MN_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock cannot deadlock, but a rank violation here
    // is still an undeclared lock edge — check it like a plain Lock.
    sync_internal::NoteAcquire(this, rank_, name_, file, line);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = "mutex";
};

/// std::shared_mutex with the same annotations; shared acquisitions
/// participate in rank checking exactly like exclusive ones.
class C2MN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) C2MN_ACQUIRE() {
    sync_internal::NoteAcquire(this, rank_, name_, file, line);
    mu_.lock();
  }

  void Unlock() C2MN_RELEASE() {
    mu_.unlock();
    sync_internal::NoteRelease(this);
  }

  void LockShared(const char* file = __builtin_FILE(),
                  int line = __builtin_LINE()) C2MN_ACQUIRE_SHARED() {
    sync_internal::NoteAcquire(this, rank_, name_, file, line);
    mu_.lock_shared();
  }

  void UnlockShared() C2MN_RELEASE_SHARED() {
    mu_.unlock_shared();
    sync_internal::NoteRelease(this);
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = "shared_mutex";
};

// --------------------------------------------------------------------------
// Scoped lockers
// --------------------------------------------------------------------------

/// RAII exclusive lock on a Mutex (the lock_guard replacement).
class C2MN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) C2MN_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(file, line);
  }

  ~MutexLock() C2MN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class C2MN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu, const char* file = __builtin_FILE(),
                           int line = __builtin_LINE()) C2MN_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared(file, line);
  }

  ~ReaderMutexLock() C2MN_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class C2MN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu, const char* file = __builtin_FILE(),
                           int line = __builtin_LINE()) C2MN_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(file, line);
  }

  ~WriterMutexLock() C2MN_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// --------------------------------------------------------------------------
// CondVar
// --------------------------------------------------------------------------

/// Condition variable paired with the annotated Mutex.  Waits go through
/// the wrapper's Lock/Unlock, so the rank checker's held-lock stack
/// stays exact across the block (the mutex is popped while blocked and
/// rank-checked again on wake).
///
/// There is deliberately no predicate overload: the TSA cannot see a
/// lock held across a lambda boundary, so waits are written as explicit
/// loops whose guarded reads the analysis can verify:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks, and reacquires it before
  /// returning.  Spurious wakeups happen; always wait in a loop.
  void Wait(Mutex* mu, const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) C2MN_REQUIRES(*mu) {
    WaitAdapter adapter{mu, file, line};
    cv_.wait(adapter);
  }

  /// Like Wait, but returns false once `deadline` passes.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 const char* file = __builtin_FILE(),
                 int line = __builtin_LINE()) C2MN_REQUIRES(*mu) {
    WaitAdapter adapter{mu, file, line};
    return cv_.wait_until(adapter, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// BasicLockable view of a held Mutex for condition_variable_any: the
  /// cv calls unlock() to block and lock() on wake, and routing those
  /// through the wrapper keeps the checker stack truthful.
  struct WaitAdapter {
    Mutex* mu;
    const char* file;
    int line;
    void lock() C2MN_NO_THREAD_SAFETY_ANALYSIS { mu->Lock(file, line); }
    void unlock() C2MN_NO_THREAD_SAFETY_ANALYSIS { mu->Unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace c2mn

#endif  // C2MN_COMMON_SYNC_H_
