#include "common/table_printer.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace c2mn {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace c2mn
