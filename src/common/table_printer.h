#ifndef C2MN_COMMON_TABLE_PRINTER_H_
#define C2MN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace c2mn {

/// \brief Renders aligned ASCII tables for the experiment harnesses, so
/// bench binaries print rows in the same layout as the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with the given precision (paper uses 4 decimals for
  /// accuracies, 1-2 for times).
  static std::string Fmt(double value, int precision = 4);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace c2mn

#endif  // C2MN_COMMON_TABLE_PRINTER_H_
