#include "core/annotator.h"

#include <algorithm>
#include <cassert>

#include "crf/flat_chain.h"

namespace c2mn {

void C2mnAnnotator::BuildRegionPotentials(const SequenceGraph& g,
                                          DecodeWorkspace* ws) const {
  const int n = g.size();
  // Exact pairwise pass: matching + transition + synchronization cliques,
  // built directly in the flat arena layout (no nested vectors).
  int* domains = ws->arena.Alloc<int>(n);
  for (int i = 0; i < n; ++i) {
    domains[i] = static_cast<int>(g.Candidates(i).size());
  }
  ws->region_pots =
      FlatChainPotentials::Build(n, domains, /*tied_edges=*/false, &ws->arena);
  const FlatChainPotentials& pots = ws->region_pots;
  const double w_st = weights_[kWSpaceTransition];
  const double w_sc = weights_[kWSpatialConsistency];
  const double gamma_st = g.options().gamma_st;
  const double sc_scale = g.options().sc_scale_meters;
  for (int i = 0; i < n; ++i) {
    double* node = pots.NodeRow(i);
    const int da = domains[i];
    for (int a = 0; a < da; ++a) {
      node[a] = weights_[kWSpatialMatch] * g.SpatialMatch(i, a);
    }
    if (i + 1 < n) {
      const int db = domains[i + 1];
      double* edge = pots.EdgeBlock(i);
      // f_st and f_sc share one decayed expected-MIWD per (a, b) pair,
      // and the decay multiplier depends only on the edge — one oracle
      // lookup and one decay per pair instead of two of each
      // (bit-identical to evaluating the two features independently).
      const double decay = features::EdgeTimeDecay(g, i);
      const double delta_e = g.DeltaE(i);
      const std::vector<RegionId>& cands_a = g.Candidates(i);
      const std::vector<RegionId>& cands_b = g.Candidates(i + 1);
      for (int a = 0; a < da; ++a) {
        const RegionId ra = cands_a[a];
        double* row = edge + static_cast<size_t>(a) * db;
        for (int b = 0; b < db; ++b) {
          const RegionId rb = cands_b[b];
          const double dist =
              ra == rb ? 0.0
                       : features::RegionBaseDistance(g, ra, rb) * decay;
          double s = 0.0;
          if (structure_.use_transition) {
            s += w_st * std::exp(-gamma_st * dist);
          }
          if (structure_.use_sync) {
            s += w_sc * std::exp(-std::fabs(dist - delta_e) / sc_scale);
          }
          row[b] = s;
        }
      }
    }
  }
  ws->region_pots.PrecomputeEdgeMax(&ws->arena);
}

void C2mnAnnotator::DecodeRegions(const JointScorer& scorer,
                                  const std::vector<MobilityEvent>& events,
                                  DecodeWorkspace* ws, bool first_round,
                                  std::vector<int>* regions) const {
  const SequenceGraph& g = scorer.graph();
  const int n = g.size();
  const FlatChainPotentials& pots = ws->region_pots;
  auto decode = [&](const double* bias, std::vector<int>* out) {
    if (iopts_.use_max_marginals) {
      FlatMaxMarginalLabels(pots, bias, &ws->chain, out);
    } else {
      FlatViterbi(pots, bias, &ws->chain, out);
    }
  };
  if (first_round) {
    decode(nullptr, regions);
    ws->initial_regions = *regions;
  } else {
    *regions = ws->initial_regions;
  }

  // Segmentation cliques (f_es DISTNUM, f_ss run restructuring) are
  // incorporated by folding their per-candidate contribution into a node
  // *overlay* around the current labeling and re-running the exact chain
  // decode — this keeps the chain's global consistency, which a greedy
  // per-node ICM would destroy.  The overlay touches O(n·d) node entries
  // per sweep; the edge blocks are shared untouched across sweeps, where
  // the old code deep-copied the whole O(n·d²) potential set.
  if (!structure_.use_event_seg && !structure_.use_space_seg) return;
  const bool seg_on = weights_[kWEventSeg0] != 0.0 ||
                      weights_[kWEventSeg1] != 0.0 ||
                      weights_[kWEventSeg2] != 0.0 ||
                      weights_[kWSpaceSeg0] != 0.0 ||
                      weights_[kWSpaceSeg1] != 0.0 ||
                      weights_[kWSpaceSeg2] != 0.0;
  if (!seg_on) return;
  for (int sweep = 0; sweep < iopts_.icm_sweeps; ++sweep) {
    ws->node_bias.assign(pots.node_total, 0.0);
    // Labels are frozen while the overlay is scored (the chain re-decode
    // happens after), so one index build serves the whole sweep.
    scorer.BuildSegIndex(*regions, events, &ws->seg);
    for (int i = 0; i < n; ++i) {
      scorer.RegionSegScores(i, weights_, *regions, events, &ws->seg,
                             ws->node_bias.data() + pots.node_off[i]);
    }
    decode(ws->node_bias.data(), &ws->next);
    if (ws->next == *regions) break;
    std::swap(*regions, ws->next);  // Next decode fully overwrites ws->next.
  }
}

void C2mnAnnotator::BuildEventPotentials(const SequenceGraph& g,
                                         DecodeWorkspace* ws) const {
  const int n = g.size();
  const MobilityEvent kDomain[2] = {MobilityEvent::kStay,
                                    MobilityEvent::kPass};
  int* domains = ws->arena.Alloc<int>(n);
  std::fill(domains, domains + n, 2);
  ws->event_pots =
      FlatChainPotentials::Build(n, domains, /*tied_edges=*/false, &ws->arena);
  const FlatChainPotentials& pots = ws->event_pots;
  for (int i = 0; i < n; ++i) {
    double* node = pots.NodeRow(i);
    for (int v = 0; v < 2; ++v) {
      node[v] =
          weights_[kWEventMatch] * features::EventMatching(g, i, kDomain[v]);
    }
    if (i + 1 < n) {
      double* edge = pots.EdgeBlock(i);
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          double s = 0.0;
          if (structure_.use_transition) {
            s += weights_[kWEventTransition] *
                 features::EventTransition(kDomain[a], kDomain[b]);
          }
          if (structure_.use_sync) {
            s += weights_[kWEventConsistency] *
                 features::EventConsistency(g, i, kDomain[a], kDomain[b]);
          }
          edge[static_cast<size_t>(a) * 2 + b] = s;
        }
      }
    }
  }
  ws->event_pots.PrecomputeEdgeMax(&ws->arena);
}

void C2mnAnnotator::DecodeEvents(const JointScorer& scorer,
                                 const std::vector<int>& regions,
                                 DecodeWorkspace* ws, bool first_round,
                                 std::vector<MobilityEvent>* events) const {
  const SequenceGraph& g = scorer.graph();
  const int n = g.size();
  const MobilityEvent kDomain[2] = {MobilityEvent::kStay,
                                    MobilityEvent::kPass};
  const FlatChainPotentials& pots = ws->event_pots;
  auto decode = [&](const double* bias, std::vector<int>* out) {
    if (iopts_.use_max_marginals) {
      // row[0] >= row[1] picks stay on ties, exactly what the argmax's
      // smallest-index tie-break does.
      FlatMaxMarginalLabels(pots, bias, &ws->chain, out);
    } else {
      FlatViterbi(pots, bias, &ws->chain, out);
    }
  };
  if (first_round) {
    decode(nullptr, &ws->decoded);
    ws->initial_events = ws->decoded;
  } else {
    ws->decoded = ws->initial_events;
  }
  events->resize(n);
  for (int i = 0; i < n; ++i) (*events)[i] = kDomain[ws->decoded[i]];

  if (!structure_.use_event_seg && !structure_.use_space_seg) return;
  for (int sweep = 0; sweep < iopts_.icm_sweeps; ++sweep) {
    ws->node_bias.assign(pots.node_total, 0.0);
    scorer.BuildSegIndex(regions, *events, &ws->seg);
    for (int i = 0; i < n; ++i) {
      scorer.EventSegScores(i, weights_, regions, *events, &ws->seg,
                            ws->node_bias.data() + pots.node_off[i]);
    }
    decode(ws->node_bias.data(), &ws->next);
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      if ((*events)[i] != kDomain[ws->next[i]]) {
        (*events)[i] = kDomain[ws->next[i]];
        changed = true;
      }
    }
    if (!changed) break;
  }
}

void C2mnAnnotator::Decode(const SequenceGraph& graph,
                           std::vector<int>* regions,
                           std::vector<MobilityEvent>* events) const {
  DecodeWorkspace workspace;
  Decode(graph, &workspace, regions, events);
}

void C2mnAnnotator::Decode(const SequenceGraph& graph, DecodeWorkspace* ws,
                           std::vector<int>* regions,
                           std::vector<MobilityEvent>* events) const {
  assert(static_cast<int>(weights_.size()) == kNumWeights);
  const JointScorer scorer(graph, structure_);
  graph.InitialEventsInto(events);
  // Both chains' potentials depend only on the graph, never on the
  // alternating labels (the coupling enters through the ICM node-bias
  // overlay), so they are built once and shared by every round.
  ws->arena.Reset();
  BuildRegionPotentials(graph, ws);
  BuildEventPotentials(graph, ws);
  const int rounds =
      structure_.IsCoupled() ? iopts_.alternation_rounds : 1;
  ws->last_region_input.clear();
  ws->last_event_input.clear();
  for (int round = 0; round < rounds; ++round) {
    if (ws->last_region_input != *events) {
      ws->last_region_input = *events;
      DecodeRegions(scorer, *events, ws, round == 0, regions);
    }
    if (ws->last_event_input != *regions) {
      ws->last_event_input = *regions;
      DecodeEvents(scorer, *regions, ws, round == 0, events);
    }
  }
}

LabelSequence C2mnAnnotator::Annotate(const PSequence& sequence) const {
  DecodeWorkspace workspace;
  LabelSequence labels;
  AnnotateInto(sequence, &workspace, &labels);
  return labels;
}

void C2mnAnnotator::AnnotateInto(const PSequence& sequence,
                                 DecodeWorkspace* ws,
                                 LabelSequence* labels) const {
  labels->regions.clear();
  labels->events.clear();
  if (sequence.empty()) return;
  SequenceGraph& graph = ws->graph;
  graph.Rebuild(world_, sequence, fopts_, nullptr);
  Decode(graph, ws, &ws->region_idx, &ws->events);
  labels->regions.resize(graph.size());
  labels->events.assign(ws->events.begin(), ws->events.end());
  for (int i = 0; i < graph.size(); ++i) {
    labels->regions[i] = graph.Candidates(i)[ws->region_idx[i]];
  }
}

MSemanticsSequence C2mnAnnotator::AnnotateSemantics(
    const PSequence& sequence) const {
  return MergeLabels(sequence, Annotate(sequence));
}

}  // namespace c2mn
