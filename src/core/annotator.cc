#include "core/annotator.h"

#include <algorithm>
#include <cassert>

#include "crf/chain_model.h"

namespace c2mn {

void C2mnAnnotator::DecodeRegions(const JointScorer& scorer,
                                  const std::vector<MobilityEvent>& events,
                                  std::vector<int>* regions) const {
  const SequenceGraph& g = scorer.graph();
  const int n = g.size();
  // Exact pairwise pass: matching + transition + synchronization cliques.
  ChainPotentials pots;
  pots.node.resize(n);
  pots.edge.resize(n - 1);
  for (int i = 0; i < n; ++i) {
    const size_t da = g.Candidates(i).size();
    pots.node[i].resize(da);
    for (size_t a = 0; a < da; ++a) {
      pots.node[i][a] =
          weights_[kWSpatialMatch] * g.SpatialMatch(i, static_cast<int>(a));
    }
    if (i + 1 < n) {
      const size_t db = g.Candidates(i + 1).size();
      pots.edge[i].assign(da, std::vector<double>(db, 0.0));
      for (size_t a = 0; a < da; ++a) {
        for (size_t b = 0; b < db; ++b) {
          double s = 0.0;
          if (structure_.use_transition) {
            s += weights_[kWSpaceTransition] *
                 features::SpaceTransition(g, i, static_cast<int>(a),
                                           static_cast<int>(b));
          }
          if (structure_.use_sync) {
            s += weights_[kWSpatialConsistency] *
                 features::SpatialConsistency(g, i, static_cast<int>(a),
                                              static_cast<int>(b));
          }
          pots.edge[i][a][b] = s;
        }
      }
    }
  }
  auto decode = [&](const ChainPotentials& p) {
    const ChainModel chain(p);
    if (iopts_.use_max_marginals) {
      const auto marginals = chain.Marginals();
      std::vector<int> out(n);
      for (int i = 0; i < n; ++i) {
        out[i] = static_cast<int>(
            std::max_element(marginals[i].begin(), marginals[i].end()) -
            marginals[i].begin());
      }
      return out;
    }
    return chain.Viterbi();
  };
  *regions = decode(pots);

  // Segmentation cliques (f_es DISTNUM, f_ss run restructuring) are
  // incorporated by folding their per-candidate contribution into the
  // node potentials around the current labeling and re-running the exact
  // chain decode — this keeps the chain's global consistency, which a
  // greedy per-node ICM would destroy.
  if (!structure_.use_event_seg && !structure_.use_space_seg) return;
  const bool seg_on = weights_[kWEventSeg0] != 0.0 ||
                      weights_[kWEventSeg1] != 0.0 ||
                      weights_[kWEventSeg2] != 0.0 ||
                      weights_[kWSpaceSeg0] != 0.0 ||
                      weights_[kWSpaceSeg1] != 0.0 ||
                      weights_[kWSpaceSeg2] != 0.0;
  if (!seg_on) return;
  for (int sweep = 0; sweep < iopts_.icm_sweeps; ++sweep) {
    ChainPotentials augmented = pots;
    for (int i = 0; i < n; ++i) {
      const size_t da = g.Candidates(i).size();
      for (size_t a = 0; a < da; ++a) {
        const FeatureVec f = scorer.RegionNodeFeatures(
            i, static_cast<int>(a), *regions, events);
        double bonus = 0.0;
        for (int k : {kWEventSeg0, kWEventSeg1, kWEventSeg2, kWSpaceSeg0,
                      kWSpaceSeg1, kWSpaceSeg2}) {
          bonus += weights_[k] * f[k];
        }
        augmented.node[i][a] += bonus;
      }
    }
    std::vector<int> next = decode(augmented);
    if (next == *regions) break;
    *regions = std::move(next);
  }
}

void C2mnAnnotator::DecodeEvents(const JointScorer& scorer,
                                 const std::vector<int>& regions,
                                 std::vector<MobilityEvent>* events) const {
  const SequenceGraph& g = scorer.graph();
  const int n = g.size();
  const MobilityEvent kDomain[2] = {MobilityEvent::kStay,
                                    MobilityEvent::kPass};
  ChainPotentials pots;
  pots.node.resize(n);
  pots.edge.resize(n - 1);
  for (int i = 0; i < n; ++i) {
    pots.node[i].resize(2);
    for (int v = 0; v < 2; ++v) {
      pots.node[i][v] =
          weights_[kWEventMatch] * features::EventMatching(g, i, kDomain[v]);
    }
    if (i + 1 < n) {
      pots.edge[i].assign(2, std::vector<double>(2, 0.0));
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          double s = 0.0;
          if (structure_.use_transition) {
            s += weights_[kWEventTransition] *
                 features::EventTransition(kDomain[a], kDomain[b]);
          }
          if (structure_.use_sync) {
            s += weights_[kWEventConsistency] *
                 features::EventConsistency(g, i, kDomain[a], kDomain[b]);
          }
          pots.edge[i][a][b] = s;
        }
      }
    }
  }
  auto decode = [&](const ChainPotentials& p) {
    const ChainModel chain(p);
    std::vector<int> out;
    if (iopts_.use_max_marginals) {
      const auto marginals = chain.Marginals();
      out.resize(n);
      for (int i = 0; i < n; ++i) {
        out[i] = marginals[i][0] >= marginals[i][1] ? 0 : 1;
      }
    } else {
      out = chain.Viterbi();
    }
    return out;
  };
  std::vector<int> decoded = decode(pots);
  events->resize(n);
  for (int i = 0; i < n; ++i) (*events)[i] = kDomain[decoded[i]];

  if (!structure_.use_event_seg && !structure_.use_space_seg) return;
  for (int sweep = 0; sweep < iopts_.icm_sweeps; ++sweep) {
    ChainPotentials augmented = pots;
    for (int i = 0; i < n; ++i) {
      for (int v = 0; v < 2; ++v) {
        const FeatureVec f =
            scorer.EventNodeFeatures(i, kDomain[v], regions, *events);
        double bonus = 0.0;
        for (int k : {kWEventSeg0, kWEventSeg1, kWEventSeg2, kWSpaceSeg0,
                      kWSpaceSeg1, kWSpaceSeg2}) {
          bonus += weights_[k] * f[k];
        }
        augmented.node[i][v] += bonus;
      }
    }
    const std::vector<int> next = decode(augmented);
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      if ((*events)[i] != kDomain[next[i]]) {
        (*events)[i] = kDomain[next[i]];
        changed = true;
      }
    }
    if (!changed) break;
  }
}

void C2mnAnnotator::Decode(const SequenceGraph& graph,
                           std::vector<int>* regions,
                           std::vector<MobilityEvent>* events) const {
  assert(static_cast<int>(weights_.size()) == kNumWeights);
  const JointScorer scorer(graph, structure_);
  *events = graph.InitialEvents();
  const int rounds =
      structure_.IsCoupled() ? iopts_.alternation_rounds : 1;
  for (int round = 0; round < rounds; ++round) {
    DecodeRegions(scorer, *events, regions);
    DecodeEvents(scorer, *regions, events);
  }
}

LabelSequence C2mnAnnotator::Annotate(const PSequence& sequence) const {
  LabelSequence labels;
  if (sequence.empty()) return labels;
  SequenceGraph graph(world_, sequence, fopts_, nullptr);
  std::vector<int> regions;
  std::vector<MobilityEvent> events;
  Decode(graph, &regions, &events);
  labels.regions.resize(graph.size());
  labels.events = events;
  for (int i = 0; i < graph.size(); ++i) {
    labels.regions[i] = graph.Candidates(i)[regions[i]];
  }
  return labels;
}

MSemanticsSequence C2mnAnnotator::AnnotateSemantics(
    const PSequence& sequence) const {
  return MergeLabels(sequence, Annotate(sequence));
}

}  // namespace c2mn
