#include "core/annotator.h"

#include <algorithm>
#include <cassert>

#include "crf/flat_chain.h"

namespace c2mn {

namespace {

/// Argmax decoding of flat per-position marginal rows into `out`.
void ArgmaxRows(const FlatChainPotentials& pots, const double* marginals,
                std::vector<int>* out) {
  const int n = pots.n;
  out->resize(n);
  for (int i = 0; i < n; ++i) {
    const double* row = marginals + pots.node_off[i];
    (*out)[i] = static_cast<int>(
        std::max_element(row, row + pots.domains[i]) - row);
  }
}

}  // namespace

void C2mnAnnotator::DecodeRegions(const JointScorer& scorer,
                                  const std::vector<MobilityEvent>& events,
                                  DecodeWorkspace* ws,
                                  std::vector<int>* regions) const {
  const SequenceGraph& g = scorer.graph();
  const int n = g.size();
  // Exact pairwise pass: matching + transition + synchronization cliques,
  // built directly in the flat arena layout (no nested vectors).
  ws->arena.Reset();
  int* domains = ws->arena.Alloc<int>(n);
  for (int i = 0; i < n; ++i) {
    domains[i] = static_cast<int>(g.Candidates(i).size());
  }
  const FlatChainPotentials pots =
      FlatChainPotentials::Build(n, domains, /*tied_edges=*/false, &ws->arena);
  for (int i = 0; i < n; ++i) {
    double* node = pots.NodeRow(i);
    const int da = domains[i];
    for (int a = 0; a < da; ++a) {
      node[a] = weights_[kWSpatialMatch] * g.SpatialMatch(i, a);
    }
    if (i + 1 < n) {
      const int db = domains[i + 1];
      double* edge = pots.EdgeBlock(i);
      for (int a = 0; a < da; ++a) {
        double* row = edge + static_cast<size_t>(a) * db;
        for (int b = 0; b < db; ++b) {
          double s = 0.0;
          if (structure_.use_transition) {
            s += weights_[kWSpaceTransition] *
                 features::SpaceTransition(g, i, a, b);
          }
          if (structure_.use_sync) {
            s += weights_[kWSpatialConsistency] *
                 features::SpatialConsistency(g, i, a, b);
          }
          row[b] = s;
        }
      }
    }
  }
  auto decode = [&](const double* bias, std::vector<int>* out) {
    if (iopts_.use_max_marginals) {
      ws->marginals.resize(pots.node_total);
      FlatMarginals(pots, bias, &ws->chain, ws->marginals.data());
      ArgmaxRows(pots, ws->marginals.data(), out);
    } else {
      FlatViterbi(pots, bias, &ws->chain, out);
    }
  };
  decode(nullptr, regions);

  // Segmentation cliques (f_es DISTNUM, f_ss run restructuring) are
  // incorporated by folding their per-candidate contribution into a node
  // *overlay* around the current labeling and re-running the exact chain
  // decode — this keeps the chain's global consistency, which a greedy
  // per-node ICM would destroy.  The overlay touches O(n·d) node entries
  // per sweep; the edge blocks are shared untouched across sweeps, where
  // the old code deep-copied the whole O(n·d²) potential set.
  if (!structure_.use_event_seg && !structure_.use_space_seg) return;
  const bool seg_on = weights_[kWEventSeg0] != 0.0 ||
                      weights_[kWEventSeg1] != 0.0 ||
                      weights_[kWEventSeg2] != 0.0 ||
                      weights_[kWSpaceSeg0] != 0.0 ||
                      weights_[kWSpaceSeg1] != 0.0 ||
                      weights_[kWSpaceSeg2] != 0.0;
  if (!seg_on) return;
  for (int sweep = 0; sweep < iopts_.icm_sweeps; ++sweep) {
    ws->node_bias.assign(pots.node_total, 0.0);
    for (int i = 0; i < n; ++i) {
      scorer.RegionSegScores(i, weights_, *regions, events, &ws->seg,
                             ws->node_bias.data() + pots.node_off[i]);
    }
    decode(ws->node_bias.data(), &ws->next);
    if (ws->next == *regions) break;
    std::swap(*regions, ws->next);  // Next decode fully overwrites ws->next.
  }
}

void C2mnAnnotator::DecodeEvents(const JointScorer& scorer,
                                 const std::vector<int>& regions,
                                 DecodeWorkspace* ws,
                                 std::vector<MobilityEvent>* events) const {
  const SequenceGraph& g = scorer.graph();
  const int n = g.size();
  const MobilityEvent kDomain[2] = {MobilityEvent::kStay,
                                    MobilityEvent::kPass};
  ws->arena.Reset();
  int* domains = ws->arena.Alloc<int>(n);
  std::fill(domains, domains + n, 2);
  const FlatChainPotentials pots =
      FlatChainPotentials::Build(n, domains, /*tied_edges=*/false, &ws->arena);
  for (int i = 0; i < n; ++i) {
    double* node = pots.NodeRow(i);
    for (int v = 0; v < 2; ++v) {
      node[v] =
          weights_[kWEventMatch] * features::EventMatching(g, i, kDomain[v]);
    }
    if (i + 1 < n) {
      double* edge = pots.EdgeBlock(i);
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          double s = 0.0;
          if (structure_.use_transition) {
            s += weights_[kWEventTransition] *
                 features::EventTransition(kDomain[a], kDomain[b]);
          }
          if (structure_.use_sync) {
            s += weights_[kWEventConsistency] *
                 features::EventConsistency(g, i, kDomain[a], kDomain[b]);
          }
          edge[static_cast<size_t>(a) * 2 + b] = s;
        }
      }
    }
  }
  auto decode = [&](const double* bias, std::vector<int>* out) {
    if (iopts_.use_max_marginals) {
      ws->marginals.resize(pots.node_total);
      FlatMarginals(pots, bias, &ws->chain, ws->marginals.data());
      out->resize(n);
      for (int i = 0; i < n; ++i) {
        const double* row = ws->marginals.data() + pots.node_off[i];
        (*out)[i] = row[0] >= row[1] ? 0 : 1;
      }
    } else {
      FlatViterbi(pots, bias, &ws->chain, out);
    }
  };
  decode(nullptr, &ws->decoded);
  events->resize(n);
  for (int i = 0; i < n; ++i) (*events)[i] = kDomain[ws->decoded[i]];

  if (!structure_.use_event_seg && !structure_.use_space_seg) return;
  for (int sweep = 0; sweep < iopts_.icm_sweeps; ++sweep) {
    ws->node_bias.assign(pots.node_total, 0.0);
    for (int i = 0; i < n; ++i) {
      scorer.EventSegScores(i, weights_, regions, *events,
                            ws->node_bias.data() + pots.node_off[i]);
    }
    decode(ws->node_bias.data(), &ws->next);
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      if ((*events)[i] != kDomain[ws->next[i]]) {
        (*events)[i] = kDomain[ws->next[i]];
        changed = true;
      }
    }
    if (!changed) break;
  }
}

void C2mnAnnotator::Decode(const SequenceGraph& graph,
                           std::vector<int>* regions,
                           std::vector<MobilityEvent>* events) const {
  DecodeWorkspace workspace;
  Decode(graph, &workspace, regions, events);
}

void C2mnAnnotator::Decode(const SequenceGraph& graph, DecodeWorkspace* ws,
                           std::vector<int>* regions,
                           std::vector<MobilityEvent>* events) const {
  assert(static_cast<int>(weights_.size()) == kNumWeights);
  const JointScorer scorer(graph, structure_);
  graph.InitialEventsInto(events);
  const int rounds =
      structure_.IsCoupled() ? iopts_.alternation_rounds : 1;
  for (int round = 0; round < rounds; ++round) {
    DecodeRegions(scorer, *events, ws, regions);
    DecodeEvents(scorer, *regions, ws, events);
  }
}

LabelSequence C2mnAnnotator::Annotate(const PSequence& sequence) const {
  DecodeWorkspace workspace;
  LabelSequence labels;
  AnnotateInto(sequence, &workspace, &labels);
  return labels;
}

void C2mnAnnotator::AnnotateInto(const PSequence& sequence,
                                 DecodeWorkspace* ws,
                                 LabelSequence* labels) const {
  labels->regions.clear();
  labels->events.clear();
  if (sequence.empty()) return;
  SequenceGraph graph(world_, sequence, fopts_, nullptr);
  Decode(graph, ws, &ws->region_idx, &ws->events);
  labels->regions.resize(graph.size());
  labels->events.assign(ws->events.begin(), ws->events.end());
  for (int i = 0; i < graph.size(); ++i) {
    labels->regions[i] = graph.Candidates(i)[ws->region_idx[i]];
  }
}

MSemanticsSequence C2mnAnnotator::AnnotateSemantics(
    const PSequence& sequence) const {
  return MergeLabels(sequence, Annotate(sequence));
}

}  // namespace c2mn
