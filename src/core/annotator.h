#ifndef C2MN_CORE_ANNOTATOR_H_
#define C2MN_CORE_ANNOTATOR_H_

#include <vector>

#include "core/scorer.h"
#include "crf/flat_chain.h"
#include "data/msemantics.h"

namespace c2mn {

/// \brief Reusable decode state: the arena holding the flat chain
/// potentials, the message workspace, the ICM node-bias overlay, and the
/// label scratch vectors.  A workspace warmed up on one sequence makes
/// subsequent decodes of similar length allocation-free, which is what
/// lets a streaming session (OnlineAnnotator / AnnotationService) run at
/// steady state without touching the heap.  One workspace serves one
/// thread; the annotator itself stays immutable and shareable.
struct DecodeWorkspace {
  InferenceArena arena;
  ChainWorkspace chain;
  std::vector<double> node_bias;     ///< ICM overlay (node layout).
  std::vector<int> decoded;          ///< Current labels (indices).
  std::vector<int> next;             ///< Candidate labels of one sweep.
  std::vector<int> region_idx;       ///< Region labels as candidate indices.
  std::vector<MobilityEvent> events; ///< Event labels.
  SegScratch seg;
  /// Arena-backed chain views built once per Decode() and shared by every
  /// alternation round (the potentials depend only on the graph; the
  /// alternating coupling enters via the ICM node-bias overlay).  Valid
  /// until the next arena.Reset().
  FlatChainPotentials region_pots;
  FlatChainPotentials event_pots;
  /// Pairwise-only (no-overlay) decode of each chain, computed in round 1
  /// and replayed by later rounds: the initial decode never depends on
  /// the other chain's labels, so re-running it would reproduce these
  /// exact labels at full marginal-pass cost.
  std::vector<int> initial_regions;
  std::vector<int> initial_events;
  /// Alternation memoization: each half-round is a pure function of the
  /// *other* chain's labels (it restarts from the cached initial decode),
  /// so when its input labels match the previous run verbatim the rerun
  /// would reproduce the labels already in place and is skipped.  Cleared
  /// at the start of every Decode().
  std::vector<MobilityEvent> last_region_input;
  std::vector<int> last_event_input;
  /// Reusable sequence graph for AnnotateInto: rebuilding one warmed-up
  /// graph per decode reuses the candidate/feature/clustering buffers
  /// instead of reallocating them.  Valid only during the AnnotateInto
  /// call (it points into the caller's sequence).
  SequenceGraph graph;
};

/// \brief Decoding hyper-parameters.
struct InferenceOptions {
  /// Alternating (R given E, E given R) decoding rounds.
  int alternation_rounds = 3;
  /// ICM refinement sweeps per decode (layers the segmentation cliques on
  /// top of the exact pairwise chain pass).
  int icm_sweeps = 2;
  /// Decode the pairwise chain by posterior node marginals (forward-
  /// backward) instead of Viterbi.  Max-marginal decoding maximizes the
  /// expected number of correct records, which is what RA / EA measure.
  bool use_max_marginals = true;
};

/// \brief Joint MAP labeling of p-sequences with a trained C2MN.
///
/// Decoding mirrors the model structure: events are initialized by
/// st-DBSCAN exactly like Algorithm 1's first configuration; then the
/// region chain is decoded given events (Viterbi over the matching,
/// transition, and synchronization cliques, followed by ICM sweeps that
/// add the segmentation cliques), the event chain likewise given regions,
/// and the alternation repeats.  With segmentation cliques disabled
/// (CMN), the two decodes are independent, reproducing the baseline's
/// asynchronous two-way labeling.
class C2mnAnnotator {
 public:
  C2mnAnnotator(const World& world, FeatureOptions feature_options,
                C2mnStructure structure, std::vector<double> weights,
                InferenceOptions inference_options)
      : world_(world),
        fopts_(std::move(feature_options)),
        structure_(structure),
        weights_(std::move(weights)),
        iopts_(inference_options) {}

  C2mnAnnotator(const World& world, FeatureOptions feature_options,
                C2mnStructure structure, std::vector<double> weights)
      : C2mnAnnotator(world, std::move(feature_options), structure,
                      std::move(weights), InferenceOptions()) {}

  const std::vector<double>& weights() const { return weights_; }

  /// Labels every record with a region and an event.
  LabelSequence Annotate(const PSequence& sequence) const;

  /// Annotate with an external workspace, writing into `labels` (cleared
  /// first).  Reusing one workspace across calls keeps the decode free of
  /// per-sequence potential/message allocations; this is the entry point
  /// of the streaming hot path.
  void AnnotateInto(const PSequence& sequence, DecodeWorkspace* workspace,
                    LabelSequence* labels) const;

  /// Labels a pre-built sequence graph (exposed for training internals
  /// and micro-benchmarks); returns candidate *indices* for regions.
  void Decode(const SequenceGraph& graph, std::vector<int>* regions,
              std::vector<MobilityEvent>* events) const;

  /// Decode with an external workspace (see AnnotateInto).
  void Decode(const SequenceGraph& graph, DecodeWorkspace* workspace,
              std::vector<int>* regions,
              std::vector<MobilityEvent>* events) const;

  /// Full label-and-merge annotation: labels then merges into
  /// m-semantics (Fig. 2 of the paper).
  MSemanticsSequence AnnotateSemantics(const PSequence& sequence) const;

 private:
  /// Build the pairwise chain potentials into ws->arena (views stored in
  /// ws->region_pots / ws->event_pots).  Called once per Decode().
  void BuildRegionPotentials(const SequenceGraph& graph,
                             DecodeWorkspace* ws) const;
  void BuildEventPotentials(const SequenceGraph& graph,
                            DecodeWorkspace* ws) const;
  /// One alternation round of each chain.  `first_round` computes and
  /// caches the pairwise-only initial decode; later rounds replay it.
  void DecodeRegions(const JointScorer& scorer,
                     const std::vector<MobilityEvent>& events,
                     DecodeWorkspace* ws, bool first_round,
                     std::vector<int>* regions) const;
  void DecodeEvents(const JointScorer& scorer,
                    const std::vector<int>& regions, DecodeWorkspace* ws,
                    bool first_round,
                    std::vector<MobilityEvent>* events) const;

  const World& world_;
  FeatureOptions fopts_;
  C2mnStructure structure_;
  std::vector<double> weights_;
  InferenceOptions iopts_;
};

}  // namespace c2mn

#endif  // C2MN_CORE_ANNOTATOR_H_
