#ifndef C2MN_CORE_ANNOTATOR_H_
#define C2MN_CORE_ANNOTATOR_H_

#include <vector>

#include "core/scorer.h"
#include "data/msemantics.h"

namespace c2mn {

/// \brief Decoding hyper-parameters.
struct InferenceOptions {
  /// Alternating (R given E, E given R) decoding rounds.
  int alternation_rounds = 3;
  /// ICM refinement sweeps per decode (layers the segmentation cliques on
  /// top of the exact pairwise chain pass).
  int icm_sweeps = 2;
  /// Decode the pairwise chain by posterior node marginals (forward-
  /// backward) instead of Viterbi.  Max-marginal decoding maximizes the
  /// expected number of correct records, which is what RA / EA measure.
  bool use_max_marginals = true;
};

/// \brief Joint MAP labeling of p-sequences with a trained C2MN.
///
/// Decoding mirrors the model structure: events are initialized by
/// st-DBSCAN exactly like Algorithm 1's first configuration; then the
/// region chain is decoded given events (Viterbi over the matching,
/// transition, and synchronization cliques, followed by ICM sweeps that
/// add the segmentation cliques), the event chain likewise given regions,
/// and the alternation repeats.  With segmentation cliques disabled
/// (CMN), the two decodes are independent, reproducing the baseline's
/// asynchronous two-way labeling.
class C2mnAnnotator {
 public:
  C2mnAnnotator(const World& world, FeatureOptions feature_options,
                C2mnStructure structure, std::vector<double> weights,
                InferenceOptions inference_options)
      : world_(world),
        fopts_(std::move(feature_options)),
        structure_(structure),
        weights_(std::move(weights)),
        iopts_(inference_options) {}

  C2mnAnnotator(const World& world, FeatureOptions feature_options,
                C2mnStructure structure, std::vector<double> weights)
      : C2mnAnnotator(world, std::move(feature_options), structure,
                      std::move(weights), InferenceOptions()) {}

  const std::vector<double>& weights() const { return weights_; }

  /// Labels every record with a region and an event.
  LabelSequence Annotate(const PSequence& sequence) const;

  /// Labels a pre-built sequence graph (exposed for training internals
  /// and micro-benchmarks); returns candidate *indices* for regions.
  void Decode(const SequenceGraph& graph, std::vector<int>* regions,
              std::vector<MobilityEvent>* events) const;

  /// Full label-and-merge annotation: labels then merges into
  /// m-semantics (Fig. 2 of the paper).
  MSemanticsSequence AnnotateSemantics(const PSequence& sequence) const;

 private:
  void DecodeRegions(const JointScorer& scorer,
                     const std::vector<MobilityEvent>& events,
                     std::vector<int>* regions) const;
  void DecodeEvents(const JointScorer& scorer,
                    const std::vector<int>& regions,
                    std::vector<MobilityEvent>* events) const;

  const World& world_;
  FeatureOptions fopts_;
  C2mnStructure structure_;
  std::vector<double> weights_;
  InferenceOptions iopts_;
};

}  // namespace c2mn

#endif  // C2MN_CORE_ANNOTATOR_H_
