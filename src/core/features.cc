#include "core/features.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace c2mn {
namespace features {

double EventMatching(const SequenceGraph& g, int i, MobilityEvent e) {
  const FeatureOptions& opts = g.options();
  const DensityClass d = g.Density(i);
  if (e == MobilityEvent::kStay) {
    if (d == DensityClass::kCore) return 1.0;
    if (d == DensityClass::kBorder) return opts.fem_alpha;
    return 0.0;
  }
  // e == pass.
  if (d == DensityClass::kNoise) return 1.0;
  if (d == DensityClass::kBorder) return opts.fem_beta;
  return 0.0;
}

double RegionBaseDistance(const SequenceGraph& g, RegionId ra, RegionId rb) {
  double dist = g.world().oracle().RegionToRegion(ra, rb);
  if (!std::isfinite(dist)) {
    dist = 10.0 * std::max(1.0, g.world().oracle().max_region_distance());
  }
  return dist;
}

double EdgeTimeDecay(const SequenceGraph& g, int i) {
  if (!g.options().use_time_decay) return 1.0;
  return std::exp(-g.options().gamma_time_decay * g.DeltaT(i));
}

namespace {

/// Expected MIWD between the region labels of records i and i+1, with the
/// optional time-decay multiplier applied to the distance term.
double DecayedRegionDistance(const SequenceGraph& g, int i, RegionId ra,
                             RegionId rb) {
  if (ra == rb) return 0.0;
  return RegionBaseDistance(g, ra, rb) * EdgeTimeDecay(g, i);
}

}  // namespace

double SpaceTransition(const SequenceGraph& g, int i, int a_at_i,
                       int b_at_next) {
  const RegionId ra = g.Candidates(i)[a_at_i];
  const RegionId rb = g.Candidates(i + 1)[b_at_next];
  const double dist = DecayedRegionDistance(g, i, ra, rb);
  return std::exp(-g.options().gamma_st * dist);
}

double SpatialConsistency(const SequenceGraph& g, int i, int a_at_i,
                          int b_at_next) {
  const RegionId ra = g.Candidates(i)[a_at_i];
  const RegionId rb = g.Candidates(i + 1)[b_at_next];
  const double dist = DecayedRegionDistance(g, i, ra, rb);
  const double gap = std::fabs(dist - g.DeltaE(i));
  return std::exp(-gap / g.options().sc_scale_meters);
}

double EventConsistency(const SequenceGraph& g, int i, MobilityEvent e1,
                        MobilityEvent e2) {
  const double speed_term =
      std::min(1.0, g.options().gamma_ec * g.Speed(i));
  const double pass_term =
      0.5 * (PassIndicator(e1) + PassIndicator(e2));
  return std::exp(-std::fabs(speed_term - pass_term));
}

namespace internal {

double RunSpeedNorm(const SequenceGraph& g, int i, int j) {
  // Segment speed: total Euclidean path length over elapsed time, scaled
  // like f_ec.  A singleton run borrows the local edge speed.
  double speed;
  if (j > i) {
    const double path = g.PathLength(i, j);
    const double elapsed = std::max(
        1e-6, g.sequence()[j].timestamp - g.sequence()[i].timestamp);
    speed = path / elapsed;
  } else {
    double local = 0.0;
    int cnt = 0;
    if (i > 0) {
      local += g.Speed(i - 1);
      ++cnt;
    }
    if (i + 1 < g.size()) {
      local += g.Speed(i);
      ++cnt;
    }
    speed = cnt > 0 ? local / cnt : 0.0;
  }
  return std::min(1.0, g.options().gamma_ec * speed);
}

double RunTurnNorm(const SequenceGraph& g, int i, int j) {
  return std::min(1.0, g.InteriorTurns(i, j) / kSegmentScale);
}

}  // namespace internal

std::array<double, 3> EventSegmentation(const SequenceGraph& g, int i, int j,
                                        const std::vector<int>& regions,
                                        MobilityEvent e, int override_pos,
                                        int override_cand) {
  // DISTNUM: distinct region labels over the run.  Counts at or past
  // internal::kDistinctCap all normalize to 1.0, so the scan keeps a
  // small bounded id buffer and stops early instead of filling a hash set
  // proportional to the run.
  RegionId seen[internal::kDistinctCap];
  int distinct = 0;
  for (int x = i; x <= j && distinct < internal::kDistinctCap; ++x) {
    const int cand = x == override_pos ? override_cand : regions[x];
    const RegionId r = g.Candidates(x)[cand];
    bool found = false;
    for (int s = 0; s < distinct; ++s) {
      if (seen[s] == r) {
        found = true;
        break;
      }
    }
    if (!found) seen[distinct++] = r;
  }
  const double dist_norm = internal::DistinctNorm(distinct);
  const double speed_norm = internal::RunSpeedNorm(g, i, j);
  const double turn_norm = internal::RunTurnNorm(g, i, j);

  const double sign = 2.0 * PassIndicator(e) - 1.0;  // +1 pass, -1 stay.
  return {sign * dist_norm, sign * speed_norm, sign * -turn_norm};
}

std::array<double, 3> SpaceSegmentation(const SequenceGraph& g, int i, int j,
                                        const std::vector<MobilityEvent>& events,
                                        int override_pos,
                                        MobilityEvent override_event) {
  auto event_at = [&](int x) {
    return x == override_pos ? override_event : events[x];
  };
  // Distinct event labels: 1 or 2; normalized to {0, 1} and negated
  // (stable mobility state inside one region scores higher).
  bool has_stay = false, has_pass = false;
  int transitions = 0;
  for (int x = i; x <= j; ++x) {
    (event_at(x) == MobilityEvent::kStay ? has_stay : has_pass) = true;
    if (x > i && event_at(x) != event_at(x - 1)) ++transitions;
  }
  const double distinct_norm = (has_stay && has_pass) ? 1.0 : 0.0;
  const double trans_norm =
      std::min(1.0, transitions / internal::kSegmentScale);
  // Boundary: the first and last records of a region run are more likely
  // pass events (the object is entering/leaving).  Interior runs only —
  // the sequence ends are not region boundaries.
  double boundary = 0.0;
  double boundary_slots = 0.0;
  if (i > 0) {
    boundary += PassIndicator(event_at(i));
    boundary_slots += 1.0;
  }
  if (j + 1 < g.size()) {
    boundary += PassIndicator(event_at(j));
    boundary_slots += 1.0;
  }
  const double boundary_norm =
      boundary_slots > 0 ? boundary / boundary_slots : 0.0;
  return {-distinct_norm, -trans_norm, boundary_norm};
}

}  // namespace features
}  // namespace c2mn
