#ifndef C2MN_CORE_FEATURES_H_
#define C2MN_CORE_FEATURES_H_

#include <algorithm>
#include <array>

#include "core/sequence_graph.h"

namespace c2mn {

/// The eight feature functions of Table II, evaluated against a
/// SequenceGraph.  Region arguments are candidate *indices* (into
/// graph.Candidates(i)); segment features receive the run bounds [i, j]
/// inclusive.  All values are bounded, so weights stay on one scale.
namespace features {

/// (1) f_sm: pre-computed uncertainty-disk/region overlap (Eq. 3).
inline double SpatialMatching(const SequenceGraph& g, int i, int a) {
  return g.SpatialMatch(i, a);
}

/// (2) f_em: density class vs event (1 / α / β / 0 table).
double EventMatching(const SequenceGraph& g, int i, MobilityEvent e);

/// (3) f_st: exp(-γ_st · E[MIWD]) between consecutive region labels
/// (Eq. 4), optional time-decayed distance impact.
double SpaceTransition(const SequenceGraph& g, int i, int a_at_i,
                       int b_at_next);

/// Expected MIWD between two distinct region ids, clamped finite (no
/// time decay).  f_st and f_sc both consume this one distance; evaluating
/// it once per (a, b) pair and the decay multiplier once per edge is how
/// the annotator builds both pairwise features without recomputing the
/// oracle lookup (bit-identical to calling SpaceTransition and
/// SpatialConsistency separately).
double RegionBaseDistance(const SequenceGraph& g, RegionId ra, RegionId rb);

/// Time-decay multiplier of edge i's distance term; 1.0 when decay is
/// disabled.  Depends only on i, so callers hoist it out of label loops.
double EdgeTimeDecay(const SequenceGraph& g, int i);

/// (4) f_et: event smoothness (1 if equal else 0).
inline double EventTransition(MobilityEvent e1, MobilityEvent e2) {
  return e1 == e2 ? 1.0 : 0.0;
}

/// (5) f_sc: exp(-|E[MIWD] - d_E| / scale) consistency between region-
/// level and raw-location-level distance (Eq. 5).
double SpatialConsistency(const SequenceGraph& g, int i, int a_at_i,
                          int b_at_next);

/// (6) f_ec: consistency between observed speed and the pass-ness of the
/// two events.
double EventConsistency(const SequenceGraph& g, int i, MobilityEvent e1,
                        MobilityEvent e2);

/// (7) f_es: event-based segmentation features over the run [i, j] whose
/// event labels all equal `e`.  Returns the 3-vector
/// (2·I(e)-1) · (distinct-regions, speed, -turns), each term normalized
/// to [0, 1].  When `override_pos` is in [i, j], that record's region
/// label is taken as candidate `override_cand` instead of
/// regions[override_pos] (used to evaluate counterfactual labels without
/// copying the label vector).
std::array<double, 3> EventSegmentation(const SequenceGraph& g, int i, int j,
                                        const std::vector<int>& regions,
                                        MobilityEvent e, int override_pos = -1,
                                        int override_cand = -1);

/// (8) f_ss: space-based segmentation features over the run [i, j] whose
/// region labels are all equal.  Returns (-distinct-events,
/// -event-transitions, boundary-passes), normalized.  `override_pos` /
/// `override_event` substitute one event label, as above.
std::array<double, 3> SpaceSegmentation(
    const SequenceGraph& g, int i, int j,
    const std::vector<MobilityEvent>& events, int override_pos = -1,
    MobilityEvent override_event = MobilityEvent::kStay);

/// Shared internals of the segmentation features, exposed so batched
/// candidate evaluation (scorer::RegionSegScores) computes exactly the
/// same terms as the per-candidate functions above.
namespace internal {

/// Fixed normalization scale of DISTNUM / TURNNUM / transition counts: one
/// label flip always moves the feature by the same amount (normalizing by
/// the run length would make segmentation cliques powerless on long runs).
inline constexpr double kSegmentScale = 8.0;

/// Distinct counts at or past the cap all normalize to exactly 1.0, so a
/// distinct-region scan may stop once it has seen this many ids.
inline constexpr int kDistinctCap = static_cast<int>(kSegmentScale) + 1;

/// Normalized DISTNUM term for a run with `distinct` distinct regions.
inline double DistinctNorm(int distinct) {
  return std::min(1.0, (static_cast<double>(distinct) - 1.0) / kSegmentScale);
}

/// Normalized segment speed over the run [i, j] (O(1) via the graph's
/// path-length prefix sums; a singleton run borrows local edge speed).
double RunSpeedNorm(const SequenceGraph& g, int i, int j);

/// Normalized TURNNUM over the interior of the run [i, j], O(1).
double RunTurnNorm(const SequenceGraph& g, int i, int j);

}  // namespace internal
}  // namespace features
}  // namespace c2mn

#endif  // C2MN_CORE_FEATURES_H_
