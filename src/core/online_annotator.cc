#include "core/online_annotator.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/metrics_registry.h"

namespace c2mn {

namespace {

/// Process-wide decode metrics via function-local statics: registration
/// (the only allocating step) happens on the first decode, after which
/// each decode adds two clock reads and lock-free atomic folds — the
/// steady-state record path stays allocation-free.
obs::Counter* DecodeWindowsTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "c2mn_decode_windows_total",
      "Sliding-window Viterbi decodes run by online annotators");
  return counter;
}

obs::Histogram* DecodeSeconds() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "c2mn_decode_seconds", "Wall time of one sliding-window decode",
          obs::Histogram::Config{1e-7, 1e2, 2.0});
  return histogram;
}

obs::Counter* DecodeWindowsSkippedTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "c2mn_decode_windows_skipped_total",
      "Window decodes skipped because the window was unchanged since the "
      "last decode (finalized from cached provisional labels)");
  return counter;
}

}  // namespace

OnlineAnnotator::Options OnlineAnnotator::Options::Validated() const {
  Options v = *this;
  v.window_records = std::max(v.window_records, 2);
  v.decode_stride = std::max(v.decode_stride, 1);
  v.finalize_lag = std::clamp(v.finalize_lag, 0, v.window_records - 1);
  // A decode frees window_records - finalize_lag slots, so a stride
  // longer than that would legally grow the window past window_records
  // and reallocate on the hot push path, breaking both the documented
  // window size and the zero-alloc steady state.
  v.decode_stride =
      std::min(v.decode_stride, v.window_records - v.finalize_lag);
  return v;
}

OnlineAnnotator::OnlineAnnotator(const World& world,
                                 FeatureOptions feature_options,
                                 C2mnStructure structure,
                                 std::vector<double> weights, Options options)
    : world_(world),
      fopts_(std::move(feature_options)),
      annotator_(world, fopts_, structure, std::move(weights)),
      options_(options.Validated()) {
  // The true maximum: a decode fires once the window is full AND
  // decode_stride records arrived since the last one, so the window can
  // hold up to max(window_records, finalize_lag + decode_stride)
  // records.  With Validated()'s stride clamp the two terms coincide;
  // the max() keeps the reservation correct even if the invariant is
  // ever relaxed.
  window_.reserve(static_cast<size_t>(
      std::max(options_.window_records,
               options_.finalize_lag + options_.decode_stride)));
}

void OnlineAnnotator::Accumulate(const PositioningRecord& record,
                                 RegionId region, MobilityEvent event,
                                 std::vector<MSemantics>* emitted) {
  if (pending_.has_value() && pending_->region == region &&
      pending_->event == event) {
    pending_->t_end = record.timestamp;
    ++pending_->support;
    return;
  }
  if (pending_.has_value()) emitted->push_back(*pending_);
  MSemantics next;
  next.region = region;
  next.event = event;
  next.t_start = record.timestamp;
  next.t_end = record.timestamp;
  next.support = 1;
  pending_ = next;
}

void OnlineAnnotator::DecodeAndFinalize(int keep_provisional,
                                        DecodeWorkspace* ws,
                                        std::vector<MSemantics>* emitted) {
  if (window_.empty()) return;
  const int n = static_cast<int>(window_.size());
  const int freeze = n - keep_provisional;
  if (!window_dirty_ &&
      static_cast<int>(provisional_regions_.size()) == n) {
    // Nothing was pushed since the last decode, so the cached labels are
    // exactly what re-decoding would have to improve on — and they came
    // from a wider window than the one a re-decode would see now.
    DecodeWindowsSkippedTotal()->Increment();
    if (freeze <= 0) return;
    for (int i = 0; i < freeze; ++i) {
      Accumulate(window_[i], provisional_regions_[i], provisional_events_[i],
                 emitted);
    }
    window_.erase(window_.begin(), window_.begin() + freeze);
    provisional_regions_.erase(provisional_regions_.begin(),
                               provisional_regions_.begin() + freeze);
    provisional_events_.erase(provisional_events_.begin(),
                              provisional_events_.begin() + freeze);
    return;
  }
  const auto decode_start = std::chrono::steady_clock::now();
  sequence_scratch_.records.assign(window_.begin(), window_.end());
  annotator_.AnnotateInto(sequence_scratch_, ws, &labels_scratch_);
  DecodeWindowsTotal()->Increment();
  DecodeSeconds()->Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - decode_start)
                               .count());
  // Cache the labels of the records that stay in the window, so an
  // immediately following decode of the unchanged window (a flush right
  // after a stride decode) can skip the annotator entirely.
  const int first_kept = freeze > 0 ? freeze : 0;
  provisional_regions_.assign(labels_scratch_.regions.begin() + first_kept,
                              labels_scratch_.regions.end());
  provisional_events_.assign(labels_scratch_.events.begin() + first_kept,
                             labels_scratch_.events.end());
  window_dirty_ = false;
  if (freeze <= 0) return;
  for (int i = 0; i < freeze; ++i) {
    Accumulate(window_[i], labels_scratch_.regions[i],
               labels_scratch_.events[i], emitted);
  }
  window_.erase(window_.begin(), window_.begin() + freeze);
}

std::vector<MSemantics> OnlineAnnotator::Push(
    const PositioningRecord& record) {
  std::vector<MSemantics> emitted;
  PushInto(record, &emitted);
  return emitted;
}

void OnlineAnnotator::PushInto(const PositioningRecord& record,
                               std::vector<MSemantics>* emitted) {
  if (PushBuffered(record)) {
    CompleteDecode(&workspace_, emitted);
  } else {
    emitted->clear();
  }
}

bool OnlineAnnotator::PushBuffered(const PositioningRecord& record) {
  PositioningRecord accepted = record;
  if (accepted.timestamp < last_timestamp_) {
    accepted.timestamp = last_timestamp_;
    ++timestamp_violations_;
  }
  last_timestamp_ = accepted.timestamp;
  window_.push_back(accepted);
  window_dirty_ = true;
  ++total_records_;
  ++since_last_decode_;

  const bool window_full =
      static_cast<int>(window_.size()) >= options_.window_records;
  if (window_full && since_last_decode_ >= options_.decode_stride) {
    decode_due_ = true;
  }
  return decode_due_;
}

void OnlineAnnotator::CompleteDecode(DecodeWorkspace* ws,
                                     std::vector<MSemantics>* emitted) {
  emitted->clear();
  if (!decode_due_) return;
  decode_due_ = false;
  DecodeAndFinalize(options_.finalize_lag, ws, emitted);
  since_last_decode_ = 0;
}

std::vector<MSemantics> OnlineAnnotator::Flush() {
  std::vector<MSemantics> emitted;
  FlushInto(&emitted);
  return emitted;
}

void OnlineAnnotator::FlushInto(std::vector<MSemantics>* emitted) {
  FlushInto(&workspace_, emitted);
}

void OnlineAnnotator::FlushInto(DecodeWorkspace* ws,
                                std::vector<MSemantics>* emitted) {
  emitted->clear();
  decode_due_ = false;
  DecodeAndFinalize(0, ws, emitted);
  if (pending_.has_value()) {
    emitted->push_back(*pending_);
    pending_.reset();
  }
  last_timestamp_ = -1e300;
  since_last_decode_ = 0;
  window_dirty_ = true;
  provisional_regions_.clear();
  provisional_events_.clear();
}

}  // namespace c2mn
