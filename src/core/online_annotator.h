#ifndef C2MN_CORE_ONLINE_ANNOTATOR_H_
#define C2MN_CORE_ONLINE_ANNOTATOR_H_

#include <optional>
#include <vector>

#include "core/annotator.h"

namespace c2mn {

/// \brief Streaming m-semantics annotation over a live positioning feed.
///
/// Section V-B1 notes that labeling a ~100-record p-sequence takes well
/// under a second, "acceptable even for online services"; this class
/// turns that observation into an API.  Records are pushed one at a time;
/// a sliding window over the most recent records is re-decoded
/// periodically, labels older than `finalize_lag` records are frozen
/// (their Markov blankets can no longer change materially), and completed
/// label runs are emitted as m-semantics.
///
/// The final output over a whole stream equals label-and-merge over the
/// concatenation of the frozen labels, so all Definition 3 invariants
/// hold.
class OnlineAnnotator {
 public:
  struct Options {
    /// Sliding decode window, in records.
    int window_records = 80;
    /// Records at the head of the window whose labels stay provisional.
    int finalize_lag = 10;
    /// Re-decode every this many pushed records (amortizes cost).
    int decode_stride = 5;

    /// Inconsistent settings are repaired rather than rejected, so a
    /// service hosting thousands of annotators never crashes on a bad
    /// config: window_records >= 2, finalize_lag clamped into
    /// [0, window_records - 1], and decode_stride clamped into
    /// [1, window_records - finalize_lag] — a longer stride would grow
    /// the window past window_records between decodes, reallocating on
    /// the hot push path.
    Options Validated() const;
  };

  OnlineAnnotator(const World& world, FeatureOptions feature_options,
                  C2mnStructure structure, std::vector<double> weights,
                  Options options);

  OnlineAnnotator(const World& world, FeatureOptions feature_options,
                  C2mnStructure structure, std::vector<double> weights)
      : OnlineAnnotator(world, std::move(feature_options), structure,
                        std::move(weights), Options()) {}

  /// Feeds one record; returns the m-semantics completed by this push
  /// (usually none, sometimes one).  Timestamps should be non-decreasing;
  /// a record arriving with an earlier timestamp is clamped up to the
  /// previous one (keeping the emitted sequence time-ordered) and counted
  /// in timestamp_violations().
  std::vector<MSemantics> Push(const PositioningRecord& record);

  /// Push writing into a caller-owned vector (cleared first), so a hot
  /// serving loop can recycle one emit buffer across records.  At steady
  /// state a push that does not trigger a window re-decode performs zero
  /// heap allocations through this entry point.
  void PushInto(const PositioningRecord& record,
                std::vector<MSemantics>* emitted);

  /// The two halves of PushInto, split so a multi-session host can batch
  /// the expensive half: PushBuffered() appends the record (cheap, never
  /// decodes) and returns true when a window decode is now due;
  /// CompleteDecode() runs that decode — using `ws` instead of the
  /// internal workspace, so N sessions on one shard can share a single
  /// warm workspace — and emits into `emitted` (cleared first).  No
  /// record may be buffered between the two calls for one annotator.
  /// PushBuffered + CompleteDecode produce exactly PushInto's output.
  bool PushBuffered(const PositioningRecord& record);
  void CompleteDecode(DecodeWorkspace* ws, std::vector<MSemantics>* emitted);

  /// Whether a buffered decode is pending (PushBuffered returned true
  /// and CompleteDecode has not run yet).
  bool decode_due() const { return decode_due_; }

  /// Ends the stream: decodes and finalizes everything still pending and
  /// returns the remaining m-semantics.  The annotator is then ready for
  /// a fresh stream — a subsequent Push() behaves exactly as on a newly
  /// constructed instance (counters excepted).
  std::vector<MSemantics> Flush();

  /// Flush writing into a caller-owned vector (cleared first).
  void FlushInto(std::vector<MSemantics>* emitted);

  /// Flush decoding through a caller-owned workspace (see CompleteDecode).
  void FlushInto(DecodeWorkspace* ws, std::vector<MSemantics>* emitted);

  /// Number of records consumed so far (across Flush() restarts).
  size_t records_consumed() const { return total_records_; }

  /// Number of out-of-order timestamps clamped so far.
  uint64_t timestamp_violations() const { return timestamp_violations_; }

  /// Bytes of arena memory held by the decode workspace (diagnostics).
  size_t workspace_bytes() const { return workspace_.arena.bytes_reserved(); }

  /// Capacity of the sliding window buffer (diagnostics).  Reserved once
  /// at construction; steady-state pushes never grow it.
  size_t window_capacity() const { return window_.capacity(); }

  /// The repaired options actually in effect.
  const Options& options() const { return options_; }

 private:
  /// Decodes the current window through `ws` and freezes all but the
  /// trailing `keep_provisional` records, emitting completed runs.  When
  /// the window is byte-identical to the one the previous decode saw
  /// (no push since — e.g. a flush right after a stride decode), the
  /// decode is skipped and the cached provisional labels are finalized
  /// instead; they carry *more* context than a re-decode of the short
  /// remaining window would.
  void DecodeAndFinalize(int keep_provisional, DecodeWorkspace* ws,
                         std::vector<MSemantics>* emitted);
  /// Folds one finalized (record, labels) into the pending run.
  void Accumulate(const PositioningRecord& record, RegionId region,
                  MobilityEvent event, std::vector<MSemantics>* emitted);

  const World& world_;
  FeatureOptions fopts_;
  C2mnAnnotator annotator_;
  Options options_;

  /// Sliding window of not-yet-finalized records (capacity reserved up
  /// front, so steady-state pushes never reallocate).
  std::vector<PositioningRecord> window_;
  int since_last_decode_ = 0;
  size_t total_records_ = 0;
  uint64_t timestamp_violations_ = 0;
  double last_timestamp_ = -1e300;
  /// Set by PushBuffered when a window decode is due; cleared by
  /// CompleteDecode / FlushInto.
  bool decode_due_ = false;
  /// Whether the window changed since the last decode.  While false, the
  /// cached provisional labels below still describe window_ exactly and
  /// DecodeAndFinalize can finalize from them without decoding.
  bool window_dirty_ = true;
  /// Labels of window_[i] from the last decode (valid iff !window_dirty_
  /// and the sizes match).
  std::vector<RegionId> provisional_regions_;
  std::vector<MobilityEvent> provisional_events_;

  /// The in-progress m-semantics run.
  std::optional<MSemantics> pending_;

  /// Decode state reused across window re-decodes: flat potentials arena,
  /// chain messages, ICM overlay, and the sequence/label scratch.  After
  /// warm-up a window decode performs no potential/message allocations,
  /// and pushes that do not trigger a decode perform none at all.
  mutable DecodeWorkspace workspace_;
  PSequence sequence_scratch_;
  LabelSequence labels_scratch_;
};

}  // namespace c2mn

#endif  // C2MN_CORE_ONLINE_ANNOTATOR_H_
