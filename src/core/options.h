#ifndef C2MN_CORE_OPTIONS_H_
#define C2MN_CORE_OPTIONS_H_

#include <array>
#include <vector>

#include "clustering/st_dbscan.h"

namespace c2mn {

/// \brief Indices of the shared weight vector w.
///
/// One weight per clique template (Section II-B, parameter sharing): the
/// scalar features f_sm, f_st, f_sc, f_em, f_et, f_ec get one weight each;
/// the two segmentation features are 3-vectors (Table II) and get three.
/// The first six components form the region-relevant block, the last six
/// the event-relevant block.
enum FeatureIndex : int {
  kWSpatialMatch = 0,     ///< f_sm — matching clique (region).
  kWSpaceTransition,      ///< f_st — transition clique (region).
  kWSpatialConsistency,   ///< f_sc — synchronization clique (region).
  kWEventSeg0,            ///< f_es[0]: distinct-regions term.
  kWEventSeg1,            ///< f_es[1]: segment-speed term.
  kWEventSeg2,            ///< f_es[2]: turn-count term.
  kWEventMatch,           ///< f_em — matching clique (event).
  kWEventTransition,      ///< f_et — transition clique (event).
  kWEventConsistency,     ///< f_ec — synchronization clique (event).
  kWSpaceSeg0,            ///< f_ss[0]: distinct-events term.
  kWSpaceSeg1,            ///< f_ss[1]: event-transitions term.
  kWSpaceSeg2,            ///< f_ss[2]: boundary-pass term.
  kNumWeights,
};

inline constexpr int kRegionBlockBegin = 0;
inline constexpr int kRegionBlockEnd = 6;   // Exclusive.
inline constexpr int kEventBlockBegin = 6;
inline constexpr int kEventBlockEnd = 12;   // Exclusive.

/// A dense feature vector aligned with FeatureIndex.
using FeatureVec = std::array<double, kNumWeights>;

inline FeatureVec ZeroFeatures() {
  FeatureVec f{};
  return f;
}
inline void AddFeatures(const FeatureVec& src, FeatureVec* dst) {
  for (int i = 0; i < kNumWeights; ++i) (*dst)[i] += src[i];
}
inline double DotFeatures(const std::vector<double>& w, const FeatureVec& f) {
  double s = 0.0;
  for (int i = 0; i < kNumWeights; ++i) s += w[i] * f[i];
  return s;
}

/// \brief Which clique categories the network keeps; the ablation switch
/// behind the C2MN variants of Section V-A.
struct C2mnStructure {
  bool use_transition = true;   ///< f_st, f_et (off = C2MN/Tran).
  bool use_sync = true;         ///< f_sc, f_ec (off = C2MN/Syn).
  bool use_event_seg = true;    ///< f_es (off = C2MN/ES).
  bool use_space_seg = true;    ///< f_ss (off = C2MN/SS).

  /// CMN drops both segmentation categories, decoupling R and E.
  bool IsCoupled() const { return use_event_seg || use_space_seg; }
};

/// \brief Hyper-parameters of the feature functions (paper Section V-B1).
struct FeatureOptions {
  /// v: radius of the uncertainty region UR(l, v) in f_sm (paper: 15 m on
  /// real data, 10 m on synthetic).
  double uncertainty_radius_v = 10.0;
  /// Normalize f_sm across each record's candidate set so the values form
  /// a matching distribution.  Eq. 3's raw disk fractions are tiny when
  /// regions are small relative to the uncertainty disk, which starves the
  /// matching clique of contrast; normalization restores it (DESIGN.md).
  bool normalize_fsm = true;
  /// Center the uncertainty region on a 3-point moving average of the
  /// location estimates (majority floor in the window) instead of the raw
  /// fix.  Wi-Fi pipelines (including the paper's TRIPS front end) render
  /// smoothed trajectories; this makes f_sm robust to single-fix jitter,
  /// outliers, and false floors.
  bool smooth_observations = true;
  /// α, β: the border-point scores of f_em (paper: α = 0.8, β = 0.6).
  double fem_alpha = 0.8;
  double fem_beta = 0.6;
  /// γ_st: distance scale in f_st (paper: 0.1).
  double gamma_st = 0.1;
  /// γ_ec: speed scale in f_ec (paper: 0.2).
  double gamma_ec = 0.2;
  /// Scale (meters) of the |E[MIWD] - d_E| penalty in f_sc.  The paper's
  /// Eq. 5 uses raw meters, which underflows exp() for realistic venues;
  /// features are normalized by this scale instead (see DESIGN.md).
  double sc_scale_meters = 12.0;
  /// Optional extension of f_st / f_sc: time-decaying distance impact,
  /// multiplier exp(-gamma_time * dt) on the distance term.
  bool use_time_decay = false;
  double gamma_time_decay = 0.02;
  /// Optional extension of f_sm: multiply by normalized historical region
  /// frequency (filled by the trainer when enabled; empty = off).
  bool use_region_frequency = false;
  std::vector<double> region_frequency;

  /// st-DBSCAN parameters for f_em and the E-initialization (paper:
  /// εs = 8 m, εt = 60 s, ptm = 4).
  StDbscanParams dbscan;

  /// Candidate-region generation: the k nearest regions on the reported
  /// floor within the given distance form each record's label domain.
  int candidate_k = 6;
  double candidate_max_distance = 40.0;
  /// Also admit up to two near regions on adjacent floors, so false-floor
  /// records can still be labeled correctly.
  bool cross_floor_candidates = true;
  int cross_floor_k = 2;
  double cross_floor_max_distance = 10.0;
  /// f_sm discount per floor of mismatch between record and region.
  double floor_mismatch_discount = 0.5;
  /// Turn-angle threshold in degrees (paper footnote 4: 90).
  double turn_threshold_deg = 90.0;
};

}  // namespace c2mn

#endif  // C2MN_CORE_OPTIONS_H_
