#include "core/scorer.h"

#include <algorithm>
#include <cassert>

#include "common/math_utils.h"

namespace c2mn {

void JointScorer::EventRun(int i, const std::vector<MobilityEvent>& events,
                           int* s, int* e) const {
  const int n = g_.size();
  *s = i;
  *e = i;
  while (*s > 0 && events[*s - 1] == events[i]) --*s;
  while (*e + 1 < n && events[*e + 1] == events[i]) ++*e;
}

void JointScorer::RegionRun(int i, const std::vector<int>& regions, int* s,
                            int* e) const {
  const int n = g_.size();
  const RegionId region = RegionAt(i, regions, -1, -1);
  *s = i;
  *e = i;
  while (*s > 0 && RegionAt(*s - 1, regions, -1, -1) == region) --*s;
  while (*e + 1 < n && RegionAt(*e + 1, regions, -1, -1) == region) ++*e;
}

void JointScorer::SpaceSegWindow(int i, const std::vector<int>& regions,
                                 int* ws, int* we, RegionId* left,
                                 RegionId* right) const {
  const int n = g_.size();
  *ws = i;
  *we = i;
  *left = kInvalidId;
  *right = kInvalidId;
  if (i > 0) {
    *ws = i - 1;
    *left = RegionAt(i - 1, regions, -1, -1);
    while (*ws > 0 && RegionAt(*ws - 1, regions, -1, -1) == *left) --*ws;
  }
  if (i + 1 < n) {
    *we = i + 1;
    *right = RegionAt(i + 1, regions, -1, -1);
    while (*we + 1 < n && RegionAt(*we + 1, regions, -1, -1) == *right) ++*we;
  }
}

void JointScorer::EventSegWindow(int i, const std::vector<MobilityEvent>& events,
                                 int* ws, int* we) const {
  const int n = g_.size();
  *ws = i;
  *we = i;
  if (i > 0) {
    *ws = i - 1;
    while (*ws > 0 && events[*ws - 1] == events[i - 1]) --*ws;
  }
  if (i + 1 < n) {
    *we = i + 1;
    while (*we + 1 < n && events[*we + 1] == events[i + 1]) ++*we;
  }
}

void JointScorer::AccumulateEventSegments(
    int from, int to, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events, int r_override_pos,
    int r_override_cand, int e_override_pos, MobilityEvent e_override_event,
    FeatureVec* f) const {
  int s = from;
  while (s <= to) {
    const MobilityEvent ev = EventAt(s, events, e_override_pos,
                                     e_override_event);
    int e = s;
    while (e + 1 <= to &&
           EventAt(e + 1, events, e_override_pos, e_override_event) == ev) {
      ++e;
    }
    const auto seg = features::EventSegmentation(
        g_, s, e, regions, ev, r_override_pos, r_override_cand);
    (*f)[kWEventSeg0] += seg[0];
    (*f)[kWEventSeg1] += seg[1];
    (*f)[kWEventSeg2] += seg[2];
    s = e + 1;
  }
}

void JointScorer::AccumulateSpaceSegments(
    int from, int to, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events, int r_override_pos,
    int r_override_cand, int e_override_pos, MobilityEvent e_override_event,
    FeatureVec* f) const {
  int s = from;
  while (s <= to) {
    const RegionId region = RegionAt(s, regions, r_override_pos,
                                     r_override_cand);
    int e = s;
    while (e + 1 <= to &&
           RegionAt(e + 1, regions, r_override_pos, r_override_cand) ==
               region) {
      ++e;
    }
    const auto seg = features::SpaceSegmentation(
        g_, s, e, events, e_override_pos, e_override_event);
    (*f)[kWSpaceSeg0] += seg[0];
    (*f)[kWSpaceSeg1] += seg[1];
    (*f)[kWSpaceSeg2] += seg[2];
    s = e + 1;
  }
}

FeatureVec JointScorer::TotalFeatures(
    const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  assert(static_cast<int>(regions.size()) == n &&
         static_cast<int>(events.size()) == n);
  FeatureVec f = ZeroFeatures();
  for (int i = 0; i < n; ++i) {
    f[kWSpatialMatch] += g_.SpatialMatch(i, regions[i]);
    f[kWEventMatch] += features::EventMatching(g_, i, events[i]);
    if (i + 1 < n) {
      if (s_.use_transition) {
        f[kWSpaceTransition] +=
            features::SpaceTransition(g_, i, regions[i], regions[i + 1]);
        f[kWEventTransition] +=
            features::EventTransition(events[i], events[i + 1]);
      }
      if (s_.use_sync) {
        f[kWSpatialConsistency] +=
            features::SpatialConsistency(g_, i, regions[i], regions[i + 1]);
        f[kWEventConsistency] +=
            features::EventConsistency(g_, i, events[i], events[i + 1]);
      }
    }
  }
  if (s_.use_event_seg) {
    AccumulateEventSegments(0, n - 1, regions, events, -1, -1, -1,
                            MobilityEvent::kStay, &f);
  }
  if (s_.use_space_seg) {
    AccumulateSpaceSegments(0, n - 1, regions, events, -1, -1, -1,
                            MobilityEvent::kStay, &f);
  }
  return f;
}

double JointScorer::TotalScore(const std::vector<double>& weights,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events) const {
  return DotFeatures(weights, TotalFeatures(regions, events));
}

FeatureVec JointScorer::RegionNodeFeatures(
    int i, int a, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  FeatureVec f = ZeroFeatures();
  f[kWSpatialMatch] += g_.SpatialMatch(i, a);
  if (s_.use_transition) {
    if (i > 0) {
      f[kWSpaceTransition] +=
          features::SpaceTransition(g_, i - 1, regions[i - 1], a);
    }
    if (i + 1 < n) {
      f[kWSpaceTransition] +=
          features::SpaceTransition(g_, i, a, regions[i + 1]);
    }
  }
  if (s_.use_sync) {
    if (i > 0) {
      f[kWSpatialConsistency] +=
          features::SpatialConsistency(g_, i - 1, regions[i - 1], a);
    }
    if (i + 1 < n) {
      f[kWSpatialConsistency] +=
          features::SpatialConsistency(g_, i, a, regions[i + 1]);
    }
  }
  if (s_.use_event_seg) {
    // The event-run containing i is the only f_es clique whose features
    // depend on r_i (through DISTNUM).
    int s, e;
    EventRun(i, events, &s, &e);
    const auto seg =
        features::EventSegmentation(g_, s, e, regions, events[i], i, a);
    f[kWEventSeg0] += seg[0];
    f[kWEventSeg1] += seg[1];
    f[kWEventSeg2] += seg[2];
  }
  if (s_.use_space_seg) {
    // Changing r_i can restructure the region runs; the affected window
    // does not depend on the value of a.
    int ws, we;
    RegionId left, right;
    SpaceSegWindow(i, regions, &ws, &we, &left, &right);
    AccumulateSpaceSegments(ws, we, regions, events, i, a, -1,
                            MobilityEvent::kStay, &f);
  }
  return f;
}

void JointScorer::RegionSegScores(int i, const std::vector<double>& weights,
                                  const std::vector<int>& regions,
                                  const std::vector<MobilityEvent>& events,
                                  SegScratch* scratch, double* out) const {
  const int n = g_.size();
  const int da = static_cast<int>(g_.Candidates(i).size());
  std::fill(out, out + da, 0.0);

  if (s_.use_event_seg) {
    // The event-run containing i is the only f_es clique whose features
    // depend on r_i, and only through DISTNUM: the run bounds and the
    // speed / turn terms are shared by every candidate.
    int s, e;
    EventRun(i, events, &s, &e);
    const double speed_norm = features::internal::RunSpeedNorm(g_, s, e);
    const double turn_norm = features::internal::RunTurnNorm(g_, s, e);
    const double sign = 2.0 * PassIndicator(events[i]) - 1.0;
    // Distinct regions of the run *excluding* position i; each candidate
    // then contributes 0 or 1 depending on membership.  Once the base set
    // reaches the cap every candidate's DISTNUM term is exactly 1.0.
    std::vector<RegionId>& base = scratch->distinct;
    base.clear();
    bool capped = false;
    for (int x = s; x <= e && !capped; ++x) {
      if (x == i) continue;
      const RegionId r = g_.Candidates(x)[regions[x]];
      if (std::find(base.begin(), base.end(), r) == base.end()) {
        base.push_back(r);
        capped = static_cast<int>(base.size()) >=
                 features::internal::kDistinctCap;
      }
    }
    const double f_speed = sign * speed_norm;
    const double f_turn = sign * -turn_norm;
    for (int a = 0; a < da; ++a) {
      int distinct;
      if (capped) {
        distinct = features::internal::kDistinctCap;
      } else {
        const RegionId r = g_.Candidates(i)[a];
        const bool present =
            std::find(base.begin(), base.end(), r) != base.end();
        distinct = static_cast<int>(base.size()) + (present ? 0 : 1);
      }
      const double f_dist = sign * features::internal::DistinctNorm(distinct);
      // Same accumulation order as the per-candidate bonus loop
      // (kWEventSeg0..2 then kWSpaceSeg0..2), so sums agree bitwise.
      out[a] += weights[kWEventSeg0] * f_dist;
      out[a] += weights[kWEventSeg1] * f_speed;
      out[a] += weights[kWEventSeg2] * f_turn;
    }
  }

  if (s_.use_space_seg) {
    // Same label-independent window as RegionNodeFeatures.  Within it the
    // run decomposition only depends on whether the candidate's region
    // equals the left / right neighbor's region, so at most four distinct
    // feature triples exist across the whole candidate set.
    int ws, we;
    RegionId left, right;
    SpaceSegWindow(i, regions, &ws, &we, &left, &right);
    FeatureVec cls[2][2];
    bool has_cls[2][2] = {{false, false}, {false, false}};
    for (int a = 0; a < da; ++a) {
      const RegionId r = g_.Candidates(i)[a];
      const int eq_left = (i > 0 && r == left) ? 1 : 0;
      const int eq_right = (i + 1 < n && r == right) ? 1 : 0;
      if (!has_cls[eq_left][eq_right]) {
        cls[eq_left][eq_right] = ZeroFeatures();
        AccumulateSpaceSegments(ws, we, regions, events, i, a, -1,
                                MobilityEvent::kStay,
                                &cls[eq_left][eq_right]);
        has_cls[eq_left][eq_right] = true;
      }
      const FeatureVec& f = cls[eq_left][eq_right];
      out[a] += weights[kWSpaceSeg0] * f[kWSpaceSeg0];
      out[a] += weights[kWSpaceSeg1] * f[kWSpaceSeg1];
      out[a] += weights[kWSpaceSeg2] * f[kWSpaceSeg2];
    }
  }
}

void JointScorer::EventSegScores(int i, const std::vector<double>& weights,
                                 const std::vector<int>& regions,
                                 const std::vector<MobilityEvent>& events,
                                 double out[2]) const {
  const MobilityEvent kDomain[2] = {MobilityEvent::kStay,
                                    MobilityEvent::kPass};
  for (int v = 0; v < 2; ++v) {
    FeatureVec f = ZeroFeatures();
    if (s_.use_space_seg) {
      int s, e;
      RegionRun(i, regions, &s, &e);
      const auto seg =
          features::SpaceSegmentation(g_, s, e, events, i, kDomain[v]);
      f[kWSpaceSeg0] += seg[0];
      f[kWSpaceSeg1] += seg[1];
      f[kWSpaceSeg2] += seg[2];
    }
    if (s_.use_event_seg) {
      int ws, we;
      EventSegWindow(i, events, &ws, &we);
      AccumulateEventSegments(ws, we, regions, events, -1, -1, i, kDomain[v],
                              &f);
    }
    double bonus = 0.0;
    bonus += weights[kWEventSeg0] * f[kWEventSeg0];
    bonus += weights[kWEventSeg1] * f[kWEventSeg1];
    bonus += weights[kWEventSeg2] * f[kWEventSeg2];
    bonus += weights[kWSpaceSeg0] * f[kWSpaceSeg0];
    bonus += weights[kWSpaceSeg1] * f[kWSpaceSeg1];
    bonus += weights[kWSpaceSeg2] * f[kWSpaceSeg2];
    out[v] = bonus;
  }
}

FeatureVec JointScorer::EventNodeFeatures(
    int i, MobilityEvent v, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  FeatureVec f = ZeroFeatures();
  f[kWEventMatch] += features::EventMatching(g_, i, v);
  if (s_.use_transition) {
    if (i > 0) {
      f[kWEventTransition] += features::EventTransition(events[i - 1], v);
    }
    if (i + 1 < n) {
      f[kWEventTransition] += features::EventTransition(v, events[i + 1]);
    }
  }
  if (s_.use_sync) {
    if (i > 0) {
      f[kWEventConsistency] +=
          features::EventConsistency(g_, i - 1, events[i - 1], v);
    }
    if (i + 1 < n) {
      f[kWEventConsistency] +=
          features::EventConsistency(g_, i, v, events[i + 1]);
    }
  }
  if (s_.use_space_seg) {
    // The region-run containing i is the only f_ss clique whose features
    // depend on e_i.
    int s, e;
    RegionRun(i, regions, &s, &e);
    const auto seg = features::SpaceSegmentation(g_, s, e, events, i, v);
    f[kWSpaceSeg0] += seg[0];
    f[kWSpaceSeg1] += seg[1];
    f[kWSpaceSeg2] += seg[2];
  }
  if (s_.use_event_seg) {
    // Changing e_i can split or merge event runs inside a stable window.
    int ws, we;
    EventSegWindow(i, events, &ws, &we);
    AccumulateEventSegments(ws, we, regions, events, -1, -1, i, v, &f);
  }
  return f;
}

}  // namespace c2mn
