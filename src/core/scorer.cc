#include "core/scorer.h"

#include <algorithm>
#include <cassert>

#include "common/math_utils.h"

namespace c2mn {

namespace {

/// features::SpaceSegmentation over [s, e] evaluated from the index
/// tables instead of a scan.  All intermediates (stay count, transition
/// count) are integers recovered exactly from the prefix sums, so every
/// derived double matches the scan version bitwise.  The event override
/// adjusts the counts locally: the stay count at override_pos and the two
/// transition pairs (op-1, op), (op, op+1) are the only terms that can
/// differ.  Valid only while the events the index was built from are
/// unchanged (the ICM loops freeze them for a whole sweep).
std::array<double, 3> IndexedSpaceSeg(const SegScratch& sc,
                                      const std::vector<MobilityEvent>& events,
                                      int n, int s, int e, int override_pos,
                                      MobilityEvent override_event) {
  auto event_at = [&](int x) {
    return x == override_pos ? override_event : events[x];
  };
  int stays = sc.stay_prefix[e + 1] - sc.stay_prefix[s];
  int transitions = sc.event_trans_prefix[e] - sc.event_trans_prefix[s];
  if (override_pos >= s && override_pos <= e) {
    stays += (override_event == MobilityEvent::kStay ? 1 : 0) -
             (events[override_pos] == MobilityEvent::kStay ? 1 : 0);
    for (const int x : {override_pos, override_pos + 1}) {
      if (x > s && x <= e) {
        transitions += (event_at(x) != event_at(x - 1) ? 1 : 0) -
                       (events[x] != events[x - 1] ? 1 : 0);
      }
    }
  }
  const double distinct_norm = (stays > 0 && stays < e - s + 1) ? 1.0 : 0.0;
  const double trans_norm =
      std::min(1.0, transitions / features::internal::kSegmentScale);
  double boundary = 0.0;
  double boundary_slots = 0.0;
  if (s > 0) {
    boundary += PassIndicator(event_at(s));
    boundary_slots += 1.0;
  }
  if (e + 1 < n) {
    boundary += PassIndicator(event_at(e));
    boundary_slots += 1.0;
  }
  const double boundary_norm =
      boundary_slots > 0 ? boundary / boundary_slots : 0.0;
  return {-distinct_norm, -trans_norm, boundary_norm};
}

/// End of the maximal run of equal region ids starting at x within
/// [x, hi], under an optional single-position override.  Advances by whole
/// stored runs (clipped at the override position), so the cost is
/// O(runs crossed), matching the decomposition of a linear scan exactly.
int RegionRunEndWithOverride(const SegScratch& sc, int x, int hi,
                             int override_pos, RegionId override_id) {
  const RegionId id =
      x == override_pos ? override_id : sc.region_ids[x];
  int e = x;
  while (e < hi) {
    const int nx = e + 1;
    const RegionId nid =
        nx == override_pos ? override_id : sc.region_ids[nx];
    if (nid != id) break;
    if (nx == override_pos) {
      e = nx;
      continue;
    }
    int jump = std::min(hi, sc.region_run_end[nx]);
    if (override_pos > nx && override_pos <= jump) jump = override_pos - 1;
    e = jump;
  }
  return e;
}

/// Event-chain counterpart of RegionRunEndWithOverride.
int EventRunEndWithOverride(const SegScratch& sc,
                            const std::vector<MobilityEvent>& events, int x,
                            int hi, int override_pos,
                            MobilityEvent override_event) {
  const MobilityEvent ev =
      x == override_pos ? override_event : events[x];
  int e = x;
  while (e < hi) {
    const int nx = e + 1;
    const MobilityEvent nev =
        nx == override_pos ? override_event : events[nx];
    if (nev != ev) break;
    if (nx == override_pos) {
      e = nx;
      continue;
    }
    int jump = std::min(hi, sc.event_run_end[nx]);
    if (override_pos > nx && override_pos <= jump) jump = override_pos - 1;
    e = jump;
  }
  return e;
}

/// DISTNUM of the region ids over [s, e] (run-walk with the same
/// kDistinctCap early exit as the scan in features::EventSegmentation).
/// The capped count is order-independent — the scan and the walk visit
/// first occurrences in the same position order — so the result is
/// identical.  skip_solo_pos, when >= 0, drops that position's id unless
/// its run extends beyond it inside [s, e] (the "distinct regions
/// excluding i" set of RegionSegScores); pass -1 for the plain count.
int IndexedDistinctRegions(const SegScratch& sc, int s, int e,
                           int skip_solo_pos, std::vector<RegionId>* ids) {
  ids->clear();
  int x = s;
  while (x <= e) {
    const int re = std::min(e, sc.region_run_end[x]);
    if (!(x == skip_solo_pos && re == skip_solo_pos)) {
      const RegionId r = sc.region_ids[x];
      if (std::find(ids->begin(), ids->end(), r) == ids->end()) {
        ids->push_back(r);
        if (static_cast<int>(ids->size()) >=
            features::internal::kDistinctCap) {
          break;
        }
      }
    }
    x = re + 1;
  }
  return static_cast<int>(ids->size());
}

}  // namespace

void JointScorer::BuildSegIndex(const std::vector<int>& regions,
                                const std::vector<MobilityEvent>& events,
                                SegScratch* scratch) const {
  const int n = g_.size();
  scratch->region_ids.resize(n);
  scratch->event_run_start.resize(n);
  scratch->event_run_end.resize(n);
  scratch->region_run_start.resize(n);
  scratch->region_run_end.resize(n);
  scratch->stay_prefix.resize(n + 1);
  scratch->event_trans_prefix.resize(n);
  scratch->stay_prefix[0] = 0;
  for (int i = 0; i < n; ++i) {
    scratch->region_ids[i] = g_.Candidates(i)[regions[i]];
    scratch->stay_prefix[i + 1] =
        scratch->stay_prefix[i] +
        (events[i] == MobilityEvent::kStay ? 1 : 0);
    scratch->event_trans_prefix[i] =
        i == 0 ? 0
               : scratch->event_trans_prefix[i - 1] +
                     (events[i] != events[i - 1] ? 1 : 0);
    scratch->event_run_start[i] =
        (i > 0 && events[i] == events[i - 1]) ? scratch->event_run_start[i - 1]
                                              : i;
    scratch->region_run_start[i] =
        (i > 0 && scratch->region_ids[i] == scratch->region_ids[i - 1])
            ? scratch->region_run_start[i - 1]
            : i;
  }
  for (int i = n - 1; i >= 0; --i) {
    scratch->event_run_end[i] =
        (i + 1 < n && events[i] == events[i + 1]) ? scratch->event_run_end[i + 1]
                                                  : i;
    scratch->region_run_end[i] =
        (i + 1 < n && scratch->region_ids[i] == scratch->region_ids[i + 1])
            ? scratch->region_run_end[i + 1]
            : i;
  }
}

void JointScorer::EventRun(int i, const std::vector<MobilityEvent>& events,
                           int* s, int* e) const {
  const int n = g_.size();
  *s = i;
  *e = i;
  while (*s > 0 && events[*s - 1] == events[i]) --*s;
  while (*e + 1 < n && events[*e + 1] == events[i]) ++*e;
}

void JointScorer::RegionRun(int i, const std::vector<int>& regions, int* s,
                            int* e) const {
  const int n = g_.size();
  const RegionId region = RegionAt(i, regions, -1, -1);
  *s = i;
  *e = i;
  while (*s > 0 && RegionAt(*s - 1, regions, -1, -1) == region) --*s;
  while (*e + 1 < n && RegionAt(*e + 1, regions, -1, -1) == region) ++*e;
}

void JointScorer::SpaceSegWindow(int i, const std::vector<int>& regions,
                                 int* ws, int* we, RegionId* left,
                                 RegionId* right) const {
  const int n = g_.size();
  *ws = i;
  *we = i;
  *left = kInvalidId;
  *right = kInvalidId;
  if (i > 0) {
    *ws = i - 1;
    *left = RegionAt(i - 1, regions, -1, -1);
    while (*ws > 0 && RegionAt(*ws - 1, regions, -1, -1) == *left) --*ws;
  }
  if (i + 1 < n) {
    *we = i + 1;
    *right = RegionAt(i + 1, regions, -1, -1);
    while (*we + 1 < n && RegionAt(*we + 1, regions, -1, -1) == *right) ++*we;
  }
}

void JointScorer::EventSegWindow(int i, const std::vector<MobilityEvent>& events,
                                 int* ws, int* we) const {
  const int n = g_.size();
  *ws = i;
  *we = i;
  if (i > 0) {
    *ws = i - 1;
    while (*ws > 0 && events[*ws - 1] == events[i - 1]) --*ws;
  }
  if (i + 1 < n) {
    *we = i + 1;
    while (*we + 1 < n && events[*we + 1] == events[i + 1]) ++*we;
  }
}

void JointScorer::AccumulateEventSegments(
    int from, int to, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events, int r_override_pos,
    int r_override_cand, int e_override_pos, MobilityEvent e_override_event,
    FeatureVec* f) const {
  int s = from;
  while (s <= to) {
    const MobilityEvent ev = EventAt(s, events, e_override_pos,
                                     e_override_event);
    int e = s;
    while (e + 1 <= to &&
           EventAt(e + 1, events, e_override_pos, e_override_event) == ev) {
      ++e;
    }
    const auto seg = features::EventSegmentation(
        g_, s, e, regions, ev, r_override_pos, r_override_cand);
    (*f)[kWEventSeg0] += seg[0];
    (*f)[kWEventSeg1] += seg[1];
    (*f)[kWEventSeg2] += seg[2];
    s = e + 1;
  }
}

void JointScorer::AccumulateSpaceSegments(
    int from, int to, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events, int r_override_pos,
    int r_override_cand, int e_override_pos, MobilityEvent e_override_event,
    FeatureVec* f) const {
  int s = from;
  while (s <= to) {
    const RegionId region = RegionAt(s, regions, r_override_pos,
                                     r_override_cand);
    int e = s;
    while (e + 1 <= to &&
           RegionAt(e + 1, regions, r_override_pos, r_override_cand) ==
               region) {
      ++e;
    }
    const auto seg = features::SpaceSegmentation(
        g_, s, e, events, e_override_pos, e_override_event);
    (*f)[kWSpaceSeg0] += seg[0];
    (*f)[kWSpaceSeg1] += seg[1];
    (*f)[kWSpaceSeg2] += seg[2];
    s = e + 1;
  }
}

FeatureVec JointScorer::TotalFeatures(
    const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  assert(static_cast<int>(regions.size()) == n &&
         static_cast<int>(events.size()) == n);
  FeatureVec f = ZeroFeatures();
  for (int i = 0; i < n; ++i) {
    f[kWSpatialMatch] += g_.SpatialMatch(i, regions[i]);
    f[kWEventMatch] += features::EventMatching(g_, i, events[i]);
    if (i + 1 < n) {
      if (s_.use_transition) {
        f[kWSpaceTransition] +=
            features::SpaceTransition(g_, i, regions[i], regions[i + 1]);
        f[kWEventTransition] +=
            features::EventTransition(events[i], events[i + 1]);
      }
      if (s_.use_sync) {
        f[kWSpatialConsistency] +=
            features::SpatialConsistency(g_, i, regions[i], regions[i + 1]);
        f[kWEventConsistency] +=
            features::EventConsistency(g_, i, events[i], events[i + 1]);
      }
    }
  }
  if (s_.use_event_seg) {
    AccumulateEventSegments(0, n - 1, regions, events, -1, -1, -1,
                            MobilityEvent::kStay, &f);
  }
  if (s_.use_space_seg) {
    AccumulateSpaceSegments(0, n - 1, regions, events, -1, -1, -1,
                            MobilityEvent::kStay, &f);
  }
  return f;
}

double JointScorer::TotalScore(const std::vector<double>& weights,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events) const {
  return DotFeatures(weights, TotalFeatures(regions, events));
}

FeatureVec JointScorer::RegionNodeFeatures(
    int i, int a, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  FeatureVec f = ZeroFeatures();
  f[kWSpatialMatch] += g_.SpatialMatch(i, a);
  if (s_.use_transition) {
    if (i > 0) {
      f[kWSpaceTransition] +=
          features::SpaceTransition(g_, i - 1, regions[i - 1], a);
    }
    if (i + 1 < n) {
      f[kWSpaceTransition] +=
          features::SpaceTransition(g_, i, a, regions[i + 1]);
    }
  }
  if (s_.use_sync) {
    if (i > 0) {
      f[kWSpatialConsistency] +=
          features::SpatialConsistency(g_, i - 1, regions[i - 1], a);
    }
    if (i + 1 < n) {
      f[kWSpatialConsistency] +=
          features::SpatialConsistency(g_, i, a, regions[i + 1]);
    }
  }
  if (s_.use_event_seg) {
    // The event-run containing i is the only f_es clique whose features
    // depend on r_i (through DISTNUM).
    int s, e;
    EventRun(i, events, &s, &e);
    const auto seg =
        features::EventSegmentation(g_, s, e, regions, events[i], i, a);
    f[kWEventSeg0] += seg[0];
    f[kWEventSeg1] += seg[1];
    f[kWEventSeg2] += seg[2];
  }
  if (s_.use_space_seg) {
    // Changing r_i can restructure the region runs; the affected window
    // does not depend on the value of a.
    int ws, we;
    RegionId left, right;
    SpaceSegWindow(i, regions, &ws, &we, &left, &right);
    AccumulateSpaceSegments(ws, we, regions, events, i, a, -1,
                            MobilityEvent::kStay, &f);
  }
  return f;
}

void JointScorer::RegionSegScores(int i, const std::vector<double>& weights,
                                  const std::vector<int>& regions,
                                  const std::vector<MobilityEvent>& events,
                                  SegScratch* scratch, double* out) const {
  const int n = g_.size();
  const int da = static_cast<int>(g_.Candidates(i).size());
  std::fill(out, out + da, 0.0);

  if (s_.use_event_seg) {
    // The event-run containing i is the only f_es clique whose features
    // depend on r_i, and only through DISTNUM: the run bounds and the
    // speed / turn terms are shared by every candidate.
    const int s = scratch->event_run_start[i];
    const int e = scratch->event_run_end[i];
    const double speed_norm = features::internal::RunSpeedNorm(g_, s, e);
    const double turn_norm = features::internal::RunTurnNorm(g_, s, e);
    const double sign = 2.0 * PassIndicator(events[i]) - 1.0;
    // Distinct regions of the run *excluding* position i; each candidate
    // then contributes 0 or 1 depending on membership.  Once the base set
    // reaches the cap every candidate's DISTNUM term is exactly 1.0.
    std::vector<RegionId>& base = scratch->distinct;
    IndexedDistinctRegions(*scratch, s, e, /*skip_solo_pos=*/i, &base);
    const bool capped = static_cast<int>(base.size()) >=
                        features::internal::kDistinctCap;
    const double f_speed = sign * speed_norm;
    const double f_turn = sign * -turn_norm;
    for (int a = 0; a < da; ++a) {
      int distinct;
      if (capped) {
        distinct = features::internal::kDistinctCap;
      } else {
        const RegionId r = g_.Candidates(i)[a];
        const bool present =
            std::find(base.begin(), base.end(), r) != base.end();
        distinct = static_cast<int>(base.size()) + (present ? 0 : 1);
      }
      const double f_dist = sign * features::internal::DistinctNorm(distinct);
      // Same accumulation order as the per-candidate bonus loop
      // (kWEventSeg0..2 then kWSpaceSeg0..2), so sums agree bitwise.
      out[a] += weights[kWEventSeg0] * f_dist;
      out[a] += weights[kWEventSeg1] * f_speed;
      out[a] += weights[kWEventSeg2] * f_turn;
    }
  }

  if (s_.use_space_seg) {
    // Same label-independent window as RegionNodeFeatures, looked up from
    // the run index.  Within it the run decomposition only depends on
    // whether the candidate's region equals the left / right neighbor's
    // region, so at most four distinct feature triples exist across the
    // whole candidate set; each class walks the window by whole runs with
    // O(1) per-run features.
    int ws = i, we = i;
    RegionId left = kInvalidId, right = kInvalidId;
    if (i > 0) {
      ws = scratch->region_run_start[i - 1];
      left = scratch->region_ids[i - 1];
    }
    if (i + 1 < n) {
      we = scratch->region_run_end[i + 1];
      right = scratch->region_ids[i + 1];
    }
    double cls[2][2][3];
    bool has_cls[2][2] = {{false, false}, {false, false}};
    for (int a = 0; a < da; ++a) {
      const RegionId r = g_.Candidates(i)[a];
      const int eq_left = (i > 0 && r == left) ? 1 : 0;
      const int eq_right = (i + 1 < n && r == right) ? 1 : 0;
      double* f = cls[eq_left][eq_right];
      if (!has_cls[eq_left][eq_right]) {
        f[0] = f[1] = f[2] = 0.0;
        int x = ws;
        while (x <= we) {
          const int e = RegionRunEndWithOverride(*scratch, x, we, i, r);
          const auto seg = IndexedSpaceSeg(*scratch, events, n, x, e, -1,
                                           MobilityEvent::kStay);
          f[0] += seg[0];
          f[1] += seg[1];
          f[2] += seg[2];
          x = e + 1;
        }
        has_cls[eq_left][eq_right] = true;
      }
      out[a] += weights[kWSpaceSeg0] * f[0];
      out[a] += weights[kWSpaceSeg1] * f[1];
      out[a] += weights[kWSpaceSeg2] * f[2];
    }
  }
}

void JointScorer::EventSegScores(int i, const std::vector<double>& weights,
                                 const std::vector<int>& regions,
                                 const std::vector<MobilityEvent>& events,
                                 SegScratch* scratch, double out[2]) const {
  (void)regions;  // Region labels enter through the index tables.
  const int n = g_.size();
  const MobilityEvent kDomain[2] = {MobilityEvent::kStay,
                                    MobilityEvent::kPass};
  // Both hypothetical labels share the f_es window and the region-run
  // bounds; only the override value differs.
  const int rs = scratch->region_run_start[i];
  const int re = scratch->region_run_end[i];
  const int ws = i > 0 ? scratch->event_run_start[i - 1] : i;
  const int we = i + 1 < n ? scratch->event_run_end[i + 1] : i;
  for (int v = 0; v < 2; ++v) {
    double f_es0 = 0.0, f_es1 = 0.0, f_es2 = 0.0;
    double f_ss0 = 0.0, f_ss1 = 0.0, f_ss2 = 0.0;
    if (s_.use_space_seg) {
      // The region-run containing i is the only f_ss clique whose
      // features depend on e_i.
      const auto seg =
          IndexedSpaceSeg(*scratch, events, n, rs, re, i, kDomain[v]);
      f_ss0 += seg[0];
      f_ss1 += seg[1];
      f_ss2 += seg[2];
    }
    if (s_.use_event_seg) {
      // f_es over the event-run decomposition of the window under the
      // override; same run order and per-run features as the scan, with
      // DISTNUM from the region-run walk.
      int x = ws;
      while (x <= we) {
        const MobilityEvent ev = EventAt(x, events, i, kDomain[v]);
        const int e =
            EventRunEndWithOverride(*scratch, events, x, we, i, kDomain[v]);
        const int distinct =
            IndexedDistinctRegions(*scratch, x, e, -1, &scratch->distinct);
        const double dist_norm = features::internal::DistinctNorm(distinct);
        const double speed_norm = features::internal::RunSpeedNorm(g_, x, e);
        const double turn_norm = features::internal::RunTurnNorm(g_, x, e);
        const double sign = 2.0 * PassIndicator(ev) - 1.0;
        f_es0 += sign * dist_norm;
        f_es1 += sign * speed_norm;
        f_es2 += sign * -turn_norm;
        x = e + 1;
      }
    }
    double bonus = 0.0;
    bonus += weights[kWEventSeg0] * f_es0;
    bonus += weights[kWEventSeg1] * f_es1;
    bonus += weights[kWEventSeg2] * f_es2;
    bonus += weights[kWSpaceSeg0] * f_ss0;
    bonus += weights[kWSpaceSeg1] * f_ss1;
    bonus += weights[kWSpaceSeg2] * f_ss2;
    out[v] = bonus;
  }
}

FeatureVec JointScorer::EventNodeFeatures(
    int i, MobilityEvent v, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  FeatureVec f = ZeroFeatures();
  f[kWEventMatch] += features::EventMatching(g_, i, v);
  if (s_.use_transition) {
    if (i > 0) {
      f[kWEventTransition] += features::EventTransition(events[i - 1], v);
    }
    if (i + 1 < n) {
      f[kWEventTransition] += features::EventTransition(v, events[i + 1]);
    }
  }
  if (s_.use_sync) {
    if (i > 0) {
      f[kWEventConsistency] +=
          features::EventConsistency(g_, i - 1, events[i - 1], v);
    }
    if (i + 1 < n) {
      f[kWEventConsistency] +=
          features::EventConsistency(g_, i, v, events[i + 1]);
    }
  }
  if (s_.use_space_seg) {
    // The region-run containing i is the only f_ss clique whose features
    // depend on e_i.
    int s, e;
    RegionRun(i, regions, &s, &e);
    const auto seg = features::SpaceSegmentation(g_, s, e, events, i, v);
    f[kWSpaceSeg0] += seg[0];
    f[kWSpaceSeg1] += seg[1];
    f[kWSpaceSeg2] += seg[2];
  }
  if (s_.use_event_seg) {
    // Changing e_i can split or merge event runs inside a stable window.
    int ws, we;
    EventSegWindow(i, events, &ws, &we);
    AccumulateEventSegments(ws, we, regions, events, -1, -1, i, v, &f);
  }
  return f;
}

}  // namespace c2mn
