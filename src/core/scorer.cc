#include "core/scorer.h"

#include <algorithm>
#include <cassert>

#include "common/math_utils.h"

namespace c2mn {

void JointScorer::AccumulateEventSegments(
    int from, int to, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events, int r_override_pos,
    int r_override_cand, int e_override_pos, MobilityEvent e_override_event,
    FeatureVec* f) const {
  int s = from;
  while (s <= to) {
    const MobilityEvent ev = EventAt(s, events, e_override_pos,
                                     e_override_event);
    int e = s;
    while (e + 1 <= to &&
           EventAt(e + 1, events, e_override_pos, e_override_event) == ev) {
      ++e;
    }
    const auto seg = features::EventSegmentation(
        g_, s, e, regions, ev, r_override_pos, r_override_cand);
    (*f)[kWEventSeg0] += seg[0];
    (*f)[kWEventSeg1] += seg[1];
    (*f)[kWEventSeg2] += seg[2];
    s = e + 1;
  }
}

void JointScorer::AccumulateSpaceSegments(
    int from, int to, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events, int r_override_pos,
    int r_override_cand, int e_override_pos, MobilityEvent e_override_event,
    FeatureVec* f) const {
  int s = from;
  while (s <= to) {
    const RegionId region = RegionAt(s, regions, r_override_pos,
                                     r_override_cand);
    int e = s;
    while (e + 1 <= to &&
           RegionAt(e + 1, regions, r_override_pos, r_override_cand) ==
               region) {
      ++e;
    }
    const auto seg = features::SpaceSegmentation(
        g_, s, e, events, e_override_pos, e_override_event);
    (*f)[kWSpaceSeg0] += seg[0];
    (*f)[kWSpaceSeg1] += seg[1];
    (*f)[kWSpaceSeg2] += seg[2];
    s = e + 1;
  }
}

FeatureVec JointScorer::TotalFeatures(
    const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  assert(static_cast<int>(regions.size()) == n &&
         static_cast<int>(events.size()) == n);
  FeatureVec f = ZeroFeatures();
  for (int i = 0; i < n; ++i) {
    f[kWSpatialMatch] += g_.SpatialMatch(i, regions[i]);
    f[kWEventMatch] += features::EventMatching(g_, i, events[i]);
    if (i + 1 < n) {
      if (s_.use_transition) {
        f[kWSpaceTransition] +=
            features::SpaceTransition(g_, i, regions[i], regions[i + 1]);
        f[kWEventTransition] +=
            features::EventTransition(events[i], events[i + 1]);
      }
      if (s_.use_sync) {
        f[kWSpatialConsistency] +=
            features::SpatialConsistency(g_, i, regions[i], regions[i + 1]);
        f[kWEventConsistency] +=
            features::EventConsistency(g_, i, events[i], events[i + 1]);
      }
    }
  }
  if (s_.use_event_seg) {
    AccumulateEventSegments(0, n - 1, regions, events, -1, -1, -1,
                            MobilityEvent::kStay, &f);
  }
  if (s_.use_space_seg) {
    AccumulateSpaceSegments(0, n - 1, regions, events, -1, -1, -1,
                            MobilityEvent::kStay, &f);
  }
  return f;
}

double JointScorer::TotalScore(const std::vector<double>& weights,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events) const {
  return DotFeatures(weights, TotalFeatures(regions, events));
}

FeatureVec JointScorer::RegionNodeFeatures(
    int i, int a, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  FeatureVec f = ZeroFeatures();
  f[kWSpatialMatch] += g_.SpatialMatch(i, a);
  if (s_.use_transition) {
    if (i > 0) {
      f[kWSpaceTransition] +=
          features::SpaceTransition(g_, i - 1, regions[i - 1], a);
    }
    if (i + 1 < n) {
      f[kWSpaceTransition] +=
          features::SpaceTransition(g_, i, a, regions[i + 1]);
    }
  }
  if (s_.use_sync) {
    if (i > 0) {
      f[kWSpatialConsistency] +=
          features::SpatialConsistency(g_, i - 1, regions[i - 1], a);
    }
    if (i + 1 < n) {
      f[kWSpatialConsistency] +=
          features::SpatialConsistency(g_, i, a, regions[i + 1]);
    }
  }
  if (s_.use_event_seg) {
    // The event-run containing i is the only f_es clique whose features
    // depend on r_i (through DISTNUM).
    int s = i, e = i;
    while (s > 0 && events[s - 1] == events[i]) --s;
    while (e + 1 < n && events[e + 1] == events[i]) ++e;
    const auto seg =
        features::EventSegmentation(g_, s, e, regions, events[i], i, a);
    f[kWEventSeg0] += seg[0];
    f[kWEventSeg1] += seg[1];
    f[kWEventSeg2] += seg[2];
  }
  if (s_.use_space_seg) {
    // Changing r_i can restructure the region runs; only runs within
    // [start of run ending at i-1, end of run starting at i+1] are
    // affected, and that window does not depend on the value of a.
    int ws = i, we = i;
    if (i > 0) {
      ws = i - 1;
      const RegionId left = RegionAt(i - 1, regions, -1, -1);
      while (ws > 0 && RegionAt(ws - 1, regions, -1, -1) == left) --ws;
    }
    if (i + 1 < n) {
      we = i + 1;
      const RegionId right = RegionAt(i + 1, regions, -1, -1);
      while (we + 1 < n && RegionAt(we + 1, regions, -1, -1) == right) ++we;
    }
    AccumulateSpaceSegments(ws, we, regions, events, i, a, -1,
                            MobilityEvent::kStay, &f);
  }
  return f;
}

FeatureVec JointScorer::EventNodeFeatures(
    int i, MobilityEvent v, const std::vector<int>& regions,
    const std::vector<MobilityEvent>& events) const {
  const int n = g_.size();
  FeatureVec f = ZeroFeatures();
  f[kWEventMatch] += features::EventMatching(g_, i, v);
  if (s_.use_transition) {
    if (i > 0) {
      f[kWEventTransition] += features::EventTransition(events[i - 1], v);
    }
    if (i + 1 < n) {
      f[kWEventTransition] += features::EventTransition(v, events[i + 1]);
    }
  }
  if (s_.use_sync) {
    if (i > 0) {
      f[kWEventConsistency] +=
          features::EventConsistency(g_, i - 1, events[i - 1], v);
    }
    if (i + 1 < n) {
      f[kWEventConsistency] +=
          features::EventConsistency(g_, i, v, events[i + 1]);
    }
  }
  if (s_.use_space_seg) {
    // The region-run containing i is the only f_ss clique whose features
    // depend on e_i.
    const RegionId region = RegionAt(i, regions, -1, -1);
    int s = i, e = i;
    while (s > 0 && RegionAt(s - 1, regions, -1, -1) == region) --s;
    while (e + 1 < n && RegionAt(e + 1, regions, -1, -1) == region) ++e;
    const auto seg = features::SpaceSegmentation(g_, s, e, events, i, v);
    f[kWSpaceSeg0] += seg[0];
    f[kWSpaceSeg1] += seg[1];
    f[kWSpaceSeg2] += seg[2];
  }
  if (s_.use_event_seg) {
    // Changing e_i can split or merge event runs inside a stable window.
    int ws = i, we = i;
    if (i > 0) {
      ws = i - 1;
      while (ws > 0 && events[ws - 1] == events[i - 1]) --ws;
    }
    if (i + 1 < n) {
      we = i + 1;
      while (we + 1 < n && events[we + 1] == events[i + 1]) ++we;
    }
    AccumulateEventSegments(ws, we, regions, events, -1, -1, i, v, &f);
  }
  return f;
}

}  // namespace c2mn
