#ifndef C2MN_CORE_SCORER_H_
#define C2MN_CORE_SCORER_H_

#include <vector>

#include "core/features.h"
#include "core/options.h"

namespace c2mn {

/// \brief Reusable scratch of the batched segmentation scorers, so a
/// long-lived decode workspace makes them allocation-free.
///
/// Beyond the distinct-id buffer it carries the per-sweep label index
/// built by JointScorer::BuildSegIndex: run boundaries of both label
/// chains plus event prefix sums.  The index turns every run-feature
/// evaluation inside RegionSegScores / EventSegScores into O(1) lookups —
/// without it each position re-walked its surrounding runs, which made an
/// ICM sweep over a long stay quadratic in the run length.
struct SegScratch {
  std::vector<RegionId> distinct;
  /// Region label (as RegionId) per position under the indexed labeling.
  std::vector<RegionId> region_ids;
  /// First/last position of the run of equal labels containing i.
  std::vector<int> event_run_start, event_run_end;
  std::vector<int> region_run_start, region_run_end;
  /// stay_prefix[m] = #{x < m : events[x] == kStay}.
  std::vector<int> stay_prefix;
  /// event_trans_prefix[i] = #{x <= i : x > 0, events[x] != events[x-1]}.
  std::vector<int> event_trans_prefix;
};

/// \brief Scores joint (R, E) configurations of a SequenceGraph and
/// exposes the Markov-blanket feature views that drive learning and
/// inference.
///
/// Region labels are candidate indices (r[i] indexes
/// graph.Candidates(i)); run identity is always decided on the underlying
/// RegionId, since different candidate indices at different records can
/// denote the same region.
///
/// The two *NodeFeatures() methods return the feature totals of every
/// clique that involves the given node — matching, the two incident
/// transition and synchronization cliques, and all segmentation cliques
/// whose extent can change when the node's label changes.  The window of
/// recomputed segmentation cliques is label-independent, so differences
/// of these vectors across candidate labels equal differences of
/// TotalFeatures(), which is exactly what Gibbs conditionals,
/// pseudo-likelihood gradients, and ICM deltas require.
class JointScorer {
 public:
  JointScorer(const SequenceGraph& graph, const C2mnStructure& structure)
      : g_(graph), s_(structure) {}

  const SequenceGraph& graph() const { return g_; }
  const C2mnStructure& structure() const { return s_; }

  /// Full feature vector of a complete configuration.
  FeatureVec TotalFeatures(const std::vector<int>& regions,
                           const std::vector<MobilityEvent>& events) const;

  /// w · TotalFeatures.
  double TotalScore(const std::vector<double>& weights,
                    const std::vector<int>& regions,
                    const std::vector<MobilityEvent>& events) const;

  /// Features of all cliques touching region node i if its label were
  /// candidate `a`, other labels as given.
  FeatureVec RegionNodeFeatures(int i, int a, const std::vector<int>& regions,
                                const std::vector<MobilityEvent>& events) const;

  /// Features of all cliques touching event node i if its label were `v`.
  FeatureVec EventNodeFeatures(int i, MobilityEvent v,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events) const;

  /// Builds the per-sweep label index in `scratch` (run boundaries of both
  /// chains, event prefix sums).  Must be called with exactly the
  /// labelings later passed to RegionSegScores / EventSegScores; the ICM
  /// overlay loops score every position against frozen labels and only
  /// re-decode afterwards, so one build per sweep suffices.  O(n).
  void BuildSegIndex(const std::vector<int>& regions,
                     const std::vector<MobilityEvent>& events,
                     SegScratch* scratch) const;

  /// Weighted segmentation-clique score (w · f over the f_es / f_ss
  /// templates only) of *every* candidate label of region node i at once,
  /// written to out[0 .. domain(i)).  Bit-identical to dotting
  /// RegionNodeFeatures per candidate, but the event-run is walked once —
  /// only the DISTNUM membership of each candidate differs — and the
  /// region-run restructuring of f_ss is evaluated once per equivalence
  /// class (candidate equals left-neighbor region / right-neighbor region,
  /// at most four classes) instead of once per candidate.  Run bounds and
  /// run features come from the BuildSegIndex tables (which must be
  /// current for `regions` / `events`), so the cost per position is
  /// O(runs in the affected window), not O(window length) — the scan
  /// version made sweeps over long homogeneous runs quadratic.  This is
  /// the ICM inner loop of the annotator.
  void RegionSegScores(int i, const std::vector<double>& weights,
                       const std::vector<int>& regions,
                       const std::vector<MobilityEvent>& events,
                       SegScratch* scratch, double* out) const;

  /// Weighted segmentation-clique score of both event labels of node i
  /// (out[0] = stay, out[1] = pass); the event-side ICM counterpart.
  /// Requires a current BuildSegIndex in `scratch`, like RegionSegScores.
  void EventSegScores(int i, const std::vector<double>& weights,
                      const std::vector<int>& regions,
                      const std::vector<MobilityEvent>& events,
                      SegScratch* scratch, double out[2]) const;

 private:
  RegionId RegionAt(int x, const std::vector<int>& regions, int override_pos,
                    int override_cand) const {
    const int cand = x == override_pos ? override_cand : regions[x];
    return g_.Candidates(x)[cand];
  }

  /// Run [*s, *e] of equal event labels containing i.
  void EventRun(int i, const std::vector<MobilityEvent>& events, int* s,
                int* e) const;
  /// Run [*s, *e] of equal region labels containing i.
  void RegionRun(int i, const std::vector<int>& regions, int* s, int* e) const;
  /// Label-independent window of region runs whose f_ss cliques can change
  /// when r_i changes: [start of run ending at i-1, end of run starting at
  /// i+1].  Also reports the neighboring run regions (kInvalidId at the
  /// sequence ends).
  void SpaceSegWindow(int i, const std::vector<int>& regions, int* ws, int* we,
                      RegionId* left, RegionId* right) const;
  /// Window of event runs whose f_es cliques can change when e_i changes.
  void EventSegWindow(int i, const std::vector<MobilityEvent>& events, int* ws,
                      int* we) const;
  static MobilityEvent EventAt(int x, const std::vector<MobilityEvent>& events,
                               int override_pos, MobilityEvent override_event) {
    return x == override_pos ? override_event : events[x];
  }

  /// Adds f_es over the event-run decomposition of [from, to].
  void AccumulateEventSegments(int from, int to,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events,
                               int r_override_pos, int r_override_cand,
                               int e_override_pos,
                               MobilityEvent e_override_event,
                               FeatureVec* f) const;

  /// Adds f_ss over the region-run decomposition of [from, to].
  void AccumulateSpaceSegments(int from, int to,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events,
                               int r_override_pos, int r_override_cand,
                               int e_override_pos,
                               MobilityEvent e_override_event,
                               FeatureVec* f) const;

  const SequenceGraph& g_;
  C2mnStructure s_;
};

}  // namespace c2mn

#endif  // C2MN_CORE_SCORER_H_
