#ifndef C2MN_CORE_SCORER_H_
#define C2MN_CORE_SCORER_H_

#include <vector>

#include "core/features.h"
#include "core/options.h"

namespace c2mn {

/// \brief Scores joint (R, E) configurations of a SequenceGraph and
/// exposes the Markov-blanket feature views that drive learning and
/// inference.
///
/// Region labels are candidate indices (r[i] indexes
/// graph.Candidates(i)); run identity is always decided on the underlying
/// RegionId, since different candidate indices at different records can
/// denote the same region.
///
/// The two *NodeFeatures() methods return the feature totals of every
/// clique that involves the given node — matching, the two incident
/// transition and synchronization cliques, and all segmentation cliques
/// whose extent can change when the node's label changes.  The window of
/// recomputed segmentation cliques is label-independent, so differences
/// of these vectors across candidate labels equal differences of
/// TotalFeatures(), which is exactly what Gibbs conditionals,
/// pseudo-likelihood gradients, and ICM deltas require.
class JointScorer {
 public:
  JointScorer(const SequenceGraph& graph, const C2mnStructure& structure)
      : g_(graph), s_(structure) {}

  const SequenceGraph& graph() const { return g_; }
  const C2mnStructure& structure() const { return s_; }

  /// Full feature vector of a complete configuration.
  FeatureVec TotalFeatures(const std::vector<int>& regions,
                           const std::vector<MobilityEvent>& events) const;

  /// w · TotalFeatures.
  double TotalScore(const std::vector<double>& weights,
                    const std::vector<int>& regions,
                    const std::vector<MobilityEvent>& events) const;

  /// Features of all cliques touching region node i if its label were
  /// candidate `a`, other labels as given.
  FeatureVec RegionNodeFeatures(int i, int a, const std::vector<int>& regions,
                                const std::vector<MobilityEvent>& events) const;

  /// Features of all cliques touching event node i if its label were `v`.
  FeatureVec EventNodeFeatures(int i, MobilityEvent v,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events) const;

 private:
  RegionId RegionAt(int x, const std::vector<int>& regions, int override_pos,
                    int override_cand) const {
    const int cand = x == override_pos ? override_cand : regions[x];
    return g_.Candidates(x)[cand];
  }
  static MobilityEvent EventAt(int x, const std::vector<MobilityEvent>& events,
                               int override_pos, MobilityEvent override_event) {
    return x == override_pos ? override_event : events[x];
  }

  /// Adds f_es over the event-run decomposition of [from, to].
  void AccumulateEventSegments(int from, int to,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events,
                               int r_override_pos, int r_override_cand,
                               int e_override_pos,
                               MobilityEvent e_override_event,
                               FeatureVec* f) const;

  /// Adds f_ss over the region-run decomposition of [from, to].
  void AccumulateSpaceSegments(int from, int to,
                               const std::vector<int>& regions,
                               const std::vector<MobilityEvent>& events,
                               int r_override_pos, int r_override_cand,
                               int e_override_pos,
                               MobilityEvent e_override_event,
                               FeatureVec* f) const;

  const SequenceGraph& g_;
  C2mnStructure s_;
};

}  // namespace c2mn

#endif  // C2MN_CORE_SCORER_H_
