#include "core/sequence_graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geometry/circle_overlap.h"
#include "geometry/turns.h"

namespace c2mn {

namespace {

/// f_sm (Eq. 3) generalized across floors: the overlap of the uncertainty
/// disk with the region's partitions, discounted per floor of mismatch,
/// optionally scaled by the normalized historical region frequency.
double ComputeSpatialMatch(const World& world, const FeatureOptions& opts,
                           const IndoorPoint& location, RegionId region) {
  const double v = opts.uncertainty_radius_v;
  const double disk_area = M_PI * v * v;
  double overlap = 0.0;
  for (PartitionId pid : world.plan().region(region).partitions) {
    const Partition& part = world.plan().partition(pid);
    const double raw =
        CirclePolygonIntersectionArea(location.xy, v, part.shape);
    const int dfloor = std::abs(part.floor - location.floor);
    overlap += raw * std::pow(opts.floor_mismatch_discount, dfloor);
  }
  double value = overlap / disk_area;
  if (opts.use_region_frequency &&
      region < static_cast<RegionId>(opts.region_frequency.size())) {
    value *= opts.region_frequency[region];
  }
  return value;
}

/// 3-point moving average of the estimates around record i, on the
/// window's majority floor (used when FeatureOptions::smooth_observations
/// is set).
IndoorPoint SmoothedLocation(const PSequence& seq, int i) {
  const int n = static_cast<int>(seq.size());
  const int lo = std::max(0, i - 1);
  const int hi = std::min(n - 1, i + 1);
  Vec2 mean{0, 0};
  // The window holds at most three records, hence at most three distinct
  // non-negative floors — fixed arrays, since this runs per record of
  // every rebuilt sequence graph.
  int floors[3];
  int votes[3];
  int nf = 0;
  for (int j = lo; j <= hi; ++j) {
    mean = mean + seq[j].location.xy;
    const int f = seq[j].location.floor;
    if (f < 0) continue;
    int s = 0;
    while (s < nf && floors[s] != f) ++s;
    if (s == nf) {
      floors[nf] = f;
      votes[nf] = 0;
      ++nf;
    }
    ++votes[s];
  }
  mean = mean / static_cast<double>(hi - lo + 1);
  // Majority floor; ties go to the smallest floor (the order the old
  // dense vote array scanned them in).  No votes keeps the record's own.
  int floor = seq[i].location.floor;
  int best = 0;
  for (int s = 0; s < nf; ++s) {
    if (votes[s] > best || (votes[s] == best && floors[s] < floor)) {
      best = votes[s];
      floor = floors[s];
    }
  }
  return IndoorPoint(mean, floor);
}

}  // namespace

SequenceGraph::SequenceGraph(const World& world, const PSequence& sequence,
                             const FeatureOptions& options,
                             const LabelSequence* inject_truth) {
  Rebuild(world, sequence, options, inject_truth);
}

void SequenceGraph::Rebuild(const World& world, const PSequence& sequence,
                            const FeatureOptions& options,
                            const LabelSequence* inject_truth) {
  world_ = &world;
  sequence_ = &sequence;
  options_ = &options;
  n_ = static_cast<int>(sequence.size());
  assert(n_ > 0);
  BuildCandidates(inject_truth);

  StDbscanInto(sequence, options.dbscan, &dbscan_scratch_, &dbscan_result_);
  density_ = dbscan_result_.classes;

  dt_.resize(n_ - 1);
  de_.resize(n_ - 1);
  speed_.resize(n_ - 1);
  for (int i = 0; i + 1 < n_; ++i) {
    dt_[i] = std::max(1e-6, sequence[i + 1].timestamp - sequence[i].timestamp);
    de_[i] = HorizontalDistance(sequence[i].location,
                                sequence[i + 1].location);
    speed_[i] = de_[i] / dt_[i];
  }
  turn_.assign(n_, 0);
  for (int i = 1; i + 1 < n_; ++i) {
    turn_[i] = IsTurn(sequence[i - 1].location.xy, sequence[i].location.xy,
                      sequence[i + 1].location.xy,
                      options.turn_threshold_deg)
                   ? 1
                   : 0;
  }
  path_prefix_.resize(n_);
  path_prefix_[0] = 0.0;
  for (int i = 1; i < n_; ++i) path_prefix_[i] = path_prefix_[i - 1] + de_[i - 1];
  turn_prefix_.resize(n_ + 1);
  turn_prefix_[0] = 0;
  for (int i = 0; i < n_; ++i) turn_prefix_[i + 1] = turn_prefix_[i] + turn_[i];
}

void SequenceGraph::BuildCandidates(const LabelSequence* inject_truth) {
  const FeatureOptions& opts = *options_;
  // Grow-only: entries past n_ keep their capacity for a later, longer
  // rebuild; entries below n_ are rebuilt in place (clear keeps capacity).
  if (static_cast<int>(candidates_.size()) < n_) candidates_.resize(n_);
  if (static_cast<int>(fsm_.size()) < n_) fsm_.resize(n_);
  for (int i = 0; i < n_; ++i) {
    const IndoorPoint loc = opts.smooth_observations
                                ? SmoothedLocation(*sequence_, i)
                                : (*sequence_)[i].location;
    std::vector<RegionId>& cands = candidates_[i];
    cands.clear();
    world_->index().NearestRegionsInto(loc, opts.candidate_k,
                                       opts.candidate_max_distance,
                                       &nn_scratch_);
    for (const auto& [region, dist] : nn_scratch_) {
      cands.push_back(region);
    }
    if (opts.cross_floor_candidates) {
      for (int df : {-1, 1}) {
        const IndoorPoint shifted(loc.xy, loc.floor + df);
        world_->index().NearestRegionsInto(shifted, opts.cross_floor_k,
                                           opts.cross_floor_max_distance,
                                           &nn_scratch_);
        for (const auto& [region, dist] : nn_scratch_) {
          if (std::find(cands.begin(), cands.end(), region) == cands.end()) {
            cands.push_back(region);
          }
        }
      }
    }
    if (cands.empty()) {
      // Degenerate placement (far outlier): fall back to the globally
      // nearest region on this floor, or region 0.
      const RegionId nearest = world_->index().NearestRegion(loc);
      cands.push_back(nearest != kInvalidId ? nearest : 0);
    }
    if (inject_truth != nullptr) {
      const RegionId truth = inject_truth->regions[i];
      if (truth != kInvalidId &&
          std::find(cands.begin(), cands.end(), truth) == cands.end()) {
        cands.push_back(truth);
      }
    }
    fsm_[i].resize(cands.size());
    double fsm_sum = 0.0;
    for (size_t a = 0; a < cands.size(); ++a) {
      fsm_[i][a] = ComputeSpatialMatch(*world_, opts, loc, cands[a]);
      fsm_sum += fsm_[i][a];
    }
    if (opts.normalize_fsm && fsm_sum > 1e-12) {
      for (double& v : fsm_[i]) v /= fsm_sum;
    }
  }
}

int SequenceGraph::CandidateIndex(int i, RegionId region) const {
  const auto& cands = candidates_[i];
  const auto it = std::find(cands.begin(), cands.end(), region);
  return it == cands.end() ? -1 : static_cast<int>(it - cands.begin());
}

std::vector<MobilityEvent> SequenceGraph::InitialEvents() const {
  std::vector<MobilityEvent> events;
  InitialEventsInto(&events);
  return events;
}

void SequenceGraph::InitialEventsInto(std::vector<MobilityEvent>* out) const {
  out->resize(n_);
  for (int i = 0; i < n_; ++i) {
    (*out)[i] = density_[i] == DensityClass::kNoise ? MobilityEvent::kPass
                                                    : MobilityEvent::kStay;
  }
}

std::vector<int> SequenceGraph::InitialRegions() const {
  // Candidates are nearest-first, so index 0 is the NN region.
  return std::vector<int>(n_, 0);
}

}  // namespace c2mn
