#ifndef C2MN_CORE_SEQUENCE_GRAPH_H_
#define C2MN_CORE_SEQUENCE_GRAPH_H_

#include <vector>

#include "clustering/st_dbscan.h"
#include "core/options.h"
#include "data/labels.h"
#include "indoor/region_index.h"
#include "sim/world.h"

namespace c2mn {

/// \brief The unrolled C2MN over one p-sequence: per-record candidate
/// label domains plus every observation-derived quantity the feature
/// functions consume, precomputed once.
///
/// Region labels are represented as indices into each record's candidate
/// set (the k nearest regions, like the paper's R-tree-assisted feature
/// extraction); event labels use MobilityEvent directly.
class SequenceGraph {
 public:
  /// Builds the graph.  When `inject_truth` is non-null (training), each
  /// record's ground-truth region is force-included in its candidate set
  /// so empirical feature values are always defined; inference passes
  /// nullptr and works with honest candidates only.
  SequenceGraph(const World& world, const PSequence& sequence,
                const FeatureOptions& options,
                const LabelSequence* inject_truth);

  /// An empty graph to be filled by Rebuild(); every accessor requires a
  /// successful Rebuild first.  Lets a streaming workspace keep one graph
  /// alive across decodes so candidate/feature buffers reuse capacity.
  SequenceGraph() = default;

  /// (Re)builds the graph in place, reusing previously grown storage.
  /// Identical output to constructing a fresh graph, but a warmed-up
  /// instance rebuilds without heap allocations.  Keeps pointers to
  /// `sequence` and `options` — they must outlive the next Rebuild().
  void Rebuild(const World& world, const PSequence& sequence,
               const FeatureOptions& options,
               const LabelSequence* inject_truth);

  /// The graph keeps pointers to `sequence` and `options`; binding them to
  /// temporaries would dangle, so those overloads are rejected.
  SequenceGraph(const World&, PSequence&&, const FeatureOptions&,
                const LabelSequence*) = delete;
  SequenceGraph(const World&, const PSequence&, FeatureOptions&&,
                const LabelSequence*) = delete;
  void Rebuild(const World&, PSequence&&, const FeatureOptions&,
               const LabelSequence*) = delete;
  void Rebuild(const World&, const PSequence&, FeatureOptions&&,
               const LabelSequence*) = delete;

  int size() const { return n_; }
  const PSequence& sequence() const { return *sequence_; }
  const World& world() const { return *world_; }
  const FeatureOptions& options() const { return *options_; }

  /// Candidate regions of record i (non-empty), nearest first.
  const std::vector<RegionId>& Candidates(int i) const {
    return candidates_[i];
  }
  /// f_sm value of candidate a at record i (pre-computed, Eq. 3).
  double SpatialMatch(int i, int a) const { return fsm_[i][a]; }
  /// Index of `region` in record i's candidates, or -1.
  int CandidateIndex(int i, RegionId region) const;

  /// θ_i.D: st-DBSCAN density class over the whole p-sequence.
  DensityClass Density(int i) const { return density_[i]; }
  /// Elapsed seconds between records i and i+1.
  double DeltaT(int i) const { return dt_[i]; }
  /// Euclidean (horizontal) distance between records i and i+1.
  double DeltaE(int i) const { return de_[i]; }
  /// Observed speed between records i and i+1 (m/s).
  double Speed(int i) const { return speed_[i]; }
  /// Whether the heading change at record i exceeds the turn threshold.
  bool Turn(int i) const { return turn_[i] != 0; }

  /// Euclidean path length over the run [i, j] (the sum of DeltaE(x) for
  /// x in [i, j)), O(1) via prefix sums.  The segmentation features call
  /// this once per counterfactual candidate, so it must not re-walk runs.
  double PathLength(int i, int j) const {
    return path_prefix_[j] - path_prefix_[i];
  }
  /// Number of turn records strictly inside (i, j), O(1) via prefix sums.
  int InteriorTurns(int i, int j) const {
    return j - i < 2 ? 0 : turn_prefix_[j] - turn_prefix_[i + 1];
  }

  /// The st-DBSCAN-based initial event configuration of Algorithm 1
  /// line 1: noise points are pass, core/border points are stay.
  std::vector<MobilityEvent> InitialEvents() const;
  /// InitialEvents into a caller-owned vector (allocation-free once the
  /// vector has capacity; used by the streaming decode workspace).
  void InitialEventsInto(std::vector<MobilityEvent>* out) const;
  /// Nearest-region initial configuration (candidate indices), used by
  /// the C2MN@R variant (first-configure R).
  std::vector<int> InitialRegions() const;

 private:
  void BuildCandidates(const LabelSequence* inject_truth);

  const World* world_ = nullptr;
  const PSequence* sequence_ = nullptr;
  const FeatureOptions* options_ = nullptr;
  int n_ = 0;

  /// candidates_/fsm_ grow but never shrink (only the first n_ entries
  /// are live), so the inner vectors keep their capacity across Rebuilds.
  std::vector<std::vector<RegionId>> candidates_;
  std::vector<std::vector<double>> fsm_;
  std::vector<DensityClass> density_;
  std::vector<double> dt_, de_, speed_;
  std::vector<uint8_t> turn_;
  std::vector<double> path_prefix_;  ///< [n]; path_prefix_[i] = Σ de_[x<i].
  std::vector<int> turn_prefix_;     ///< [n+1]; turn_prefix_[m] = Σ turn_[x<m].

  /// Rebuild-only working memory, kept to make rebuilds allocation-free.
  std::vector<RegionIndex::RegionDistance> nn_scratch_;
  StDbscanScratch dbscan_scratch_;
  StDbscanResult dbscan_result_;
};

}  // namespace c2mn

#endif  // C2MN_CORE_SEQUENCE_GRAPH_H_
