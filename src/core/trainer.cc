#include "core/trainer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cmath>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "crf/lbfgs.h"

namespace c2mn {

namespace {

/// Per-sequence training state: the unrolled graph, empirical labels in
/// candidate-index space, the current configuration of both chains, a
/// private RNG stream, and the per-iteration gradient partials.
///
/// Everything a sampling sweep touches lives here, so sequences can be
/// sharded over worker threads with no synchronization: each worker only
/// reads the shared weight vector and writes its own sequences' state.
struct TrainSequence {
  std::unique_ptr<SequenceGraph> graph;
  std::vector<int> empirical_regions;          // Candidate indices; -1 =
                                               // ground truth off-candidate
                                               // (excluded from the loss).
  std::vector<MobilityEvent> empirical_events;
  std::vector<int> config_regions;             // Current Ā (region side).
  std::vector<MobilityEvent> config_events;    // Current Ā (event side).
  /// Deterministic per-sequence stream (Rng::Stream(seed, ordinal)): the
  /// draws a sequence consumes are independent of which thread runs it and
  /// of how many sequences precede it in the sweep.
  Rng rng;

  // -- Reused sampling scratch (worker-local by construction). --
  std::vector<FeatureVec> fvecs;
  std::vector<double> logits;
  std::vector<double> probs;
  std::vector<int> votes;
};

constexpr MobilityEvent kEventDomain[2] = {MobilityEvent::kStay,
                                           MobilityEvent::kPass};

/// Gradient/objective partial of one reduction chunk (a fixed contiguous
/// range of sequences).  Cache-line aligned so two workers finishing
/// adjacent chunks never write the same line — the per-*sequence* partial
/// buffers this replaces interleaved across threads under the old strided
/// sharding and false-shared heavily.
struct alignas(64) ChunkPartial {
  std::array<double, kNumWeights> grad;
  double objective = 0.0;
};

/// Sequences per reduction chunk.  A pure function of nothing — keeping
/// the chunk layout independent of the thread count is what keeps the
/// accumulation order (and therefore every learned weight) bit-identical
/// from 1 thread to N.
constexpr size_t kReduceChunk = 8;

/// One full iteration's sampling work for a single sequence: every pass'
/// systematic scan, M draws per node, gradient/objective accumulation into
/// the owning chunk's partial buffer, and the persistent-chain advance.
/// Reads the shared weights `w`; touches no other shared state.
void SampleSequence(TrainSequence* ts, const C2mnStructure& structure,
                    const std::vector<double>& w,
                    const std::vector<bool>& passes, int M, double* grad,
                    double* objective) {
  TrainSequence& s = *ts;
  const SequenceGraph& g = *s.graph;
  const JointScorer scorer(g, structure);
  const int n = g.size();

  for (const bool pass_regions : passes) {
    for (int i = 0; i < n; ++i) {
      // Feature vector per candidate label of node i.  The B-chain
      // neighbors come from the persistent MCMC chain B̄ (not the
      // empirical labels): sampling against the model's own blanket is
      // what keeps the transition weights calibrated for decode time,
      // where neighbors are inferred rather than given.  The A-chain is
      // fixed at its configuration Ā.
      s.fvecs.clear();
      int empirical_index;
      if (pass_regions) {
        const int da = static_cast<int>(g.Candidates(i).size());
        s.fvecs.reserve(da);
        for (int a = 0; a < da; ++a) {
          s.fvecs.push_back(scorer.RegionNodeFeatures(i, a, s.config_regions,
                                                      s.config_events));
        }
        // -1 when the ground-truth region is off-candidate: the node
        // still advances the chain below but contributes nothing to the
        // loss or gradient (it has no valid supervision signal).
        empirical_index = s.empirical_regions[i];
      } else {
        s.fvecs.reserve(2);
        for (MobilityEvent v : kEventDomain) {
          s.fvecs.push_back(scorer.EventNodeFeatures(i, v, s.config_regions,
                                                     s.config_events));
        }
        empirical_index =
            s.empirical_events[i] == MobilityEvent::kStay ? 0 : 1;
      }

      const size_t domain = s.fvecs.size();
      s.logits.resize(domain);
      for (size_t a = 0; a < domain; ++a) {
        s.logits[a] = DotFeatures(w, s.fvecs[a]);
      }
      if (empirical_index >= 0) {
        const double lse = LogSumExp(s.logits);
        *objective -= s.logits[empirical_index] - lse;  // -log P(b_i | MB).
      }

      // M MCMC draws from the local conditional (Eq. 9's sample mean of
      // Δf = f(sampled) - f(empirical)).
      s.probs = s.logits;
      SoftmaxInPlace(&s.probs);
      s.votes.assign(domain, 0);
      for (int j = 0; j < M; ++j) {
        const size_t draw = s.rng.Categorical(s.probs);
        if (empirical_index >= 0) {
          for (int k = 0; k < kNumWeights; ++k) {
            grad[k] += (s.fvecs[draw][k] - s.fvecs[empirical_index][k]) /
                       static_cast<double>(M);
          }
        }
        ++s.votes[draw];
      }

      // Advance the persistent chain at this node to the majority of the
      // M draws (line 25's sample averaging), so later nodes in this
      // systematic-scan sweep see the updated value.
      const int majority = static_cast<int>(
          std::max_element(s.votes.begin(), s.votes.end()) - s.votes.begin());
      if (pass_regions) {
        s.config_regions[i] = majority;
      } else {
        s.config_events[i] = majority == 0 ? MobilityEvent::kStay
                                           : MobilityEvent::kPass;
      }
    }
  }
}

/// Resolves TrainOptions::num_threads against the hardware and workload.
int ResolveNumThreads(int requested, size_t num_sequences) {
  int n = requested;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n < 1) n = 1;
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(n), num_sequences));
}

}  // namespace

TrainResult AlternateTrainer::Train(
    const std::vector<const LabeledSequence*>& train) {
  TrainResult result;
  Stopwatch watch;
  Rng rng(topts_.seed);

  // Progress gauges: a monitoring thread (or `c2mn_cli metrics`) can
  // watch a long run converge without touching TrainResult early.
  obs::MetricsRegistry& registry =
      topts_.metrics_registry != nullptr ? *topts_.metrics_registry
                                         : obs::MetricsRegistry::Global();
  obs::Gauge* objective_gauge = registry.GetGauge(
      "c2mn_train_objective", "Pseudo-likelihood objective, last iteration");
  obs::Gauge* iteration_seconds_gauge = registry.GetGauge(
      "c2mn_train_iteration_seconds", "Wall time of the last outer iteration");
  obs::Counter* iterations_total = registry.GetCounter(
      "c2mn_train_iterations_total", "Outer training iterations completed");
  obs::Counter* dropped_supervision_total = registry.GetCounter(
      "c2mn_train_dropped_supervision_total",
      "Labeled nodes excluded because the ground-truth region was absent "
      "from the candidate set");

  FeatureOptions fopts = fopts_;
  if (fopts.use_region_frequency) {
    // Normalized historical region frequency, the optional f_sm extension.
    std::vector<double> freq(world_.plan().regions().size(), 1.0);
    for (const LabeledSequence* seq : train) {
      for (RegionId r : seq->labels.regions) {
        if (r != kInvalidId) freq[r] += 1.0;
      }
    }
    const double max_freq = *std::max_element(freq.begin(), freq.end());
    for (double& f : freq) f /= max_freq;
    fopts.region_frequency = std::move(freq);
  }

  // Unroll every training sequence once.
  std::vector<TrainSequence> sequences;
  sequences.reserve(train.size());
  for (const LabeledSequence* ls : train) {
    if (ls->sequence.empty()) continue;
    TrainSequence ts;
    ts.graph = std::make_unique<SequenceGraph>(world_, ls->sequence, fopts,
                                               &ls->labels);
    const int n = ts.graph->size();
    ts.empirical_regions.resize(n);
    for (int i = 0; i < n; ++i) {
      const int idx = ts.graph->CandidateIndex(i, ls->labels.regions[i]);
      // A ground-truth region outside the candidate set cannot be
      // expressed in candidate-index space; keep -1 so the node is
      // excluded from the loss instead of aliasing it to candidate 0.
      ts.empirical_regions[i] = idx;
      if (idx < 0) ++result.dropped_supervision;
    }
    ts.empirical_events = ls->labels.events;
    // Initial configurations of both chains (Algorithm 1, line 1 and
    // footnote 6): st-DBSCAN events, nearest-neighbor regions.
    ts.config_events = ts.graph->InitialEvents();
    ts.config_regions = ts.graph->InitialRegions();
    // Stream ordinal = position in `sequences`, a pure function of the
    // training set order — not of threading.
    ts.rng = Rng::Stream(topts_.seed, sequences.size());
    sequences.push_back(std::move(ts));
  }
  if (result.dropped_supervision > 0) {
    dropped_supervision_total->Increment(
        static_cast<uint64_t>(result.dropped_supervision));
    C2MN_LOG_WARN << result.dropped_supervision
                  << " labeled nodes have ground-truth regions outside "
                     "their candidate sets; excluding them from the "
                     "training loss";
  }
  if (sequences.empty()) {
    result.weights.assign(kNumWeights, 0.0);
    return result;
  }

  const int num_threads =
      ResolveNumThreads(topts_.num_threads, sequences.size());
  result.num_threads_used = num_threads;

  // Random initial weights w0.
  std::vector<double> w(kNumWeights);
  for (double& wi : w) wi = rng.Uniform(0.2, 0.8);

  LbfgsStepper::Options stepper_options;
  stepper_options.initial_step = topts_.stepper_initial_step;
  stepper_options.max_step_norm = topts_.stepper_max_step;
  LbfgsStepper stepper(kNumWeights, stepper_options);

  // `sampling_regions` = true means B = R (regions are sampled, events
  // fixed at their configuration).
  bool sampling_regions = !topts_.first_configure_region;

  std::vector<double> inv_sigma2(kNumWeights, 1.0 / topts_.sigma2);
  for (int k : {kWEventSeg0, kWEventSeg1, kWEventSeg2, kWSpaceSeg0,
                kWSpaceSeg1, kWSpaceSeg2}) {
    inv_sigma2[k] = 1.0 / topts_.segment_sigma2;
  }
  const int M = std::max(1, topts_.mcmc_samples);

  // Fixed-grain reduction chunks: sequences [c*kReduceChunk, ...) fold
  // their gradient/objective into partial c as they are sampled, and the
  // partials are merged once per outer iteration in chunk order.  The
  // chunk layout (and so the floating-point association) depends only on
  // the training set, never on the thread count.
  const size_t num_chunks =
      (sequences.size() + kReduceChunk - 1) / kReduceChunk;
  std::vector<ChunkPartial> partials(num_chunks);

  for (int iter = 0; iter < topts_.max_iter; ++iter) {
    const Stopwatch iter_watch;
    // Strict mode reproduces Algorithm 1's one-chain-per-iteration
    // alternation.  The default samples both chains per iteration (the
    // first-configured variable's counterpart first); with segmentation
    // cliques removed (CMN) the chains are independent and the order is
    // immaterial.
    std::vector<bool> passes;
    if (structure_.IsCoupled() && topts_.strict_alternation) {
      passes = {sampling_regions};
    } else if (topts_.first_configure_region) {
      passes = {false, true};  // R configured first: sample E, then R.
    } else {
      passes = {true, false};  // E configured first: sample R, then E.
    }

    // Workers claim whole chunks off a shared counter: contiguous ranges
    // keep each thread inside its own stretch of the sequence array (the
    // old strided assignment interleaved adjacent TrainSequence structs
    // across threads, false-sharing their headers on every scratch
    // resize), and dynamic claiming load-balances uneven sequence
    // lengths.  Which thread runs a chunk cannot change its partial:
    // every sequence is self-contained (own graph, chains, RNG stream)
    // and folds into its chunk's buffer in ordinal order.
    std::atomic<size_t> next_chunk{0};
    auto run_worker = [&] {
      for (size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
           c < num_chunks;
           c = next_chunk.fetch_add(1, std::memory_order_relaxed)) {
        ChunkPartial& partial = partials[c];
        partial.grad.fill(0.0);
        partial.objective = 0.0;
        const size_t begin = c * kReduceChunk;
        const size_t end =
            std::min(sequences.size(), begin + kReduceChunk);
        for (size_t s = begin; s < end; ++s) {
          SampleSequence(&sequences[s], structure_, w, passes, M,
                         partial.grad.data(), &partial.objective);
        }
      }
    };
    if (num_threads <= 1) {
      run_worker();
    } else {
      std::vector<std::thread> workers;
      workers.reserve(num_threads - 1);
      for (int t = 1; t < num_threads; ++t) workers.emplace_back(run_worker);
      run_worker();
      for (std::thread& worker : workers) worker.join();
    }

    // Merge the chunk partials once, in chunk order — with the fixed
    // grain above this association is identical for every thread count,
    // so the whole run is bit-identical to the 1-thread run.
    std::vector<double> grad(kNumWeights, 0.0);
    double objective = 0.0;
    for (const ChunkPartial& partial : partials) {
      for (int k = 0; k < kNumWeights; ++k) grad[k] += partial.grad[k];
      objective += partial.objective;
    }

    // Gaussian prior (Eq. 6's w'w / 2σ² term, per-template variances).
    for (int k = 0; k < kNumWeights; ++k) {
      grad[k] += w[k] * inv_sigma2[k];
      objective += 0.5 * w[k] * w[k] * inv_sigma2[k];
    }
    result.objective_trace.push_back(objective);
    objective_gauge->Set(objective);
    iteration_seconds_gauge->Set(iter_watch.ElapsedSeconds());
    iterations_total->Increment();

    std::vector<double> w_new = stepper.Step(w, grad);
    if (topts_.nonnegative_weights) {
      for (double& wk : w_new) wk = std::max(0.0, wk);
    }
    const double total_change = ChebyshevDistance(w_new, w);
    // Movement of the currently-fixed variable's weight block decides
    // whether to keep Ā or swap roles (Algorithm 1, lines 22-26).
    const int a_begin = sampling_regions ? kEventBlockBegin : kRegionBlockBegin;
    const int a_end = sampling_regions ? kEventBlockEnd : kRegionBlockEnd;
    double a_change = 0.0;
    for (int k = a_begin; k < a_end; ++k) {
      a_change = std::max(a_change, std::fabs(w_new[k] - w[k]));
    }
    w = w_new;
    result.iterations = iter + 1;

    if (total_change <= topts_.delta) {
      result.converged = true;
      break;
    }
    if (structure_.IsCoupled() && topts_.strict_alternation &&
        a_change > topts_.delta) {
      // The fixed block moved: swap which variable is configured.  The
      // new Ā is the majority of the samples just drawn (line 25).
      sampling_regions = !sampling_regions;
      stepper.Reset();
    }
  }

  result.weights = std::move(w);
  result.train_seconds = watch.ElapsedSeconds();
  C2MN_LOG_DEBUG << "training finished: " << result.iterations
                 << " iterations, " << result.train_seconds << " s ("
                 << result.num_threads_used << " threads)";
  return result;
}

}  // namespace c2mn
