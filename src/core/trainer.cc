#include "core/trainer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "crf/lbfgs.h"

namespace c2mn {

namespace {

/// Per-sequence training state: the unrolled graph, empirical labels in
/// candidate-index space, and the current configuration of both chains.
struct TrainSequence {
  std::unique_ptr<SequenceGraph> graph;
  std::vector<int> empirical_regions;          // Candidate indices.
  std::vector<MobilityEvent> empirical_events;
  std::vector<int> config_regions;             // Current Ā (region side).
  std::vector<MobilityEvent> config_events;    // Current Ā (event side).
};

constexpr MobilityEvent kEventDomain[2] = {MobilityEvent::kStay,
                                           MobilityEvent::kPass};

}  // namespace

TrainResult AlternateTrainer::Train(
    const std::vector<const LabeledSequence*>& train) {
  TrainResult result;
  Stopwatch watch;
  Rng rng(topts_.seed);

  FeatureOptions fopts = fopts_;
  if (fopts.use_region_frequency) {
    // Normalized historical region frequency, the optional f_sm extension.
    std::vector<double> freq(world_.plan().regions().size(), 1.0);
    for (const LabeledSequence* seq : train) {
      for (RegionId r : seq->labels.regions) {
        if (r != kInvalidId) freq[r] += 1.0;
      }
    }
    const double max_freq = *std::max_element(freq.begin(), freq.end());
    for (double& f : freq) f /= max_freq;
    fopts.region_frequency = std::move(freq);
  }

  // Unroll every training sequence once.
  std::vector<TrainSequence> sequences;
  sequences.reserve(train.size());
  for (const LabeledSequence* ls : train) {
    if (ls->sequence.empty()) continue;
    TrainSequence ts;
    ts.graph = std::make_unique<SequenceGraph>(world_, ls->sequence, fopts,
                                               &ls->labels);
    const int n = ts.graph->size();
    ts.empirical_regions.resize(n);
    for (int i = 0; i < n; ++i) {
      const int idx = ts.graph->CandidateIndex(i, ls->labels.regions[i]);
      ts.empirical_regions[i] = idx >= 0 ? idx : 0;
    }
    ts.empirical_events = ls->labels.events;
    // Initial configurations of both chains (Algorithm 1, line 1 and
    // footnote 6): st-DBSCAN events, nearest-neighbor regions.
    ts.config_events = ts.graph->InitialEvents();
    ts.config_regions = ts.graph->InitialRegions();
    sequences.push_back(std::move(ts));
  }
  if (sequences.empty()) {
    result.weights.assign(kNumWeights, 0.0);
    return result;
  }

  // Random initial weights w0.
  std::vector<double> w(kNumWeights);
  for (double& wi : w) wi = rng.Uniform(0.2, 0.8);

  LbfgsStepper::Options stepper_options;
  stepper_options.initial_step = topts_.stepper_initial_step;
  stepper_options.max_step_norm = topts_.stepper_max_step;
  LbfgsStepper stepper(kNumWeights, stepper_options);

  // `sampling_regions` = true means B = R (regions are sampled, events
  // fixed at their configuration).
  bool sampling_regions = !topts_.first_configure_region;

  std::vector<double> inv_sigma2(kNumWeights, 1.0 / topts_.sigma2);
  for (int k : {kWEventSeg0, kWEventSeg1, kWEventSeg2, kWSpaceSeg0,
                kWSpaceSeg1, kWSpaceSeg2}) {
    inv_sigma2[k] = 1.0 / topts_.segment_sigma2;
  }
  const int M = std::max(1, topts_.mcmc_samples);

  for (int iter = 0; iter < topts_.max_iter; ++iter) {
    std::vector<double> grad(kNumWeights, 0.0);
    double objective = 0.0;

    // Strict mode reproduces Algorithm 1's one-chain-per-iteration
    // alternation.  The default samples both chains per iteration (the
    // first-configured variable's counterpart first); with segmentation
    // cliques removed (CMN) the chains are independent and the order is
    // immaterial.
    std::vector<bool> passes;
    if (structure_.IsCoupled() && topts_.strict_alternation) {
      passes = {sampling_regions};
    } else if (topts_.first_configure_region) {
      passes = {false, true};  // R configured first: sample E, then R.
    } else {
      passes = {true, false};  // E configured first: sample R, then E.
    }
    for (const bool pass_regions : passes) {
    for (TrainSequence& ts : sequences) {
      const SequenceGraph& g = *ts.graph;
      const JointScorer scorer(g, structure_);
      const int n = g.size();
      // Majority-vote accumulation for line 25's sample averaging.
      std::vector<std::array<int, 2>> event_votes;
      std::vector<std::vector<int>> region_votes;
      if (pass_regions) {
        region_votes.resize(n);
      } else {
        event_votes.assign(n, {0, 0});
      }

      for (int i = 0; i < n; ++i) {
        // Feature vector per candidate label of node i.  The B-chain
        // neighbors come from the persistent MCMC chain B̄ (not the
        // empirical labels): sampling against the model's own blanket is
        // what keeps the transition weights calibrated for decode time,
        // where neighbors are inferred rather than given.  The A-chain is
        // fixed at its configuration Ā.
        std::vector<FeatureVec> fvecs;
        int empirical_index;
        if (pass_regions) {
          const int da = static_cast<int>(g.Candidates(i).size());
          fvecs.reserve(da);
          for (int a = 0; a < da; ++a) {
            fvecs.push_back(scorer.RegionNodeFeatures(
                i, a, ts.config_regions, ts.config_events));
          }
          empirical_index = ts.empirical_regions[i];
          region_votes[i].assign(da, 0);
        } else {
          fvecs.reserve(2);
          for (MobilityEvent v : kEventDomain) {
            fvecs.push_back(scorer.EventNodeFeatures(
                i, v, ts.config_regions, ts.config_events));
          }
          empirical_index =
              ts.empirical_events[i] == MobilityEvent::kStay ? 0 : 1;
        }

        std::vector<double> logits(fvecs.size());
        for (size_t a = 0; a < fvecs.size(); ++a) {
          logits[a] = DotFeatures(w, fvecs[a]);
        }
        const double lse = LogSumExp(logits);
        objective -= logits[empirical_index] - lse;  // -log P(b_i | MB).

        // M MCMC draws from the local conditional (Eq. 9's sample mean of
        // Δf = f(sampled) - f(empirical)).
        std::vector<double> probs = logits;
        SoftmaxInPlace(&probs);
        for (int j = 0; j < M; ++j) {
          const size_t draw = rng.Categorical(probs);
          for (int k = 0; k < kNumWeights; ++k) {
            grad[k] += (fvecs[draw][k] - fvecs[empirical_index][k]) /
                       static_cast<double>(M);
          }
          if (pass_regions) {
            ++region_votes[i][draw];
          } else {
            ++event_votes[i][draw];
          }
        }

        // Advance the persistent chain at this node to the majority of
        // the M draws (line 25's sample averaging), so later nodes in
        // this systematic-scan sweep see the updated value.
        if (pass_regions) {
          ts.config_regions[i] = static_cast<int>(
              std::max_element(region_votes[i].begin(),
                               region_votes[i].end()) -
              region_votes[i].begin());
        } else {
          ts.config_events[i] = event_votes[i][0] >= event_votes[i][1]
                                    ? MobilityEvent::kStay
                                    : MobilityEvent::kPass;
        }
      }
    }

        }  // passes

    // Gaussian prior (Eq. 6's w'w / 2σ² term, per-template variances).
    for (int k = 0; k < kNumWeights; ++k) {
      grad[k] += w[k] * inv_sigma2[k];
      objective += 0.5 * w[k] * w[k] * inv_sigma2[k];
    }
    result.objective_trace.push_back(objective);

    std::vector<double> w_new = stepper.Step(w, grad);
    if (topts_.nonnegative_weights) {
      for (double& wk : w_new) wk = std::max(0.0, wk);
    }
    const double total_change = ChebyshevDistance(w_new, w);
    // Movement of the currently-fixed variable's weight block decides
    // whether to keep Ā or swap roles (Algorithm 1, lines 22-26).
    const int a_begin = sampling_regions ? kEventBlockBegin : kRegionBlockBegin;
    const int a_end = sampling_regions ? kEventBlockEnd : kRegionBlockEnd;
    double a_change = 0.0;
    for (int k = a_begin; k < a_end; ++k) {
      a_change = std::max(a_change, std::fabs(w_new[k] - w[k]));
    }
    w = w_new;
    result.iterations = iter + 1;

    if (total_change <= topts_.delta) {
      result.converged = true;
      break;
    }
    if (structure_.IsCoupled() && topts_.strict_alternation &&
        a_change > topts_.delta) {
      // The fixed block moved: swap which variable is configured.  The
      // new Ā is the majority of the samples just drawn (line 25).
      sampling_regions = !sampling_regions;
      stepper.Reset();
    }
  }

  result.weights = std::move(w);
  result.train_seconds = watch.ElapsedSeconds();
  C2MN_LOG_DEBUG << "training finished: " << result.iterations
                 << " iterations, " << result.train_seconds << " s";
  return result;
}

}  // namespace c2mn
