#ifndef C2MN_CORE_TRAINER_H_
#define C2MN_CORE_TRAINER_H_

#include <vector>

#include "common/rng.h"
#include "core/annotator.h"
#include "core/scorer.h"
#include "obs/metrics_registry.h"

namespace c2mn {

/// \brief Hyper-parameters of Algorithm 1 (alternate learning with MCMC
/// inference).
struct TrainOptions {
  /// Maximum outer iterations (paper: max_iter = 90 real / 50 synthetic).
  int max_iter = 40;
  /// M: MCMC instances per step (paper: 800 real / 500 synthetic; the
  /// default here is scaled to bench budgets — raise it to study Figs 7/8).
  int mcmc_samples = 60;
  /// σ²: variance of the zero-mean Gaussian prior (paper: 0.5 / 0.2).
  double sigma2 = 0.5;
  /// Tighter prior variance for the six segmentation-feature weights.
  /// Segment cliques aggregate many records, so small weights already
  /// carry large influence; bounding them keeps the coupled decoding
  /// stable (the paper normalizes f_es / f_ss values for the same
  /// reason).
  double segment_sigma2 = 0.15;
  /// Project weights onto [0, ∞) after each step.  Every feature function
  /// is a designed plausibility score (Section III-B), so its weight is
  /// meant to scale, not invert, that plausibility; the projection keeps
  /// weakly-identified templates from flipping sign on sampling noise.
  bool nonnegative_weights = true;
  /// δ: Chebyshev convergence threshold of line 18 (paper: 1e-3).
  double delta = 1e-3;
  /// First-configured variable: false = E via st-DBSCAN (paper default),
  /// true = R via nearest-neighbor matching (the C2MN@R variant, Fig. 11).
  bool first_configure_region = false;
  /// true = Algorithm 1's literal alternation (one chain sampled per outer
  /// iteration, swap when the fixed block moves).  false (default) = both
  /// chains sampled every iteration, first-configured first; same
  /// conditioning structure, twice the gradient information per iteration.
  bool strict_alternation = false;
  uint64_t seed = 42;
  /// Incremental L-BFGS step control.
  double stepper_initial_step = 0.15;
  double stepper_max_step = 0.5;
  /// Worker threads for the per-sequence sampling/gradient work
  /// (0 = std::thread::hardware_concurrency()).  Each sequence owns a
  /// deterministic RNG stream (Rng::Stream(seed, ordinal)) and a private
  /// gradient buffer that is reduced in sequence order, so the learned
  /// weights are bit-identical for every thread count, including 1.
  int num_threads = 0;
  /// Registry for the trainer's progress gauges (per-iteration objective
  /// and timing, iteration and dropped-supervision counters), so a
  /// monitoring thread can watch a long run converge.  nullptr uses the
  /// process-wide obs::MetricsRegistry::Global().
  obs::MetricsRegistry* metrics_registry = nullptr;
};

/// \brief Outcome of a training run.
struct TrainResult {
  std::vector<double> weights;
  int iterations = 0;
  bool converged = false;
  double train_seconds = 0.0;
  /// Exact pseudo-likelihood (lower is better) per outer iteration.
  std::vector<double> objective_trace;
  /// Labeled nodes whose ground-truth region was absent from the node's
  /// candidate set.  Such nodes are excluded from the loss and gradient
  /// (they used to be silently aliased to candidate 0, biasing every
  /// update); a nonzero count is logged as a warning.
  int64_t dropped_supervision = 0;
  /// Worker threads actually used (after resolving num_threads = 0 and
  /// clamping to the number of training sequences).
  int num_threads_used = 1;
};

/// \brief Supervised learning of the C2MN weights by alternate
/// pseudo-likelihood maximization (Section IV).
///
/// Each outer iteration fixes one target variable at its current
/// configuration Ā (initially st-DBSCAN events, or nearest-neighbor
/// regions for @R), draws M samples per node of the other variable B from
/// its Markov-blanket conditional, forms the stochastic gradient of
/// Eq. 9, and takes one incremental L-BFGS step.  When the step moves the
/// fixed variable's weight block by more than δ, the configuration is
/// swapped: Ā is replaced by the per-node majority of the M samples
/// (line 25's sample averaging) and the roles of A and B exchange.
class AlternateTrainer {
 public:
  AlternateTrainer(const World& world, FeatureOptions feature_options,
                   C2mnStructure structure, TrainOptions train_options)
      : world_(world),
        fopts_(std::move(feature_options)),
        structure_(structure),
        topts_(train_options) {}

  /// Learns weights from fully-labeled sequences.
  TrainResult Train(const std::vector<const LabeledSequence*>& train);

  /// Convenience: builds the annotator for the learned weights.
  C2mnAnnotator MakeAnnotator(const TrainResult& result) const {
    return C2mnAnnotator(world_, fopts_, structure_, result.weights);
  }

  const FeatureOptions& feature_options() const { return fopts_; }

 private:
  const World& world_;
  FeatureOptions fopts_;
  C2mnStructure structure_;
  TrainOptions topts_;
};

}  // namespace c2mn

#endif  // C2MN_CORE_TRAINER_H_
