#ifndef C2MN_CORE_VARIANTS_H_
#define C2MN_CORE_VARIANTS_H_

#include <string>
#include <vector>

#include "core/options.h"

namespace c2mn {

/// \brief A named C2MN structure variant, as compared in Table IV.
struct C2mnVariant {
  std::string name;
  C2mnStructure structure;
  /// True for C2MN@R (first-configure regions, Fig. 11).
  bool first_configure_region = false;
};

/// The full C2MN (all clique categories).
inline C2mnVariant FullC2mn() { return {"C2MN", C2mnStructure{}, false}; }

/// C2MN/Tran: no transition cliques.
inline C2mnVariant C2mnNoTransition() {
  C2mnStructure s;
  s.use_transition = false;
  return {"C2MN/Tran", s, false};
}

/// C2MN/Syn: no synchronization cliques.
inline C2mnVariant C2mnNoSync() {
  C2mnStructure s;
  s.use_sync = false;
  return {"C2MN/Syn", s, false};
}

/// C2MN/ES: no event-based segmentation cliques.
inline C2mnVariant C2mnNoEventSeg() {
  C2mnStructure s;
  s.use_event_seg = false;
  return {"C2MN/ES", s, false};
}

/// C2MN/SS: no space-based segmentation cliques.
inline C2mnVariant C2mnNoSpaceSeg() {
  C2mnStructure s;
  s.use_space_seg = false;
  return {"C2MN/SS", s, false};
}

/// CMN: both segmentation categories removed; R and E decouple and are
/// inferred asynchronously.
inline C2mnVariant DecoupledCmn() {
  C2mnStructure s;
  s.use_event_seg = false;
  s.use_space_seg = false;
  return {"CMN", s, false};
}

/// C2MN@R: full structure, but regions are the first-configured variable.
inline C2mnVariant C2mnAtR() { return {"C2MN@R", C2mnStructure{}, true}; }

/// The C2MN-family lineup of Table IV (CMN + four ablations + full).
inline std::vector<C2mnVariant> TableFourVariants() {
  return {DecoupledCmn(),   C2mnNoTransition(), C2mnNoSync(),
          C2mnNoEventSeg(), C2mnNoSpaceSeg(),   FullC2mn()};
}

}  // namespace c2mn

#endif  // C2MN_CORE_VARIANTS_H_
