#include "core/weights_io.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/metrics_registry.h"

namespace c2mn {
namespace weights_io {

namespace {

/// Counts a rejected weights file by reason in the process-wide
/// registry (error path only).
void CountRejected(const char* reason) {
  obs::MetricsRegistry::Global()
      .GetCounter("c2mn_weights_rejected_total",
                  "Weights files rejected by the reader, by reason",
                  {{"reason", reason}})
      ->Increment();
}

}  // namespace

const std::vector<std::string>& ComponentNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "spatial_match",      "space_transition", "spatial_consistency",
      "event_seg_distnum",  "event_seg_speed",  "event_seg_turns",
      "event_match",        "event_transition", "event_consistency",
      "space_seg_distinct", "space_seg_trans",  "space_seg_boundary"};
  assert(static_cast<int>(names->size()) == kNumWeights);
  return *names;
}

void Write(const std::vector<double>& weights, std::ostream* out) {
  assert(static_cast<int>(weights.size()) == kNumWeights);
  *out << "c2mn-weights v1\n";
  char buf[96];
  for (int k = 0; k < kNumWeights; ++k) {
    std::snprintf(buf, sizeof(buf), "%s %.17g\n",
                  ComponentNames()[k].c_str(), weights[k]);
    *out << buf;
  }
}

std::string ToString(const std::vector<double>& weights) {
  std::ostringstream out;
  Write(weights, &out);
  return out.str();
}

Result<std::vector<double>> Read(std::istream* in) {
  // Files saved on Windows (or round-tripped through a CRLF checkout)
  // leave a trailing '\r' on every line std::getline returns; strip it
  // so the header comparison and name lookups see the bare tokens.
  const auto strip_cr = [](std::string* s) {
    if (!s->empty() && s->back() == '\r') s->pop_back();
  };
  std::string header;
  if (!std::getline(*in, header)) {
    CountRejected("bad_header");
    return Status::InvalidArgument("weights file: bad header");
  }
  strip_cr(&header);
  if (header != "c2mn-weights v1") {
    CountRejected("bad_header");
    return Status::InvalidArgument("weights file: bad header");
  }
  std::map<std::string, double> values;
  std::string line;
  while (std::getline(*in, line)) {
    strip_cr(&line);
    if (line.empty()) continue;
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      CountRejected("malformed_line");
      return Status::InvalidArgument("weights file: malformed line '" + line +
                                     "'");
    }
    const std::string name = line.substr(0, space);
    bool known = false;
    for (const std::string& component : ComponentNames()) {
      if (component == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      CountRejected("unknown_component");
      return Status::InvalidArgument("weights file: unknown component " +
                                     name);
    }
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    if (end == line.c_str() + space + 1 || !std::isfinite(value)) {
      CountRejected("bad_value");
      return Status::InvalidArgument("weights file: bad value for " + name);
    }
    if (!values.emplace(name, value).second) {
      CountRejected("duplicate_component");
      return Status::InvalidArgument("weights file: duplicate component " +
                                     name);
    }
  }
  std::vector<double> weights(kNumWeights);
  for (int k = 0; k < kNumWeights; ++k) {
    const auto it = values.find(ComponentNames()[k]);
    if (it == values.end()) {
      CountRejected("missing_component");
      return Status::InvalidArgument("weights file: missing component " +
                                     ComponentNames()[k]);
    }
    weights[k] = it->second;
  }
  return weights;
}

}  // namespace weights_io
}  // namespace c2mn
