#ifndef C2MN_CORE_WEIGHTS_IO_H_
#define C2MN_CORE_WEIGHTS_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/options.h"

namespace c2mn {

/// \brief Text serialization of a trained weight vector, so models can be
/// trained once and shipped (e.g. by tools/c2mn_cli).
///
/// Format:
///   c2mn-weights v1
///   <name> <value>        (one line per FeatureIndex component)
///
/// Components are written by name, so files remain readable and robust to
/// reordering.
namespace weights_io {

/// Canonical names of the weight components, aligned with FeatureIndex.
const std::vector<std::string>& ComponentNames();

void Write(const std::vector<double>& weights, std::ostream* out);
std::string ToString(const std::vector<double>& weights);

/// Parses a weight file; all kNumWeights components must be present.
Result<std::vector<double>> Read(std::istream* in);

}  // namespace weights_io
}  // namespace c2mn

#endif  // C2MN_CORE_WEIGHTS_IO_H_
