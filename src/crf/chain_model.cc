#include "crf/chain_model.h"

#include <cassert>

namespace c2mn {

bool ChainPotentials::Validate() const {
  if (node.empty()) return false;
  if (edge.size() + 1 != node.size()) return false;
  for (size_t i = 0; i < node.size(); ++i) {
    if (node[i].empty()) return false;
  }
  for (size_t i = 0; i < edge.size(); ++i) {
    if (edge[i].size() != node[i].size()) return false;
    for (const auto& row : edge[i]) {
      if (row.size() != node[i + 1].size()) return false;
    }
  }
  return true;
}

ChainModel::ChainModel(const ChainPotentials& potentials) {
  assert(potentials.Validate());
  flat_ = FlatChainPotentials::FromNested(potentials, &arena_);
}

std::vector<int> ChainModel::Viterbi() const {
  std::vector<int> labels;
  FlatViterbi(flat_, nullptr, &ws_, &labels);
  return labels;
}

double ChainModel::LogPartition() const {
  return FlatLogPartition(flat_, nullptr, &ws_);
}

std::vector<std::vector<double>> ChainModel::Marginals() const {
  std::vector<double> flat_marginals(flat_.node_total);
  FlatMarginals(flat_, nullptr, &ws_, flat_marginals.data());
  std::vector<std::vector<double>> marginals(flat_.n);
  for (int i = 0; i < flat_.n; ++i) {
    const double* row = flat_marginals.data() + flat_.node_off[i];
    marginals[i].assign(row, row + flat_.domains[i]);
  }
  return marginals;
}

double ChainModel::Score(const std::vector<int>& labels) const {
  assert(static_cast<int>(labels.size()) == flat_.n);
  return FlatScore(flat_, nullptr, labels.data());
}

void ChainModel::GibbsSweep(std::vector<int>* state, Rng* rng) const {
  FlatGibbsSweep(flat_, nullptr, &ws_, state, rng);
}

std::vector<int> ChainModel::Sample(Rng* rng) const {
  std::vector<int> labels;
  FlatSample(flat_, nullptr, &ws_, rng, &labels);
  return labels;
}

}  // namespace c2mn
