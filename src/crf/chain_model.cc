#include "crf/chain_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_utils.h"

namespace c2mn {

bool ChainPotentials::Validate() const {
  if (node.empty()) return false;
  if (edge.size() + 1 != node.size()) return false;
  for (size_t i = 0; i < node.size(); ++i) {
    if (node[i].empty()) return false;
  }
  for (size_t i = 0; i < edge.size(); ++i) {
    if (edge[i].size() != node[i].size()) return false;
    for (const auto& row : edge[i]) {
      if (row.size() != node[i + 1].size()) return false;
    }
  }
  return true;
}

ChainModel::ChainModel(ChainPotentials potentials)
    : potentials_(std::move(potentials)) {
  assert(potentials_.Validate());
}

std::vector<int> ChainModel::Viterbi() const {
  const size_t n = potentials_.length();
  std::vector<std::vector<double>> best(n);
  std::vector<std::vector<int>> back(n);
  best[0] = potentials_.node[0];
  back[0].assign(potentials_.domain(0), -1);
  for (size_t i = 1; i < n; ++i) {
    const size_t da = potentials_.domain(i - 1);
    const size_t db = potentials_.domain(i);
    best[i].assign(db, -1e300);
    back[i].assign(db, 0);
    for (size_t b = 0; b < db; ++b) {
      for (size_t a = 0; a < da; ++a) {
        const double score =
            best[i - 1][a] + potentials_.edge[i - 1][a][b];
        if (score > best[i][b]) {
          best[i][b] = score;
          back[i][b] = static_cast<int>(a);
        }
      }
      best[i][b] += potentials_.node[i][b];
    }
  }
  std::vector<int> labels(n);
  labels[n - 1] = static_cast<int>(
      std::max_element(best[n - 1].begin(), best[n - 1].end()) -
      best[n - 1].begin());
  for (size_t i = n - 1; i > 0; --i) {
    labels[i - 1] = back[i][labels[i]];
  }
  return labels;
}

double ChainModel::LogPartition() const {
  const size_t n = potentials_.length();
  std::vector<double> alpha = potentials_.node[0];
  for (size_t i = 1; i < n; ++i) {
    const size_t da = potentials_.domain(i - 1);
    const size_t db = potentials_.domain(i);
    std::vector<double> next(db);
    std::vector<double> terms(da);
    for (size_t b = 0; b < db; ++b) {
      for (size_t a = 0; a < da; ++a) {
        terms[a] = alpha[a] + potentials_.edge[i - 1][a][b];
      }
      next[b] = LogSumExp(terms) + potentials_.node[i][b];
    }
    alpha = std::move(next);
  }
  return LogSumExp(alpha);
}

std::vector<std::vector<double>> ChainModel::Marginals() const {
  const size_t n = potentials_.length();
  // Forward messages.
  std::vector<std::vector<double>> alpha(n);
  alpha[0] = potentials_.node[0];
  for (size_t i = 1; i < n; ++i) {
    const size_t da = potentials_.domain(i - 1);
    const size_t db = potentials_.domain(i);
    alpha[i].assign(db, 0.0);
    std::vector<double> terms(da);
    for (size_t b = 0; b < db; ++b) {
      for (size_t a = 0; a < da; ++a) {
        terms[a] = alpha[i - 1][a] + potentials_.edge[i - 1][a][b];
      }
      alpha[i][b] = LogSumExp(terms) + potentials_.node[i][b];
    }
  }
  // Backward messages.
  std::vector<std::vector<double>> beta(n);
  beta[n - 1].assign(potentials_.domain(n - 1), 0.0);
  for (size_t i = n - 1; i > 0; --i) {
    const size_t da = potentials_.domain(i - 1);
    const size_t db = potentials_.domain(i);
    beta[i - 1].assign(da, 0.0);
    std::vector<double> terms(db);
    for (size_t a = 0; a < da; ++a) {
      for (size_t b = 0; b < db; ++b) {
        terms[b] = potentials_.edge[i - 1][a][b] + potentials_.node[i][b] +
                   beta[i][b];
      }
      beta[i - 1][a] = LogSumExp(terms);
    }
  }
  std::vector<std::vector<double>> marginals(n);
  for (size_t i = 0; i < n; ++i) {
    marginals[i].resize(potentials_.domain(i));
    for (size_t a = 0; a < potentials_.domain(i); ++a) {
      marginals[i][a] = alpha[i][a] + beta[i][a];
    }
    SoftmaxInPlace(&marginals[i]);
  }
  return marginals;
}

double ChainModel::Score(const std::vector<int>& labels) const {
  assert(labels.size() == potentials_.length());
  double score = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    score += potentials_.node[i][labels[i]];
    if (i + 1 < labels.size()) {
      score += potentials_.edge[i][labels[i]][labels[i + 1]];
    }
  }
  return score;
}

void ChainModel::GibbsSweep(std::vector<int>* state, Rng* rng) const {
  const size_t n = potentials_.length();
  assert(state->size() == n);
  for (size_t i = 0; i < n; ++i) {
    const size_t d = potentials_.domain(i);
    std::vector<double> logits(d);
    for (size_t a = 0; a < d; ++a) {
      double s = potentials_.node[i][a];
      if (i > 0) s += potentials_.edge[i - 1][(*state)[i - 1]][a];
      if (i + 1 < n) s += potentials_.edge[i][a][(*state)[i + 1]];
      logits[a] = s;
    }
    SoftmaxInPlace(&logits);
    (*state)[i] = static_cast<int>(rng->Categorical(logits));
  }
}

std::vector<int> ChainModel::Sample(Rng* rng) const {
  const size_t n = potentials_.length();
  // Forward filtering.
  std::vector<std::vector<double>> alpha(n);
  alpha[0] = potentials_.node[0];
  for (size_t i = 1; i < n; ++i) {
    const size_t da = potentials_.domain(i - 1);
    const size_t db = potentials_.domain(i);
    alpha[i].assign(db, 0.0);
    std::vector<double> terms(da);
    for (size_t b = 0; b < db; ++b) {
      for (size_t a = 0; a < da; ++a) {
        terms[a] = alpha[i - 1][a] + potentials_.edge[i - 1][a][b];
      }
      alpha[i][b] = LogSumExp(terms) + potentials_.node[i][b];
    }
  }
  // Backward sampling.
  std::vector<int> labels(n);
  std::vector<double> last = alpha[n - 1];
  SoftmaxInPlace(&last);
  labels[n - 1] = static_cast<int>(rng->Categorical(last));
  for (size_t i = n - 1; i > 0; --i) {
    const size_t da = potentials_.domain(i - 1);
    std::vector<double> logits(da);
    for (size_t a = 0; a < da; ++a) {
      logits[a] = alpha[i - 1][a] + potentials_.edge[i - 1][a][labels[i]];
    }
    SoftmaxInPlace(&logits);
    labels[i - 1] = static_cast<int>(rng->Categorical(logits));
  }
  return labels;
}

}  // namespace c2mn
