#ifndef C2MN_CRF_CHAIN_MODEL_H_
#define C2MN_CRF_CHAIN_MODEL_H_

#include <vector>

#include "common/rng.h"
#include "crf/flat_chain.h"

namespace c2mn {

/// \brief Log-linear potentials of a linear chain with per-position label
/// sets: node[i][a] is the log-potential of label a at position i, and
/// edge[i][a][b] the log-potential of (label a at i, label b at i+1).
///
/// Labels are indices into each position's candidate set, so positions may
/// have different domain sizes (region candidates differ per record).
///
/// This nested layout is the *interchange* format: convenient to build in
/// cold paths and in tests.  Inference always runs on the flat arena-backed
/// FlatChainPotentials (see crf/flat_chain.h); hot paths such as the
/// annotator build flat potentials directly and never materialize this
/// struct.
struct ChainPotentials {
  std::vector<std::vector<double>> node;
  /// edge[i] couples positions i and i+1; size node.size() - 1.
  std::vector<std::vector<std::vector<double>>> edge;

  size_t length() const { return node.size(); }
  size_t domain(size_t i) const { return node[i].size(); }
  bool Validate() const;
};

/// \brief Exact and sampling inference over chain potentials.
///
/// This is the pairwise backbone shared by the C2MN decoding passes (the
/// region chain given events, and the event chain given regions) and by
/// the CMN / HMM baselines.  Segment-level cliques are layered on top via
/// ICM (see core/annotator).
///
/// The constructor flattens the nested potentials once; every query then
/// runs the flat kernels against an internal workspace, so repeated calls
/// on one model do not allocate.  The workspace makes the accessors
/// non-reentrant: share a ChainModel across threads only with external
/// synchronization (the annotation hot paths use per-session workspaces
/// instead of this class).
class ChainModel {
 public:
  explicit ChainModel(const ChainPotentials& potentials);

  const FlatChainPotentials& flat() const { return flat_; }

  /// Max-product decoding: the label configuration with maximal score.
  std::vector<int> Viterbi() const;

  /// Log of the partition function (forward algorithm, log-space).
  double LogPartition() const;

  /// Posterior node marginals P(y_i = a).
  std::vector<std::vector<double>> Marginals() const;

  /// Unnormalized log-score of a configuration.
  double Score(const std::vector<int>& labels) const;

  /// One systematic-scan Gibbs sweep over `state` (each position resampled
  /// from its full conditional given its neighbors).
  void GibbsSweep(std::vector<int>* state, Rng* rng) const;

  /// Exact sample from the chain distribution via forward-filter
  /// backward-sample.
  std::vector<int> Sample(Rng* rng) const;

 private:
  InferenceArena arena_;
  FlatChainPotentials flat_;
  mutable ChainWorkspace ws_;
};

}  // namespace c2mn

#endif  // C2MN_CRF_CHAIN_MODEL_H_
