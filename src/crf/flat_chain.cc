#include "crf/flat_chain.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_utils.h"
#include "common/simd.h"
#include "crf/chain_model.h"

namespace c2mn {

namespace {

inline double MaxOf(const double* x, size_t n) {
  return simd::RowMax(x, static_cast<int>(n));
}

inline double NodeValue(const FlatChainPotentials& p, const double* bias,
                        size_t flat_index) {
  return bias == nullptr ? p.node[flat_index]
                         : p.node[flat_index] + bias[flat_index];
}

/// cur[b] += node(i, b) [+ bias(i, b)].  The biased path rounds
/// node + bias first (one fused overlay value, exactly like NodeValue)
/// so an overlay decode stays bit-identical to decoding materialized
/// augmented potentials.
inline void AddNodeRow(const FlatChainPotentials& p, const double* bias,
                       size_t off, double* cur, int d) {
  if (bias == nullptr) {
    simd::BiasAdd(cur, p.node + off, d);
    return;
  }
  const double* node = p.node + off;
  const double* b = bias + off;
  for (int i = 0; i < d; ++i) cur[i] += node[i] + b[i];
}

}  // namespace

FlatChainPotentials FlatChainPotentials::Build(int n, const int* domains,
                                               bool tied_edges,
                                               InferenceArena* arena) {
  assert(n > 0);
  FlatChainPotentials p;
  p.n = n;
  p.domains = domains;
  size_t* node_off = arena->Alloc<size_t>(static_cast<size_t>(n) + 1);
  node_off[0] = 0;
  for (int i = 0; i < n; ++i) {
    assert(domains[i] > 0);
    node_off[i + 1] = node_off[i] + static_cast<size_t>(domains[i]);
  }
  p.node_off = node_off;
  p.node_total = node_off[n];
  p.node = arena->Alloc<double>(p.node_total);
  if (n > 1) {
    size_t* edge_off = arena->Alloc<size_t>(static_cast<size_t>(n) - 1);
    if (tied_edges) {
      // One shared block; every position must couple equal-sized domains.
      for (int i = 0; i + 1 < n; ++i) {
        assert(domains[i] == domains[0] && domains[i + 1] == domains[0]);
        edge_off[i] = 0;
      }
      p.edge_total =
          static_cast<size_t>(domains[0]) * static_cast<size_t>(domains[0]);
    } else {
      size_t total = 0;
      for (int i = 0; i + 1 < n; ++i) {
        edge_off[i] = total;
        total += static_cast<size_t>(domains[i]) *
                 static_cast<size_t>(domains[i + 1]);
      }
      p.edge_total = total;
    }
    p.edge_off = edge_off;
    p.edge = arena->Alloc<double>(p.edge_total);
  }
  return p;
}

FlatChainPotentials FlatChainPotentials::FromNested(
    const ChainPotentials& nested, InferenceArena* arena) {
  const int n = static_cast<int>(nested.length());
  int* domains = arena->Alloc<int>(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    domains[i] = static_cast<int>(nested.domain(i));
  }
  FlatChainPotentials p = Build(n, domains, /*tied_edges=*/false, arena);
  for (int i = 0; i < n; ++i) {
    std::copy(nested.node[i].begin(), nested.node[i].end(), p.NodeRow(i));
    if (i + 1 < n) {
      double* block = p.EdgeBlock(i);
      const size_t db = nested.domain(i + 1);
      for (size_t a = 0; a < nested.domain(i); ++a) {
        std::copy(nested.edge[i][a].begin(), nested.edge[i][a].end(),
                  block + a * db);
      }
    }
  }
  return p;
}

void FlatChainPotentials::PrecomputeEdgeMax(InferenceArena* arena) {
  if (n <= 1) return;
  double* em = arena->Alloc<double>(static_cast<size_t>(n) - 1);
  for (int i = 0; i + 1 < n; ++i) {
    if (i > 0 && edge_off[i] == edge_off[i - 1] &&
        domains[i + 1] == domains[i]) {
      em[i] = em[i - 1];  // tied edges share one block
      continue;
    }
    em[i] = MaxOf(EdgeBlock(i),
                  static_cast<size_t>(domains[i]) * domains[i + 1]);
  }
  edge_max = em;
}

void FlatViterbi(const FlatChainPotentials& p, const double* node_bias,
                 ChainWorkspace* ws, std::vector<int>* out) {
  const int n = p.n;
  ws->val_a.resize(p.node_total);
  ws->back.resize(p.node_total);
  double* best = ws->val_a.data();
  int* back = ws->back.data();
  for (int a = 0; a < p.domains[0]; ++a) best[a] = NodeValue(p, node_bias, a);
  for (int i = 1; i < n; ++i) {
    const int da = p.domains[i - 1];
    const int db = p.domains[i];
    const double* prev = best + p.node_off[i - 1];
    double* cur = best + p.node_off[i];
    int* back_cur = back + p.node_off[i];
    const double* edge = p.EdgeBlock(i - 1);
    std::fill(cur, cur + db, -1e300);
    std::fill(back_cur, back_cur + db, 0);
    for (int a = 0; a < da; ++a) {
      simd::MaxPlusStep(prev[a], edge + static_cast<size_t>(a) * db, cur,
                        back_cur, a, db);
    }
    AddNodeRow(p, node_bias, p.node_off[i], cur, db);
  }
  out->resize(n);
  const double* last = best + p.node_off[n - 1];
  (*out)[n - 1] = static_cast<int>(
      std::max_element(last, last + p.domains[n - 1]) - last);
  for (int i = n - 1; i > 0; --i) {
    (*out)[i - 1] = back[p.node_off[i] + (*out)[i]];
  }
}

namespace {

/// Forward pass shared by LogPartition / Marginals / Sample: fills
/// ws->val_a with log-space alpha messages.  One max-shift per position
/// (max incoming message + max edge entry), so exp() arguments are always
/// <= 0 and long low-entropy chains cannot underflow the accumulator of
/// the dominant label.
void ForwardMessages(const FlatChainPotentials& p, const double* node_bias,
                     ChainWorkspace* ws) {
  const int n = p.n;
  ws->val_a.resize(p.node_total);
  double* alpha = ws->val_a.data();
  for (int a = 0; a < p.domains[0]; ++a) alpha[a] = NodeValue(p, node_bias, a);
  for (int i = 1; i < n; ++i) {
    const int da = p.domains[i - 1];
    const int db = p.domains[i];
    const double* prev = alpha + p.node_off[i - 1];
    double* cur = alpha + p.node_off[i];
    const double* edge = p.EdgeBlock(i - 1);
    const double edge_mx =
        p.edge_max != nullptr ? p.edge_max[i - 1]
                              : MaxOf(edge, static_cast<size_t>(da) * db);
    const double max_prev = MaxOf(prev, da);
    const double shift = max_prev + edge_mx;
    ws->local.assign(db, 0.0);
    double* acc = ws->local.data();
    for (int a = 0; a < da; ++a) {
      // Every term of row a is at most prev[a] - max_prev (the shift
      // already absorbs the largest edge entry), so rows below the exp
      // flush threshold contribute exactly +0.0 and can be skipped.  On
      // peaked chains — exactly the ones ICM sharpens round over round —
      // most predecessor labels fall out this way.
      if (prev[a] - max_prev < simd::kExpFlushMin) continue;
      simd::ExpAccumulate(prev[a] - shift, edge + static_cast<size_t>(a) * db,
                          acc, db);
    }
    const size_t off = p.node_off[i];
    for (int b = 0; b < db; ++b) {
      cur[b] = shift + std::log(acc[b]) + NodeValue(p, node_bias, off + b);
    }
  }
}

/// Softmax over a contiguous row of unnormalized log-scores.
void SoftmaxRow(double* x, int d) {
  const double m = MaxOf(x, d);
  const double lse = m + std::log(simd::ExpSumRow(m, x, d));
  simd::ExpNormalize(x, lse, d);
}

/// Backward counterpart of ForwardMessages: fills ws->val_b with
/// log-space beta messages (ws->val_a must already hold the alphas, since
/// both share ws->local).
void BackwardMessages(const FlatChainPotentials& p, const double* node_bias,
                      ChainWorkspace* ws) {
  const int n = p.n;
  ws->val_b.resize(p.node_total);
  double* beta = ws->val_b.data();
  std::fill(beta + p.node_off[n - 1], beta + p.node_total, 0.0);
  for (int i = n - 1; i > 0; --i) {
    const int da = p.domains[i - 1];
    const int db = p.domains[i];
    const double* edge = p.EdgeBlock(i - 1);
    double* prev = beta + p.node_off[i - 1];
    const double* cur = beta + p.node_off[i];
    // v[b] = node(i, b) + beta(i, b); one shift covers every (a, b) term.
    ws->local.resize(db);
    double* v = ws->local.data();
    const size_t off = p.node_off[i];
    for (int b = 0; b < db; ++b) v[b] = NodeValue(p, node_bias, off + b) + cur[b];
    const double edge_mx =
        p.edge_max != nullptr ? p.edge_max[i - 1]
                              : MaxOf(edge, static_cast<size_t>(da) * db);
    const double shift = MaxOf(v, db) + edge_mx;
    for (int a = 0; a < da; ++a) {
      const double acc =
          simd::SumExpShifted(edge + static_cast<size_t>(a) * db, v, shift, db);
      prev[a] = shift + std::log(acc);
    }
  }
}

}  // namespace

double FlatLogPartition(const FlatChainPotentials& p, const double* node_bias,
                        ChainWorkspace* ws) {
  ForwardMessages(p, node_bias, ws);
  const double* last = ws->val_a.data() + p.node_off[p.n - 1];
  const int d = p.domains[p.n - 1];
  const double m = MaxOf(last, d);
  if (!std::isfinite(m)) return m;
  return m + std::log(simd::ExpSumRow(m, last, d));
}

void FlatMarginals(const FlatChainPotentials& p, const double* node_bias,
                   ChainWorkspace* ws, double* out) {
  const int n = p.n;
  ForwardMessages(p, node_bias, ws);
  BackwardMessages(p, node_bias, ws);
  const double* alpha = ws->val_a.data();
  const double* beta = ws->val_b.data();
  for (int i = 0; i < n; ++i) {
    const size_t off = p.node_off[i];
    const int d = p.domains[i];
    for (int a = 0; a < d; ++a) out[off + a] = alpha[off + a] + beta[off + a];
    SoftmaxRow(out + off, d);
  }
}

void FlatMaxMarginalLabels(const FlatChainPotentials& p,
                           const double* node_bias, ChainWorkspace* ws,
                           std::vector<int>* out) {
  const int n = p.n;
  ForwardMessages(p, node_bias, ws);
  BackwardMessages(p, node_bias, ws);
  const double* alpha = ws->val_a.data();
  const double* beta = ws->val_b.data();
  out->resize(n);
  for (int i = 0; i < n; ++i) {
    const size_t off = p.node_off[i];
    const int d = p.domains[i];
    // The softmax FlatMarginals applies per row is strictly increasing,
    // so the argmax of alpha + beta is the argmax of the marginals; ties
    // resolve to the smallest index either way.
    int best = 0;
    double best_v = alpha[off] + beta[off];
    for (int a = 1; a < d; ++a) {
      const double v = alpha[off + a] + beta[off + a];
      if (v > best_v) {
        best_v = v;
        best = a;
      }
    }
    (*out)[i] = best;
  }
}

void FlatViterbiBatch(const FlatChainTask* tasks, int count,
                      ChainWorkspace* ws) {
  for (int t = 0; t < count; ++t) {
    FlatViterbi(*tasks[t].potentials, tasks[t].node_bias, ws, tasks[t].labels);
  }
}

void FlatMarginalsBatch(const FlatChainTask* tasks, int count,
                        ChainWorkspace* ws) {
  for (int t = 0; t < count; ++t) {
    FlatMarginals(*tasks[t].potentials, tasks[t].node_bias, ws,
                  tasks[t].marginals);
  }
}

double FlatScore(const FlatChainPotentials& p, const double* node_bias,
                 const int* labels) {
  double score = 0.0;
  for (int i = 0; i < p.n; ++i) {
    score += NodeValue(p, node_bias, p.node_off[i] + labels[i]);
    if (i + 1 < p.n) {
      score += p.EdgeBlock(i)[static_cast<size_t>(labels[i]) * p.domains[i + 1] +
                              labels[i + 1]];
    }
  }
  return score;
}

void FlatGibbsSweep(const FlatChainPotentials& p, const double* node_bias,
                    ChainWorkspace* ws, std::vector<int>* state, Rng* rng) {
  const int n = p.n;
  assert(static_cast<int>(state->size()) == n);
  for (int i = 0; i < n; ++i) {
    const int d = p.domains[i];
    ws->local.resize(d);
    const size_t off = p.node_off[i];
    for (int a = 0; a < d; ++a) {
      double s = NodeValue(p, node_bias, off + a);
      if (i > 0) {
        s += p.EdgeBlock(i - 1)[static_cast<size_t>((*state)[i - 1]) * d + a];
      }
      if (i + 1 < n) {
        s += p.EdgeBlock(i)[static_cast<size_t>(a) * p.domains[i + 1] +
                            (*state)[i + 1]];
      }
      ws->local[a] = s;
    }
    SoftmaxInPlace(&ws->local);
    (*state)[i] = static_cast<int>(rng->Categorical(ws->local));
  }
}

void FlatSample(const FlatChainPotentials& p, const double* node_bias,
                ChainWorkspace* ws, Rng* rng, std::vector<int>* out) {
  const int n = p.n;
  ForwardMessages(p, node_bias, ws);
  const double* alpha = ws->val_a.data();
  out->resize(n);
  ws->local.assign(alpha + p.node_off[n - 1],
                   alpha + p.node_off[n - 1] + p.domains[n - 1]);
  SoftmaxInPlace(&ws->local);
  (*out)[n - 1] = static_cast<int>(rng->Categorical(ws->local));
  for (int i = n - 1; i > 0; --i) {
    const int da = p.domains[i - 1];
    const int db = p.domains[i];
    const double* prev = alpha + p.node_off[i - 1];
    const double* edge = p.EdgeBlock(i - 1);
    ws->local.resize(da);
    for (int a = 0; a < da; ++a) {
      ws->local[a] = prev[a] + edge[static_cast<size_t>(a) * db + (*out)[i]];
    }
    SoftmaxInPlace(&ws->local);
    (*out)[i - 1] = static_cast<int>(rng->Categorical(ws->local));
  }
}

}  // namespace c2mn
