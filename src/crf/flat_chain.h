#ifndef C2MN_CRF_FLAT_CHAIN_H_
#define C2MN_CRF_FLAT_CHAIN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace c2mn {

struct ChainPotentials;

/// \brief A reusable bump allocator for inference-sized scratch memory.
///
/// Decoding one p-sequence needs a handful of buffers whose sizes depend
/// on the sequence (flat potentials, messages, back-pointers).  Allocating
/// them from an arena that is Reset() between decodes means a long-lived
/// annotator performs zero heap allocations once its blocks have grown to
/// the working-set size.  Pointers returned by Alloc() stay valid until
/// the next Reset().
class InferenceArena {
 public:
  template <typename T>
  T* Alloc(size_t count) {
    static_assert(alignof(T) <= kAlign, "over-aligned type");
    const size_t bytes = (count * sizeof(T) + kAlign - 1) & ~(kAlign - 1);
    while (current_ < blocks_.size() &&
           blocks_[current_].used + bytes > blocks_[current_].capacity) {
      ++current_;
    }
    if (current_ == blocks_.size()) {
      const size_t capacity = bytes > kMinBlockBytes ? bytes : kMinBlockBytes;
      blocks_.push_back(Block{std::make_unique<char[]>(capacity), capacity, 0});
    }
    Block& block = blocks_[current_];
    char* p = block.data.get() + block.used;
    block.used += bytes;
    return reinterpret_cast<T*>(p);
  }

  /// Recycles every block; previously returned pointers become invalid.
  void Reset() {
    for (Block& block : blocks_) block.used = 0;
    current_ = 0;
  }

  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.capacity;
    return total;
  }

 private:
  static constexpr size_t kAlign = 16;
  static constexpr size_t kMinBlockBytes = size_t{1} << 16;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity;
    size_t used;
  };
  std::vector<Block> blocks_;
  size_t current_ = 0;
};

/// \brief Contiguous log-linear chain potentials: one flat node buffer and
/// one flat edge buffer with per-position offsets, replacing the nested
/// vector-of-vector layout of ChainPotentials on every hot path.
///
/// node values of position i live at node[node_off[i] .. node_off[i+1]);
/// the edge block coupling i and i+1 is row-major (a * domain(i+1) + b) at
/// edge[edge_off[i]].  With `tied_edges` every position shares one edge
/// block (edge_off[i] == 0), which is how the HMM baseline avoids n copies
/// of its transition matrix.  All arrays are arena-backed: the struct is a
/// trivially copyable view whose storage lives in an InferenceArena.
struct FlatChainPotentials {
  int n = 0;
  const int* domains = nullptr;      ///< [n]
  const size_t* node_off = nullptr;  ///< [n + 1]; node_off[n] == node_total.
  const size_t* edge_off = nullptr;  ///< [n - 1] (nullptr when n == 1).
  double* node = nullptr;
  double* edge = nullptr;
  /// Optional [n - 1] per-position edge-block maxima (PrecomputeEdgeMax).
  /// When set, the forward/backward passes use it for their max-shift
  /// instead of rescanning the d_a*d_b block on every call — worthwhile
  /// because one decode runs many marginal passes over fixed edges.
  const double* edge_max = nullptr;
  size_t node_total = 0;
  size_t edge_total = 0;

  int length() const { return n; }
  int domain(int i) const { return domains[i]; }
  double* NodeRow(int i) const { return node + node_off[i]; }
  double* EdgeBlock(int i) const { return edge + edge_off[i]; }

  /// Allocates an uninitialized chain of length `n` with the given
  /// per-position domain sizes.  `domains` must stay valid as long as the
  /// result (allocate it from the same arena).
  static FlatChainPotentials Build(int n, const int* domains, bool tied_edges,
                                   InferenceArena* arena);

  /// Flattens legacy nested potentials (must Validate()).
  static FlatChainPotentials FromNested(const ChainPotentials& nested,
                                        InferenceArena* arena);

  /// Fills edge_max from the current edge values (call after the blocks
  /// are fully written; re-call if they change).  Exactly the maxima the
  /// kernels would compute themselves, so results are unchanged.
  void PrecomputeEdgeMax(InferenceArena* arena);
};

/// \brief Reusable message/back-pointer buffers for the flat kernels.
/// Vectors grow to the largest chain seen and are never shrunk, so a
/// warmed-up workspace makes every kernel allocation-free.
struct ChainWorkspace {
  std::vector<double> val_a;   ///< Forward messages / Viterbi scores.
  std::vector<double> val_b;   ///< Backward messages.
  std::vector<int> back;       ///< Viterbi back-pointers.
  std::vector<double> local;   ///< Per-position scratch (max domain).
};

/// The flat inference kernels.  `node_bias`, when non-null, is an overlay
/// of node_total values added to the node potentials at every use site —
/// this is how ICM layers segmentation bonuses onto a chain without
/// cloning it (O(n·d) touched entries instead of an O(n·d²) deep copy).
/// All kernels are exact ports of the nested ChainModel algorithms: same
/// tie-breaking (smallest label index wins), log-space messages with a
/// single max-shift per position.

/// Max-product decoding into `out`.
void FlatViterbi(const FlatChainPotentials& p, const double* node_bias,
                 ChainWorkspace* ws, std::vector<int>* out);

/// Log of the partition function.
double FlatLogPartition(const FlatChainPotentials& p, const double* node_bias,
                        ChainWorkspace* ws);

/// Posterior node marginals, written to `out` (node_total values laid out
/// like the node buffer); each position's row sums to 1.
void FlatMarginals(const FlatChainPotentials& p, const double* node_bias,
                   ChainWorkspace* ws, double* out);

/// Per-position max-posterior labels: the argmax of every FlatMarginals
/// row, computed from the unnormalized alpha + beta sums (softmax is
/// monotone per row, so the labels are the same while the per-row exp/log
/// normalization is skipped entirely).  This is the decode-only fast path
/// for callers that never read the probabilities.
void FlatMaxMarginalLabels(const FlatChainPotentials& p,
                           const double* node_bias, ChainWorkspace* ws,
                           std::vector<int>* out);

/// Unnormalized log-score of a configuration.
double FlatScore(const FlatChainPotentials& p, const double* node_bias,
                 const int* labels);

/// \brief One unit of a cross-session decode batch: a chain (typically
/// arena-backed, one shared InferenceArena for the whole batch), an
/// optional node-bias overlay, and where its answer goes.
struct FlatChainTask {
  const FlatChainPotentials* potentials = nullptr;
  const double* node_bias = nullptr;  ///< Overlay, or nullptr.
  std::vector<int>* labels = nullptr;  ///< FlatViterbiBatch output.
  double* marginals = nullptr;  ///< FlatMarginalsBatch output (node_total).
};

/// Decodes `count` chains in one sweep over a single shared workspace, so
/// a shard draining N sessions touches one set of warm message buffers
/// instead of N cold per-session ones.  Results are exactly what `count`
/// FlatViterbi calls would produce (the kernels are deterministic and the
/// workspace carries no state across chains).
void FlatViterbiBatch(const FlatChainTask* tasks, int count,
                      ChainWorkspace* ws);

/// Batched FlatMarginals; same contract as FlatViterbiBatch.
void FlatMarginalsBatch(const FlatChainTask* tasks, int count,
                        ChainWorkspace* ws);

/// One systematic-scan Gibbs sweep.
void FlatGibbsSweep(const FlatChainPotentials& p, const double* node_bias,
                    ChainWorkspace* ws, std::vector<int>* state, Rng* rng);

/// Exact forward-filter backward-sample draw.
void FlatSample(const FlatChainPotentials& p, const double* node_bias,
                ChainWorkspace* ws, Rng* rng, std::vector<int>* out);

}  // namespace c2mn

#endif  // C2MN_CRF_FLAT_CHAIN_H_
