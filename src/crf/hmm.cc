#include "crf/hmm.h"

#include <cassert>
#include <cmath>

namespace c2mn {

Hmm::Hmm(int num_states, int num_observations, double laplace_smoothing)
    : num_states_(num_states),
      num_observations_(num_observations),
      laplace_(laplace_smoothing) {
  assert(num_states_ > 0 && num_observations_ > 0 && laplace_ >= 0.0);
  initial_counts_.assign(num_states_, 0.0);
  transition_counts_.assign(num_states_,
                            std::vector<double>(num_states_, 0.0));
  emission_counts_.assign(num_states_,
                          std::vector<double>(num_observations_, 0.0));
}

void Hmm::AddSequence(const std::vector<int>& states,
                      const std::vector<int>& observations) {
  assert(states.size() == observations.size());
  if (states.empty()) return;
  initial_counts_[states[0]] += 1.0;
  for (size_t i = 0; i < states.size(); ++i) {
    emission_counts_[states[i]][observations[i]] += 1.0;
    if (i + 1 < states.size()) {
      transition_counts_[states[i]][states[i + 1]] += 1.0;
    }
  }
  fitted_ = false;
}

void Hmm::AddEmissionPseudoCount(int state, int observation, double weight) {
  assert(state >= 0 && state < num_states_);
  assert(observation >= 0 && observation < num_observations_);
  assert(weight >= 0.0);
  emission_counts_[state][observation] += weight;
  fitted_ = false;
}

void Hmm::Fit() {
  auto normalize_log = [this](const std::vector<double>& counts) {
    std::vector<double> out(counts.size());
    double total = 0.0;
    for (double c : counts) total += c + laplace_;
    for (size_t i = 0; i < counts.size(); ++i) {
      out[i] = std::log((counts[i] + laplace_) / total);
    }
    return out;
  };
  log_initial_ = normalize_log(initial_counts_);
  log_transition_.clear();
  log_emission_.clear();
  for (int s = 0; s < num_states_; ++s) {
    log_transition_.push_back(normalize_log(transition_counts_[s]));
    log_emission_.push_back(normalize_log(emission_counts_[s]));
  }
  fitted_ = true;
}

std::vector<int> Hmm::Decode(const std::vector<int>& observations) const {
  assert(fitted_);
  if (observations.empty()) return {};
  ChainPotentials pots;
  const size_t n = observations.size();
  pots.node.resize(n);
  pots.edge.resize(n - 1);
  for (size_t i = 0; i < n; ++i) {
    pots.node[i].resize(num_states_);
    for (int s = 0; s < num_states_; ++s) {
      pots.node[i][s] = log_emission_[s][observations[i]] +
                        (i == 0 ? log_initial_[s] : 0.0);
    }
    if (i + 1 < n) {
      pots.edge[i] = log_transition_;
    }
  }
  return ChainModel(std::move(pots)).Viterbi();
}

}  // namespace c2mn
