#include "crf/hmm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "crf/flat_chain.h"

namespace c2mn {

Hmm::Hmm(int num_states, int num_observations, double laplace_smoothing)
    : num_states_(num_states),
      num_observations_(num_observations),
      laplace_(laplace_smoothing) {
  assert(num_states_ > 0 && num_observations_ > 0 && laplace_ >= 0.0);
  initial_counts_.assign(num_states_, 0.0);
  transition_counts_.assign(num_states_,
                            std::vector<double>(num_states_, 0.0));
  emission_counts_.assign(num_states_,
                          std::vector<double>(num_observations_, 0.0));
}

void Hmm::AddSequence(const std::vector<int>& states,
                      const std::vector<int>& observations) {
  assert(states.size() == observations.size());
  if (states.empty()) return;
  initial_counts_[states[0]] += 1.0;
  for (size_t i = 0; i < states.size(); ++i) {
    emission_counts_[states[i]][observations[i]] += 1.0;
    if (i + 1 < states.size()) {
      transition_counts_[states[i]][states[i + 1]] += 1.0;
    }
  }
  fitted_ = false;
}

void Hmm::AddEmissionPseudoCount(int state, int observation, double weight) {
  assert(state >= 0 && state < num_states_);
  assert(observation >= 0 && observation < num_observations_);
  assert(weight >= 0.0);
  emission_counts_[state][observation] += weight;
  fitted_ = false;
}

void Hmm::Fit() {
  auto normalize_log = [this](const std::vector<double>& counts) {
    std::vector<double> out(counts.size());
    double total = 0.0;
    for (double c : counts) total += c + laplace_;
    for (size_t i = 0; i < counts.size(); ++i) {
      out[i] = std::log((counts[i] + laplace_) / total);
    }
    return out;
  };
  log_initial_ = normalize_log(initial_counts_);
  log_transition_.clear();
  log_emission_.clear();
  for (int s = 0; s < num_states_; ++s) {
    log_transition_.push_back(normalize_log(transition_counts_[s]));
    log_emission_.push_back(normalize_log(emission_counts_[s]));
  }
  fitted_ = true;
}

std::vector<int> Hmm::Decode(const std::vector<int>& observations) const {
  assert(fitted_);
  if (observations.empty()) return {};
  // Flat chain with one tied edge block: the transition matrix is shared
  // by every position instead of being copied n - 1 times.
  const int n = static_cast<int>(observations.size());
  InferenceArena arena;
  int* domains = arena.Alloc<int>(n);
  std::fill(domains, domains + n, num_states_);
  FlatChainPotentials pots =
      FlatChainPotentials::Build(n, domains, /*tied_edges=*/true, &arena);
  for (int i = 0; i < n; ++i) {
    double* row = pots.NodeRow(i);
    for (int s = 0; s < num_states_; ++s) {
      row[s] = log_emission_[s][observations[i]] +
               (i == 0 ? log_initial_[s] : 0.0);
    }
  }
  if (n > 1) {
    double* edge = pots.EdgeBlock(0);
    for (int a = 0; a < num_states_; ++a) {
      std::copy(log_transition_[a].begin(), log_transition_[a].end(),
                edge + static_cast<size_t>(a) * num_states_);
    }
  }
  ChainWorkspace ws;
  std::vector<int> labels;
  FlatViterbi(pots, nullptr, &ws, &labels);
  return labels;
}

}  // namespace c2mn
