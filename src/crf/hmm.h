#ifndef C2MN_CRF_HMM_H_
#define C2MN_CRF_HMM_H_

#include <vector>

#include "crf/chain_model.h"

namespace c2mn {

/// \brief A discrete hidden Markov model with frequency-counted parameters
/// and Laplace smoothing.
///
/// This is the substrate of the HMM+DC baseline ("semantic regions are
/// hidden states and positioning records distributed to corresponding
/// grids are observations; parameters are estimated via frequency counting
/// and regions are inferred by Viterbi decoding") and of SAP's stay-segment
/// region labeling.
class Hmm {
 public:
  /// `num_states` hidden states, `num_observations` discrete observations.
  Hmm(int num_states, int num_observations, double laplace_smoothing = 1.0);

  int num_states() const { return num_states_; }
  int num_observations() const { return num_observations_; }

  /// Accumulates counts from one labeled sequence (parallel vectors of
  /// hidden states and observations).
  void AddSequence(const std::vector<int>& states,
                   const std::vector<int>& observations);

  /// Adds a weighted pseudo-count to one emission cell, for priors that
  /// back off sparse frequency counts (e.g. geometric overlap priors).
  void AddEmissionPseudoCount(int state, int observation, double weight);

  /// Normalizes counts into (log) probabilities.  Call once after all
  /// AddSequence() calls; further AddSequence() calls require Refit().
  void Fit();

  /// Viterbi decoding of the most likely hidden state sequence.
  std::vector<int> Decode(const std::vector<int>& observations) const;

  /// Log-probabilities (after Fit()).
  double LogInitial(int state) const { return log_initial_[state]; }
  double LogTransition(int from, int to) const {
    return log_transition_[from][to];
  }
  double LogEmission(int state, int obs) const {
    return log_emission_[state][obs];
  }

 private:
  int num_states_;
  int num_observations_;
  double laplace_;
  bool fitted_ = false;

  std::vector<double> initial_counts_;
  std::vector<std::vector<double>> transition_counts_;
  std::vector<std::vector<double>> emission_counts_;

  std::vector<double> log_initial_;
  std::vector<std::vector<double>> log_transition_;
  std::vector<std::vector<double>> log_emission_;
};

}  // namespace c2mn

#endif  // C2MN_CRF_HMM_H_
