#include "crf/lbfgs.h"

#include <cassert>
#include <cmath>

#include "common/math_utils.h"

namespace c2mn {

namespace {

/// Two-loop recursion: applies the inverse-Hessian approximation encoded
/// by the (s, y) pairs to `gradient`, returning the descent direction
/// (already negated).
std::vector<double> TwoLoopDirection(
    const std::deque<std::tuple<std::vector<double>, std::vector<double>,
                                double>>& pairs,
    const std::vector<double>& gradient) {
  std::vector<double> q = gradient;
  std::vector<double> alphas(pairs.size());
  for (size_t k = pairs.size(); k-- > 0;) {
    const auto& [s, y, rho] = pairs[k];
    alphas[k] = rho * Dot(s, q);
    Axpy(-alphas[k], y, &q);
  }
  // Initial Hessian scaling gamma = s.y / y.y of the newest pair.
  if (!pairs.empty()) {
    const auto& [s, y, rho] = pairs.back();
    (void)rho;
    const double yy = Dot(y, y);
    if (yy > 1e-18) {
      const double gamma = Dot(s, y) / yy;
      for (double& v : q) v *= gamma;
    }
  }
  for (size_t k = 0; k < pairs.size(); ++k) {
    const auto& [s, y, rho] = pairs[k];
    const double beta = rho * Dot(y, q);
    Axpy(alphas[k] - beta, s, &q);
  }
  for (double& v : q) v = -v;
  return q;
}

}  // namespace

LbfgsSolver::Summary LbfgsSolver::Minimize(const Objective& f,
                                           std::vector<double> x0) const {
  Summary summary;
  std::vector<double> x = std::move(x0);
  std::vector<double> grad(x.size(), 0.0);
  double fx = f(x, &grad);

  std::deque<std::tuple<std::vector<double>, std::vector<double>, double>>
      pairs;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (L2Norm(grad) <= options_.gradient_tolerance) {
      summary.converged = true;
      break;
    }
    std::vector<double> direction = TwoLoopDirection(pairs, grad);
    double directional = Dot(direction, grad);
    if (directional >= 0.0) {
      // Not a descent direction (stale curvature); fall back to steepest
      // descent.
      direction = grad;
      for (double& v : direction) v = -v;
      directional = Dot(direction, grad);
      pairs.clear();
    }

    // Backtracking Armijo line search.
    double step = options_.initial_step;
    std::vector<double> x_new(x.size());
    std::vector<double> grad_new(x.size(), 0.0);
    double fx_new = fx;
    bool accepted = false;
    for (int ls = 0; ls < options_.max_line_search_steps; ++ls) {
      for (size_t i = 0; i < x.size(); ++i) {
        x_new[i] = x[i] + step * direction[i];
      }
      fx_new = f(x_new, &grad_new);
      if (fx_new <= fx + options_.armijo_c1 * step * directional) {
        accepted = true;
        break;
      }
      step *= options_.backtrack_factor;
    }
    if (accepted && step == options_.initial_step) {
      // The full step was accepted outright; expand while the objective
      // keeps improving.  Without this, a badly scaled inverse-Hessian
      // seed (tiny s·y / y·y after a steep first step) can stall progress
      // at microscopic but always-accepted steps.
      std::vector<double> x_try(x.size());
      std::vector<double> grad_try(x.size(), 0.0);
      for (int ex = 0; ex < options_.max_line_search_steps; ++ex) {
        const double bigger = step * 2.0;
        for (size_t i = 0; i < x.size(); ++i) {
          x_try[i] = x[i] + bigger * direction[i];
        }
        const double fx_try = f(x_try, &grad_try);
        if (fx_try >= fx_new) break;
        step = bigger;
        x_new = x_try;
        grad_new = grad_try;
        fx_new = fx_try;
      }
    }
    if (!accepted) {
      // The quasi-Newton direction failed to make progress (stale
      // curvature in a narrow valley): drop the history and retry the
      // iteration with steepest descent before giving up.
      if (!pairs.empty()) {
        pairs.clear();
        summary.iterations = iter + 1;
        continue;
      }
      break;
    }

    // Update curvature history.
    std::vector<double> s(x.size()), y(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      s[i] = x_new[i] - x[i];
      y[i] = grad_new[i] - grad[i];
    }
    const double sy = Dot(s, y);
    if (sy > 1e-12) {
      pairs.emplace_back(std::move(s), std::move(y), 1.0 / sy);
      if (static_cast<int>(pairs.size()) > options_.history) {
        pairs.pop_front();
      }
    }
    x = std::move(x_new);
    grad = grad_new;
    fx = fx_new;
    summary.iterations = iter + 1;
  }
  summary.solution = std::move(x);
  summary.objective = fx;
  return summary;
}

LbfgsStepper::LbfgsStepper(size_t dimension, Options options)
    : dimension_(dimension), options_(options) {}

void LbfgsStepper::Reset() {
  pairs_.clear();
  has_prev_ = false;
}

std::vector<double> LbfgsStepper::Step(const std::vector<double>& weights,
                                       const std::vector<double>& gradient) {
  assert(weights.size() == dimension_ && gradient.size() == dimension_);
  // Record the curvature pair produced by the previous step.
  if (has_prev_) {
    Pair pair;
    pair.s.resize(dimension_);
    pair.y.resize(dimension_);
    for (size_t i = 0; i < dimension_; ++i) {
      pair.s[i] = weights[i] - prev_weights_[i];
      pair.y[i] = gradient[i] - prev_gradient_[i];
    }
    const double sy = Dot(pair.s, pair.y);
    if (sy > 1e-12) {
      pair.rho = 1.0 / sy;
      pairs_.push_back(std::move(pair));
      if (static_cast<int>(pairs_.size()) > options_.history) {
        pairs_.pop_front();
      }
    }
  }

  std::deque<std::tuple<std::vector<double>, std::vector<double>, double>>
      view;
  for (const Pair& p : pairs_) view.emplace_back(p.s, p.y, p.rho);
  std::vector<double> direction = TwoLoopDirection(view, gradient);
  if (Dot(direction, gradient) >= 0.0) {
    direction = gradient;
    for (double& v : direction) v = -v;
    pairs_.clear();
  }
  if (pairs_.empty()) {
    // First (or reset) step: plain scaled gradient descent.
    for (double& v : direction) v *= options_.initial_step;
  }
  // Trust region: clip the step norm.
  const double norm = L2Norm(direction);
  if (norm > options_.max_step_norm) {
    const double scale = options_.max_step_norm / norm;
    for (double& v : direction) v *= scale;
  }

  prev_weights_ = weights;
  prev_gradient_ = gradient;
  has_prev_ = true;

  std::vector<double> next(dimension_);
  for (size_t i = 0; i < dimension_; ++i) next[i] = weights[i] + direction[i];
  return next;
}

}  // namespace c2mn
