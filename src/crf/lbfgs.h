#ifndef C2MN_CRF_LBFGS_H_
#define C2MN_CRF_LBFGS_H_

#include <deque>
#include <functional>
#include <vector>

namespace c2mn {

/// \brief Limited-memory BFGS (Liu & Nocedal [16]) with two-loop
/// recursion, used to search the optimal C2MN weights.
///
/// Two entry points are provided:
///  - Minimize(): the classic batch driver with backtracking line search,
///    for deterministic objectives (also exercised by the unit tests on
///    quadratic and Rosenbrock functions);
///  - the incremental LbfgsStepper, which performs one quasi-Newton step
///    per call and is what Algorithm 1 uses (line 17: "run L-BFGS with
///    PL(w), ∇PL(w) to get new weights w̄"), where the objective value and
///    gradient come from MCMC estimates.
class LbfgsSolver {
 public:
  struct Options {
    int max_iterations = 100;
    int history = 7;            ///< Number of (s, y) pairs kept.
    double gradient_tolerance = 1e-6;
    double initial_step = 1.0;
    double backtrack_factor = 0.5;
    double armijo_c1 = 1e-4;
    int max_line_search_steps = 30;
  };

  struct Summary {
    std::vector<double> solution;
    double objective = 0.0;
    int iterations = 0;
    bool converged = false;
  };

  /// The objective: fills `*gradient` (same size as x) and returns f(x).
  using Objective =
      std::function<double(const std::vector<double>&, std::vector<double>*)>;

  LbfgsSolver() : options_(Options()) {}
  explicit LbfgsSolver(Options options) : options_(options) {}

  Summary Minimize(const Objective& f, std::vector<double> x0) const;

 private:
  Options options_;
};

/// \brief Incremental L-BFGS: feed one (gradient, value) estimate per
/// outer iteration and receive the next iterate.
///
/// Because the estimates are stochastic (MCMC), no line search is run;
/// instead the step is clipped to `max_step_norm` and curvature pairs with
/// non-positive y·s are rejected, which keeps the inverse-Hessian
/// approximation positive definite.
class LbfgsStepper {
 public:
  struct Options {
    int history = 7;
    double initial_step = 0.1;   ///< Scale of the very first (gradient) step.
    double max_step_norm = 0.5;  ///< Trust region on each update.
  };

  explicit LbfgsStepper(size_t dimension) : LbfgsStepper(dimension, Options()) {}
  LbfgsStepper(size_t dimension, Options options);

  /// Computes the next iterate from the current weights and gradient.
  std::vector<double> Step(const std::vector<double>& weights,
                           const std::vector<double>& gradient);

  /// Forgets all curvature history (used when the alternation switches the
  /// fixed variable and the effective objective changes).
  void Reset();

 private:
  struct Pair {
    std::vector<double> s;
    std::vector<double> y;
    double rho;
  };

  size_t dimension_;
  Options options_;
  std::deque<Pair> pairs_;
  std::vector<double> prev_weights_;
  std::vector<double> prev_gradient_;
  bool has_prev_ = false;
};

}  // namespace c2mn

#endif  // C2MN_CRF_LBFGS_H_
