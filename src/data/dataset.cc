#include "data/dataset.h"

#include <algorithm>
#include <cassert>

namespace c2mn {

size_t Dataset::NumRecords() const {
  size_t n = 0;
  for (const LabeledSequence& seq : sequences) n += seq.size();
  return n;
}

TrainTestSplit SplitDataset(const Dataset& dataset, double train_fraction,
                            Rng* rng) {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<const LabeledSequence*> all;
  all.reserve(dataset.sequences.size());
  for (const LabeledSequence& seq : dataset.sequences) all.push_back(&seq);
  rng->Shuffle(&all);
  const size_t n_train = static_cast<size_t>(
      train_fraction * static_cast<double>(all.size()) + 0.5);
  TrainTestSplit split;
  split.train.assign(all.begin(), all.begin() + n_train);
  split.test.assign(all.begin() + n_train, all.end());
  return split;
}

std::vector<TrainTestSplit> CrossValidationFolds(const Dataset& dataset,
                                                 int folds, Rng* rng) {
  assert(folds >= 2);
  std::vector<const LabeledSequence*> all;
  for (const LabeledSequence& seq : dataset.sequences) all.push_back(&seq);
  rng->Shuffle(&all);
  std::vector<TrainTestSplit> out(folds);
  for (int f = 0; f < folds; ++f) {
    for (size_t i = 0; i < all.size(); ++i) {
      if (static_cast<int>(i % folds) == f) {
        out[f].test.push_back(all[i]);
      } else {
        out[f].train.push_back(all[i]);
      }
    }
  }
  return out;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_sequences = dataset.NumSequences();
  stats.num_records = dataset.NumRecords();
  if (stats.num_sequences == 0) return stats;
  double total_duration = 0.0;
  double total_rate = 0.0;
  for (const LabeledSequence& seq : dataset.sequences) {
    total_duration += seq.sequence.Duration();
    total_rate += seq.sequence.SamplingRate();
  }
  const double ns = static_cast<double>(stats.num_sequences);
  stats.avg_records_per_sequence =
      static_cast<double>(stats.num_records) / ns;
  stats.avg_duration_seconds = total_duration / ns;
  stats.avg_sampling_rate_hz = total_rate / ns;
  return stats;
}

}  // namespace c2mn
