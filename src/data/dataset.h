#ifndef C2MN_DATA_DATASET_H_
#define C2MN_DATA_DATASET_H_

#include <vector>

#include "common/rng.h"
#include "data/labels.h"

namespace c2mn {

/// \brief A collection of labeled p-sequences sharing one floorplan.
struct Dataset {
  std::vector<LabeledSequence> sequences;

  size_t NumSequences() const { return sequences.size(); }
  size_t NumRecords() const;
};

/// \brief Train/test partition of a dataset (sequence granularity).
struct TrainTestSplit {
  std::vector<const LabeledSequence*> train;
  std::vector<const LabeledSequence*> test;
};

/// Randomly assigns `train_fraction` of the sequences to the training
/// side.  Used for the training-fraction sweeps (Figs. 5, 6, 10).
TrainTestSplit SplitDataset(const Dataset& dataset, double train_fraction,
                            Rng* rng);

/// K-fold cross-validation folds; fold i's test set is the i-th shard.
std::vector<TrainTestSplit> CrossValidationFolds(const Dataset& dataset,
                                                 int folds, Rng* rng);

/// \brief Summary statistics in the shape of Table III of the paper.
struct DatasetStats {
  size_t num_sequences = 0;
  size_t num_records = 0;
  double avg_records_per_sequence = 0.0;
  double avg_duration_seconds = 0.0;
  double avg_sampling_rate_hz = 0.0;
};

DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace c2mn

#endif  // C2MN_DATA_DATASET_H_
