#include "data/io.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "obs/metrics_registry.h"

namespace c2mn {
namespace io {

namespace {

/// Counts a rejected input row/file by reason in the process-wide
/// registry.  Error path only, so the registry lookup cost is fine.
void CountRejected(const char* reason) {
  obs::MetricsRegistry::Global()
      .GetCounter("c2mn_io_records_rejected_total",
                  "CSV rows or files rejected by the readers, by reason",
                  {{"reason", reason}})
      ->Increment();
}

/// Splits one CSV line on commas (no quoting: the formats are numeric
/// plus fixed enum tokens).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  // Non-finite values — overflow clamped to ±HUGE_VAL, or literal
  // "inf"/"nan" tokens — would sail through every downstream range and
  // ordering check (NaN compares false against everything), so reject
  // them here.  Underflow-to-subnormal is finite and left alone.
  if (!std::isfinite(*out)) return false;
  return end != nullptr && *end == '\0' && !s.empty();
}

bool ParseInt(const std::string& s, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtoll(s.c_str(), &end, 10);
  // Overflowing ids clamp to INT64_MIN/INT64_MAX; reject instead.
  if (errno == ERANGE) return false;
  return end != nullptr && *end == '\0' && !s.empty();
}

/// snprintf-style write with an overflow-safe fallback: %f of an
/// extreme-magnitude (but valid, finite) timestamp can exceed any fixed
/// buffer, and a truncated row would merge with its successor — a silent
/// corruption the readers could not detect.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void WriteFormatted(std::ostream* out, const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  va_list retry;
  va_copy(retry, args);
  const int len = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (len >= 0 && len < static_cast<int>(sizeof(buf))) {
    out->write(buf, len);
  } else if (len >= 0) {
    std::vector<char> big(static_cast<size_t>(len) + 1);
    std::vsnprintf(big.data(), big.size(), fmt, retry);
    out->write(big.data(), len);
  }
  va_end(retry);
}

}  // namespace

void WriteRecordsCsv(const Dataset& dataset, std::ostream* out) {
  *out << "object_id,t,x,y,floor\n";
  for (const LabeledSequence& ls : dataset.sequences) {
    for (const PositioningRecord& rec : ls.sequence.records) {
      // Microsecond timestamp precision: AttachLabelsCsv rejoins labels to
      // records by timestamp, so the written precision must out-resolve
      // its match tolerance or sub-millisecond streams fail to round-trip.
      WriteFormatted(out, "%" PRId64 ",%.6f,%.3f,%.3f,%d\n",
                     ls.sequence.object_id, rec.timestamp, rec.location.xy.x,
                     rec.location.xy.y, rec.location.floor);
    }
  }
}

void WriteLabelsCsv(const Dataset& dataset, std::ostream* out) {
  *out << "object_id,t,region,event\n";
  for (const LabeledSequence& ls : dataset.sequences) {
    for (size_t i = 0; i < ls.size(); ++i) {
      WriteFormatted(out, "%" PRId64 ",%.6f,%d,%s\n", ls.sequence.object_id,
                     ls.sequence[i].timestamp, ls.labels.regions[i],
                     MobilityEventName(ls.labels.events[i]));
    }
  }
}

void WriteMSemanticsCsv(const std::vector<int64_t>& object_ids,
                        const std::vector<MSemanticsSequence>& semantics,
                        std::ostream* out) {
  *out << "object_id,region,t_start,t_end,event,support\n";
  for (size_t s = 0; s < semantics.size(); ++s) {
    for (const MSemantics& ms : semantics[s]) {
      // Same timestamp precision as the record/label writers: semantics
      // boundaries must stay alignable with the records they came from.
      WriteFormatted(out, "%" PRId64 ",%d,%.6f,%.6f,%s,%d\n", object_ids[s],
                     ms.region, ms.t_start, ms.t_end,
                     MobilityEventName(ms.event), ms.support);
    }
  }
}

Result<Dataset> ReadRecordsCsv(std::istream* in) {
  Dataset dataset;
  std::string line;
  if (!std::getline(*in, line)) {
    CountRejected("missing_header");
    return Status::InvalidArgument("records csv: missing header");
  }
  int line_no = 1;
  LabeledSequence* current = nullptr;
  std::unordered_set<int64_t> seen_objects;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsv(line);
    int64_t object_id, floor;
    double t, x, y;
    if (fields.size() != 5 || !ParseInt(fields[0], &object_id) ||
        !ParseDouble(fields[1], &t) || !ParseDouble(fields[2], &x) ||
        !ParseDouble(fields[3], &y) || !ParseInt(fields[4], &floor)) {
      CountRejected("malformed_line");
      return Status::InvalidArgument("records csv: malformed line " +
                                     std::to_string(line_no));
    }
    if (current == nullptr || current->sequence.object_id != object_id) {
      // Each object's records must form one contiguous block: a
      // re-appearing id would silently open a second sequence with the
      // same identity, corrupting per-object sessions downstream.
      if (!seen_objects.insert(object_id).second) {
        CountRejected("noncontiguous_object");
        return Status::InvalidArgument(
            "records csv: object " + std::to_string(object_id) +
            " re-appears in a non-contiguous block at line " +
            std::to_string(line_no));
      }
      dataset.sequences.emplace_back();
      current = &dataset.sequences.back();
      current->sequence.object_id = object_id;
    }
    if (!current->sequence.empty() &&
        t < current->sequence.records.back().timestamp) {
      CountRejected("out_of_order_timestamp");
      return Status::InvalidArgument(
          "records csv: timestamps out of order at line " +
          std::to_string(line_no));
    }
    current->sequence.records.push_back(
        {IndoorPoint(x, y, static_cast<FloorId>(floor)), t});
    current->labels.regions.push_back(kInvalidId);
    current->labels.events.push_back(MobilityEvent::kPass);
  }
  return dataset;
}

Status AttachLabelsCsv(std::istream* in, Dataset* dataset) {
  std::string line;
  if (!std::getline(*in, line)) {
    CountRejected("missing_header");
    return Status::InvalidArgument("labels csv: missing header");
  }
  size_t seq_idx = 0;
  size_t rec_idx = 0;
  int line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsv(line);
    int64_t object_id, region;
    double t;
    if (fields.size() != 4 || !ParseInt(fields[0], &object_id) ||
        !ParseDouble(fields[1], &t) || !ParseInt(fields[2], &region) ||
        (fields[3] != "stay" && fields[3] != "pass")) {
      CountRejected("malformed_line");
      return Status::InvalidArgument("labels csv: malformed line " +
                                     std::to_string(line_no));
    }
    if (seq_idx >= dataset->sequences.size()) {
      CountRejected("label_count_mismatch");
      return Status::InvalidArgument("labels csv: more labels than records");
    }
    LabeledSequence& ls = dataset->sequences[seq_idx];
    // The tolerance matches WriteRecordsCsv/WriteLabelsCsv's %.6f
    // precision (round-trip error <= 0.5e-6): sub-millisecond timestamps
    // must rejoin the record they were written for, not a neighbor.
    if (ls.sequence.object_id != object_id ||
        std::abs(ls.sequence[rec_idx].timestamp - t) > 1e-6) {
      CountRejected("label_record_mismatch");
      return Status::InvalidArgument(
          "labels csv: row does not match record order at line " +
          std::to_string(line_no));
    }
    ls.labels.regions[rec_idx] = static_cast<RegionId>(region);
    ls.labels.events[rec_idx] =
        fields[3] == "stay" ? MobilityEvent::kStay : MobilityEvent::kPass;
    if (++rec_idx == ls.size()) {
      rec_idx = 0;
      ++seq_idx;
    }
  }
  if (seq_idx != dataset->sequences.size() || rec_idx != 0) {
    CountRejected("label_count_mismatch");
    return Status::InvalidArgument("labels csv: fewer labels than records");
  }
  return Status::OK();
}

std::string ToString(const Dataset& dataset) {
  std::ostringstream out;
  WriteRecordsCsv(dataset, &out);
  return out.str();
}

}  // namespace io
}  // namespace c2mn
