#include "data/io.h"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace c2mn {
namespace io {

namespace {

/// Splits one CSV line on commas (no quoting: the formats are numeric
/// plus fixed enum tokens).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool ParseInt(const std::string& s, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !s.empty();
}

}  // namespace

void WriteRecordsCsv(const Dataset& dataset, std::ostream* out) {
  *out << "object_id,t,x,y,floor\n";
  char buf[160];
  for (const LabeledSequence& ls : dataset.sequences) {
    for (const PositioningRecord& rec : ls.sequence.records) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 ",%.3f,%.3f,%.3f,%d\n",
                    ls.sequence.object_id, rec.timestamp, rec.location.xy.x,
                    rec.location.xy.y, rec.location.floor);
      *out << buf;
    }
  }
}

void WriteLabelsCsv(const Dataset& dataset, std::ostream* out) {
  *out << "object_id,t,region,event\n";
  char buf[120];
  for (const LabeledSequence& ls : dataset.sequences) {
    for (size_t i = 0; i < ls.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 ",%.3f,%d,%s\n",
                    ls.sequence.object_id, ls.sequence[i].timestamp,
                    ls.labels.regions[i],
                    MobilityEventName(ls.labels.events[i]));
      *out << buf;
    }
  }
}

void WriteMSemanticsCsv(const std::vector<int64_t>& object_ids,
                        const std::vector<MSemanticsSequence>& semantics,
                        std::ostream* out) {
  *out << "object_id,region,t_start,t_end,event,support\n";
  char buf[160];
  for (size_t s = 0; s < semantics.size(); ++s) {
    for (const MSemantics& ms : semantics[s]) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 ",%d,%.3f,%.3f,%s,%d\n",
                    object_ids[s], ms.region, ms.t_start, ms.t_end,
                    MobilityEventName(ms.event), ms.support);
      *out << buf;
    }
  }
}

Result<Dataset> ReadRecordsCsv(std::istream* in) {
  Dataset dataset;
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("records csv: missing header");
  }
  int line_no = 1;
  LabeledSequence* current = nullptr;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsv(line);
    int64_t object_id, floor;
    double t, x, y;
    if (fields.size() != 5 || !ParseInt(fields[0], &object_id) ||
        !ParseDouble(fields[1], &t) || !ParseDouble(fields[2], &x) ||
        !ParseDouble(fields[3], &y) || !ParseInt(fields[4], &floor)) {
      return Status::InvalidArgument("records csv: malformed line " +
                                     std::to_string(line_no));
    }
    if (current == nullptr || current->sequence.object_id != object_id) {
      dataset.sequences.emplace_back();
      current = &dataset.sequences.back();
      current->sequence.object_id = object_id;
    }
    if (!current->sequence.empty() &&
        t < current->sequence.records.back().timestamp) {
      return Status::InvalidArgument(
          "records csv: timestamps out of order at line " +
          std::to_string(line_no));
    }
    current->sequence.records.push_back(
        {IndoorPoint(x, y, static_cast<FloorId>(floor)), t});
    current->labels.regions.push_back(kInvalidId);
    current->labels.events.push_back(MobilityEvent::kPass);
  }
  return dataset;
}

Status AttachLabelsCsv(std::istream* in, Dataset* dataset) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("labels csv: missing header");
  }
  size_t seq_idx = 0;
  size_t rec_idx = 0;
  int line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsv(line);
    int64_t object_id, region;
    double t;
    if (fields.size() != 4 || !ParseInt(fields[0], &object_id) ||
        !ParseDouble(fields[1], &t) || !ParseInt(fields[2], &region) ||
        (fields[3] != "stay" && fields[3] != "pass")) {
      return Status::InvalidArgument("labels csv: malformed line " +
                                     std::to_string(line_no));
    }
    if (seq_idx >= dataset->sequences.size()) {
      return Status::InvalidArgument("labels csv: more labels than records");
    }
    LabeledSequence& ls = dataset->sequences[seq_idx];
    if (ls.sequence.object_id != object_id ||
        std::abs(ls.sequence[rec_idx].timestamp - t) > 1e-3) {
      return Status::InvalidArgument(
          "labels csv: row does not match record order at line " +
          std::to_string(line_no));
    }
    ls.labels.regions[rec_idx] = static_cast<RegionId>(region);
    ls.labels.events[rec_idx] =
        fields[3] == "stay" ? MobilityEvent::kStay : MobilityEvent::kPass;
    if (++rec_idx == ls.size()) {
      rec_idx = 0;
      ++seq_idx;
    }
  }
  if (seq_idx != dataset->sequences.size() || rec_idx != 0) {
    return Status::InvalidArgument("labels csv: fewer labels than records");
  }
  return Status::OK();
}

std::string ToString(const Dataset& dataset) {
  std::ostringstream out;
  WriteRecordsCsv(dataset, &out);
  return out.str();
}

}  // namespace io
}  // namespace c2mn
