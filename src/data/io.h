#ifndef C2MN_DATA_IO_H_
#define C2MN_DATA_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "data/msemantics.h"

namespace c2mn {

/// \brief CSV interchange for positioning data, labels, and m-semantics,
/// so datasets can leave and re-enter the library (e.g. to annotate logs
/// produced by a real positioning system, or to hand results to a
/// downstream analytics stack).
///
/// Formats (one header line each):
///  - records:     object_id,t,x,y,floor
///  - labels:      object_id,t,region,event        (event: stay|pass)
///  - m-semantics: object_id,region,t_start,t_end,event,support
///
/// Sequences are contiguous runs of one object_id; rows must be
/// time-ordered within an object.
namespace io {

/// Writes the positioning records of a dataset.
void WriteRecordsCsv(const Dataset& dataset, std::ostream* out);

/// Writes the labels of a dataset (aligned with WriteRecordsCsv order).
void WriteLabelsCsv(const Dataset& dataset, std::ostream* out);

/// Writes one corpus of m-semantics.
void WriteMSemanticsCsv(const std::vector<int64_t>& object_ids,
                        const std::vector<MSemanticsSequence>& semantics,
                        std::ostream* out);

/// Parses a records CSV into per-object sequences (labels default to
/// invalid/pass).  Fails on malformed rows or time-order violations.
Result<Dataset> ReadRecordsCsv(std::istream* in);

/// Parses a labels CSV and attaches the labels to `dataset` (must match
/// record counts and timestamps).
Status AttachLabelsCsv(std::istream* in, Dataset* dataset);

/// Round-trip convenience used by tests.
std::string ToString(const Dataset& dataset);

}  // namespace io
}  // namespace c2mn

#endif  // C2MN_DATA_IO_H_
