#ifndef C2MN_DATA_LABELS_H_
#define C2MN_DATA_LABELS_H_

#include <cassert>
#include <vector>

#include "data/records.h"

namespace c2mn {

/// \brief The two generic indoor mobility events of the paper.  A stay is
/// a purposeful visit to a semantic region; a pass merely crosses it.
enum class MobilityEvent : uint8_t {
  kStay = 0,
  kPass = 1,
};

/// The indicator I(e) used by features f_ec and f_ss: 1 for pass, else 0.
inline int PassIndicator(MobilityEvent e) {
  return e == MobilityEvent::kPass ? 1 : 0;
}

inline const char* MobilityEventName(MobilityEvent e) {
  return e == MobilityEvent::kStay ? "stay" : "pass";
}

/// \brief Per-record region and event labels for one p-sequence; the
/// target variables R and E of the C2MN.
struct LabelSequence {
  std::vector<RegionId> regions;
  std::vector<MobilityEvent> events;

  LabelSequence() = default;
  explicit LabelSequence(size_t n)
      : regions(n, kInvalidId), events(n, MobilityEvent::kPass) {}

  size_t size() const { return regions.size(); }
  bool Consistent() const { return regions.size() == events.size(); }
};

/// \brief A p-sequence together with its ground-truth (or predicted)
/// labels; the unit of training data for supervised learning.
struct LabeledSequence {
  PSequence sequence;
  LabelSequence labels;

  size_t size() const { return sequence.size(); }
  bool Consistent() const {
    return labels.Consistent() && labels.size() == sequence.size();
  }
};

}  // namespace c2mn

#endif  // C2MN_DATA_LABELS_H_
