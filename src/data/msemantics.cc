#include "data/msemantics.h"

#include <cassert>

namespace c2mn {

MSemanticsSequence MergeLabels(const PSequence& sequence,
                               const LabelSequence& labels) {
  assert(labels.Consistent() && labels.size() == sequence.size());
  MSemanticsSequence out;
  const size_t n = sequence.size();
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && labels.regions[j + 1] == labels.regions[i] &&
           labels.events[j + 1] == labels.events[i]) {
      ++j;
    }
    MSemantics ms;
    ms.region = labels.regions[i];
    ms.event = labels.events[i];
    ms.t_start = sequence[i].timestamp;
    ms.t_end = sequence[j].timestamp;
    ms.support = static_cast<int>(j - i + 1);
    out.push_back(ms);
    i = j + 1;
  }
  return out;
}

bool IsValidMSemanticsSequence(const MSemanticsSequence& ms,
                               const PSequence& sequence) {
  if (sequence.empty()) return ms.empty();
  const double t_lo = sequence.records.front().timestamp;
  const double t_hi = sequence.records.back().timestamp;
  for (size_t i = 0; i < ms.size(); ++i) {
    if (ms[i].t_start > ms[i].t_end) return false;
    if (ms[i].t_start < t_lo || ms[i].t_end > t_hi) return false;
    if (ms[i].support <= 0) return false;
    if (i > 0) {
      if (ms[i].t_start <= ms[i - 1].t_end) return false;  // Disjoint+ordered.
      if (ms[i].region == ms[i - 1].region &&
          ms[i].event == ms[i - 1].event) {
        return false;  // Should have been merged.
      }
    }
  }
  return true;
}

}  // namespace c2mn
