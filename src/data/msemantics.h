#ifndef C2MN_DATA_MSEMANTICS_H_
#define C2MN_DATA_MSEMANTICS_H_

#include <vector>

#include "data/labels.h"

namespace c2mn {

/// \brief One mobility semantics ms = (region, time period, event)
/// (Definition 2): the object exhibited `event` at semantic region
/// `region` during [t_start, t_end].
struct MSemantics {
  RegionId region = kInvalidId;
  double t_start = 0.0;
  double t_end = 0.0;
  MobilityEvent event = MobilityEvent::kPass;
  /// Number of positioning records merged into this m-semantics.
  int support = 0;

  double DurationSeconds() const { return t_end - t_start; }
};

/// An object's m-semantics sequence (Definition 3).
using MSemanticsSequence = std::vector<MSemantics>;

/// \brief The merge half of the paper's label-and-merge method (Fig. 2):
/// consecutive records with identical (region, event) labels collapse into
/// one m-semantics spanning their time range.
MSemanticsSequence MergeLabels(const PSequence& sequence,
                               const LabelSequence& labels);

/// \brief Checks Definition 3's invariants: time-ordered, pairwise
/// disjoint periods, all within the sequence span, and no two adjacent
/// entries share both region and event (otherwise they should have merged).
bool IsValidMSemanticsSequence(const MSemanticsSequence& ms,
                               const PSequence& sequence);

}  // namespace c2mn

#endif  // C2MN_DATA_MSEMANTICS_H_
