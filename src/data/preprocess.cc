#include "data/preprocess.h"

#include <cassert>

namespace c2mn {

std::vector<PSequence> SplitByGap(const PSequence& sequence,
                                  double max_gap_seconds) {
  std::vector<PSequence> out;
  PSequence current;
  current.object_id = sequence.object_id;
  for (const PositioningRecord& rec : sequence.records) {
    if (!current.empty() &&
        rec.timestamp - current.records.back().timestamp > max_gap_seconds) {
      out.push_back(std::move(current));
      current = PSequence{};
      current.object_id = sequence.object_id;
    }
    current.records.push_back(rec);
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::vector<LabeledSequence> SplitByGap(const LabeledSequence& sequence,
                                        double max_gap_seconds) {
  assert(sequence.Consistent());
  std::vector<LabeledSequence> out;
  LabeledSequence current;
  current.sequence.object_id = sequence.sequence.object_id;
  for (size_t i = 0; i < sequence.size(); ++i) {
    const PositioningRecord& rec = sequence.sequence[i];
    if (!current.sequence.empty() &&
        rec.timestamp - current.sequence.records.back().timestamp >
            max_gap_seconds) {
      out.push_back(std::move(current));
      current = LabeledSequence{};
      current.sequence.object_id = sequence.sequence.object_id;
    }
    current.sequence.records.push_back(rec);
    current.labels.regions.push_back(sequence.labels.regions[i]);
    current.labels.events.push_back(sequence.labels.events[i]);
  }
  if (!current.sequence.empty()) out.push_back(std::move(current));
  return out;
}

std::vector<LabeledSequence> Preprocess(
    const std::vector<LabeledSequence>& input, const PreprocessOptions& opts) {
  std::vector<LabeledSequence> out;
  for (const LabeledSequence& seq : input) {
    for (LabeledSequence& piece : SplitByGap(seq, opts.max_gap_seconds)) {
      if (piece.sequence.Duration() >= opts.min_duration_seconds) {
        out.push_back(std::move(piece));
      }
    }
  }
  return out;
}

}  // namespace c2mn
