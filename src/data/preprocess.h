#ifndef C2MN_DATA_PREPROCESS_H_
#define C2MN_DATA_PREPROCESS_H_

#include <vector>

#include "data/labels.h"
#include "data/records.h"

namespace c2mn {

/// \brief Preprocessing thresholds of Section V-B1 of the paper.
struct PreprocessOptions {
  /// η: a gap of more than this many seconds splits a p-sequence (the
  /// device presumably left the venue).  Paper value: 3 minutes.
  double max_gap_seconds = 180.0;
  /// ψ: sequences shorter than this many seconds are dropped.
  /// Paper value: 30 minutes.
  double min_duration_seconds = 1800.0;
};

/// Splits a p-sequence wherever consecutive records are more than
/// `max_gap_seconds` apart.
std::vector<PSequence> SplitByGap(const PSequence& sequence,
                                  double max_gap_seconds);

/// Labeled version of SplitByGap: labels are split in lockstep.
std::vector<LabeledSequence> SplitByGap(const LabeledSequence& sequence,
                                        double max_gap_seconds);

/// Applies split-then-filter preprocessing to a collection of labeled
/// sequences, dropping results shorter than `min_duration_seconds`.
std::vector<LabeledSequence> Preprocess(
    const std::vector<LabeledSequence>& input, const PreprocessOptions& opts);

}  // namespace c2mn

#endif  // C2MN_DATA_PREPROCESS_H_
