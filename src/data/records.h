#ifndef C2MN_DATA_RECORDS_H_
#define C2MN_DATA_RECORDS_H_

#include <cstdint>
#include <vector>

#include "indoor/ids.h"

namespace c2mn {

/// \brief One positioning record θ(l, t): the object was observed at
/// location l = (x, y, floor) at timestamp t (seconds).
struct PositioningRecord {
  IndoorPoint location;
  double timestamp = 0.0;
};

/// \brief An object's positioning sequence (Definition 1): time-ordered
/// positioning records of one object over one visit.
struct PSequence {
  int64_t object_id = 0;
  std::vector<PositioningRecord> records;

  size_t size() const { return records.size(); }
  bool empty() const { return records.empty(); }
  const PositioningRecord& operator[](size_t i) const { return records[i]; }

  /// Total time span [t_1, t_n] in seconds; 0 for fewer than two records.
  double Duration() const {
    return records.size() < 2
               ? 0.0
               : records.back().timestamp - records.front().timestamp;
  }

  /// True when timestamps are non-decreasing.
  bool IsTimeOrdered() const {
    for (size_t i = 1; i < records.size(); ++i) {
      if (records[i].timestamp < records[i - 1].timestamp) return false;
    }
    return true;
  }

  /// Average sampling rate in Hz; 0 for degenerate sequences.
  double SamplingRate() const {
    const double d = Duration();
    return d > 0 ? static_cast<double>(records.size() - 1) / d : 0.0;
  }
};

}  // namespace c2mn

#endif  // C2MN_DATA_RECORDS_H_
