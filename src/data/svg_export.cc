#include "data/svg_export.h"

#include <cstdio>
#include <sstream>

namespace c2mn {

namespace {

const char* FillFor(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kRoom:
      return "#f5e9d0";
    case PartitionKind::kHallway:
      return "#ececec";
    case PartitionKind::kStaircase:
      return "#cfe0f5";
  }
  return "#ffffff";
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

void SvgExporter::AddTrajectory(const PSequence& sequence,
                                TrajectoryStyle style) {
  trajectories_.emplace_back(sequence, std::move(style));
}

std::string SvgExporter::Render() const {
  BoundingBox bounds;
  for (PartitionId pid : plan_.PartitionsOnFloor(floor_)) {
    bounds.Extend(plan_.partition(pid).shape.bbox());
  }
  const double margin = 2.0;
  const double w = bounds.max.x - bounds.min.x + 2 * margin;
  const double h = bounds.max.y - bounds.min.y + 2 * margin;
  // SVG y grows downward; flip so plans read like floor drawings.
  auto tx = [&](const Vec2& p) {
    return Vec2{p.x - bounds.min.x + margin,
                (bounds.max.y - p.y) + margin};
  };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 "
      << Fmt(w) << " " << Fmt(h) << "\">\n";

  for (PartitionId pid : plan_.PartitionsOnFloor(floor_)) {
    const Partition& part = plan_.partition(pid);
    out << "  <polygon points=\"";
    for (const Vec2& v : part.shape.vertices()) {
      const Vec2 p = tx(v);
      out << Fmt(p.x) << "," << Fmt(p.y) << " ";
    }
    out << "\" fill=\"" << FillFor(part.kind)
        << "\" stroke=\"#555\" stroke-width=\"0.25\"/>\n";
    if (part.region != kInvalidId) {
      const Vec2 c = tx(part.shape.Centroid());
      out << "  <text x=\"" << Fmt(c.x) << "\" y=\"" << Fmt(c.y)
          << "\" font-size=\"1.6\" text-anchor=\"middle\" fill=\"#8a6d3b\">"
          << plan_.region(part.region).name << "</text>\n";
    }
  }
  // Doors on this floor.
  for (const Door& door : plan_.doors()) {
    const bool touches_floor = door.position_a.floor == floor_ ||
                               door.position_b.floor == floor_;
    if (!touches_floor) continue;
    const Vec2 p = tx(door.position_a.floor == floor_ ? door.position_a.xy
                                                      : door.position_b.xy);
    out << "  <circle cx=\"" << Fmt(p.x) << "\" cy=\"" << Fmt(p.y)
        << "\" r=\"0.6\" fill=\"" << (door.IsInterFloor() ? "#2c5faa" : "#333")
        << "\"/>\n";
  }
  // Trajectories.
  for (const auto& [sequence, style] : trajectories_) {
    out << "  <polyline fill=\"none\" stroke=\"" << style.color
        << "\" stroke-width=\"" << Fmt(style.width) << "\" points=\"";
    for (const PositioningRecord& rec : sequence.records) {
      const Vec2 p = tx(rec.location.xy);
      out << Fmt(p.x) << "," << Fmt(p.y) << " ";
    }
    out << "\"/>\n";
    for (const PositioningRecord& rec : sequence.records) {
      const Vec2 p = tx(rec.location.xy);
      const bool off_floor = rec.location.floor != floor_;
      out << "  <circle cx=\"" << Fmt(p.x) << "\" cy=\"" << Fmt(p.y)
          << "\" r=\"0.45\" fill=\""
          << (off_floor ? "#d62728" : style.color) << "\"/>\n";
    }
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace c2mn
