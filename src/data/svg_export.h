#ifndef C2MN_DATA_SVG_EXPORT_H_
#define C2MN_DATA_SVG_EXPORT_H_

#include <string>
#include <vector>

#include "data/records.h"
#include "indoor/floorplan.h"

namespace c2mn {

/// \brief Renders one floor of a floorplan — and optionally trajectories —
/// as an SVG document, the library's equivalent of the TRIPS trajectory
/// visualization the paper's annotators worked with.
///
/// Rooms are beige, semantic regions are labeled, hallways light gray,
/// staircases hatched blue, doors dark ticks.  Trajectories are drawn as
/// polylines with per-record dots (red = the record's floor differs from
/// the rendered floor, i.e. a false-floor report).
class SvgExporter {
 public:
  struct TrajectoryStyle {
    std::string color = "#1f77b4";
    double width = 0.6;
  };

  SvgExporter(const Floorplan& plan, FloorId floor)
      : plan_(plan), floor_(floor) {}

  /// Adds a trajectory clipped to records on any floor (off-floor records
  /// are flagged visually).
  void AddTrajectory(const PSequence& sequence, TrajectoryStyle style);
  void AddTrajectory(const PSequence& sequence) {
    AddTrajectory(sequence, TrajectoryStyle());
  }

  /// Renders the SVG document.
  std::string Render() const;

 private:
  const Floorplan& plan_;
  FloorId floor_;
  std::vector<std::pair<PSequence, TrajectoryStyle>> trajectories_;
};

}  // namespace c2mn

#endif  // C2MN_DATA_SVG_EXPORT_H_
