#include "eval/confusion.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace c2mn {

void EventConfusion::Add(const LabelSequence& truth,
                         const LabelSequence& prediction) {
  assert(truth.size() == prediction.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    ++counts_[PassIndicator(truth.events[i])]
             [PassIndicator(prediction.events[i])];
    ++total_;
  }
}

double EventConfusion::Precision(MobilityEvent event) const {
  const int e = PassIndicator(event);
  const int64_t predicted = counts_[0][e] + counts_[1][e];
  return predicted > 0 ? static_cast<double>(counts_[e][e]) / predicted : 0.0;
}

double EventConfusion::Recall(MobilityEvent event) const {
  const int e = PassIndicator(event);
  const int64_t actual = counts_[e][0] + counts_[e][1];
  return actual > 0 ? static_cast<double>(counts_[e][e]) / actual : 0.0;
}

double EventConfusion::F1(MobilityEvent event) const {
  const double p = Precision(event);
  const double r = Recall(event);
  return p + r > 0 ? 2.0 * p * r / (p + r) : 0.0;
}

double EventConfusion::Accuracy() const {
  return total_ > 0
             ? static_cast<double>(counts_[0][0] + counts_[1][1]) / total_
             : 0.0;
}

std::string EventConfusion::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "            pred stay  pred pass\n"
                "true stay  %9lld  %9lld\n"
                "true pass  %9lld  %9lld\n",
                static_cast<long long>(counts_[0][0]),
                static_cast<long long>(counts_[0][1]),
                static_cast<long long>(counts_[1][0]),
                static_cast<long long>(counts_[1][1]));
  return buf;
}

void RegionConfusion::Add(const LabelSequence& truth,
                          const LabelSequence& prediction) {
  assert(truth.size() == prediction.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    ++total_;
    if (truth.regions[i] == prediction.regions[i]) continue;
    ++errors_;
    bool found = false;
    for (ConfusedPair& pair : pairs_) {
      if (pair.truth == truth.regions[i] &&
          pair.predicted == prediction.regions[i]) {
        ++pair.count;
        found = true;
        break;
      }
    }
    if (!found) {
      pairs_.push_back({truth.regions[i], prediction.regions[i], 1});
    }
  }
}

std::vector<RegionConfusion::ConfusedPair> RegionConfusion::TopConfusions(
    size_t k) const {
  std::vector<ConfusedPair> sorted = pairs_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ConfusedPair& a, const ConfusedPair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.truth != b.truth) return a.truth < b.truth;
              return a.predicted < b.predicted;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

}  // namespace c2mn
