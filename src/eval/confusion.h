#ifndef C2MN_EVAL_CONFUSION_H_
#define C2MN_EVAL_CONFUSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/labels.h"

namespace c2mn {

/// \brief 2x2 confusion matrix over the mobility events, with the derived
/// per-event precision/recall used when diagnosing why a method's EA
/// moves (e.g. the paper's observation that density-based segmentation
/// beats speed thresholds).
class EventConfusion {
 public:
  /// Adds aligned truth/prediction labels.
  void Add(const LabelSequence& truth, const LabelSequence& prediction);

  /// counts(t, p): records whose true event is `t` and predicted `p`.
  int64_t counts(MobilityEvent truth, MobilityEvent predicted) const {
    return counts_[PassIndicator(truth)][PassIndicator(predicted)];
  }

  double Precision(MobilityEvent event) const;
  double Recall(MobilityEvent event) const;
  double F1(MobilityEvent event) const;
  double Accuracy() const;
  int64_t total() const { return total_; }

  /// Renders a small human-readable matrix.
  std::string ToString() const;

 private:
  int64_t counts_[2][2] = {{0, 0}, {0, 0}};
  int64_t total_ = 0;
};

/// \brief Region-level error aggregation: which (true region, predicted
/// region) pairs dominate the mistakes.  Useful for spotting systematic
/// confusions (adjacent shops, across-corridor neighbors, floor errors).
class RegionConfusion {
 public:
  void Add(const LabelSequence& truth, const LabelSequence& prediction);

  struct ConfusedPair {
    RegionId truth;
    RegionId predicted;
    int64_t count;
  };

  /// The `k` most frequent misclassification pairs, descending.
  std::vector<ConfusedPair> TopConfusions(size_t k) const;

  int64_t errors() const { return errors_; }
  int64_t total() const { return total_; }

 private:
  std::vector<ConfusedPair> pairs_;  // Sparse; linear scan on insert.
  int64_t errors_ = 0;
  int64_t total_ = 0;
};

}  // namespace c2mn

#endif  // C2MN_EVAL_CONFUSION_H_
