#include "eval/harness.h"

#include <algorithm>

#include "baselines/c2mn_method.h"
#include "baselines/hmm_dc.h"
#include "baselines/sap.h"
#include "baselines/smot.h"
#include "common/env.h"
#include "common/stopwatch.h"

namespace c2mn {

TrainOptions WithEnvTrainThreads(TrainOptions topts) {
  topts.num_threads = EnvInt("C2MN_TRAIN_THREADS", topts.num_threads);
  return topts;
}

MethodEvaluation EvaluateMethod(AnnotationMethod* method,
                                const TrainTestSplit& split, double lambda) {
  MethodEvaluation eval;
  eval.name = method->name();
  method->Train(split.train);
  eval.train_seconds = method->train_seconds();

  Stopwatch watch;
  AccuracyAccumulator accuracy(lambda);
  for (const LabeledSequence* ls : split.test) {
    const LabelSequence predicted = method->Annotate(ls->sequence);
    accuracy.Add(ls->labels, predicted);
    eval.predicted.Add(ls->sequence.object_id,
                       MergeLabels(ls->sequence, predicted));
  }
  eval.annotate_seconds = watch.ElapsedSeconds();
  eval.accuracy = accuracy.Report();
  return eval;
}

AnnotatedCorpus GroundTruthCorpus(
    const std::vector<const LabeledSequence*>& test) {
  AnnotatedCorpus corpus;
  for (const LabeledSequence* ls : test) {
    corpus.Add(ls->sequence.object_id, MergeLabels(ls->sequence, ls->labels));
  }
  return corpus;
}

std::vector<std::unique_ptr<AnnotationMethod>> MakeClassicBaselines(
    const World& world) {
  return MakeClassicBaselines(world, StDbscanParams());
}

std::vector<std::unique_ptr<AnnotationMethod>> MakeClassicBaselines(
    const World& world, const StDbscanParams& dbscan) {
  std::vector<std::unique_ptr<AnnotationMethod>> methods;
  methods.push_back(std::make_unique<SmotMethod>(world));
  HmmDcMethod::Params hmm_params;
  hmm_params.dbscan = dbscan;
  methods.push_back(std::make_unique<HmmDcMethod>(world, hmm_params));
  SapMethod::Params dv_params;
  dv_params.segmentation = SapSegmentation::kDynamicVelocity;
  dv_params.dbscan = dbscan;
  methods.push_back(std::make_unique<SapMethod>(world, dv_params));
  SapMethod::Params da_params;
  da_params.segmentation = SapSegmentation::kDensityArea;
  da_params.dbscan = dbscan;
  methods.push_back(std::make_unique<SapMethod>(world, da_params));
  return methods;
}

std::vector<std::unique_ptr<AnnotationMethod>> MakeC2mnFamily(
    const World& world, const FeatureOptions& fopts,
    const TrainOptions& topts) {
  std::vector<std::unique_ptr<AnnotationMethod>> methods;
  const TrainOptions resolved = WithEnvTrainThreads(topts);
  for (const C2mnVariant& variant : TableFourVariants()) {
    methods.push_back(
        std::make_unique<C2mnMethod>(world, variant, fopts, resolved));
  }
  return methods;
}

std::vector<std::unique_ptr<AnnotationMethod>> MakeAllMethods(
    const World& world, const FeatureOptions& fopts,
    const TrainOptions& topts) {
  auto methods = MakeClassicBaselines(world);
  for (auto& m : MakeC2mnFamily(world, fopts, topts)) {
    methods.push_back(std::move(m));
  }
  return methods;
}

namespace {

/// The time span covered by a corpus and a random query region set.
struct WorkloadContext {
  double t_min = 1e300;
  double t_max = -1e300;
};

WorkloadContext CorpusSpan(const AnnotatedCorpus& corpus) {
  WorkloadContext ctx;
  for (const MSemanticsSequence& ms_seq : corpus.semantics) {
    for (const MSemantics& ms : ms_seq) {
      ctx.t_min = std::min(ctx.t_min, ms.t_start);
      ctx.t_max = std::max(ctx.t_max, ms.t_end);
    }
  }
  if (ctx.t_min > ctx.t_max) ctx.t_min = ctx.t_max = 0.0;
  return ctx;
}

std::vector<RegionId> RandomQuerySet(size_t num_regions, size_t size,
                                     Rng* rng) {
  std::vector<RegionId> all(num_regions);
  for (size_t i = 0; i < num_regions; ++i) all[i] = static_cast<RegionId>(i);
  rng->Shuffle(&all);
  all.resize(std::min(size, all.size()));
  return all;
}

TimeWindow RandomWindow(const WorkloadContext& ctx, double window_seconds,
                        Rng* rng) {
  const double span = std::max(0.0, ctx.t_max - ctx.t_min - window_seconds);
  const double start = ctx.t_min + rng->Uniform(0.0, std::max(1e-9, span));
  return {start, start + window_seconds};
}

}  // namespace

double AverageTkprqPrecision(const AnnotatedCorpus& truth,
                             const AnnotatedCorpus& predicted,
                             size_t num_regions,
                             const QueryWorkloadOptions& options) {
  Rng rng(options.seed);
  const WorkloadContext ctx = CorpusSpan(truth);
  double total = 0.0;
  for (int q = 0; q < options.num_queries; ++q) {
    const auto query_set =
        RandomQuerySet(num_regions, options.query_set_size, &rng);
    const TimeWindow window =
        RandomWindow(ctx, options.window_minutes * 60.0, &rng);
    const auto truth_topk = TopKPopularRegions(
        truth, query_set, window, options.k, options.min_visit_seconds);
    const auto pred_topk = TopKPopularRegions(
        predicted, query_set, window, options.k, options.min_visit_seconds);
    total += TopKPrecision(truth_topk, pred_topk);
  }
  return total / options.num_queries;
}

double AverageTkfrpqPrecision(const AnnotatedCorpus& truth,
                              const AnnotatedCorpus& predicted,
                              size_t num_regions,
                              const QueryWorkloadOptions& options) {
  Rng rng(options.seed + 1);
  const WorkloadContext ctx = CorpusSpan(truth);
  double total = 0.0;
  for (int q = 0; q < options.num_queries; ++q) {
    const auto query_set =
        RandomQuerySet(num_regions, options.query_set_size, &rng);
    const TimeWindow window =
        RandomWindow(ctx, options.window_minutes * 60.0, &rng);
    const auto truth_topk = TopKFrequentRegionPairs(
        truth, query_set, window, options.k, options.min_visit_seconds);
    const auto pred_topk = TopKFrequentRegionPairs(
        predicted, query_set, window, options.k, options.min_visit_seconds);
    total += TopKPairPrecision(truth_topk, pred_topk);
  }
  return total / options.num_queries;
}

}  // namespace c2mn
