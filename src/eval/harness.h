#ifndef C2MN_EVAL_HARNESS_H_
#define C2MN_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/method.h"
#include "core/trainer.h"
#include "core/variants.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/queries.h"
#include "sim/world.h"

namespace c2mn {

/// \brief One method's results on a train/test split.
struct MethodEvaluation {
  std::string name;
  AccuracyReport accuracy;
  double train_seconds = 0.0;
  double annotate_seconds = 0.0;
  /// Predicted m-semantics of every test sequence (for query experiments).
  AnnotatedCorpus predicted;
};

/// Trains `method` on the split's training side, annotates the test side,
/// and reports accuracy plus the predicted m-semantics corpus.
MethodEvaluation EvaluateMethod(AnnotationMethod* method,
                                const TrainTestSplit& split,
                                double lambda = 0.7);

/// The ground-truth m-semantics corpus of the test sequences.
AnnotatedCorpus GroundTruthCorpus(
    const std::vector<const LabeledSequence*>& test);

/// \brief Factories for the experiment line-ups of Section V-A.
///
/// The classic baselines: SMoT, HMM+DC, SAPDV, SAPDA.  The overload with
/// StDbscanParams propagates sampling-rate-tuned clustering parameters to
/// the density-based methods (HMM+DC, SAPDA).
std::vector<std::unique_ptr<AnnotationMethod>> MakeClassicBaselines(
    const World& world);
std::vector<std::unique_ptr<AnnotationMethod>> MakeClassicBaselines(
    const World& world, const StDbscanParams& dbscan);

/// Applies the C2MN_TRAIN_THREADS environment override (worker threads
/// for AlternateTrainer; 0 = all cores) to `topts`.  Every experiment
/// driver that builds methods through the factories below inherits it, so
/// multi-hour sweeps can be parallelized without touching each driver —
/// and since the trainer is bit-identical across thread counts, the
/// override can never change a result.
TrainOptions WithEnvTrainThreads(TrainOptions topts);

/// The C2MN family: CMN, C2MN/Tran, C2MN/Syn, C2MN/ES, C2MN/SS, C2MN.
/// TrainOptions::num_threads honors the C2MN_TRAIN_THREADS override.
std::vector<std::unique_ptr<AnnotationMethod>> MakeC2mnFamily(
    const World& world, const FeatureOptions& fopts,
    const TrainOptions& topts);

/// All ten methods of Table IV, classic baselines first.
std::vector<std::unique_ptr<AnnotationMethod>> MakeAllMethods(
    const World& world, const FeatureOptions& fopts,
    const TrainOptions& topts);

/// \brief Random query-workload generator for the TkPRQ / TkFRPQ
/// precision experiments (Figs. 12-16): `num_queries` random windows of
/// `window_minutes` within the corpus's time span, over a random query
/// region set of `query_set_size` regions.
struct QueryWorkloadOptions {
  size_t k = 20;
  size_t query_set_size = 50;
  double window_minutes = 120.0;
  int num_queries = 10;
  uint64_t seed = 99;
  /// Minimum stay duration for a visit to count (applied to truth and
  /// prediction alike).
  double min_visit_seconds = 45.0;
};

/// Average TkPRQ precision of `predicted` against `truth`.
double AverageTkprqPrecision(const AnnotatedCorpus& truth,
                             const AnnotatedCorpus& predicted,
                             size_t num_regions,
                             const QueryWorkloadOptions& options);

/// Average TkFRPQ precision of `predicted` against `truth`.
double AverageTkfrpqPrecision(const AnnotatedCorpus& truth,
                              const AnnotatedCorpus& predicted,
                              size_t num_regions,
                              const QueryWorkloadOptions& options);

}  // namespace c2mn

#endif  // C2MN_EVAL_HARNESS_H_
