#include "eval/metrics.h"

#include <cassert>

namespace c2mn {

void AccuracyAccumulator::Add(const LabelSequence& truth,
                              const LabelSequence& prediction) {
  assert(truth.size() == prediction.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    const bool region_ok = truth.regions[i] == prediction.regions[i];
    const bool event_ok = truth.events[i] == prediction.events[i];
    ++total_;
    if (region_ok) ++region_correct_;
    if (event_ok) ++event_correct_;
    if (region_ok && event_ok) ++both_correct_;
  }
}

AccuracyReport AccuracyAccumulator::Report() const {
  AccuracyReport report;
  report.num_records = total_;
  if (total_ == 0) return report;
  const double n = static_cast<double>(total_);
  report.region_accuracy = region_correct_ / n;
  report.event_accuracy = event_correct_ / n;
  report.combined_accuracy = lambda_ * report.region_accuracy +
                             (1.0 - lambda_) * report.event_accuracy;
  report.perfect_accuracy = both_correct_ / n;
  return report;
}

}  // namespace c2mn
