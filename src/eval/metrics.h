#ifndef C2MN_EVAL_METRICS_H_
#define C2MN_EVAL_METRICS_H_

#include <vector>

#include "data/labels.h"

namespace c2mn {

/// \brief The labeling-accuracy metrics of Section V-A.
///
/// RA / EA: fraction of records with the correct region / event label.
/// CA = λ·RA + (1-λ)·EA with λ = 0.7 ("RA's requirement is stricter").
/// PA: fraction of records with both labels correct.
struct AccuracyReport {
  double region_accuracy = 0.0;    ///< RA
  double event_accuracy = 0.0;     ///< EA
  double combined_accuracy = 0.0;  ///< CA
  double perfect_accuracy = 0.0;   ///< PA
  size_t num_records = 0;
};

/// \brief Streaming accumulator over (truth, prediction) label pairs.
class AccuracyAccumulator {
 public:
  explicit AccuracyAccumulator(double lambda = 0.7) : lambda_(lambda) {}

  /// Adds one sequence's labels; truth and prediction must be aligned.
  void Add(const LabelSequence& truth, const LabelSequence& prediction);

  AccuracyReport Report() const;

 private:
  double lambda_;
  size_t total_ = 0;
  size_t region_correct_ = 0;
  size_t event_correct_ = 0;
  size_t both_correct_ = 0;
};

}  // namespace c2mn

#endif  // C2MN_EVAL_METRICS_H_
