#include "eval/queries.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace c2mn {

namespace {

/// Distinct regions from `query_regions` that `ms_seq` stays at within
/// `window`.
std::unordered_set<RegionId> StayedRegions(
    const MSemanticsSequence& ms_seq,
    const std::unordered_set<RegionId>& query_set, const TimeWindow& window,
    double min_visit_seconds) {
  std::unordered_set<RegionId> out;
  for (const MSemantics& ms : ms_seq) {
    if (ms.event != MobilityEvent::kStay) continue;
    if (ms.DurationSeconds() < min_visit_seconds) continue;
    if (!window.Overlaps(ms.t_start, ms.t_end)) continue;
    if (query_set.count(ms.region) == 0) continue;
    out.insert(ms.region);
  }
  return out;
}

}  // namespace

std::vector<RegionId> TopKPopularRegions(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds) {
  const std::unordered_set<RegionId> query_set(query_regions.begin(),
                                               query_regions.end());
  std::unordered_map<RegionId, int> visits;
  for (const MSemanticsSequence& ms_seq : corpus.semantics) {
    for (const MSemantics& ms : ms_seq) {
      // A visit is a stay m-semantics intersecting the window (footnote 8)
      // and lasting long enough to be a purposeful stop.
      if (ms.event != MobilityEvent::kStay) continue;
      if (ms.DurationSeconds() < min_visit_seconds) continue;
      if (!window.Overlaps(ms.t_start, ms.t_end)) continue;
      if (query_set.count(ms.region) == 0) continue;
      ++visits[ms.region];
    }
  }
  std::vector<std::pair<RegionId, int>> ranked(visits.begin(), visits.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<RegionId> out;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    out.push_back(ranked[i].first);
  }
  return out;
}

std::vector<std::pair<RegionId, RegionId>> TopKFrequentRegionPairs(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds) {
  const std::unordered_set<RegionId> query_set(query_regions.begin(),
                                               query_regions.end());
  std::map<std::pair<RegionId, RegionId>, int> counts;
  for (const MSemanticsSequence& ms_seq : corpus.semantics) {
    const auto stayed =
        StayedRegions(ms_seq, query_set, window, min_visit_seconds);
    std::vector<RegionId> regions(stayed.begin(), stayed.end());
    std::sort(regions.begin(), regions.end());
    for (size_t i = 0; i < regions.size(); ++i) {
      for (size_t j = i + 1; j < regions.size(); ++j) {
        ++counts[{regions[i], regions[j]}];
      }
    }
  }
  std::vector<std::pair<std::pair<RegionId, RegionId>, int>> ranked(
      counts.begin(), counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::pair<RegionId, RegionId>> out;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    out.push_back(ranked[i].first);
  }
  return out;
}

double TopKPrecision(const std::vector<RegionId>& truth,
                     const std::vector<RegionId>& predicted) {
  if (predicted.empty()) return truth.empty() ? 1.0 : 0.0;
  const std::unordered_set<RegionId> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (RegionId r : predicted) {
    if (truth_set.count(r) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

double TopKPairPrecision(
    const std::vector<std::pair<RegionId, RegionId>>& truth,
    const std::vector<std::pair<RegionId, RegionId>>& predicted) {
  if (predicted.empty()) return truth.empty() ? 1.0 : 0.0;
  const std::set<std::pair<RegionId, RegionId>> truth_set(truth.begin(),
                                                          truth.end());
  size_t hits = 0;
  for (const auto& p : predicted) {
    if (truth_set.count(p) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

}  // namespace c2mn
