#include "eval/queries.h"

#include <set>
#include <unordered_set>

namespace c2mn {

std::vector<RegionId> TopKPopularRegions(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds) {
  return query::TopKPopularRegions(corpus, query_regions, window, k,
                                   min_visit_seconds);
}

std::vector<std::pair<RegionId, RegionId>> TopKFrequentRegionPairs(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds) {
  return query::TopKFrequentRegionPairs(corpus, query_regions, window, k,
                                        min_visit_seconds);
}

double TopKPrecision(const std::vector<RegionId>& truth,
                     const std::vector<RegionId>& predicted) {
  if (predicted.empty()) return truth.empty() ? 1.0 : 0.0;
  const std::unordered_set<RegionId> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (RegionId r : predicted) {
    if (truth_set.count(r) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

double TopKPairPrecision(
    const std::vector<std::pair<RegionId, RegionId>>& truth,
    const std::vector<std::pair<RegionId, RegionId>>& predicted) {
  if (predicted.empty()) return truth.empty() ? 1.0 : 0.0;
  const std::set<std::pair<RegionId, RegionId>> truth_set(truth.begin(),
                                                          truth.end());
  size_t hits = 0;
  for (const auto& p : predicted) {
    if (truth_set.count(p) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

}  // namespace c2mn
