#ifndef C2MN_EVAL_QUERIES_H_
#define C2MN_EVAL_QUERIES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "query/query_core.h"

namespace c2mn {

// AnnotatedCorpus and TimeWindow live in query/query_core.h — the shared
// query core behind this batch path, the streaming AnalyticsEngine, and
// standing continuous queries.  This header keeps the original batch API
// as a thin adapter over the core.

/// \brief Top-k Popular Region Query: the k regions from `query_regions`
/// with the most visits (stay m-semantics intersecting the window).
///
/// A stay must last at least `min_visit_seconds` to count as a visit —
/// the paper defines a stay as remaining "for a sufficiently long period
/// of time", and the threshold screens out single-record stay blips that
/// would otherwise register as visits.  Ties break toward the smaller
/// region id (query::RankTopK), so precision comparisons are
/// deterministic.
std::vector<RegionId> TopKPopularRegions(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds = 0.0);

/// \brief Top-k Frequent Region Pair Query: the k pairs from
/// query_regions × query_regions most frequently visited (stayed at) by
/// the same object within the window.  Pairs are unordered (r1 < r2).
std::vector<std::pair<RegionId, RegionId>> TopKFrequentRegionPairs(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds = 0.0);

/// Precision of predicted top-k against ground-truth top-k: the fraction
/// of returned items that appear in the true result.
double TopKPrecision(const std::vector<RegionId>& truth,
                     const std::vector<RegionId>& predicted);
double TopKPairPrecision(
    const std::vector<std::pair<RegionId, RegionId>>& truth,
    const std::vector<std::pair<RegionId, RegionId>>& predicted);

}  // namespace c2mn

#endif  // C2MN_EVAL_QUERIES_H_
