#include "geometry/circle_overlap.h"

#include <algorithm>
#include <cmath>

namespace c2mn {
namespace {

/// Signed area of the intersection of triangle (origin, a, b) with the
/// disk of radius r centered at the origin.
double TriangleDiskArea(Vec2 a, Vec2 b, double r) {
  const double r2 = r * r;

  auto sector_area = [&](const Vec2& p, const Vec2& q) {
    // Signed sector spanned from direction p to direction q.
    const double angle = std::atan2(Cross(p, q), Dot(p, q));
    return 0.5 * r2 * angle;
  };
  auto triangle_area = [](const Vec2& p, const Vec2& q) {
    return 0.5 * Cross(p, q);
  };

  // Find intersection parameters of segment a + t*(b-a) with the circle.
  const Vec2 d = b - a;
  const double A = d.SquaredNorm();
  if (A < 1e-24) return 0.0;
  const double B = 2.0 * Dot(a, d);
  const double C = a.SquaredNorm() - r2;
  const double disc = B * B - 4.0 * A * C;

  // At most four breakpoints: 0, the (ordered) circle hits t1 <= t2, 1.
  // Appending the in-range hits between the endpoints keeps the list
  // sorted without touching the heap on this innermost geometry call.
  double ts[4];
  size_t nts = 0;
  ts[nts++] = 0.0;
  if (disc > 0.0) {
    const double sq = std::sqrt(disc);
    const double t1 = (-B - sq) / (2.0 * A);
    const double t2 = (-B + sq) / (2.0 * A);
    if (t1 > 0.0 && t1 < 1.0) ts[nts++] = t1;
    if (t2 > 0.0 && t2 < 1.0) ts[nts++] = t2;
  }
  ts[nts++] = 1.0;

  double area = 0.0;
  for (size_t i = 0; i + 1 < nts; ++i) {
    const Vec2 p = a + d * ts[i];
    const Vec2 q = a + d * ts[i + 1];
    const Vec2 mid = (p + q) * 0.5;
    if (mid.SquaredNorm() <= r2) {
      area += triangle_area(p, q);
    } else {
      area += sector_area(p, q);
    }
  }
  return area;
}

}  // namespace

double CirclePolygonIntersectionArea(const Vec2& center, double radius,
                                      const Polygon& polygon) {
  if (radius <= 0.0 || polygon.empty()) return 0.0;
  // Quick reject: disk far outside the polygon's bounding box.
  if (polygon.bbox().Distance(center) >= radius) return 0.0;
  const auto& vs = polygon.vertices();
  const size_t n = vs.size();
  double area = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Vec2 a = vs[i] - center;
    const Vec2 b = vs[(i + 1) % n] - center;
    area += TriangleDiskArea(a, b, radius);
  }
  // CCW polygons give a positive sum; clamp tiny negative rounding noise.
  return std::max(0.0, area);
}

double CircleCoverageFraction(const Vec2& center, double radius,
                              const Polygon& polygon) {
  if (radius <= 0.0) return 0.0;
  const double disk = M_PI * radius * radius;
  const double inter = CirclePolygonIntersectionArea(center, radius, polygon);
  return std::clamp(inter / disk, 0.0, 1.0);
}

}  // namespace c2mn
