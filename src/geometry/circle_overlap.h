#ifndef C2MN_GEOMETRY_CIRCLE_OVERLAP_H_
#define C2MN_GEOMETRY_CIRCLE_OVERLAP_H_

#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace c2mn {

/// \brief Exact area of the intersection of disk(center, radius) with a
/// simple polygon.
///
/// This implements the spatial matching feature f_sm (Eq. 3 of the paper):
/// the uncertainty region UR(l, v) of a location estimate is a disk, and
/// the feature value is |UR ∩ Area(r)| / |UR|.
///
/// The algorithm sums, over each directed polygon edge (a, b), the signed
/// area of the intersection of triangle (center, a, b) with the disk:
/// sub-segments inside the disk contribute triangle areas, parts outside
/// contribute circular-sector areas.  Exact up to floating-point rounding.
double CirclePolygonIntersectionArea(const Vec2& center, double radius,
                                      const Polygon& polygon);

/// Fraction of the disk covered by the polygon, in [0, 1].  Returns 0 for a
/// non-positive radius.
double CircleCoverageFraction(const Vec2& center, double radius,
                              const Polygon& polygon);

}  // namespace c2mn

#endif  // C2MN_GEOMETRY_CIRCLE_OVERLAP_H_
