#include "geometry/polygon.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c2mn {

void BoundingBox::Extend(const Vec2& p) {
  min.x = std::min(min.x, p.x);
  min.y = std::min(min.y, p.y);
  max.x = std::max(max.x, p.x);
  max.y = std::max(max.y, p.y);
}

void BoundingBox::Extend(const BoundingBox& other) {
  Extend(other.min);
  Extend(other.max);
}

bool BoundingBox::Contains(const Vec2& p) const {
  return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  return min.x <= other.max.x && max.x >= other.min.x &&
         min.y <= other.max.y && max.y >= other.min.y;
}

double BoundingBox::Distance(const Vec2& p) const {
  const double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
  const double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
  return std::hypot(dx, dy);
}

double BoundingBox::Area() const {
  if (max.x < min.x || max.y < min.y) return 0.0;
  return (max.x - min.x) * (max.y - min.y);
}

double SignedArea(const std::vector<Vec2>& ring) {
  double a = 0.0;
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    const Vec2& p = ring[i];
    const Vec2& q = ring[(i + 1) % n];
    a += Cross(p, q);
  }
  return 0.5 * a;
}

Polygon::Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  assert(vertices_.size() >= 3);
  double signed_area = SignedArea(vertices_);
  if (signed_area < 0) {
    std::reverse(vertices_.begin(), vertices_.end());
    signed_area = -signed_area;
  }
  area_ = signed_area;
  // Centroid of a simple polygon.
  double cx = 0.0, cy = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Vec2& p = vertices_[i];
    const Vec2& q = vertices_[(i + 1) % n];
    const double w = Cross(p, q);
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
  }
  if (area_ > 1e-12) {
    centroid_ = {cx / (6.0 * area_), cy / (6.0 * area_)};
  } else {
    for (const Vec2& v : vertices_) centroid_ = centroid_ + v;
    centroid_ = centroid_ / static_cast<double>(n);
  }
  for (const Vec2& v : vertices_) bbox_.Extend(v);
}

Polygon Polygon::Rectangle(const Vec2& min, const Vec2& max) {
  assert(min.x < max.x && min.y < max.y);
  return Polygon({{min.x, min.y}, {max.x, min.y}, {max.x, max.y},
                  {min.x, max.y}});
}

bool Polygon::Contains(const Vec2& p) const {
  if (!bbox_.Contains(p)) return false;
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[j];
    // Boundary check with a small tolerance.
    if (PointSegmentDistance(p, a, b) < 1e-9) return true;
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_int = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_int) inside = !inside;
    }
  }
  return inside;
}

double Polygon::Distance(const Vec2& p) const {
  if (Contains(p)) return 0.0;
  double best = 1e300;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    best = std::min(best, PointSegmentDistance(p, vertices_[i], vertices_[j]));
  }
  return best;
}

double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b) {
  const Vec2 ab = b - a;
  const double len2 = ab.SquaredNorm();
  if (len2 < 1e-18) return Distance(p, a);
  const double t = std::clamp(Dot(p - a, ab) / len2, 0.0, 1.0);
  return Distance(p, a + ab * t);
}

}  // namespace c2mn
