#ifndef C2MN_GEOMETRY_POLYGON_H_
#define C2MN_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/vec2.h"

namespace c2mn {

/// \brief Axis-aligned bounding box.
struct BoundingBox {
  Vec2 min{1e300, 1e300};
  Vec2 max{-1e300, -1e300};

  /// Grows the box to cover `p`.
  void Extend(const Vec2& p);
  /// Grows the box to cover `other`.
  void Extend(const BoundingBox& other);
  bool Contains(const Vec2& p) const;
  bool Intersects(const BoundingBox& other) const;
  /// Minimum distance from `p` to the box (0 when inside).
  double Distance(const Vec2& p) const;
  double Area() const;
  Vec2 Center() const { return (min + max) * 0.5; }
};

/// \brief A simple polygon (no self-intersections) with CCW orientation.
///
/// Indoor partitions and semantic-region footprints are polygons.  The
/// building generator only emits rectangles, but the geometry layer supports
/// arbitrary simple polygons so real floorplans can be loaded.
class Polygon {
 public:
  Polygon() = default;
  /// Constructs from vertices; re-orients to CCW if needed.
  explicit Polygon(std::vector<Vec2> vertices);

  /// Convenience factory for an axis-aligned rectangle.
  static Polygon Rectangle(const Vec2& min, const Vec2& max);

  const std::vector<Vec2>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Signed area is positive because vertices are CCW.
  double Area() const { return area_; }
  const BoundingBox& bbox() const { return bbox_; }
  Vec2 Centroid() const { return centroid_; }

  /// Even-odd (ray casting) point containment; boundary counts as inside.
  bool Contains(const Vec2& p) const;

  /// Minimum Euclidean distance from `p` to the polygon (0 when inside).
  double Distance(const Vec2& p) const;

 private:
  std::vector<Vec2> vertices_;
  double area_ = 0.0;
  Vec2 centroid_;
  BoundingBox bbox_;
};

/// Signed area of the polygon ring (positive = CCW).
double SignedArea(const std::vector<Vec2>& ring);

/// Distance from point `p` to segment [a, b].
double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b);

}  // namespace c2mn

#endif  // C2MN_GEOMETRY_POLYGON_H_
