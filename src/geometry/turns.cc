#include "geometry/turns.h"

#include <cmath>

namespace c2mn {

bool IsTurn(const Vec2& a, const Vec2& b, const Vec2& c,
            double threshold_deg) {
  const Vec2 u = b - a;
  const Vec2 v = c - b;
  const double nu = u.Norm();
  const double nv = v.Norm();
  if (nu < 1e-9 || nv < 1e-9) return false;
  const double cos_angle = Dot(u, v) / (nu * nv);
  const double angle_deg =
      std::acos(std::fmin(1.0, std::fmax(-1.0, cos_angle))) * 180.0 / M_PI;
  return angle_deg > threshold_deg;
}

int CountTurns(const std::vector<Vec2>& path, double threshold_deg) {
  int turns = 0;
  for (size_t i = 1; i + 1 < path.size(); ++i) {
    if (IsTurn(path[i - 1], path[i], path[i + 1], threshold_deg)) ++turns;
  }
  return turns;
}

}  // namespace c2mn
