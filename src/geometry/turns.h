#ifndef C2MN_GEOMETRY_TURNS_H_
#define C2MN_GEOMETRY_TURNS_H_

#include <vector>

#include "geometry/vec2.h"

namespace c2mn {

/// \brief Returns true when the heading change at `b` (coming from `a`,
/// leaving toward `c`) exceeds `threshold_deg` degrees.
///
/// This is footnote 4 of the paper: "if the angle between the line from
/// l_{i-1} to l_i and the line from l_i to l_{i+1} exceeds 90 degrees, it
/// is considered to be a turn."  Degenerate (zero-length) legs are not
/// turns.
bool IsTurn(const Vec2& a, const Vec2& b, const Vec2& c,
            double threshold_deg = 90.0);

/// Number of turns along a polyline (used by feature f_es, TURNNUM).
int CountTurns(const std::vector<Vec2>& path, double threshold_deg = 90.0);

}  // namespace c2mn

#endif  // C2MN_GEOMETRY_TURNS_H_
