#ifndef C2MN_GEOMETRY_VEC2_H_
#define C2MN_GEOMETRY_VEC2_H_

#include <cmath>

namespace c2mn {

/// \brief A 2-D point/vector on one floor of the indoor space, in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2& o) const {
    return x == o.x && y == o.y;
  }

  double Norm() const { return std::hypot(x, y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }
};

/// Dot product.
constexpr double Dot(const Vec2& a, const Vec2& b) {
  return a.x * b.x + a.y * b.y;
}

/// Z-component of the 3-D cross product; positive when b is
/// counter-clockwise of a.
constexpr double Cross(const Vec2& a, const Vec2& b) {
  return a.x * b.y - a.y * b.x;
}

/// Euclidean distance between two points.
inline double Distance(const Vec2& a, const Vec2& b) { return (a - b).Norm(); }

}  // namespace c2mn

#endif  // C2MN_GEOMETRY_VEC2_H_
