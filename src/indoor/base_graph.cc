#include "indoor/base_graph.h"

#include <limits>
#include <queue>

namespace c2mn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

BaseGraph::BaseGraph(const Floorplan& plan) : plan_(plan) {
  adjacency_.resize(plan.doors().size());
  for (const Partition& part : plan.partitions()) {
    const auto& doors = part.doors;
    for (size_t i = 0; i < doors.size(); ++i) {
      for (size_t j = i + 1; j < doors.size(); ++j) {
        const Door& da = plan.door(doors[i]);
        const Door& db = plan.door(doors[j]);
        const double walk = Distance(da.PositionIn(part.id).xy,
                                     db.PositionIn(part.id).xy);
        const double w =
            walk + 0.5 * (da.traversal_cost + db.traversal_cost);
        adjacency_[doors[i]].push_back({doors[j], w});
        adjacency_[doors[j]].push_back({doors[i], w});
      }
    }
  }
}

std::vector<double> BaseGraph::Dijkstra(DoorId source) const {
  std::vector<double> dist(num_doors(), kInf);
  using Item = std::pair<double, DoorId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : adjacency_[u]) {
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        heap.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

void BaseGraph::ComputeAllPairs() {
  if (has_all_pairs()) return;
  all_pairs_.resize(num_doors());
  for (DoorId d = 0; d < static_cast<DoorId>(num_doors()); ++d) {
    all_pairs_[d] = Dijkstra(d);
  }
}

}  // namespace c2mn
