#ifndef C2MN_INDOOR_BASE_GRAPH_H_
#define C2MN_INDOOR_BASE_GRAPH_H_

#include <vector>

#include "indoor/floorplan.h"

namespace c2mn {

/// \brief The accessibility base graph of Lu et al. [17]: door nodes with
/// intra-partition edges, used to compute minimum indoor walking distances
/// (MIWD).
///
/// Two doors are connected iff they lie on the boundary of a common
/// partition; the edge weight is the straight-line walking distance inside
/// that partition plus half the traversal cost of each endpoint door (so
/// stair lengths are charged exactly once per crossing).
///
/// The paper pre-computes all door-to-door shortest distances to speed up
/// MIWD queries (Section V-B1); `ComputeAllPairs()` does the same here via
/// repeated Dijkstra.
class BaseGraph {
 public:
  explicit BaseGraph(const Floorplan& plan);

  /// Number of door nodes.
  size_t num_doors() const { return adjacency_.size(); }

  struct Edge {
    DoorId to;
    double weight;
  };
  const std::vector<Edge>& Neighbors(DoorId d) const { return adjacency_[d]; }

  /// Single-source shortest door-to-door distances from `source`.
  std::vector<double> Dijkstra(DoorId source) const;

  /// Pre-computes the full door-to-door distance matrix.  Memory is
  /// O(|doors|^2) doubles, mirroring the paper's 990 MB pre-computation at
  /// mall scale (ours is far smaller).
  void ComputeAllPairs();

  /// Door-to-door network distance; requires ComputeAllPairs() first.
  double DoorDistance(DoorId a, DoorId b) const {
    return all_pairs_[a][b];
  }
  bool has_all_pairs() const { return !all_pairs_.empty(); }

  /// Approximate memory footprint of the all-pairs matrix in bytes.
  size_t AllPairsBytes() const {
    return all_pairs_.size() * num_doors() * sizeof(double);
  }

 private:
  const Floorplan& plan_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::vector<double>> all_pairs_;
};

}  // namespace c2mn

#endif  // C2MN_INDOOR_BASE_GRAPH_H_
