#include "indoor/distance.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace c2mn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DistanceOracle::DistanceOracle(const Floorplan& plan, BaseGraph* graph,
                               const RegionIndex* index)
    : plan_(plan), graph_(graph), index_(index) {
  assert(graph_ != nullptr);
  graph_->ComputeAllPairs();
  BuildRegionMatrix();
}

PartitionId DistanceOracle::ResolvePartition(const IndoorPoint& p) const {
  PartitionId pid =
      index_ != nullptr ? index_->PartitionAt(p) : plan_.PartitionAt(p);
  if (pid != kInvalidId) return pid;
  // Snap to the nearest partition on the same floor.
  double best = kInf;
  for (PartitionId cand : plan_.PartitionsOnFloor(p.floor)) {
    const double d = plan_.partition(cand).shape.Distance(p.xy);
    if (d < best) {
      best = d;
      pid = cand;
    }
  }
  return pid;
}

double DistanceOracle::PointToPoint(const IndoorPoint& p,
                                    const IndoorPoint& q) const {
  const PartitionId pp = ResolvePartition(p);
  const PartitionId qp = ResolvePartition(q);
  if (pp == kInvalidId || qp == kInvalidId) return kInf;
  return PointToPointResolved(p, pp, q, qp);
}

double DistanceOracle::PointToPointResolved(const IndoorPoint& p,
                                            PartitionId pp,
                                            const IndoorPoint& q,
                                            PartitionId qp) const {
  if (pp == qp) return Distance(p.xy, q.xy);
  double best = kInf;
  for (DoorId dp : plan_.partition(pp).doors) {
    const Door& door_p = plan_.door(dp);
    const double leg_p = Distance(p.xy, door_p.PositionIn(pp).xy) +
                         0.5 * door_p.traversal_cost;
    for (DoorId dq : plan_.partition(qp).doors) {
      const Door& door_q = plan_.door(dq);
      double mid;
      if (dp == dq) {
        // Same door on the shared wall: cross it exactly once.
        mid = 0.0;
      } else {
        mid = graph_->DoorDistance(dp, dq);
        if (mid == kInf) continue;
      }
      const double leg_q = Distance(q.xy, door_q.PositionIn(qp).xy) +
                           0.5 * door_q.traversal_cost;
      best = std::min(best, leg_p + mid + leg_q);
    }
  }
  return best;
}

void DistanceOracle::BuildRegionMatrix() {
  const size_t nr = plan_.regions().size();
  region_reps_.resize(nr);
  for (const SemanticRegion& region : plan_.regions()) {
    auto& reps = region_reps_[region.id];
    for (PartitionId pid : region.partitions) {
      const Partition& part = plan_.partition(pid);
      const double w =
          region.area > 0 ? part.shape.Area() / region.area : 1.0;
      reps.push_back({IndoorPoint(part.shape.Centroid(), part.floor), pid, w});
    }
  }
  region_matrix_.assign(nr, std::vector<double>(nr, 0.0));
  for (size_t a = 0; a < nr; ++a) {
    for (size_t b = a + 1; b < nr; ++b) {
      double expected = 0.0;
      bool finite = true;
      for (const RepPoint& ra : region_reps_[a]) {
        for (const RepPoint& rb : region_reps_[b]) {
          const double d = PointToPointResolved(ra.point, ra.partition,
                                                rb.point, rb.partition);
          if (d == kInf) {
            finite = false;
            break;
          }
          expected += ra.weight * rb.weight * d;
        }
        if (!finite) break;
      }
      const double value = finite ? expected : kInf;
      region_matrix_[a][b] = value;
      region_matrix_[b][a] = value;
      if (finite) max_region_distance_ = std::max(max_region_distance_, value);
    }
  }
}

}  // namespace c2mn
