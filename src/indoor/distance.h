#ifndef C2MN_INDOOR_DISTANCE_H_
#define C2MN_INDOOR_DISTANCE_H_

#include <memory>
#include <vector>

#include "indoor/base_graph.h"
#include "indoor/floorplan.h"
#include "indoor/region_index.h"

namespace c2mn {

/// \brief Minimum-indoor-walking-distance (MIWD) oracle [17].
///
/// Answers two kinds of queries used by the C2MN feature functions:
///  - point-to-point MIWD d_I(p, q): Euclidean inside one partition,
///    otherwise the best route through the pre-computed door-to-door
///    distance matrix;
///  - expected region-to-region distance E_{p in r_i, q in r_j}[d_I(p, q)]
///    (features f_st, Eq. 4 and f_sc, Eq. 5), approximated by averaging
///    MIWD between area-weighted partition centroids and cached in a
///    region x region matrix.
class DistanceOracle {
 public:
  /// `graph` must outlive the oracle; all-pairs door distances are
  /// computed on construction if not already present.
  DistanceOracle(const Floorplan& plan, BaseGraph* graph,
                 const RegionIndex* index);

  /// Point-to-point MIWD.  Points outside every partition are snapped to
  /// the nearest partition on their floor; +inf when floors are not
  /// connected.
  double PointToPoint(const IndoorPoint& p, const IndoorPoint& q) const;

  /// Expected region-to-region walking distance; 0 when a == b.
  double RegionToRegion(RegionId a, RegionId b) const {
    return region_matrix_[a][b];
  }

  /// Largest finite entry of the region matrix; used to normalize
  /// distance-based features.
  double max_region_distance() const { return max_region_distance_; }

 private:
  struct RepPoint {
    IndoorPoint point;
    PartitionId partition;
    double weight;  // Area fraction of its region.
  };

  PartitionId ResolvePartition(const IndoorPoint& p) const;
  double PointToPointResolved(const IndoorPoint& p, PartitionId pp,
                              const IndoorPoint& q, PartitionId qp) const;
  void BuildRegionMatrix();

  const Floorplan& plan_;
  BaseGraph* graph_;
  const RegionIndex* index_;
  std::vector<std::vector<RepPoint>> region_reps_;
  std::vector<std::vector<double>> region_matrix_;
  double max_region_distance_ = 0.0;
};

}  // namespace c2mn

#endif  // C2MN_INDOOR_DISTANCE_H_
