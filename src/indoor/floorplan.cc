#include "indoor/floorplan.h"

#include <algorithm>
#include <cassert>

namespace c2mn {

namespace {
const std::vector<PartitionId> kEmptyPartitionList;
}  // namespace

PartitionId Floorplan::PartitionAt(const IndoorPoint& p) const {
  if (p.floor < 0 || p.floor >= num_floors_) return kInvalidId;
  for (PartitionId pid : floor_partitions_[p.floor]) {
    if (partitions_[pid].shape.Contains(p.xy)) return pid;
  }
  return kInvalidId;
}

RegionId Floorplan::RegionAt(const IndoorPoint& p) const {
  const PartitionId pid = PartitionAt(p);
  if (pid == kInvalidId) return kInvalidId;
  return partitions_[pid].region;
}

double Floorplan::DistanceToRegionOnFloor(const IndoorPoint& p,
                                          RegionId r) const {
  assert(r >= 0 && r < static_cast<RegionId>(regions_.size()));
  double best = 1e300;
  for (PartitionId pid : regions_[r].partitions) {
    const Partition& part = partitions_[pid];
    if (part.floor != p.floor) continue;
    best = std::min(best, part.shape.Distance(p.xy));
  }
  return best;
}

const std::vector<PartitionId>& Floorplan::PartitionsOnFloor(FloorId f) const {
  if (f < 0 || f >= num_floors_) return kEmptyPartitionList;
  return floor_partitions_[f];
}

PartitionId FloorplanBuilder::AddPartition(FloorId floor, PartitionKind kind,
                                           Polygon shape) {
  Partition part;
  part.id = static_cast<PartitionId>(plan_.partitions_.size());
  part.floor = floor;
  part.kind = kind;
  part.shape = std::move(shape);
  plan_.partitions_.push_back(std::move(part));
  return plan_.partitions_.back().id;
}

DoorId FloorplanBuilder::AddDoor(PartitionId a, PartitionId b, const Vec2& at) {
  assert(a >= 0 && a < static_cast<PartitionId>(plan_.partitions_.size()));
  assert(b >= 0 && b < static_cast<PartitionId>(plan_.partitions_.size()));
  Door door;
  door.id = static_cast<DoorId>(plan_.doors_.size());
  door.partition_a = a;
  door.partition_b = b;
  door.position_a = IndoorPoint(at, plan_.partitions_[a].floor);
  door.position_b = IndoorPoint(at, plan_.partitions_[b].floor);
  door.traversal_cost = 0.0;
  plan_.partitions_[a].doors.push_back(door.id);
  plan_.partitions_[b].doors.push_back(door.id);
  plan_.doors_.push_back(door);
  return door.id;
}

DoorId FloorplanBuilder::AddStairDoor(PartitionId lower, PartitionId upper,
                                      const Vec2& at, double traversal_cost) {
  assert(traversal_cost >= 0.0);
  const DoorId id = AddDoor(lower, upper, at);
  plan_.doors_[id].traversal_cost = traversal_cost;
  return id;
}

RegionId FloorplanBuilder::AddRegion(std::string name,
                                     std::vector<PartitionId> partitions) {
  SemanticRegion region;
  region.id = static_cast<RegionId>(plan_.regions_.size());
  region.name = std::move(name);
  region.partitions = std::move(partitions);
  plan_.regions_.push_back(std::move(region));
  return plan_.regions_.back().id;
}

Result<Floorplan> FloorplanBuilder::Build() {
  Floorplan& plan = plan_;
  if (plan.partitions_.empty()) {
    return Status::InvalidArgument("floorplan has no partitions");
  }
  // Compute floor count and per-floor lists.
  int max_floor = 0;
  for (const Partition& part : plan.partitions_) {
    if (part.floor < 0) {
      return Status::InvalidArgument("negative floor number");
    }
    max_floor = std::max(max_floor, part.floor);
  }
  plan.num_floors_ = max_floor + 1;
  plan.floor_partitions_.assign(plan.num_floors_, {});
  for (const Partition& part : plan.partitions_) {
    plan.floor_partitions_[part.floor].push_back(part.id);
  }
  // Validate doors.
  for (const Door& door : plan.doors_) {
    if (door.partition_a == door.partition_b) {
      return Status::InvalidArgument("door connects a partition to itself");
    }
    const Partition& a = plan.partitions_[door.partition_a];
    const Partition& b = plan.partitions_[door.partition_b];
    const int dfloor = std::abs(a.floor - b.floor);
    if (door.traversal_cost == 0.0 && dfloor != 0) {
      return Status::InvalidArgument(
          "level door connects different floors; use AddStairDoor");
    }
    if (dfloor > 1) {
      return Status::InvalidArgument(
          "stair door must connect adjacent floors");
    }
  }
  // Validate regions and fill derived fields.
  std::vector<bool> assigned(plan.partitions_.size(), false);
  for (SemanticRegion& region : plan.regions_) {
    if (region.partitions.empty()) {
      return Status::InvalidArgument("semantic region '" + region.name +
                                     "' has no partitions");
    }
    double area = 0.0;
    Vec2 weighted{0, 0};
    FloorId floor = plan.partitions_[region.partitions.front()].floor;
    for (PartitionId pid : region.partitions) {
      if (pid < 0 || pid >= static_cast<PartitionId>(plan.partitions_.size())) {
        return Status::InvalidArgument("region references unknown partition");
      }
      if (assigned[pid]) {
        return Status::InvalidArgument(
            "regions overlap: partition assigned twice");
      }
      assigned[pid] = true;
      plan.partitions_[pid].region = region.id;
      const double a = plan.partitions_[pid].shape.Area();
      area += a;
      weighted = weighted + plan.partitions_[pid].shape.Centroid() * a;
    }
    region.area = area;
    region.centroid =
        IndoorPoint(area > 0 ? weighted / area : weighted, floor);
  }
  return std::move(plan_);
}

}  // namespace c2mn
