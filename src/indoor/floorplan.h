#ifndef C2MN_INDOOR_FLOORPLAN_H_
#define C2MN_INDOOR_FLOORPLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"
#include "indoor/ids.h"

namespace c2mn {

/// \brief Functional kind of an indoor partition.
enum class PartitionKind {
  kRoom,       ///< An enclosed unit (e.g. a shop).
  kHallway,    ///< Circulation space.
  kStaircase,  ///< Vertical circulation; connected across floors.
};

/// \brief An indoor partition: an atomic walled unit of one floor
/// (Section II of the paper: "an indoor space can be divided into a number
/// of indoor partitions like rooms and hallways by walls and doors").
struct Partition {
  PartitionId id = kInvalidId;
  FloorId floor = 0;
  PartitionKind kind = PartitionKind::kRoom;
  Polygon shape;
  /// The semantic region this partition belongs to, or kInvalidId when it
  /// is plain circulation space.
  RegionId region = kInvalidId;
  /// Doors on this partition's boundary.
  std::vector<DoorId> doors;
};

/// \brief A door connecting exactly two partitions.
///
/// Same-floor doors have one physical position; staircase connectors join
/// partitions on adjacent floors and carry a positive traversal cost (the
/// walking length of the stairs).
struct Door {
  DoorId id = kInvalidId;
  PartitionId partition_a = kInvalidId;
  PartitionId partition_b = kInvalidId;
  /// Physical position of the door on partition_a's floor.
  IndoorPoint position_a;
  /// Position on partition_b's floor (equals position_a for level doors).
  IndoorPoint position_b;
  /// Extra walking distance for crossing (stairs length); 0 for level doors.
  double traversal_cost = 0.0;

  bool IsInterFloor() const { return position_a.floor != position_b.floor; }
  /// The door's position as seen from partition `p` (must be a or b).
  const IndoorPoint& PositionIn(PartitionId p) const {
    return p == partition_a ? position_a : position_b;
  }
  /// The partition on the other side of `p`.
  PartitionId Opposite(PartitionId p) const {
    return p == partition_a ? partition_b : partition_a;
  }
};

/// \brief A semantic region: one or more partitions designated by the data
/// analyst (e.g. a shop), per Definition 2.  Regions do not overlap.
struct SemanticRegion {
  RegionId id = kInvalidId;
  std::string name;
  std::vector<PartitionId> partitions;
  /// Total floor area in m^2 (sum over member partitions).
  double area = 0.0;
  /// Area-weighted centroid of member partitions.
  IndoorPoint centroid;
};

/// \brief The complete static model of an indoor venue: partitions, doors,
/// semantic regions, plus lookup utilities.
///
/// Instances are immutable after FloorplanBuilder::Build(); all annotation
/// and simulation components share one Floorplan by const reference.
class Floorplan {
 public:
  const std::vector<Partition>& partitions() const { return partitions_; }
  const std::vector<Door>& doors() const { return doors_; }
  const std::vector<SemanticRegion>& regions() const { return regions_; }
  int num_floors() const { return num_floors_; }

  const Partition& partition(PartitionId id) const { return partitions_[id]; }
  const Door& door(DoorId id) const { return doors_[id]; }
  const SemanticRegion& region(RegionId id) const { return regions_[id]; }

  /// Partition containing `p`, or kInvalidId if `p` lies in no partition
  /// (outside the building footprint).  Linear in the partitions of the
  /// floor; use RegionIndex for hot paths.
  PartitionId PartitionAt(const IndoorPoint& p) const;

  /// Semantic region containing `p`, or kInvalidId.
  RegionId RegionAt(const IndoorPoint& p) const;

  /// Minimum horizontal distance from `p` to region `r` considering only
  /// partitions on `p.floor`; +inf when the region has no footprint there.
  double DistanceToRegionOnFloor(const IndoorPoint& p, RegionId r) const;

  /// Partitions on the given floor.
  const std::vector<PartitionId>& PartitionsOnFloor(FloorId f) const;

 private:
  friend class FloorplanBuilder;

  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
  std::vector<SemanticRegion> regions_;
  std::vector<std::vector<PartitionId>> floor_partitions_;
  int num_floors_ = 0;
};

/// \brief Incremental builder for Floorplan with validity checking.
class FloorplanBuilder {
 public:
  /// Adds a partition and returns its id.
  PartitionId AddPartition(FloorId floor, PartitionKind kind, Polygon shape);

  /// Adds a level door between two partitions on the same floor at `at`.
  DoorId AddDoor(PartitionId a, PartitionId b, const Vec2& at);

  /// Adds a staircase connector between partitions on adjacent floors.
  DoorId AddStairDoor(PartitionId lower, PartitionId upper, const Vec2& at,
                      double traversal_cost);

  /// Declares a semantic region from the given partitions.
  RegionId AddRegion(std::string name, std::vector<PartitionId> partitions);

  /// Validates the model and produces an immutable Floorplan.
  /// Fails when doors reference missing partitions, regions overlap, or a
  /// region has no partitions.
  Result<Floorplan> Build();

 private:
  Floorplan plan_;
};

}  // namespace c2mn

#endif  // C2MN_INDOOR_FLOORPLAN_H_
