#ifndef C2MN_INDOOR_IDS_H_
#define C2MN_INDOOR_IDS_H_

#include <cstdint>

#include "geometry/vec2.h"

namespace c2mn {

/// Identifier types for indoor entities.  Sequential, 0-based; kInvalidId
/// marks "no entity".
using PartitionId = int32_t;
using DoorId = int32_t;
using RegionId = int32_t;
using FloorId = int32_t;

inline constexpr int32_t kInvalidId = -1;

/// \brief A 3-D indoor location: a 2-D point plus a floor number, the
/// `l = (x, y, f)` triplet from Definition 1 of the paper.
struct IndoorPoint {
  Vec2 xy;
  FloorId floor = 0;

  IndoorPoint() = default;
  IndoorPoint(double x, double y, FloorId f) : xy(x, y), floor(f) {}
  IndoorPoint(const Vec2& p, FloorId f) : xy(p), floor(f) {}

  bool operator==(const IndoorPoint& o) const {
    return xy == o.xy && floor == o.floor;
  }
};

/// Horizontal Euclidean distance, ignoring the floor difference.  Used by
/// features that compare raw location estimates (f_sc, f_ec).
inline double HorizontalDistance(const IndoorPoint& a, const IndoorPoint& b) {
  return Distance(a.xy, b.xy);
}

}  // namespace c2mn

#endif  // C2MN_INDOOR_IDS_H_
