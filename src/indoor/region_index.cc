#include "indoor/region_index.h"

#include <algorithm>

namespace c2mn {

RegionIndex::RegionIndex(const Floorplan& plan) : plan_(plan) {
  floor_trees_.resize(plan.num_floors());
  for (FloorId f = 0; f < plan.num_floors(); ++f) {
    std::vector<RTree::Entry> entries;
    for (PartitionId pid : plan.PartitionsOnFloor(f)) {
      entries.push_back({plan.partition(pid).shape.bbox(), pid});
    }
    floor_trees_[f] = std::make_unique<RTree>(std::move(entries));
  }
}

PartitionId RegionIndex::PartitionAt(const IndoorPoint& p) const {
  if (p.floor < 0 || p.floor >= static_cast<FloorId>(floor_trees_.size())) {
    return kInvalidId;
  }
  BoundingBox point_box;
  point_box.Extend(p.xy);
  for (int32_t pid : floor_trees_[p.floor]->Search(point_box)) {
    if (plan_.partition(pid).shape.Contains(p.xy)) return pid;
  }
  return kInvalidId;
}

RegionId RegionIndex::RegionAt(const IndoorPoint& p) const {
  const PartitionId pid = PartitionAt(p);
  return pid == kInvalidId ? kInvalidId : plan_.partition(pid).region;
}

std::vector<RegionIndex::RegionDistance> RegionIndex::NearestRegions(
    const IndoorPoint& p, size_t k, double max_distance) const {
  std::vector<RegionDistance> out;
  NearestRegionsInto(p, k, max_distance, &out);
  return out;
}

void RegionIndex::NearestRegionsInto(const IndoorPoint& p, size_t k,
                                     double max_distance,
                                     std::vector<RegionDistance>* out) const {
  out->clear();
  if (p.floor < 0 || p.floor >= static_cast<FloorId>(floor_trees_.size())) {
    return;
  }
  out->reserve(k);
  const RTree& tree = *floor_trees_[p.floor];
  // Results are few (<= k, typically single digits), so deduplicating the
  // multi-partition regions by scanning the output beats a hash set.
  // Both callbacks capture one pointer so they fit std::function's inline
  // buffer — this query runs per record of every decoded sequence and
  // must not heap-allocate its closures.
  struct Ctx {
    const Floorplan* plan;
    Vec2 xy;
    double max_distance;
    size_t k;
    std::vector<RegionDistance>* out;
  };
  const Ctx ctx{&plan_, p.xy, max_distance, k, out};
  tree.NearestTraversal(
      p.xy,
      [&ctx](int32_t pid) {
        return ctx.plan->partition(pid).shape.Distance(ctx.xy);
      },
      [&ctx](int32_t pid, double dist) {
        if (dist > ctx.max_distance) return false;  // Ordered: nothing closer.
        const RegionId region = ctx.plan->partition(pid).region;
        if (region != kInvalidId) {
          const bool seen =
              std::any_of(ctx.out->begin(), ctx.out->end(),
                          [region](const RegionDistance& rd) {
                            return rd.region == region;
                          });
          if (!seen) ctx.out->push_back({region, dist});
        }
        return ctx.out->size() < ctx.k;
      },
      // Prune the traversal at the query radius: subtrees beyond it can
      // only produce visits the callback above would reject.
      max_distance);
}

RegionId RegionIndex::NearestRegion(const IndoorPoint& p) const {
  auto nearest = NearestRegions(p, 1);
  return nearest.empty() ? kInvalidId : nearest.front().region;
}

}  // namespace c2mn
