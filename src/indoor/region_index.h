#ifndef C2MN_INDOOR_REGION_INDEX_H_
#define C2MN_INDOOR_REGION_INDEX_H_

#include <memory>
#include <vector>

#include "indoor/floorplan.h"
#include "indoor/rtree.h"

namespace c2mn {

/// \brief Spatial lookup over partitions and semantic regions, one R-tree
/// per floor (partitions never span floors).
///
/// Serves three hot paths of the annotation pipeline: exact point-location
/// (which partition/region contains a fix), nearest-region queries (used by
/// the SMoT/SAP baselines and ground-truth labeling), and candidate-region
/// generation for the probabilistic models.
class RegionIndex {
 public:
  explicit RegionIndex(const Floorplan& plan);

  /// Partition containing `p`, or kInvalidId.
  PartitionId PartitionAt(const IndoorPoint& p) const;

  /// Semantic region containing `p`, or kInvalidId (circulation space).
  RegionId RegionAt(const IndoorPoint& p) const;

  /// A region id together with its horizontal distance from a query point.
  struct RegionDistance {
    RegionId region;
    double distance;
  };

  /// The `k` distinct semantic regions on `p.floor` nearest to `p`
  /// (distance 0 when `p` is inside), closest first.  Regions farther than
  /// `max_distance` are not reported.
  std::vector<RegionDistance> NearestRegions(
      const IndoorPoint& p, size_t k,
      double max_distance = 1e300) const;

  /// NearestRegions writing into a caller-owned vector, so per-record
  /// candidate generation can recycle one buffer instead of allocating a
  /// result vector (and a dedup set) per query.  `out` is cleared first.
  void NearestRegionsInto(const IndoorPoint& p, size_t k, double max_distance,
                          std::vector<RegionDistance>* out) const;

  /// The single nearest region on `p.floor`; kInvalidId only when the
  /// floor holds no semantic region at all.
  RegionId NearestRegion(const IndoorPoint& p) const;

 private:
  const Floorplan& plan_;
  std::vector<std::unique_ptr<RTree>> floor_trees_;  // Indexed by floor.
};

}  // namespace c2mn

#endif  // C2MN_INDOOR_REGION_INDEX_H_
