#include "indoor/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c2mn {

RTree::RTree(std::vector<Entry> entries, int max_fanout)
    : entries_(std::move(entries)),
      max_fanout_(max_fanout),
      num_entries_(entries_.size()) {
  assert(max_fanout_ >= 2);
  if (entries_.empty()) return;

  // STR: sort by x-center, slice into vertical slabs, sort each slab by
  // y-center, pack runs of max_fanout entries into leaves.
  std::vector<int32_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  auto center_x = [&](int32_t i) { return entries_[i].box.Center().x; };
  auto center_y = [&](int32_t i) { return entries_[i].box.Center().y; };
  std::sort(order.begin(), order.end(),
            [&](int32_t a, int32_t b) { return center_x(a) < center_x(b); });

  const size_t n = entries_.size();
  const size_t leaves =
      (n + max_fanout_ - 1) / static_cast<size_t>(max_fanout_);
  const size_t slabs =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(leaves))));
  const size_t slab_size =
      (n + slabs - 1) / slabs;

  std::vector<int32_t> leaf_ids;
  for (size_t s = 0; s < n; s += slab_size) {
    const size_t end = std::min(n, s + slab_size);
    std::sort(order.begin() + s, order.begin() + end,
              [&](int32_t a, int32_t b) { return center_y(a) < center_y(b); });
    for (size_t i = s; i < end; i += max_fanout_) {
      Node leaf;
      leaf.is_leaf = true;
      const size_t stop = std::min(end, i + max_fanout_);
      for (size_t j = i; j < stop; ++j) {
        leaf.children.push_back(order[j]);
        leaf.box.Extend(entries_[order[j]].box);
      }
      leaf_ids.push_back(static_cast<int32_t>(nodes_.size()));
      nodes_.push_back(std::move(leaf));
    }
  }

  std::vector<int32_t> level = leaf_ids;
  while (level.size() > 1) level = PackLevel(level);
  root_ = level.front();
}

std::vector<int32_t> RTree::PackLevel(const std::vector<int32_t>& child_ids) {
  std::vector<int32_t> sorted = child_ids;
  std::sort(sorted.begin(), sorted.end(), [&](int32_t a, int32_t b) {
    return nodes_[a].box.Center().x < nodes_[b].box.Center().x;
  });
  const size_t n = sorted.size();
  const size_t parents =
      (n + max_fanout_ - 1) / static_cast<size_t>(max_fanout_);
  const size_t slabs =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(parents))));
  const size_t slab_size = (n + slabs - 1) / slabs;

  std::vector<int32_t> out;
  for (size_t s = 0; s < n; s += slab_size) {
    const size_t end = std::min(n, s + slab_size);
    std::sort(sorted.begin() + s, sorted.begin() + end,
              [&](int32_t a, int32_t b) {
                return nodes_[a].box.Center().y < nodes_[b].box.Center().y;
              });
    for (size_t i = s; i < end; i += max_fanout_) {
      Node parent;
      parent.is_leaf = false;
      const size_t stop = std::min(end, i + max_fanout_);
      for (size_t j = i; j < stop; ++j) {
        parent.children.push_back(sorted[j]);
        parent.box.Extend(nodes_[sorted[j]].box);
      }
      out.push_back(static_cast<int32_t>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
  }
  return out;
}

std::vector<int32_t> RTree::Search(const BoundingBox& query) const {
  std::vector<int32_t> result;
  if (root_ < 0) return result;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.is_leaf) {
      for (int32_t e : node.children) {
        if (entries_[e].box.Intersects(query)) {
          result.push_back(entries_[e].payload);
        }
      }
    } else {
      for (int32_t c : node.children) {
        if (nodes_[c].box.Intersects(query)) stack.push_back(c);
      }
    }
  }
  return result;
}

std::vector<std::pair<int32_t, double>> RTree::NearestK(
    const Vec2& p, size_t k,
    const std::function<double(int32_t)>& refine) const {
  std::vector<std::pair<int32_t, double>> out;
  NearestTraversal(p, refine, [&](int32_t payload, double dist) {
    out.emplace_back(payload, dist);
    return out.size() < k;
  });
  return out;
}

}  // namespace c2mn
