#ifndef C2MN_INDOOR_RTREE_H_
#define C2MN_INDOOR_RTREE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "geometry/polygon.h"

namespace c2mn {

/// \brief A static STR-packed R-tree over rectangles with integer payloads.
///
/// The paper indexes all partitions and their semantic regions with an
/// R-tree to speed up feature extraction (Section V-B1).  This
/// implementation bulk-loads with the Sort-Tile-Recursive algorithm and
/// supports box-intersection queries and incremental best-first
/// nearest-neighbor traversal with user-supplied distance refinement.
class RTree {
 public:
  struct Entry {
    BoundingBox box;
    int32_t payload = 0;
  };

  /// Bulk-loads the tree; `max_fanout` children per internal node.
  explicit RTree(std::vector<Entry> entries, int max_fanout = 16);

  size_t size() const { return num_entries_; }

  /// Collects payloads of all entries whose box intersects `query`.
  std::vector<int32_t> Search(const BoundingBox& query) const;

  /// Visits entries in non-decreasing order of refined distance from `p`.
  ///
  /// `refine(payload)` returns the exact distance of the payload's object
  /// from the query point (at least the bbox distance, or the traversal is
  /// not guaranteed to be ordered).  `visit(payload, dist)` returns false
  /// to stop the traversal.  `max_dist` prunes the search: subtrees,
  /// entries, and refined results farther than it are never enqueued, so a
  /// bounded-radius query touches only the part of the tree inside the
  /// radius.  Entries within `max_dist` are visited in the exact same
  /// order as the unbounded traversal; entries beyond it are simply never
  /// visited (callers that stop at a radius see identical results).
  ///
  /// Templated over the callables (not std::function) so the per-item
  /// callback dispatch inlines: this traversal runs for every record of
  /// every decoded sequence and the indirect calls dominated its cost.
  template <typename Refine, typename Visit>
  void NearestTraversal(
      const Vec2& p, const Refine& refine, const Visit& visit,
      double max_dist = std::numeric_limits<double>::infinity()) const {
    if (root_ < 0) return;
    // Heap storage is thread-local so repeated traversals reuse one warmed
    // buffer instead of allocating per query; push_heap/pop_heap on the
    // vector directly keeps its capacity ours (std::priority_queue would
    // swallow it).  Bounded: each node enters the heap at most once and
    // each entry at most twice (raw popped before its refined re-insert).
    thread_local std::vector<HeapItem> heap;
    heap.clear();
    heap.reserve(nodes_.size() + num_entries_ + 1);
    const auto push = [max_dist](std::vector<HeapItem>* h, HeapItem item) {
      if (item.dist > max_dist) return;
      h->push_back(item);
      std::push_heap(h->begin(), h->end(), std::greater<>{});
    };
    push(&heap, {nodes_[root_].box.Distance(p), 0, root_});
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      const HeapItem item = heap.back();
      heap.pop_back();
      if (item.kind == 0) {
        const Node& node = nodes_[item.id];
        if (node.is_leaf) {
          for (int32_t e : node.children) {
            push(&heap, {entries_[e].box.Distance(p), 1, e});
          }
        } else {
          for (int32_t c : node.children) {
            push(&heap, {nodes_[c].box.Distance(p), 0, c});
          }
        }
      } else if (item.kind == 1) {
        const double exact = refine(entries_[item.id].payload);
        push(&heap, {exact, 2, item.id});
      } else {
        if (!visit(entries_[item.id].payload, item.dist)) return;
      }
    }
  }

  /// Convenience: the k nearest payloads with their refined distances.
  std::vector<std::pair<int32_t, double>> NearestK(
      const Vec2& p, size_t k,
      const std::function<double(int32_t)>& refine) const;

 private:
  struct Node {
    BoundingBox box;
    bool is_leaf = false;
    /// Children node indices (internal) or entry indices (leaf).
    std::vector<int32_t> children;
  };

  /// Best-first queue item: distance, kind (0 = node, 1 = raw entry,
  /// 2 = refined entry), id.  Raw entries are keyed by bbox distance;
  /// popping one refines it and re-inserts, so reported order is exact.
  struct HeapItem {
    double dist;
    int kind;
    int32_t id;
    bool operator>(const HeapItem& o) const { return dist > o.dist; }
  };

  /// Builds one tree level above `child_ids` (indices into nodes_);
  /// returns ids of the created parents.
  std::vector<int32_t> PackLevel(const std::vector<int32_t>& child_ids);

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  int max_fanout_;
  size_t num_entries_ = 0;
};

}  // namespace c2mn

#endif  // C2MN_INDOOR_RTREE_H_
