#ifndef C2MN_INDOOR_RTREE_H_
#define C2MN_INDOOR_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/polygon.h"

namespace c2mn {

/// \brief A static STR-packed R-tree over rectangles with integer payloads.
///
/// The paper indexes all partitions and their semantic regions with an
/// R-tree to speed up feature extraction (Section V-B1).  This
/// implementation bulk-loads with the Sort-Tile-Recursive algorithm and
/// supports box-intersection queries and incremental best-first
/// nearest-neighbor traversal with user-supplied distance refinement.
class RTree {
 public:
  struct Entry {
    BoundingBox box;
    int32_t payload = 0;
  };

  /// Bulk-loads the tree; `max_fanout` children per internal node.
  explicit RTree(std::vector<Entry> entries, int max_fanout = 16);

  size_t size() const { return num_entries_; }

  /// Collects payloads of all entries whose box intersects `query`.
  std::vector<int32_t> Search(const BoundingBox& query) const;

  /// Visits entries in non-decreasing order of refined distance from `p`.
  ///
  /// `refine(payload)` returns the exact distance of the payload's object
  /// from the query point (at least the bbox distance, or the traversal is
  /// not guaranteed to be ordered).  `visit(payload, dist)` returns false
  /// to stop the traversal.
  void NearestTraversal(
      const Vec2& p, const std::function<double(int32_t)>& refine,
      const std::function<bool(int32_t, double)>& visit) const;

  /// Convenience: the k nearest payloads with their refined distances.
  std::vector<std::pair<int32_t, double>> NearestK(
      const Vec2& p, size_t k,
      const std::function<double(int32_t)>& refine) const;

 private:
  struct Node {
    BoundingBox box;
    bool is_leaf = false;
    /// Children node indices (internal) or entry indices (leaf).
    std::vector<int32_t> children;
  };

  /// Builds one tree level above `child_ids` (indices into nodes_);
  /// returns ids of the created parents.
  std::vector<int32_t> PackLevel(const std::vector<int32_t>& child_ids);

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  int max_fanout_;
  size_t num_entries_ = 0;
};

}  // namespace c2mn

#endif  // C2MN_INDOOR_RTREE_H_
