#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace c2mn {
namespace obs {

namespace internal {

unsigned ThreadStripe() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned stripe = next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace internal

// ------------------------------------------------------------------ Gauge

uint64_t Gauge::Pack(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Unpack(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// -------------------------------------------------------------- Histogram

namespace {

uint64_t PackDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double UnpackDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// CAS-folds `value` into the atomic double at `bits` through `fold`
/// (sum, min, or max).  Lock-free; the loop is one iteration long unless
/// another writer landed between the load and the CAS.
template <typename Fold>
void FoldDouble(std::atomic<uint64_t>* bits, double value, Fold fold) {
  uint64_t expected = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(
      expected, PackDouble(fold(UnpackDouble(expected), value)),
      std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(const Config& config)
    : min_value_(config.min_value > 0.0 ? config.min_value : 1e-6),
      growth_(config.growth > 1.0 ? config.growth : 2.0),
      log_min_(std::log(min_value_)),
      inv_log_growth_(1.0 / std::log(growth_)),
      buckets_(static_cast<size_t>(std::max(
          1, static_cast<int>(std::ceil(
                 (std::log(std::max(config.max_value, min_value_ * growth_)) -
                  log_min_) *
                 inv_log_growth_))))),
      sum_bits_(PackDouble(0.0)),
      min_bits_(PackDouble(std::numeric_limits<double>::infinity())),
      max_bits_(PackDouble(-std::numeric_limits<double>::infinity())) {}

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) {
    // Casting NaN/inf to a bucket index is undefined behavior, and a NaN
    // would poison sum/min/max forever; count it and stop.
    non_finite_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t index = 0;
  if (value > min_value_) {
    const int i =
        static_cast<int>((std::log(value) - log_min_) * inv_log_growth_);
    index = std::min(static_cast<size_t>(std::max(i, 0)), buckets_.size() - 1);
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  FoldDouble(&sum_bits_, value, [](double a, double b) { return a + b; });
  FoldDouble(&min_bits_, value,
             [](double a, double b) { return b < a ? b : a; });
  FoldDouble(&max_bits_, value,
             [](double a, double b) { return b > a ? b : a; });
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.min_value = min_value_;
  snap.growth = growth_;
  snap.buckets.resize(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.non_finite = non_finite_.load(std::memory_order_relaxed);
  snap.sum = UnpackDouble(sum_bits_.load(std::memory_order_relaxed));
  const double min = UnpackDouble(min_bits_.load(std::memory_order_relaxed));
  const double max = UnpackDouble(max_bits_.load(std::memory_order_relaxed));
  snap.min = snap.count > 0 ? min : 0.0;
  snap.max = snap.count > 0 ? max : 0.0;
  return snap;
}

double HistogramSnapshot::BucketUpper(size_t i) const {
  return min_value * std::pow(growth, static_cast<double>(i) + 1.0);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::max(0.0, std::min(q, 1.0));
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double frac =
          (rank - before) / static_cast<double>(buckets[i]);
      const double lower =
          min_value * std::pow(growth, static_cast<double>(i));
      const double lo = std::max(lower, min);
      const double hi = std::min(BucketUpper(i), max);
      return lo + std::max(0.0, std::min(frac, 1.0)) * (hi - lo);
    }
  }
  return max;
}

// --------------------------------------------------------------- Registry

namespace {

/// Serializes a sorted label set into the registry key / render suffix:
/// {a="1",b="2"}.  Values are escaped per the Prometheus text format.
std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    for (const char c : labels[i].second) {
      if (c == '\\' || c == '"') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

LabelSet SortedLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string MetricKey(const std::string& name, const LabelSet& sorted) {
  return name + RenderLabels(sorted);
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

/// Formats a double the way both renderers need it: integral values
/// without a fractional tail, everything else with enough digits to
/// round-trip.  Never emits inf/nan bare (JSON would reject them).
std::string FormatNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJsonString(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

namespace {

// One leaked detached instance per kind, shared by every kind-conflicting
// call site: conflicting callers still get a safe, never-exported handle,
// without allocating a fresh (and leaked) metric on each call.
Counter* DetachedCounter() {
  static Counter* detached = new Counter();
  return detached;
}

Gauge* DetachedGauge() {
  static Gauge* detached = new Gauge();
  return detached;
}

Histogram* DetachedHistogram() {
  static Histogram* detached = new Histogram(Histogram::Config{});
  return detached;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: metrics handles cached in function-local
  // statics across the library must stay valid through static
  // destruction order.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help, MetricKind kind,
    const LabelSet& labels, const Histogram::Config* config) {
  const LabelSet sorted = SortedLabels(labels);
  const std::string key = MetricKey(name, sorted);
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second->kind != kind) {
      std::call_once(kind_conflict_logged_, [&] {
        C2MN_LOG_ERROR << "metrics: " << key << " re-registered as "
                       << KindName(kind) << " (was "
                       << KindName(it->second->kind)
                       << "); returning a detached metric (further kind "
                          "conflicts in this registry are silent)";
      });
      return nullptr;
    }
    return it->second.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  entry->labels = sorted;
  // Construct the kind-appropriate sub-metric before the entry becomes
  // visible: once inserted, an Entry is immutable under mu_, so readers
  // (Snapshot, the renderers) never see a null sub-metric and Get* never
  // mutates an entry outside the lock.
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(
          config != nullptr ? *config : Histogram::Config{});
      break;
  }
  Entry* raw = entry.get();
  entries_.emplace(key, std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const LabelSet& labels) {
  Entry* entry = FindOrCreate(name, help, MetricKind::kCounter, labels,
                              /*config=*/nullptr);
  return entry != nullptr ? entry->counter.get() : DetachedCounter();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const LabelSet& labels) {
  Entry* entry = FindOrCreate(name, help, MetricKind::kGauge, labels,
                              /*config=*/nullptr);
  return entry != nullptr ? entry->gauge.get() : DetachedGauge();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const Histogram::Config& config,
                                         const LabelSet& labels) {
  Entry* entry =
      FindOrCreate(name, help, MetricKind::kHistogram, labels, &config);
  return entry != nullptr ? entry->histogram.get() : DetachedHistogram();
}

size_t MetricsRegistry::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  MutexLock lock(&mu_);
  out.reserve(entries_.size());
  // entries_ is an ordered map keyed by name+labels, so the snapshot is
  // already deterministically sorted.
  for (const auto& [key, entry] : entries_) {
    (void)key;
    MetricSnapshot snap;
    snap.name = entry->name;
    snap.help = entry->help;
    snap.kind = entry->kind;
    snap.labels = entry->labels;
    switch (entry->kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(entry->counter->Value());
        break;
      case MetricKind::kGauge:
        snap.value = entry->gauge->Value();
        break;
      case MetricKind::kHistogram:
        snap.histogram = entry->histogram->Snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const std::vector<MetricSnapshot> metrics = Snapshot();
  std::string out;
  std::string last_header;
  for (const MetricSnapshot& m : metrics) {
    // One HELP/TYPE header per metric family (same name, many label
    // sets); entries are sorted, so families are contiguous.
    if (m.name != last_header) {
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " " + KindName(m.kind) + "\n";
      last_header = m.name;
    }
    if (m.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = m.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        cumulative += h.buckets[i];
        if (h.buckets[i] == 0 && i + 1 < h.buckets.size()) continue;
        LabelSet with_le = m.labels;
        with_le.emplace_back("le", FormatNumber(h.BucketUpper(i)));
        out += m.name + "_bucket" + RenderLabels(with_le) + " " +
               std::to_string(cumulative) + "\n";
      }
      LabelSet inf = m.labels;
      inf.emplace_back("le", "+Inf");
      out += m.name + "_bucket" + RenderLabels(inf) + " " +
             std::to_string(h.count) + "\n";
      out += m.name + "_sum" + RenderLabels(m.labels) + " " +
             FormatNumber(h.sum) + "\n";
      out += m.name + "_count" + RenderLabels(m.labels) + " " +
             std::to_string(h.count) + "\n";
    } else {
      out += m.name + RenderLabels(m.labels) + " " + FormatNumber(m.value) +
             "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  const std::vector<MetricSnapshot> metrics = Snapshot();
  std::string out = "{\n  \"metrics\": [\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& m = metrics[i];
    out += "    {\"name\": \"" + EscapeJsonString(m.name) + "\", \"kind\": \"" +
           KindName(m.kind) + "\"";
    if (!m.labels.empty()) {
      out += ", \"labels\": {";
      for (size_t l = 0; l < m.labels.size(); ++l) {
        if (l > 0) out += ", ";
        out += "\"" + EscapeJsonString(m.labels[l].first) + "\": \"" +
               EscapeJsonString(m.labels[l].second) + "\"";
      }
      out += "}";
    }
    if (m.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = m.histogram;
      out += ", \"count\": " + std::to_string(h.count);
      out += ", \"sum\": " + FormatNumber(h.sum);
      out += ", \"min\": " + FormatNumber(h.min);
      out += ", \"max\": " + FormatNumber(h.max);
      out += ", \"mean\": " + FormatNumber(h.Mean());
      out += ", \"p50\": " + FormatNumber(h.Quantile(0.5));
      out += ", \"p90\": " + FormatNumber(h.Quantile(0.9));
      out += ", \"p99\": " + FormatNumber(h.Quantile(0.99));
      if (h.non_finite > 0) {
        out += ", \"non_finite\": " + std::to_string(h.non_finite);
      }
    } else {
      out += ", \"value\": " + FormatNumber(m.value);
    }
    out += "}";
    if (i + 1 < metrics.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace obs
}  // namespace c2mn
