#ifndef C2MN_OBS_METRICS_REGISTRY_H_
#define C2MN_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace c2mn {
namespace obs {

/// \file The process observability substrate: named counters, gauges, and
/// latency histograms registered once and incremented from the hot paths.
///
/// Design constraints (they shape everything below):
///  - Registration is slow-path (mutex + allocation) and idempotent: the
///    same (name, labels) always returns the same handle, so subsystems
///    can register in constructors or function-local statics without
///    coordination.
///  - After registration, every write — Counter::Increment,
///    Gauge::Set/Add, Histogram::Observe — is wait-free on the fast path
///    (relaxed atomics; the histogram's sum/min/max use short CAS loops)
///    and performs ZERO heap allocations, so metrics can live inside the
///    zero-alloc decode invariant the inference benches enforce.
///  - Counters are striped across cache-line-padded atomic cells indexed
///    by a per-thread ordinal, so concurrent shard workers do not ping
///    one cache line per record.
///  - Reads (Value(), Snapshot(), the renderers) are safe from any
///    thread at any time; they see each cell's latest relaxed value.
///
/// Naming scheme (see README "Observability"):
///   c2mn_<subsystem>_<quantity>[_<unit>][_total]
/// with `_total` reserved for monotonic counters and seconds as the
/// canonical duration unit (Prometheus convention).

/// A set of Prometheus-style key/value labels.  Order-insensitive: labels
/// are sorted by key at registration, so {a=1,b=2} and {b=2,a=1} resolve
/// to the same time series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

namespace internal {

/// Per-thread stripe ordinal; assigned on first use, never reused.  Kept
/// small and POD so the thread_local involves no allocation.
unsigned ThreadStripe();

/// One cache-line-padded atomic cell (avoids false sharing between
/// stripes of one counter and between adjacent counters).
struct alignas(64) PaddedCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// \brief A monotonically increasing counter.  Increment is wait-free and
/// allocation-free; Value() folds the stripes.
class Counter {
 public:
  static constexpr unsigned kStripes = 8;

  void Increment(uint64_t n = 1) {
    cells_[internal::ThreadStripe() & (kStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  internal::PaddedCell cells_[kStripes];
};

/// \brief A gauge: a value that goes up and down (queue depth, objective,
/// occupancy).  Set/Add are lock-free; Add is a CAS loop (double has no
/// fetch_add until C++20).
class Gauge {
 public:
  void Set(double value) { bits_.store(Pack(value), std::memory_order_relaxed); }

  void Add(double delta) {
    uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(expected,
                                        Pack(Unpack(expected) + delta),
                                        std::memory_order_relaxed)) {
    }
  }

  double Value() const { return Unpack(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Pack(double v);
  static double Unpack(uint64_t bits);
  std::atomic<uint64_t> bits_{0};  // Pack(0.0) == 0.
};

/// Read-only view of a histogram at one instant, with the same
/// log-interpolated quantile math as common/StreamingHistogram so the
/// two families report comparable p50/p99 figures.
struct HistogramSnapshot {
  double min_value = 0.0;
  double growth = 0.0;
  uint64_t count = 0;
  uint64_t non_finite = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Per-bucket (non-cumulative) counts; bucket i covers
  /// [min_value * growth^i, min_value * growth^(i+1)).
  std::vector<uint64_t> buckets;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  double Quantile(double q) const;
  /// Upper bound of bucket i (the Prometheus `le` value).
  double BucketUpper(size_t i) const;
};

/// \brief A geometric-bucket latency histogram safe for concurrent
/// writers.  Observe() is lock-free and allocation-free: one relaxed
/// fetch_add on the bucket plus CAS folds of sum/min/max.  Only the
/// bucket index is clamped into [min_value, max_value]; sum/min/max fold
/// the raw observed value, so _sum stays the true total even when an
/// outlier lands in the edge bucket.  NaN/inf are counted separately,
/// never bucketed or folded (the int-cast of a NaN is UB, and a NaN
/// would poison the folds).
class Histogram {
 public:
  struct Config {
    double min_value = 1e-6;
    double max_value = 1e3;
    double growth = 2.0;
  };

  explicit Histogram(const Config& config);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;

 private:
  const double min_value_;
  const double growth_;
  const double log_min_;
  const double inv_log_growth_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> non_finite_{0};
  std::atomic<uint64_t> sum_bits_;
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric flattened for the exporters and dashboards.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  LabelSet labels;
  /// Counter (as double) or gauge value; unused for histograms.
  double value = 0.0;
  HistogramSnapshot histogram;
};

/// \brief The registry: owns every metric and renders them.
///
/// `Global()` is the process-wide instance library-level code (data io,
/// the trainer, the decode core) registers into.  Subsystems with
/// per-instance statistics (AnnotationService, AnalyticsEngine) default
/// to a private registry per instance — so two services in one process
/// never fold their counters together — and accept an injected registry
/// (typically `&Global()`) when one unified export is wanted.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed, safe during shutdown).
  static MetricsRegistry& Global();

  /// Registers (or finds) a metric.  Handles are stable for the
  /// registry's lifetime.  Re-registering the same (name, labels) with a
  /// different kind is a programming error: the registry logs the first
  /// conflict (once per registry) and returns a shared detached instance
  /// of the requested kind that is never exported — a histogram's Config
  /// is ignored on that path — so the caller stays safe either way.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Histogram::Config& config = {},
                          const LabelSet& labels = {});

  /// Every metric at one instant, sorted by (name, labels) so renders
  /// and golden tests are deterministic.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Prometheus text exposition format (text/plain; version=0.0.4):
  /// HELP/TYPE headers, `le`-cumulative histogram buckets, _sum/_count.
  std::string RenderPrometheus() const;

  /// The same snapshot as one JSON object (machine-readable dump for
  /// dashboards and the BENCH_* trajectory files).
  std::string RenderJson() const;

  size_t size() const;

 private:
  /// Fully constructed under mu_ before insertion (the kind-matching
  /// sub-metric is never null) and immutable afterwards, so readers can
  /// dereference sub-metrics without revalidating.
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// `config` is consumed only for kHistogram; pass nullptr otherwise.
  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      MetricKind kind, const LabelSet& labels,
                      const Histogram::Config* config);

  mutable Mutex mu_{LockRank::kObsRegistry, "MetricsRegistry::mu_"};
  std::once_flag kind_conflict_logged_;
  /// Keyed by name + serialized sorted labels; values are stable heap
  /// entries so handles survive rehashing.
  std::map<std::string, std::unique_ptr<Entry>> entries_ C2MN_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace c2mn

#endif  // C2MN_OBS_METRICS_REGISTRY_H_
