#include "obs/pipeline_trace.h"

#include <cstdio>

#include "common/logging.h"

namespace c2mn {
namespace obs {

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kQueueWait:
      return "queue_wait";
    case PipelineStage::kDecode:
      return "decode";
    case PipelineStage::kSinkEmit:
      return "sink_emit";
    case PipelineStage::kAnalyticsIngest:
      return "analytics_ingest";
  }
  return "unknown";
}

PipelineTracer::PipelineTracer(MetricsRegistry* registry,
                               const Options& options)
    : options_(options) {
  // Latencies span sub-microsecond queue hops to multi-second stalls;
  // growth 2.0 keeps relative quantile error bounded at ~2x over that
  // whole range with ~45 buckets.
  const Histogram::Config latency{1e-9, 1e3, 2.0};
  for (int i = 0; i < kNumPipelineStages; ++i) {
    stage_histograms_[i] = registry->GetHistogram(
        "c2mn_pipeline_stage_seconds",
        "Per-record time spent in each pipeline stage",
        latency, {{"stage", PipelineStageName(static_cast<PipelineStage>(i))}});
  }
  end_to_end_ = registry->GetHistogram(
      "c2mn_pipeline_record_seconds",
      "End-to-end submit-to-done latency of traced pipeline ops", latency);
  records_traced_ = registry->GetCounter(
      "c2mn_pipeline_records_traced_total",
      "Pipeline ops with a recorded stage breakdown");
  slow_ops_ = registry->GetCounter(
      "c2mn_pipeline_slow_ops_total",
      "Traced ops whose end-to-end latency crossed the slow threshold");
}

void PipelineTracer::Record(const Span& span, int64_t object_id, int shard) {
  for (int i = 0; i < kNumPipelineStages; ++i) {
    if (span.stage_seconds_[i] > 0.0) {
      stage_histograms_[i]->Observe(span.stage_seconds_[i]);
    }
  }
  const double total = span.total_seconds();
  end_to_end_->Observe(total);
  records_traced_->Increment();

  if (options_.slow_threshold_seconds <= 0.0 ||
      total < options_.slow_threshold_seconds) {
    return;
  }
  slow_ops_->Increment();
  SlowOpTrace trace;
  trace.object_id = object_id;
  trace.shard = shard;
  trace.total_seconds = total;
  for (int i = 0; i < kNumPipelineStages; ++i) {
    trace.stage_seconds[i] = span.stage_seconds_[i];
  }
  const int every = options_.slow_log_every < 1 ? 1 : options_.slow_log_every;
  bool log_this = false;
  {
    MutexLock lock(&slow_mu_);
    if (++slow_since_log_ >= static_cast<uint64_t>(every)) {
      slow_since_log_ = 0;
      log_this = true;
      recent_slow_.push_back(trace);
      while (recent_slow_.size() > options_.max_recent_slow_ops) {
        recent_slow_.pop_front();
      }
    }
  }
  if (log_this) {
    char breakdown[256];
    std::snprintf(breakdown, sizeof(breakdown),
                  "slow op: object %lld shard %d total %.3f ms "
                  "(queue %.3f, decode %.3f, sink %.3f, analytics %.3f)",
                  static_cast<long long>(object_id), shard, total * 1e3,
                  trace.stage_seconds[0] * 1e3, trace.stage_seconds[1] * 1e3,
                  trace.stage_seconds[2] * 1e3, trace.stage_seconds[3] * 1e3);
    C2MN_LOG_WARN << breakdown;
  }
}

std::vector<SlowOpTrace> PipelineTracer::RecentSlowOps() const {
  MutexLock lock(&slow_mu_);
  return std::vector<SlowOpTrace>(recent_slow_.begin(), recent_slow_.end());
}

}  // namespace obs
}  // namespace c2mn
