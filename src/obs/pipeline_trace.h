#ifndef C2MN_OBS_PIPELINE_TRACE_H_
#define C2MN_OBS_PIPELINE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/metrics_registry.h"

namespace c2mn {
namespace obs {

/// The stages one record passes through inside the annotation pipeline.
/// They partition the submit-to-done interval: for every traced record,
/// the stage durations sum exactly to the record's end-to-end latency
/// (the same clock reads bound adjacent stages), which is what the
/// stage-trace sum test asserts.
enum class PipelineStage : int {
  kQueueWait = 0,       ///< Submit() accepted -> shard worker dequeued.
  kDecode = 1,          ///< OnlineAnnotator::PushInto / FlushInto.
  kSinkEmit = 2,        ///< Delivering emitted m-semantics to the sink.
  kAnalyticsIngest = 3, ///< AnalyticsEngine::Ingest (incl. standing push).
};
inline constexpr int kNumPipelineStages = 4;

/// Stage names as they appear in the `stage` metric label.
const char* PipelineStageName(PipelineStage stage);

/// One fully-timed outlier record, kept for dashboards and tests.
struct SlowOpTrace {
  int64_t object_id = 0;
  int shard = -1;
  double total_seconds = 0.0;
  double stage_seconds[kNumPipelineStages] = {0.0, 0.0, 0.0, 0.0};
};

/// \brief Per-stage latency tracing for the record pipeline.
///
/// The tracer owns one registry histogram per stage
/// (`c2mn_pipeline_stage_seconds{stage=...}`) plus the end-to-end
/// histogram (`c2mn_pipeline_record_seconds`), and a slow-op trace log:
/// records whose end-to-end latency crosses `slow_threshold_seconds` are
/// counted, sampled 1-in-`slow_log_every`, logged with their full span
/// breakdown, and kept in a bounded ring readable via RecentSlowOps().
///
/// Recording is allocation-free and lock-free on the fast path (histogram
/// observes); only a slow op takes the ring mutex.  When disabled the
/// service skips the per-stage clock reads entirely, so tracing cost can
/// be measured on/off (bench/micro_obs.cpp).
class PipelineTracer {
 public:
  struct Options {
    /// Master switch for per-stage clock reads and histograms.
    bool enabled = true;
    /// End-to-end latency (seconds) beyond which a record is a slow op;
    /// 0 (or negative) disables the slow-op log.
    double slow_threshold_seconds = 0.0;
    /// Log 1 in N slow ops (all are counted; the ring keeps the logged
    /// ones).  Values < 1 behave as 1.
    int slow_log_every = 1;
    /// Slow-op ring capacity.
    size_t max_recent_slow_ops = 16;
  };

  PipelineTracer(MetricsRegistry* registry, const Options& options);

  bool enabled() const { return options_.enabled; }

  /// A span under construction for one record.  Plain value type: the
  /// worker keeps one and re-arms it per op, so tracing allocates
  /// nothing.  Usage:
  ///   span.Start(submit_time);          // stage 0 opens at submit
  ///   span.FinishStage(kQueueWait);     // now() closes stage 0, opens 1
  ///   ...
  ///   tracer.Record(span, object_id, shard);
  class Span {
   public:
    void Start(std::chrono::steady_clock::time_point submit_time) {
      for (double& s : stage_seconds_) s = 0.0;
      last_ = submit_time;
      start_ = submit_time;
    }

    /// Closes `stage` at now(); the next stage opens at the same instant.
    void FinishStage(PipelineStage stage) {
      const auto now = std::chrono::steady_clock::now();
      stage_seconds_[static_cast<int>(stage)] +=
          std::chrono::duration<double>(now - last_).count();
      last_ = now;
    }

    double total_seconds() const {
      return std::chrono::duration<double>(last_ - start_).count();
    }
    double stage_seconds(PipelineStage stage) const {
      return stage_seconds_[static_cast<int>(stage)];
    }

   private:
    friend class PipelineTracer;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_;
    double stage_seconds_[kNumPipelineStages] = {0.0, 0.0, 0.0, 0.0};
  };

  /// Folds one finished span into the stage histograms (stages with zero
  /// elapsed time and no samples — e.g. analytics on a push that emitted
  /// nothing — are skipped so their histograms reflect real work), the
  /// end-to-end histogram, and the slow-op log.
  void Record(const Span& span, int64_t object_id, int shard);

  /// The most recent logged slow ops, newest last.
  std::vector<SlowOpTrace> RecentSlowOps() const;

  uint64_t slow_ops() const { return slow_ops_->Value(); }

 private:
  const Options options_;
  Histogram* stage_histograms_[kNumPipelineStages];
  Histogram* end_to_end_;
  Counter* records_traced_;
  Counter* slow_ops_;

  mutable Mutex slow_mu_{LockRank::kObsSlowOps, "PipelineTracer::slow_mu_"};
  std::deque<SlowOpTrace> recent_slow_ C2MN_GUARDED_BY(slow_mu_);
  uint64_t slow_since_log_ C2MN_GUARDED_BY(slow_mu_) = 0;
};

}  // namespace obs
}  // namespace c2mn

#endif  // C2MN_OBS_PIPELINE_TRACE_H_
