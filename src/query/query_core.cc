#include "query/query_core.h"

namespace c2mn {
namespace query {

bool TopKSketch::AddVisit(int64_t object_id, RegionId region, double t_start,
                          double t_end) {
  if (!spec_->MatchesStay(region, t_start, t_end)) return false;
  sorted_regions_.reset();
  sorted_pairs_.reset();
  ++region_counts_[region];
  auto& refs = object_region_refs_[object_id];
  if (++refs[region] == 1) {
    // The region just entered this object's co-visit set: one new
    // co-visiting object for every pair it forms with the set.
    for (const auto& [other, count] : refs) {
      (void)count;
      if (other != region) ++pair_counts_[MakeRegionPair(region, other)];
    }
  }
  return true;
}

bool TopKSketch::RemoveVisit(int64_t object_id, RegionId region,
                             double t_start, double t_end) {
  if (!spec_->MatchesStay(region, t_start, t_end)) return false;
  sorted_regions_.reset();
  sorted_pairs_.reset();
  auto region_it = region_counts_.find(region);
  if (region_it != region_counts_.end() && --region_it->second == 0) {
    region_counts_.erase(region_it);
  }
  const auto object_it = object_region_refs_.find(object_id);
  if (object_it == object_region_refs_.end()) return true;
  auto& refs = object_it->second;
  const auto ref_it = refs.find(region);
  if (ref_it == refs.end()) return true;
  if (--ref_it->second == 0) {
    refs.erase(ref_it);
    for (const auto& [other, count] : refs) {
      (void)count;
      const auto pair_it = pair_counts_.find(MakeRegionPair(region, other));
      if (pair_it != pair_counts_.end() && --pair_it->second == 0) {
        pair_counts_.erase(pair_it);
      }
    }
    if (refs.empty()) object_region_refs_.erase(object_it);
  }
  return true;
}

std::vector<RegionId> TopKSketch::TopKRegions(size_t k) const {
  return RankTopK(std::vector<std::pair<RegionId, int64_t>>(
                      region_counts_.begin(), region_counts_.end()),
                  k);
}

std::vector<RegionPair> TopKSketch::TopKPairs(size_t k) const {
  return RankTopK(std::vector<std::pair<RegionPair, int64_t>>(
                      pair_counts_.begin(), pair_counts_.end()),
                  k);
}

TopKSketch::State TopKSketch::SaveState() const {
  State state;
  state.region_counts.assign(region_counts_.begin(), region_counts_.end());
  std::sort(state.region_counts.begin(), state.region_counts.end());
  state.pair_counts.assign(pair_counts_.begin(), pair_counts_.end());
  for (const auto& [object_id, refs] : object_region_refs_) {
    for (const auto& [region, count] : refs) {
      state.object_region_refs.push_back(
          State::ObjectRegionRef{object_id, region, count});
    }
  }
  std::sort(state.object_region_refs.begin(), state.object_region_refs.end(),
            [](const State::ObjectRegionRef& a,
               const State::ObjectRegionRef& b) {
              if (a.object_id != b.object_id) return a.object_id < b.object_id;
              return a.region < b.region;
            });
  return state;
}

std::shared_ptr<const SortedCounts<RegionId>> TopKSketch::SortedRegions()
    const {
  if (sorted_regions_ == nullptr) {
    sorted_regions_ = SortedCounts<RegionId>::FromCounts(region_counts_);
  }
  return sorted_regions_;
}

std::shared_ptr<const SortedCounts<RegionPair>> TopKSketch::SortedPairs()
    const {
  if (sorted_pairs_ == nullptr) {
    sorted_pairs_ = SortedCounts<RegionPair>::FromCounts(pair_counts_);
  }
  return sorted_pairs_;
}

void TopKSketch::RestoreState(const State& state) {
  sorted_regions_.reset();
  sorted_pairs_.reset();
  region_counts_.clear();
  pair_counts_.clear();
  object_region_refs_.clear();
  region_counts_.insert(state.region_counts.begin(),
                        state.region_counts.end());
  pair_counts_.insert(state.pair_counts.begin(), state.pair_counts.end());
  for (const auto& ref : state.object_region_refs) {
    object_region_refs_[ref.object_id][ref.region] = ref.count;
  }
}

void TopKSketch::AccumulateRegionCounts(
    std::map<RegionId, int64_t>* out) const {
  for (const auto& [region, count] : region_counts_) (*out)[region] += count;
}

void TopKSketch::AccumulatePairCounts(
    std::map<RegionPair, int64_t>* out) const {
  for (const auto& [pair, count] : pair_counts_) (*out)[pair] += count;
}

namespace {

/// Feeds every stay of the corpus through a sketch, one synthetic object
/// per corpus sequence (batch pair co-visits are per sequence).
TopKSketch CorpusSketch(const AnnotatedCorpus& corpus,
                        const CompiledSpec& spec) {
  TopKSketch sketch(&spec);
  for (size_t s = 0; s < corpus.semantics.size(); ++s) {
    for (const MSemantics& ms : corpus.semantics[s]) {
      if (ms.event != MobilityEvent::kStay) continue;
      sketch.AddVisit(static_cast<int64_t>(s), ms.region, ms.t_start,
                      ms.t_end);
    }
  }
  return sketch;
}

}  // namespace

std::vector<RegionId> TopKPopularRegions(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds) {
  const CompiledSpec spec(
      VisitSpec{query_regions, false, window, min_visit_seconds});
  return CorpusSketch(corpus, spec).TopKRegions(k);
}

std::vector<RegionPair> TopKFrequentRegionPairs(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds) {
  const CompiledSpec spec(
      VisitSpec{query_regions, false, window, min_visit_seconds});
  return CorpusSketch(corpus, spec).TopKPairs(k);
}

}  // namespace query
}  // namespace c2mn
