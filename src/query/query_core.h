#ifndef C2MN_QUERY_QUERY_CORE_H_
#define C2MN_QUERY_QUERY_CORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/msemantics.h"

/// \file The shared query core: one definition of the visit predicate,
/// windowing, counting, ranking, and tie-breaking behind every top-k
/// surface in the system.  Three consumers build on it:
///
///  - the batch path (eval/queries) over a fully materialized corpus,
///  - the streaming poll path (AnalyticsEngine::TopK*), which answers
///    from per-shard incrementally maintained TopKSketch instances when
///    the query matches the engine's pre-aggregation spec, and from a
///    window-pruned scan of retained visits otherwise,
///  - standing continuous queries (AnalyticsEngine::Subscribe), whose
///    sketches are updated on ingest and retention-aging and whose delta
///    callbacks fire when the answer set changes.
///
/// Because all three share the predicate (query::VisitSpec) and the
/// ranking (query::RankTopK), their answers are bit-identical on the
/// same data — the equivalence replay test holds this by construction
/// instead of by parallel re-implementation.

namespace c2mn {

/// \brief The m-semantics of many objects, the input of the semantics-
/// oriented queries (Section V-B4).
struct AnnotatedCorpus {
  /// Parallel vectors: object id and its m-semantics sequence.
  std::vector<int64_t> object_ids;
  std::vector<MSemanticsSequence> semantics;

  void Add(int64_t object_id, MSemanticsSequence ms) {
    object_ids.push_back(object_id);
    semantics.push_back(std::move(ms));
  }
  size_t size() const { return semantics.size(); }
};

/// A query time window [t_start, t_end] in seconds.
struct TimeWindow {
  double t_start = 0.0;
  double t_end = 0.0;

  bool Overlaps(double s, double e) const {
    return s <= t_end && e >= t_start;
  }
  /// A window wide enough to cover any finite time period.
  static TimeWindow All() {
    return TimeWindow{-std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity()};
  }
};

/// An unordered region pair, stored (smaller id, larger id).
using RegionPair = std::pair<RegionId, RegionId>;

namespace query {

inline RegionPair MakeRegionPair(RegionId a, RegionId b) {
  return a < b ? RegionPair{a, b} : RegionPair{b, a};
}

/// \brief What counts as a visit for one query: a stay m-semantics whose
/// time period intersects `window`, lasting at least `min_visit_seconds`
/// (the paper defines a stay as remaining "for a sufficiently long
/// period of time"; the threshold screens out single-record blips), at a
/// region from `regions` (or any region when `all_regions` is set —
/// note the distinction: an *empty* `regions` with `all_regions` false
/// matches nothing, exactly like the batch query over an empty
/// query-region list).
struct VisitSpec {
  std::vector<RegionId> regions;
  bool all_regions = false;
  TimeWindow window = TimeWindow::All();
  double min_visit_seconds = 0.0;
};

/// A VisitSpec with its region set compiled for O(1) membership tests.
/// Immutable after construction, so one instance is safely shared by
/// concurrent readers (e.g. every shard's pre-aggregation sketch).
class CompiledSpec {
 public:
  explicit CompiledSpec(VisitSpec spec)
      : spec_(std::move(spec)),
        region_set_(spec_.regions.begin(), spec_.regions.end()) {}

  const VisitSpec& spec() const { return spec_; }

  bool MatchesRegion(RegionId region) const {
    return spec_.all_regions || region_set_.count(region) > 0;
  }

  /// The canonical visit predicate, on the raw fields a retained
  /// StayVisit carries (the event is implied kStay).
  bool MatchesStay(RegionId region, double t_start, double t_end) const {
    return t_end - t_start >= spec_.min_visit_seconds &&
           spec_.window.Overlaps(t_start, t_end) && MatchesRegion(region);
  }

  bool Matches(const MSemantics& ms) const {
    return ms.event == MobilityEvent::kStay &&
           MatchesStay(ms.region, ms.t_start, ms.t_end);
  }

 private:
  VisitSpec spec_;
  std::unordered_set<RegionId> region_set_;
};

/// \brief The canonical top-k ranking: count descending, key ascending on
/// ties.  Every query surface ranks through this one function, so equal
/// counts order identically across batch, streaming-poll, pre-aggregated,
/// and standing paths, for any shard count.
template <typename Key>
std::vector<Key> RankTopK(std::vector<std::pair<Key, int64_t>> counted,
                          size_t k) {
  std::sort(counted.begin(), counted.end(),
            [](const std::pair<Key, int64_t>& a,
               const std::pair<Key, int64_t>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<Key> out;
  out.reserve(counted.size() < k ? counted.size() : k);
  for (size_t i = 0; i < counted.size() && i < k; ++i) {
    out.push_back(counted[i].first);
  }
  return out;
}

/// \brief Incrementally maintained counters for one VisitSpec: per-region
/// visit counts plus per-object co-visit pair counts, updated on ingest
/// (AddVisit) and retention-aging (RemoveVisit).  Reading the top-k costs
/// O(M log M) in the number of *distinct matched keys* M — independent of
/// how many visits are retained, which is the pre-aggregation win over
/// the scan path.
///
/// Pair semantics mirror the batch query exactly: an unordered pair is
/// counted once per object that visited both regions (per-region
/// refcounts keep that exact under removal).  Not thread-safe; the owner
/// provides synchronization (a shard lock or a subscription mutex).
class TopKSketch {
 public:
  /// `spec` must outlive the sketch.
  explicit TopKSketch(const CompiledSpec* spec) : spec_(spec) {}

  /// Folds one stay visit in; returns true iff it matched the spec (and
  /// counters changed).
  bool AddVisit(int64_t object_id, RegionId region, double t_start,
                double t_end);

  /// Reverses AddVisit for a visit that aged out of retention.  Must be
  /// called with exactly the arguments of a prior matching AddVisit;
  /// returns true iff the visit matched the spec.
  bool RemoveVisit(int64_t object_id, RegionId region, double t_start,
                   double t_end);

  /// Current answers, ranked by the canonical tie-break.
  std::vector<RegionId> TopKRegions(size_t k) const;
  std::vector<RegionPair> TopKPairs(size_t k) const;

  /// \brief The sketch's complete counter state in canonical (sorted)
  /// order, for serialization: RestoreState(s.SaveState()) on a sketch
  /// with the same spec reproduces every answer bit-identically, and two
  /// sketches built from the same visits save equal states regardless of
  /// hash-map iteration order.
  struct State {
    struct ObjectRegionRef {
      int64_t object_id = 0;
      RegionId region = kInvalidId;
      int64_t count = 0;

      bool operator==(const ObjectRegionRef& other) const {
        return object_id == other.object_id && region == other.region &&
               count == other.count;
      }
    };
    /// Sorted by region id.
    std::vector<std::pair<RegionId, int64_t>> region_counts;
    /// Sorted by (smaller id, larger id).
    std::vector<std::pair<RegionPair, int64_t>> pair_counts;
    /// Sorted by (object_id, region).
    std::vector<ObjectRegionRef> object_region_refs;

    bool operator==(const State& other) const {
      return region_counts == other.region_counts &&
             pair_counts == other.pair_counts &&
             object_region_refs == other.object_region_refs;
    }
    bool operator!=(const State& other) const { return !(*this == other); }
  };

  State SaveState() const;

  /// Replaces the sketch's counters with `state` (typically decoded from
  /// a snapshot).  The caller is responsible for pairing the state with
  /// the spec it was saved under; counts are taken as-is.
  void RestoreState(const State& state);

  /// Adds this sketch's counters into cross-shard accumulators (ordered
  /// maps, so folding shards 0..N-1 in order is deterministic).
  void AccumulateRegionCounts(std::map<RegionId, int64_t>* out) const;
  void AccumulatePairCounts(std::map<RegionPair, int64_t>* out) const;

  const CompiledSpec& spec() const { return *spec_; }
  bool empty() const { return region_counts_.empty(); }

 private:
  const CompiledSpec* spec_;
  std::unordered_map<RegionId, int64_t> region_counts_;
  std::map<RegionPair, int64_t> pair_counts_;
  /// Per object, how many *matching retained visits* it has at each
  /// region; a region enters the object's co-visit set at refcount 0->1
  /// and leaves at 1->0.
  std::unordered_map<int64_t, std::unordered_map<RegionId, int64_t>>
      object_region_refs_;
};

/// \brief Batch reference implementations over a materialized corpus —
/// the canonical semantics the streaming paths are proven against.  Pair
/// co-visits are counted per corpus *sequence* (each sequence feeds the
/// sketch as its own object), matching the original batch behavior even
/// if two sequences share an object id.
std::vector<RegionId> TopKPopularRegions(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds = 0.0);

std::vector<RegionPair> TopKFrequentRegionPairs(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds = 0.0);

}  // namespace query

/// \brief A standing continuous top-k query: registered once, its answer
/// maintained incrementally on every ingest and retention-aging event,
/// with a delta pushed to the subscriber whenever the answer set changes
/// — instead of the caller polling TopK* scans.
struct StandingQuery {
  enum class Kind {
    kPopularRegions,   ///< Top-k regions by matching visit count.
    kFrequentPairs,    ///< Top-k unordered pairs by co-visiting objects.
  };
  Kind kind = Kind::kPopularRegions;
  /// Which visits the query counts.  The default spec (all regions,
  /// unbounded window) ranks everything inside the retention horizon —
  /// the streaming analogue of a sliding window whose width is the
  /// engine's horizon_seconds.
  query::VisitSpec spec;
  size_t k = 10;
};

/// One pushed change of a standing query's answer.  `sequence` is
/// per-subscription and starts at 1 (the initial snapshot delivered by
/// Subscribe itself); applying deltas in sequence order reconstructs
/// exactly what polling after quiescing would return.
struct StandingQueryDelta {
  int subscription_id = -1;
  uint64_t sequence = 0;
  /// Kind::kPopularRegions: the full current answer plus what changed
  /// relative to the previous delta.
  std::vector<RegionId> regions;
  std::vector<RegionId> regions_entered;
  std::vector<RegionId> regions_exited;
  /// Kind::kFrequentPairs: same, for pairs.
  std::vector<RegionPair> pairs;
  std::vector<RegionPair> pairs_entered;
  std::vector<RegionPair> pairs_exited;
};

/// Invoked on the worker that owns the mutating shard (or on the
/// subscriber's thread for the initial snapshot).  Keep it fast: it runs
/// on the ingest path.  It must not call back into Subscribe /
/// Unsubscribe (self-deadlock); engine queries and Snapshot are safe.
using StandingQueryCallback = std::function<void(const StandingQueryDelta&)>;

}  // namespace c2mn

#endif  // C2MN_QUERY_QUERY_CORE_H_
