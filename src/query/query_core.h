#ifndef C2MN_QUERY_QUERY_CORE_H_
#define C2MN_QUERY_QUERY_CORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/msemantics.h"

/// \file The shared query core: one definition of the visit predicate,
/// windowing, counting, ranking, and tie-breaking behind every top-k
/// surface in the system.  Three consumers build on it:
///
///  - the batch path (eval/queries) over a fully materialized corpus,
///  - the streaming poll path (AnalyticsEngine::TopK*), which answers
///    from per-shard incrementally maintained TopKSketch instances when
///    the query matches the engine's pre-aggregation spec, and from a
///    window-pruned scan of retained visits otherwise,
///  - standing continuous queries (AnalyticsEngine::Subscribe), whose
///    sketches are updated on ingest and retention-aging and whose delta
///    callbacks fire when the answer set changes.
///
/// Because all three share the predicate (query::VisitSpec) and the
/// ranking (query::RankTopK), their answers are bit-identical on the
/// same data — the equivalence replay test holds this by construction
/// instead of by parallel re-implementation.

namespace c2mn {

/// \brief The m-semantics of many objects, the input of the semantics-
/// oriented queries (Section V-B4).
struct AnnotatedCorpus {
  /// Parallel vectors: object id and its m-semantics sequence.
  std::vector<int64_t> object_ids;
  std::vector<MSemanticsSequence> semantics;

  void Add(int64_t object_id, MSemanticsSequence ms) {
    object_ids.push_back(object_id);
    semantics.push_back(std::move(ms));
  }
  size_t size() const { return semantics.size(); }
};

/// A query time window [t_start, t_end] in seconds.
struct TimeWindow {
  double t_start = 0.0;
  double t_end = 0.0;

  bool Overlaps(double s, double e) const {
    return s <= t_end && e >= t_start;
  }
  /// A window wide enough to cover any finite time period.
  static TimeWindow All() {
    return TimeWindow{-std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity()};
  }
};

/// An unordered region pair, stored (smaller id, larger id).
using RegionPair = std::pair<RegionId, RegionId>;

namespace query {

inline RegionPair MakeRegionPair(RegionId a, RegionId b) {
  return a < b ? RegionPair{a, b} : RegionPair{b, a};
}

/// \brief What counts as a visit for one query: a stay m-semantics whose
/// time period intersects `window`, lasting at least `min_visit_seconds`
/// (the paper defines a stay as remaining "for a sufficiently long
/// period of time"; the threshold screens out single-record blips), at a
/// region from `regions` (or any region when `all_regions` is set —
/// note the distinction: an *empty* `regions` with `all_regions` false
/// matches nothing, exactly like the batch query over an empty
/// query-region list).
struct VisitSpec {
  std::vector<RegionId> regions;
  bool all_regions = false;
  TimeWindow window = TimeWindow::All();
  double min_visit_seconds = 0.0;
};

/// A VisitSpec with its region set compiled for O(1) membership tests.
/// Immutable after construction, so one instance is safely shared by
/// concurrent readers (e.g. every shard's pre-aggregation sketch).
class CompiledSpec {
 public:
  explicit CompiledSpec(VisitSpec spec)
      : spec_(std::move(spec)),
        region_set_(spec_.regions.begin(), spec_.regions.end()) {}

  const VisitSpec& spec() const { return spec_; }

  bool MatchesRegion(RegionId region) const {
    return spec_.all_regions || region_set_.count(region) > 0;
  }

  /// The canonical visit predicate, on the raw fields a retained
  /// StayVisit carries (the event is implied kStay).
  bool MatchesStay(RegionId region, double t_start, double t_end) const {
    return t_end - t_start >= spec_.min_visit_seconds &&
           spec_.window.Overlaps(t_start, t_end) && MatchesRegion(region);
  }

  bool Matches(const MSemantics& ms) const {
    return ms.event == MobilityEvent::kStay &&
           MatchesStay(ms.region, ms.t_start, ms.t_end);
  }

 private:
  VisitSpec spec_;
  std::unordered_set<RegionId> region_set_;
};

/// \brief The canonical top-k ranking: count descending, key ascending on
/// ties.  Every query surface ranks through this one function, so equal
/// counts order identically across batch, streaming-poll, pre-aggregated,
/// and standing paths, for any shard count.
template <typename Key>
std::vector<Key> RankTopK(std::vector<std::pair<Key, int64_t>> counted,
                          size_t k) {
  std::sort(counted.begin(), counted.end(),
            [](const std::pair<Key, int64_t>& a,
               const std::pair<Key, int64_t>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<Key> out;
  out.reserve(counted.size() < k ? counted.size() : k);
  for (size_t i = 0; i < counted.size() && i < k; ++i) {
    out.push_back(counted[i].first);
  }
  return out;
}

/// \brief One shard's counters frozen in the two orders the bounded
/// threshold merge needs: `by_count` for sorted access (the canonical
/// count-descending, key-ascending order, so cursor heads upper-bound
/// everything below them) and `by_key` for O(log n) random-access
/// probes.  Immutable once built — a merge holds snapshots from many
/// shards without holding any shard lock.
template <typename Key>
struct SortedCounts {
  /// Count descending, key ascending on ties (the RankTopK order).
  std::vector<std::pair<Key, int64_t>> by_count;
  /// Key ascending; each key appears at most once.
  std::vector<std::pair<Key, int64_t>> by_key;

  /// This shard's count for `key`, or 0 when absent.
  int64_t Probe(const Key& key) const {
    const auto it = std::lower_bound(
        by_key.begin(), by_key.end(), key,
        [](const std::pair<Key, int64_t>& entry, const Key& probe) {
          return entry.first < probe;
        });
    return it != by_key.end() && it->first == key ? it->second : 0;
  }

  /// Freezes any key->count map (each key unique) into both orders.
  template <typename Map>
  static std::shared_ptr<const SortedCounts> FromCounts(const Map& counts) {
    auto out = std::make_shared<SortedCounts>();
    out->by_key.assign(counts.begin(), counts.end());
    std::sort(out->by_key.begin(), out->by_key.end(),
              [](const std::pair<Key, int64_t>& a,
                 const std::pair<Key, int64_t>& b) {
                return a.first < b.first;
              });
    out->by_count = out->by_key;
    std::sort(out->by_count.begin(), out->by_count.end(),
              [](const std::pair<Key, int64_t>& a,
                 const std::pair<Key, int64_t>& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    return out;
  }
};

/// How one ThresholdMergeTopK call resolved, for tests and tuning.
struct MergeStats {
  /// Keys popped from a by_count stream for resolution.
  size_t sorted_accesses = 0;
  /// Random-access Probe calls (n shards per resolved key).
  size_t probes = 0;
  /// Distinct keys whose global count was computed.
  size_t keys_resolved = 0;
  /// The threshold stop fired before any stream was exhausted.
  bool early_exit = false;
  /// The sorted-access budget ran out and the exact k-way key-merge
  /// fallback recomputed the answer from scratch.
  bool fell_back = false;
};

/// \brief Bounded top-k merge of per-shard sorted counters — Fagin-style
/// threshold algorithm.  Walks the N count-descending streams, always
/// popping the largest head (ties: lowest shard index); each popped key
/// is resolved to its global count by probing every shard.  The running
/// threshold T = sum of current heads upper-bounds any unresolved key's
/// global count, so the walk stops as soon as the running k-th best
/// count strictly beats T — strict, because an unseen key whose total
/// *equals* the k-th count but whose key id is smaller would still
/// displace it under the canonical tie-break.
///
/// The result is exactly RankTopK over the summed counts of every key
/// passing `filter` (a predicate on Key; filtered keys are skipped
/// without resolution and excluded from T).  Flat count distributions
/// defeat the early exit, so after 64 + 16*k sorted accesses the walk
/// abandons TA and recomputes exactly via a pairwise merge of the
/// by_key arrays — O(total keys * log shards), no hashing, still far
/// cheaper than folding counters into an ordered map.  This is the
/// shared primitive
/// for the pre-aggregated poll paths here and the future cross-venue
/// federation merge.
template <typename Key, typename Filter>
std::vector<Key> ThresholdMergeTopK(
    const std::vector<std::shared_ptr<const SortedCounts<Key>>>& shards,
    size_t k, Filter&& filter, MergeStats* stats = nullptr) {
  MergeStats local_stats;
  MergeStats& st = stats != nullptr ? *stats : local_stats;
  st = MergeStats{};
  if (k == 0 || shards.empty()) return {};

  const auto canonical_before = [](const std::pair<Key, int64_t>& a,
                                   const std::pair<Key, int64_t>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  // The running top-k, kept in canonical order and capped at k.
  std::vector<std::pair<Key, int64_t>> best;
  const auto offer = [&](const Key& key, int64_t count) {
    const std::pair<Key, int64_t> entry{key, count};
    const auto pos =
        std::lower_bound(best.begin(), best.end(), entry, canonical_before);
    if (best.size() >= k && pos == best.end()) return;
    best.insert(pos, entry);
    if (best.size() > k) best.pop_back();
  };

  std::vector<Key> resolved;  // Sorted; keys already globally counted.
  const auto is_resolved = [&](const Key& key) {
    return std::binary_search(resolved.begin(), resolved.end(), key);
  };

  std::vector<size_t> cursor(shards.size(), 0);
  const size_t budget = 64 + 16 * k;
  bool exhausted = false;
  while (true) {
    // Advance each cursor past heads that cannot matter (filtered out or
    // already resolved), then pick the largest remaining head; T sums
    // the heads, so every unresolved admissible key is bounded by it.
    int64_t threshold = 0;
    size_t pick = shards.size();
    int64_t pick_count = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
      const auto& stream = shards[s]->by_count;
      size_t& c = cursor[s];
      while (c < stream.size() &&
             (!filter(stream[c].first) || is_resolved(stream[c].first))) {
        ++c;
      }
      if (c >= stream.size()) continue;
      const int64_t head = stream[c].second;
      threshold += head;
      if (pick == shards.size() || head > pick_count) {
        pick = s;
        pick_count = head;
      }
    }
    if (pick == shards.size()) {
      exhausted = true;  // Every admissible key resolved: best is exact.
      break;
    }
    if (best.size() == k && best.back().second > threshold) {
      st.early_exit = true;
      break;
    }
    if (st.sorted_accesses >= budget) {
      st.fell_back = true;
      break;
    }
    const Key key = shards[pick]->by_count[cursor[pick]].first;
    ++cursor[pick];
    ++st.sorted_accesses;
    int64_t total = 0;
    for (const auto& shard : shards) {
      total += shard->Probe(key);
      ++st.probes;
    }
    ++st.keys_resolved;
    resolved.insert(
        std::lower_bound(resolved.begin(), resolved.end(), key), key);
    offer(key, total);
  }
  (void)exhausted;

  if (st.fell_back) {
    // Exact fallback: pairwise (divide-and-conquer) merge of the
    // key-sorted arrays — each entry is touched O(log shards) times
    // with one comparison, no hash maps, no re-sorting.  The final
    // selection pass quick-rejects entries that cannot displace the
    // running k-th count before paying the filter.
    best.clear();
    using Entry = std::pair<Key, int64_t>;
    const auto merge_two = [](const std::vector<Entry>& a,
                              const std::vector<Entry>& b) {
      std::vector<Entry> out;
      out.reserve(a.size() + b.size());
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i].first < b[j].first) {
          out.push_back(a[i++]);
        } else if (b[j].first < a[i].first) {
          out.push_back(b[j++]);
        } else {
          out.emplace_back(a[i].first, a[i].second + b[j].second);
          ++i;
          ++j;
        }
      }
      out.insert(out.end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
      out.insert(out.end(), b.begin() + static_cast<ptrdiff_t>(j), b.end());
      return out;
    };
    std::vector<std::vector<Entry>> round;
    round.reserve((shards.size() + 1) / 2);
    for (size_t s = 0; s + 1 < shards.size(); s += 2) {
      round.push_back(merge_two(shards[s]->by_key, shards[s + 1]->by_key));
    }
    if (shards.size() % 2 == 1) round.push_back(shards.back()->by_key);
    while (round.size() > 1) {
      std::vector<std::vector<Entry>> next;
      next.reserve((round.size() + 1) / 2);
      for (size_t s = 0; s + 1 < round.size(); s += 2) {
        next.push_back(merge_two(round[s], round[s + 1]));
      }
      if (round.size() % 2 == 1) next.push_back(std::move(round.back()));
      round = std::move(next);
    }
    if (!round.empty()) {
      for (const Entry& entry : round.front()) {
        // A count strictly below the full running k-th cannot enter (an
        // equal count still can, on the key tie-break).
        if (best.size() == k && entry.second < best.back().second) continue;
        if (filter(entry.first)) offer(entry.first, entry.second);
      }
    }
  }

  std::vector<Key> out;
  out.reserve(best.size());
  for (const auto& [key, count] : best) {
    (void)count;
    out.push_back(key);
  }
  return out;
}

/// \brief Incrementally maintained counters for one VisitSpec: per-region
/// visit counts plus per-object co-visit pair counts, updated on ingest
/// (AddVisit) and retention-aging (RemoveVisit).  Reading the top-k costs
/// O(M log M) in the number of *distinct matched keys* M — independent of
/// how many visits are retained, which is the pre-aggregation win over
/// the scan path.
///
/// Pair semantics mirror the batch query exactly: an unordered pair is
/// counted once per object that visited both regions (per-region
/// refcounts keep that exact under removal).  Not thread-safe; the owner
/// provides synchronization (a shard lock or a subscription mutex).
class TopKSketch {
 public:
  /// `spec` must outlive the sketch.
  explicit TopKSketch(const CompiledSpec* spec) : spec_(spec) {}

  /// Folds one stay visit in; returns true iff it matched the spec (and
  /// counters changed).
  bool AddVisit(int64_t object_id, RegionId region, double t_start,
                double t_end);

  /// Reverses AddVisit for a visit that aged out of retention.  Must be
  /// called with exactly the arguments of a prior matching AddVisit;
  /// returns true iff the visit matched the spec.
  bool RemoveVisit(int64_t object_id, RegionId region, double t_start,
                   double t_end);

  /// Current answers, ranked by the canonical tie-break.
  std::vector<RegionId> TopKRegions(size_t k) const;
  std::vector<RegionPair> TopKPairs(size_t k) const;

  /// \brief Immutable count-descending snapshots of the current
  /// counters, the sorted-access streams ThresholdMergeTopK walks.
  /// Built lazily and cached until the next mutation, so repeated polls
  /// over an unchanged shard reuse one snapshot; the returned view stays
  /// valid (and frozen) after the sketch mutates again.  Requires the
  /// same external synchronization as the mutators — the cache write is
  /// not atomic.
  std::shared_ptr<const SortedCounts<RegionId>> SortedRegions() const;
  std::shared_ptr<const SortedCounts<RegionPair>> SortedPairs() const;

  /// \brief The sketch's complete counter state in canonical (sorted)
  /// order, for serialization: RestoreState(s.SaveState()) on a sketch
  /// with the same spec reproduces every answer bit-identically, and two
  /// sketches built from the same visits save equal states regardless of
  /// hash-map iteration order.
  struct State {
    struct ObjectRegionRef {
      int64_t object_id = 0;
      RegionId region = kInvalidId;
      int64_t count = 0;

      bool operator==(const ObjectRegionRef& other) const {
        return object_id == other.object_id && region == other.region &&
               count == other.count;
      }
    };
    /// Sorted by region id.
    std::vector<std::pair<RegionId, int64_t>> region_counts;
    /// Sorted by (smaller id, larger id).
    std::vector<std::pair<RegionPair, int64_t>> pair_counts;
    /// Sorted by (object_id, region).
    std::vector<ObjectRegionRef> object_region_refs;

    bool operator==(const State& other) const {
      return region_counts == other.region_counts &&
             pair_counts == other.pair_counts &&
             object_region_refs == other.object_region_refs;
    }
    bool operator!=(const State& other) const { return !(*this == other); }
  };

  State SaveState() const;

  /// Replaces the sketch's counters with `state` (typically decoded from
  /// a snapshot).  The caller is responsible for pairing the state with
  /// the spec it was saved under; counts are taken as-is.
  void RestoreState(const State& state);

  /// Adds this sketch's counters into cross-shard accumulators (ordered
  /// maps, so folding shards 0..N-1 in order is deterministic).
  void AccumulateRegionCounts(std::map<RegionId, int64_t>* out) const;
  void AccumulatePairCounts(std::map<RegionPair, int64_t>* out) const;

  const CompiledSpec& spec() const { return *spec_; }
  bool empty() const { return region_counts_.empty(); }

 private:
  const CompiledSpec* spec_;
  std::unordered_map<RegionId, int64_t> region_counts_;
  std::map<RegionPair, int64_t> pair_counts_;
  /// Per object, how many *matching retained visits* it has at each
  /// region; a region enters the object's co-visit set at refcount 0->1
  /// and leaves at 1->0.
  std::unordered_map<int64_t, std::unordered_map<RegionId, int64_t>>
      object_region_refs_;
  /// Lazily built SortedRegions / SortedPairs snapshots, dropped by any
  /// mutation that changed the counters.
  mutable std::shared_ptr<const SortedCounts<RegionId>> sorted_regions_;
  mutable std::shared_ptr<const SortedCounts<RegionPair>> sorted_pairs_;
};

/// \brief Batch reference implementations over a materialized corpus —
/// the canonical semantics the streaming paths are proven against.  Pair
/// co-visits are counted per corpus *sequence* (each sequence feeds the
/// sketch as its own object), matching the original batch behavior even
/// if two sequences share an object id.
std::vector<RegionId> TopKPopularRegions(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds = 0.0);

std::vector<RegionPair> TopKFrequentRegionPairs(
    const AnnotatedCorpus& corpus, const std::vector<RegionId>& query_regions,
    const TimeWindow& window, size_t k, double min_visit_seconds = 0.0);

}  // namespace query

/// \brief A standing continuous top-k query: registered once, its answer
/// maintained incrementally on every ingest and retention-aging event,
/// with a delta pushed to the subscriber whenever the answer set changes
/// — instead of the caller polling TopK* scans.
struct StandingQuery {
  enum class Kind {
    kPopularRegions,   ///< Top-k regions by matching visit count.
    kFrequentPairs,    ///< Top-k unordered pairs by co-visiting objects.
  };
  Kind kind = Kind::kPopularRegions;
  /// Which visits the query counts.  The default spec (all regions,
  /// unbounded window) ranks everything inside the retention horizon —
  /// the streaming analogue of a sliding window whose width is the
  /// engine's horizon_seconds.
  query::VisitSpec spec;
  size_t k = 10;
  /// When > 0, the answer ranks only visits inside the trailing window
  /// of this many seconds behind the engine's watermark, quantized to
  /// the engine's retention buckets: with window_buckets =
  /// ceil(trailing_seconds / bucket_seconds) clamped to [1, retention
  /// ring], a visit is in-window iff floor(t_end / bucket_seconds) >
  /// watermark_bucket - window_buckets.  The answer is re-evaluated on
  /// every watermark advance (bucket rotation), not only on retention
  /// eviction — visits leave the window the moment the watermark moves
  /// past them, and each change still arrives as one exactly-once
  /// entered/exited delta.  0 (the default) keeps the legacy behavior:
  /// rank everything inside the retention horizon.  Non-finite values
  /// are treated as 0.
  double trailing_seconds = 0.0;
};

/// One pushed change of a standing query's answer.  `sequence` is
/// per-subscription and starts at 1 (the initial snapshot delivered by
/// Subscribe itself); applying deltas in sequence order reconstructs
/// exactly what polling after quiescing would return.
struct StandingQueryDelta {
  int subscription_id = -1;
  uint64_t sequence = 0;
  /// Kind::kPopularRegions: the full current answer plus what changed
  /// relative to the previous delta.
  std::vector<RegionId> regions;
  std::vector<RegionId> regions_entered;
  std::vector<RegionId> regions_exited;
  /// Kind::kFrequentPairs: same, for pairs.
  std::vector<RegionPair> pairs;
  std::vector<RegionPair> pairs_entered;
  std::vector<RegionPair> pairs_exited;
};

/// Invoked on the worker that owns the mutating shard (or on the
/// subscriber's thread for the initial snapshot).  Keep it fast: it runs
/// on the ingest path.  It must not call back into Subscribe /
/// Unsubscribe (self-deadlock); engine queries and Snapshot are safe.
using StandingQueryCallback = std::function<void(const StandingQueryDelta&)>;

}  // namespace c2mn

#endif  // C2MN_QUERY_QUERY_CORE_H_
