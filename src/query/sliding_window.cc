#include "query/sliding_window.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace c2mn {
namespace query {

namespace {

/// floor(log2(width)) for width >= 1: the coarsening width class.
int WidthClass(int64_t width) {
  int c = 0;
  while (width > 1) {
    width >>= 1;
    ++c;
  }
  return c;
}

}  // namespace

SlidingWindowSketch::SlidingWindowSketch(const CompiledSpec* spec,
                                         Options options)
    : spec_(spec),
      options_(options),
      agg_(spec),
      watermark_bucket_(std::numeric_limits<int64_t>::min()) {
  if (!(options_.bucket_seconds > 0.0) ||
      !std::isfinite(options_.bucket_seconds)) {
    options_.bucket_seconds = 60.0;
  }
  options_.window_buckets = std::max<int64_t>(options_.window_buckets, 1);
  options_.max_nodes_per_class = std::max(options_.max_nodes_per_class, 1);
}

int64_t SlidingWindowSketch::EdgeBucket() const {
  // Saturate instead of underflowing when the watermark sits near the
  // bottom of the bucket range.
  const int64_t min_bucket = std::numeric_limits<int64_t>::min();
  if (watermark_bucket_ < min_bucket + options_.window_buckets) {
    return min_bucket;
  }
  return watermark_bucket_ - options_.window_buckets;
}

bool SlidingWindowSketch::AddVisit(int64_t object_id, RegionId region,
                                   double t_start, double t_end) {
  // Same bucketability guard as the engine's ingest: casting an
  // out-of-range double to int64_t is undefined behavior.
  const double bucket_d = std::floor(t_end / options_.bucket_seconds);
  if (!std::isfinite(t_start) || !std::isfinite(t_end) ||
      !(bucket_d >= -9.0e18 && bucket_d <= 9.0e18)) {
    return false;
  }
  const int64_t bucket = static_cast<int64_t>(bucket_d);
  bool changed = false;
  if (watermark_bucket_ == std::numeric_limits<int64_t>::min()) {
    watermark_bucket_ = bucket;  // First visit defines the window end.
  } else if (bucket > watermark_bucket_) {
    // Modular subtraction: the bucket span can exceed int64_t range
    // even though both endpoints are valid buckets.
    rotations_ += static_cast<uint64_t>(bucket) -
                  static_cast<uint64_t>(watermark_bucket_);
    watermark_bucket_ = bucket;
    changed |= Expire();
  }
  if (bucket <= EdgeBucket()) return changed;  // Behind the window.
  if (!spec_->MatchesStay(region, t_start, t_end)) return changed;
  agg_.AddVisit(object_id, region, t_start, t_end);
  ++window_visits_;
  const Visit visit{object_id, region, t_start, t_end, bucket};
  // The first span at or before `bucket` holds it iff its end reaches
  // the bucket; otherwise open a fresh single-bucket span.
  auto it = nodes_.upper_bound(bucket);
  if (it != nodes_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end >= bucket) {
      prev->second.visits.push_back(visit);
      return true;
    }
  }
  Node node;
  node.end = bucket;
  node.visits.push_back(visit);
  nodes_.emplace(bucket, std::move(node));
  Coarsen();
  return true;
}

bool SlidingWindowSketch::RemoveVisit(int64_t object_id, RegionId region,
                                      double t_start, double t_end) {
  if (nodes_.empty()) return false;
  const double bucket_d = std::floor(t_end / options_.bucket_seconds);
  if (!std::isfinite(t_start) || !std::isfinite(t_end) ||
      !(bucket_d >= -9.0e18 && bucket_d <= 9.0e18)) {
    return false;
  }
  const int64_t bucket = static_cast<int64_t>(bucket_d);
  const auto it = nodes_.upper_bound(bucket);
  if (it == nodes_.begin()) return false;
  const auto node_it = std::prev(it);
  if (node_it->second.end < bucket) return false;
  std::vector<Visit>& visits = node_it->second.visits;
  for (auto v = visits.begin(); v != visits.end(); ++v) {
    if (v->object_id == object_id && v->region == region &&
        v->t_start == t_start && v->t_end == t_end) {
      visits.erase(v);
      --window_visits_;
      agg_.RemoveVisit(object_id, region, t_start, t_end);
      if (visits.empty()) nodes_.erase(node_it);
      return true;
    }
  }
  return false;
}

bool SlidingWindowSketch::Expire() {
  const int64_t edge = EdgeBucket();
  bool changed = false;
  while (!nodes_.empty()) {
    const auto it = nodes_.begin();
    if (it->second.end <= edge) {
      // The whole span slid out.
      for (const Visit& v : it->second.visits) {
        agg_.RemoveVisit(v.object_id, v.region, v.t_start, v.t_end);
        ++expired_visits_;
        --window_visits_;
        changed = true;
      }
      nodes_.erase(it);
      continue;
    }
    if (it->first <= edge) {
      // Straddling span: retract exactly the visits whose own bucket
      // expired, re-key the survivors to the new window edge.
      Node kept;
      kept.end = it->second.end;
      for (Visit& v : it->second.visits) {
        if (v.bucket <= edge) {
          agg_.RemoveVisit(v.object_id, v.region, v.t_start, v.t_end);
          ++expired_visits_;
          --window_visits_;
          changed = true;
        } else {
          kept.visits.push_back(std::move(v));
        }
      }
      nodes_.erase(it);
      if (!kept.visits.empty()) nodes_.emplace(edge + 1, std::move(kept));
    }
    break;  // Spans are ordered: everything later is still in-window.
  }
  return changed;
}

void SlidingWindowSketch::Coarsen() {
  while (true) {
    // One pass in age order: per width class, the population and the
    // oldest member.
    std::map<int, std::pair<int, std::map<int64_t, Node>::iterator>> classes;
    for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
      const int c = WidthClass(it->second.end - it->first + 1);
      const auto entry = classes.find(c);
      if (entry == classes.end()) {
        classes.emplace(c, std::make_pair(1, it));
      } else {
        ++entry->second.first;
      }
    }
    auto over_full = classes.end();
    for (auto c = classes.begin(); c != classes.end(); ++c) {
      if (c->second.first > options_.max_nodes_per_class) {
        over_full = c;
        break;
      }
    }
    if (over_full == classes.end()) return;
    // Merge the over-full class's oldest node into its map successor
    // (adjacent spans, so the merged span overlaps nothing; any gap
    // between them is empty buckets and harmless to cover).
    const auto oldest = over_full->second.second;
    const auto next = std::next(oldest);
    if (next == nodes_.end()) return;  // Nothing newer to merge into.
    Node merged;
    merged.end = next->second.end;
    merged.visits = std::move(oldest->second.visits);
    merged.visits.insert(merged.visits.end(),
                         std::make_move_iterator(next->second.visits.begin()),
                         std::make_move_iterator(next->second.visits.end()));
    const int64_t start = oldest->first;
    nodes_.erase(next);
    nodes_.erase(oldest);
    nodes_.emplace(start, std::move(merged));
  }
}

}  // namespace query
}  // namespace c2mn
