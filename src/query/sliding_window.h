#ifndef C2MN_QUERY_SLIDING_WINDOW_H_
#define C2MN_QUERY_SLIDING_WINDOW_H_

#include <cstdint>
#include <map>
#include <vector>

#include "query/query_core.h"

/// \file A true trailing-window counter set over stay visits: the state
/// behind StandingQuery::trailing_seconds.  The window slides with the
/// data watermark (the highest visit bucket seen), not with eviction —
/// a visit leaves the answer the moment the watermark moves past it,
/// which is what "top-k over the trailing hour" actually means.

namespace c2mn {
namespace query {

/// \brief Exact sliding-window top-k state: a TopKSketch over only the
/// visits inside the trailing window, plus the visit ring needed to
/// retract them when the watermark advances.
///
/// Window semantics are bucket-quantized, matching the engine's
/// retention ring: a visit with bucket b = floor(t_end / bucket_seconds)
/// is in-window iff b > watermark_bucket - window_buckets, where the
/// watermark bucket is the maximum bucket over every visit fed in.
/// Membership depends only on t_end (stays satisfy t_start <= t_end <=
/// watermark), so visits expire in bucket order and the answer is
/// independent of arrival interleaving — the property the 1/2/4-shard
/// equivalence tests pin down.
///
/// Retraction needs the individual visits, not per-bucket count deltas:
/// pair counts are per-object co-visit refcounts and do not decompose
/// across buckets.  To keep node metadata sublinear in the window, the
/// visit ring uses hierarchical (exponential-histogram style) bucket
/// coarsening: spans of buckets merge as they age so at most
/// Options::max_nodes_per_class nodes exist per power-of-two span-width
/// class — O(log window_buckets) nodes total — while expiry stays exact
/// because each stored visit remembers its own bucket (a straddling
/// span partitions instead of forgetting).
///
/// Not thread-safe: the owner synchronizes, exactly like TopKSketch
/// (the engine drives it under the subscription mutex).
class SlidingWindowSketch {
 public:
  struct Options {
    /// Bucket width in seconds; must match the engine's retention
    /// bucketing for the quantization to line up.
    double bucket_seconds = 60.0;
    /// Window width in buckets (>= 1).
    int64_t window_buckets = 1;
    /// Coarsening bound: at most this many span nodes per power-of-two
    /// width class before the two oldest merge.
    int max_nodes_per_class = 4;
  };

  /// `spec` must outlive the sketch (it is also handed to the inner
  /// TopKSketch).
  SlidingWindowSketch(const CompiledSpec* spec, Options options);

  /// Feeds one stay visit.  First advances the watermark when the
  /// visit's bucket is past it, expiring everything that fell out of
  /// the window; then admits the visit if it is in-window and matches
  /// the spec.  A visit that is itself rejected (out-of-window, spec
  /// mismatch, unbucketable timestamps) still rotates the window.
  /// Returns true iff the counter state (and so possibly the answer)
  /// changed.
  bool AddVisit(int64_t object_id, RegionId region, double t_start,
                double t_end);

  /// Retracts one previously added visit (the engine routes retention
  /// evictions here).  Safe no-op when the visit was never admitted or
  /// already expired; returns true iff the counter state changed.
  bool RemoveVisit(int64_t object_id, RegionId region, double t_start,
                   double t_end);

  /// Current answers over the in-window visits only, ranked by the
  /// canonical tie-break.
  std::vector<RegionId> TopKRegions(size_t k) const {
    return agg_.TopKRegions(k);
  }
  std::vector<RegionPair> TopKPairs(size_t k) const {
    return agg_.TopKPairs(k);
  }

  const Options& options() const { return options_; }
  /// Highest visit bucket seen; INT64_MIN before any visit.
  int64_t watermark_bucket() const { return watermark_bucket_; }
  /// Total buckets the watermark has advanced past (window rotations).
  uint64_t rotations() const { return rotations_; }
  /// Visits retracted because the window slid past them.
  uint64_t expired_visits() const { return expired_visits_; }
  /// Visits currently inside the window.
  size_t window_visits() const { return window_visits_; }
  /// Live span nodes (bounded by the coarsening invariant).
  size_t span_nodes() const { return nodes_.size(); }

 private:
  struct Visit {
    int64_t object_id = 0;
    RegionId region = kInvalidId;
    double t_start = 0.0;
    double t_end = 0.0;
    /// floor(t_end / bucket_seconds), kept so expiry out of a coarse
    /// span node stays exact per visit.
    int64_t bucket = 0;
  };
  /// One span of buckets [map key, end], holding the admitted visits
  /// whose bucket falls inside.  Spans never overlap; gaps (empty
  /// buckets) are fine and may be swallowed by coarsening merges.
  struct Node {
    int64_t end = 0;
    std::vector<Visit> visits;
  };

  /// Oldest in-window bucket minus one: buckets <= this are expired.
  int64_t EdgeBucket() const;
  /// Retracts every visit whose bucket slid out of the window; returns
  /// true iff any left the counters.
  bool Expire();
  /// Restores the nodes-per-width-class invariant by merging the
  /// oldest over-full class's oldest node into its successor.
  void Coarsen();

  const CompiledSpec* spec_;
  Options options_;
  TopKSketch agg_;
  /// Span nodes keyed by start bucket, ascending (oldest first).
  std::map<int64_t, Node> nodes_;
  int64_t watermark_bucket_;
  uint64_t rotations_ = 0;
  uint64_t expired_visits_ = 0;
  size_t window_visits_ = 0;
};

}  // namespace query
}  // namespace c2mn

#endif  // C2MN_QUERY_SLIDING_WINDOW_H_
