#include "service/annotation_service.h"

#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/streaming_histogram.h"
#include "common/sync.h"
#include "service/bounded_queue.h"

namespace c2mn {

namespace {

enum class OpKind : uint8_t { kOpen, kRecord, kClose };

/// One unit of work for a shard worker.  Kept small: the sink (the only
/// heavy member) is set for kOpen only.
struct Op {
  OpKind kind;
  int64_t object_id;
  PositioningRecord record;  // kRecord only.
  SemanticsSink sink;        // kOpen only.
  std::chrono::steady_clock::time_point submit_time;
};

}  // namespace

/// All per-shard state.  `sessions` is touched only by the worker
/// thread; `stats_mu` guards the counters and histogram that Stats()
/// reads from other threads.
struct AnnotationService::Shard {
  Shard(int shard_index, size_t queue_capacity)
      : index(shard_index), queue(queue_capacity) {}

  /// Position in shards_; doubles as the analytics-engine shard id.
  const int index;
  BoundedQueue<Op> queue;
  std::thread worker;
  std::unordered_map<int64_t, std::unique_ptr<service_internal::Session>>
      sessions;

  /// One decode workspace shared by every session on this shard: window
  /// decodes run back-to-back on its warm arena and message buffers
  /// instead of each session paying for (and holding) its own working
  /// set.  Worker-thread only.
  DecodeWorkspace decode_workspace;

  Mutex stats_mu{LockRank::kServiceShardStats, "Shard::stats_mu"};
  /// Submit-to-emit latency in seconds (1 us .. 1000 s buckets).
  StreamingHistogram latency C2MN_GUARDED_BY(stats_mu);
  /// Submit-to-standing-query-delta latency, over the ops whose
  /// analytics ingest pushed at least one delta.
  StreamingHistogram push_latency C2MN_GUARDED_BY(stats_mu);
};

AnnotationService::AnnotationService(const World& world,
                                     FeatureOptions feature_options,
                                     C2mnStructure structure,
                                     std::vector<double> weights,
                                     Options options)
    : world_(world),
      fopts_(std::move(feature_options)),
      structure_(structure),
      weights_(std::move(weights)),
      options_(options) {
  if (options_.obs.registry != nullptr) {
    registry_ = options_.obs.registry;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  RegisterMetrics();
  if (options_.obs.stage_tracing) {
    obs::PipelineTracer::Options topts;
    topts.slow_threshold_seconds = options_.obs.slow_trace_threshold_seconds;
    topts.slow_log_every = options_.obs.slow_trace_log_every;
    tracer_ = std::make_unique<obs::PipelineTracer>(registry_, topts);
  }
  const int n = options_.num_shards > 0 ? options_.num_shards : 1;
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, options_.queue_capacity > 0 ? options_.queue_capacity : 1));
    queue_depth_gauges_.push_back(registry_->GetGauge(
        "c2mn_service_queue_depth", "Per-shard submission backlog",
        {{"shard", std::to_string(i)}}));
  }
  if (options_.analytics.enabled) {
    AnalyticsEngine::Options aopts = options_.analytics.engine;
    aopts.num_shards = n;  // One analytics shard per worker.
    aopts.metrics_registry = registry_;  // One export covers the pipeline.
    analytics_ = std::make_unique<AnalyticsEngine>(aopts);
  }
  if (!options_.storage.state_dir.empty()) {
    // Recover (or initialize) the durable state before any worker can
    // ingest: the engine must be rebuilt while it is still fresh, and
    // the workers treat storage_ as immutable.
    if (analytics_ == nullptr) {
      storage_status_ = Status::FailedPrecondition(
          "durable state requires analytics to be enabled");
    } else {
      storage::StorageManager::Options sopts;
      sopts.state_dir = options_.storage.state_dir;
      sopts.fsync_on_checkpoint = options_.storage.fsync;
      sopts.metrics_registry = registry_;
      storage_ =
          std::make_unique<storage::StorageManager>(std::move(sopts), n);
      storage_status_ = storage_->Recover(analytics_.get(), &recovery_stats_);
    }
    if (!storage_status_.ok()) {
      // An observable refusal, not a silent fresh start: the service
      // runs without durability and storage_status() says why.
      C2MN_LOG_ERROR << "durable state recovery failed ("
                     << storage_status_.ToString()
                     << "); running without logging or checkpoints";
      storage_.reset();
    }
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
  if (options_.obs.export_interval_seconds > 0.0 &&
      !options_.obs.export_path.empty()) {
    export_thread_ = std::thread([this] { ExportLoop(); });
  }
  if (storage_ != nullptr &&
      options_.storage.checkpoint_interval_seconds > 0.0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
}

void AnnotationService::RegisterMetrics() {
  records_submitted_total_ = registry_->GetCounter(
      "c2mn_service_records_submitted_total",
      "Positioning records accepted by Submit()");
  records_processed_total_ = registry_->GetCounter(
      "c2mn_service_records_processed_total",
      "Records fully processed by shard workers");
  semantics_emitted_total_ = registry_->GetCounter(
      "c2mn_service_semantics_emitted_total",
      "M-semantics delivered to session sinks");
  timestamp_violations_total_ = registry_->GetCounter(
      "c2mn_service_timestamp_violations_total",
      "Out-of-order timestamps clamped by per-session annotators");
  merge_mismatches_total_ = registry_->GetCounter(
      "c2mn_service_histogram_merge_mismatches_total",
      "Latency-histogram merges skipped for mismatched bucket configs");
  batched_decodes_total_ = registry_->GetCounter(
      "c2mn_service_batched_decodes_total",
      "Window decodes executed through the shard decode batch (parked by "
      "PushBuffered, run on the shared workspace)");
  decode_batches_total_ = registry_->GetCounter(
      "c2mn_service_decode_batches_total",
      "Queue drains that ran at least one parked decode back-to-back");
  sessions_open_gauge_ = registry_->GetGauge(
      "c2mn_service_sessions_open", "Sessions currently open");
}

AnnotationService::~AnnotationService() { Stop(); }

AnnotationService::Shard* AnnotationService::ShardOf(int64_t object_id) const {
  const size_t h = std::hash<int64_t>{}(object_id);
  return shards_[h % shards_.size()].get();
}

Status AnnotationService::OpenSession(int64_t object_id, SemanticsSink sink) {
  {
    MutexLock lock(&registry_mu_);
    if (stopped_) return Status::FailedPrecondition("service is stopped");
    if (!open_sessions_.insert(object_id).second) {
      return Status::InvalidArgument("session " + std::to_string(object_id) +
                                     " is already open");
    }
    ++sessions_opened_;
  }
  Op op;
  op.kind = OpKind::kOpen;
  op.object_id = object_id;
  op.sink = std::move(sink);
  op.submit_time = std::chrono::steady_clock::now();
  pending_ops_.fetch_add(1, std::memory_order_relaxed);
  if (!ShardOf(object_id)->queue.Push(std::move(op))) {
    // Raced with Stop(): the open op was dropped, so undo the
    // registration to keep Stats() consistent.
    NoteOpDone();
    MutexLock lock(&registry_mu_);
    open_sessions_.erase(object_id);
    --sessions_opened_;
    return Status::FailedPrecondition("service is stopped");
  }
  return Status::OK();
}

Status AnnotationService::Submit(int64_t object_id,
                                 const PositioningRecord& record) {
  {
    MutexLock lock(&registry_mu_);
    if (stopped_) return Status::FailedPrecondition("service is stopped");
    if (open_sessions_.count(object_id) == 0) {
      return Status::NotFound("no open session for object " +
                              std::to_string(object_id));
    }
  }
  Op op;
  op.kind = OpKind::kRecord;
  op.object_id = object_id;
  op.record = record;
  op.submit_time = std::chrono::steady_clock::now();
  pending_ops_.fetch_add(1, std::memory_order_relaxed);
  if (!ShardOf(object_id)->queue.Push(std::move(op))) {
    NoteOpDone();
    return Status::FailedPrecondition("service is stopped");
  }
  records_submitted_total_->Increment();
  return Status::OK();
}

Status AnnotationService::CloseSession(int64_t object_id) {
  {
    MutexLock lock(&registry_mu_);
    if (stopped_) return Status::FailedPrecondition("service is stopped");
    if (open_sessions_.erase(object_id) == 0) {
      return Status::NotFound("no open session for object " +
                              std::to_string(object_id));
    }
    ++sessions_closed_;
  }
  Op op;
  op.kind = OpKind::kClose;
  op.object_id = object_id;
  op.submit_time = std::chrono::steady_clock::now();
  pending_ops_.fetch_add(1, std::memory_order_relaxed);
  if (!ShardOf(object_id)->queue.Push(std::move(op))) {
    // Raced with Stop(): the flush op was dropped, so the session was
    // never actually closed.
    NoteOpDone();
    MutexLock lock(&registry_mu_);
    open_sessions_.insert(object_id);
    --sessions_closed_;
    return Status::FailedPrecondition("service is stopped");
  }
  return Status::OK();
}

void AnnotationService::NoteOpDone() {
  if (pending_ops_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(&drain_mu_);
    drain_cv_.NotifyAll();
  }
}

void AnnotationService::Drain() {
  MutexLock lock(&drain_mu_);
  while (pending_ops_.load(std::memory_order_acquire) != 0) {
    drain_cv_.Wait(&drain_mu_);
  }
}

void AnnotationService::Stop() {
  {
    MutexLock lock(&registry_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  Drain();
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (export_thread_.joinable()) {
    {
      MutexLock lock(&export_mu_);
      export_stop_ = true;
    }
    export_cv_.NotifyAll();
    export_thread_.join();
  }
  if (checkpoint_thread_.joinable()) {
    {
      MutexLock lock(&checkpoint_mu_);
      checkpoint_stop_ = true;
    }
    checkpoint_cv_.NotifyAll();
    checkpoint_thread_.join();
  }
  if (storage_ != nullptr) {
    // Workers are joined, so the shard buffers are quiescent.  Either
    // publish a final snapshot or just make the log tail durable; both
    // leave the next boot able to rebuild everything processed so far.
    const Status status = options_.storage.checkpoint_on_stop
                              ? storage_->Checkpoint(*analytics_)
                              : storage_->Sync();
    if (!status.ok()) {
      C2MN_LOG_ERROR << "durable state shutdown flush failed: "
                     << status.ToString();
    }
  }
}

void AnnotationService::UpdateGauges() const {
  {
    MutexLock lock(&registry_mu_);
    sessions_open_gauge_->Set(static_cast<double>(open_sessions_.size()));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    queue_depth_gauges_[i]->Set(static_cast<double>(shards_[i]->queue.size()));
  }
}

void AnnotationService::ExportLoop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              options_.obs.export_interval_seconds));
  for (;;) {
    // One interval of interruptible sleep under the lock; the export
    // itself runs with export_mu_ released (it takes the session
    // registry and queue locks while rendering gauges).
    {
      MutexLock lock(&export_mu_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!export_stop_ && export_cv_.WaitUntil(&export_mu_, deadline)) {
      }
      if (export_stop_) return;
    }
    UpdateGauges();
    const std::string body = options_.obs.export_format == "json"
                                 ? registry_->RenderJson()
                                 : registry_->RenderPrometheus();
    std::ofstream out(options_.obs.export_path,
                      std::ios::out | std::ios::trunc);
    if (out) {
      out << body;
    } else {
      C2MN_LOG_WARN << "metrics export: cannot write "
                    << options_.obs.export_path;
    }
  }
}

void AnnotationService::CheckpointLoop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              options_.storage.checkpoint_interval_seconds));
  for (;;) {
    // Interruptible sleep under the lock; the checkpoint itself runs
    // with checkpoint_mu_ released (it takes the log and shard locks).
    {
      MutexLock lock(&checkpoint_mu_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!checkpoint_stop_ &&
             checkpoint_cv_.WaitUntil(&checkpoint_mu_, deadline)) {
      }
      if (checkpoint_stop_) return;
    }
    const Status status = CheckpointStorage();
    if (!status.ok()) {
      C2MN_LOG_ERROR << "periodic checkpoint failed: " << status.ToString();
    }
  }
}

Status AnnotationService::CheckpointStorage() {
  if (storage_ == nullptr) {
    if (!storage_status_.ok()) return storage_status_;
    return Status::FailedPrecondition(
        "durable state is not configured (Options::storage.state_dir)");
  }
  return storage_->Checkpoint(*analytics_);
}

void AnnotationService::WorkerLoop(Shard* shard) {
  using service_internal::Session;
  std::vector<Op> batch;
  batch.reserve(options_.max_batch);
  // One emit buffer per shard, recycled across every session's pushes:
  // with the shard's shared decode workspace this keeps the steady-state
  // record path allocation-free.
  std::vector<MSemantics> emitted;

  // Cross-session decode batching: a record whose push makes a window
  // decode due is *parked* instead of decoded in place, and the parked
  // decodes run back-to-back over the shard's shared workspace once the
  // drained batch has been walked.  A session has at most one parked
  // decode, and any later op for the same session completes it first, so
  // each session still observes its ops strictly in submission order —
  // which is why the emitted m-semantics stay bit-identical to a
  // standalone annotator.  The parked op's NoteOpDone/stats are deferred
  // with it: the op is not "processed" until its emissions are delivered.
  struct PendingDecode {
    Session* session;  ///< nullptr once completed.
    obs::PipelineTracer::Span span;
    std::chrono::steady_clock::time_point submit_time;
  };
  std::vector<PendingDecode> pending;
  pending.reserve(options_.max_batch);

  // Runs one parked decode to completion (decode, sink, analytics,
  // stats, op accounting) and marks the slot done.
  const auto complete_pending = [&](PendingDecode* pd) {
    Session* session = pd->session;
    pd->session = nullptr;
    const bool trace = tracer_ != nullptr;
    session->annotator.CompleteDecode(&shard->decode_workspace, &emitted);
    batched_decodes_total_->Increment();
    if (trace) pd->span.FinishStage(obs::PipelineStage::kDecode);
    for (const MSemantics& ms : emitted) {
      if (session->sink) session->sink(session->object_id, ms);
    }
    if (trace && !emitted.empty()) {
      pd->span.FinishStage(obs::PipelineStage::kSinkEmit);
    }
    int deltas_fired = 0;
    if (analytics_ != nullptr && !emitted.empty()) {
      for (const MSemantics& ms : emitted) {
        // Apply, then log with the engine-assigned sequence: the durable
        // log of this shard is always a sequence-contiguous prefix of
        // what was applied, which recovery's cross-check relies on.
        uint64_t seq = 0;
        deltas_fired += analytics_->Ingest(shard->index, session->object_id,
                                           ms,
                                           storage_ != nullptr ? &seq
                                                               : nullptr);
        if (storage_ != nullptr) {
          storage_->BufferIngest(shard->index, seq, session->object_id, ms);
        }
      }
      if (trace) pd->span.FinishStage(obs::PipelineStage::kAnalyticsIngest);
    }
    const double latency_s =
        trace ? pd->span.total_seconds()
              : std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - pd->submit_time)
                    .count();
    records_processed_total_->Increment();
    if (!emitted.empty()) {
      semantics_emitted_total_->Increment(emitted.size());
    }
    {
      MutexLock lock(&shard->stats_mu);
      shard->latency.Add(latency_s);
      if (deltas_fired > 0) shard->push_latency.Add(latency_s);
    }
    if (trace) tracer_->Record(pd->span, session->object_id, shard->index);
    NoteOpDone();
  };
  const auto complete_pending_for = [&](Session* session) {
    for (PendingDecode& pd : pending) {
      if (pd.session == session) {
        complete_pending(&pd);
        return;
      }
    }
  };

  while (shard->queue.PopBatch(&batch, options_.max_batch)) {
    for (Op& op : batch) {
      switch (op.kind) {
        case OpKind::kOpen: {
          auto session = std::make_unique<Session>(
              world_, fopts_, structure_, weights_, options_.annotator,
              op.object_id, std::move(op.sink));
          shard->sessions[op.object_id] = std::move(session);
          break;
        }
        case OpKind::kRecord: {
          const auto it = shard->sessions.find(op.object_id);
          if (it == shard->sessions.end()) {
            NoteOpDone();  // Raced with Stop().
            continue;
          }
          Session* session = it->second.get();
          complete_pending_for(session);
          const uint64_t violations_before =
              session->annotator.timestamp_violations();
          // Stage tracing: the span's clock reads double as the latency
          // measurement, so tracing adds at most three extra now() calls
          // per record over the untraced path.  The sink/ingest loops run
          // back-to-back (all sinks, then all ingests) so the two stages
          // time separately; per-object ordering is preserved in both
          // streams.
          const bool trace = tracer_ != nullptr;
          obs::PipelineTracer::Span span;
          if (trace) {
            span.Start(op.submit_time);
            span.FinishStage(obs::PipelineStage::kQueueWait);
          }
          const bool decode_due = session->annotator.PushBuffered(op.record);
          const uint64_t violations =
              session->annotator.timestamp_violations() - violations_before;
          if (violations > 0) {
            timestamp_violations_total_->Increment(violations);
          }
          if (decode_due) {
            // Park the decode; its span stays open across the deferral
            // so the decode stage reports the true submit-to-emit path.
            pending.push_back({session, span, op.submit_time});
            continue;  // NoteOpDone deferred to complete_pending.
          }
          if (trace) span.FinishStage(obs::PipelineStage::kDecode);
          const double latency_s =
              trace ? span.total_seconds()
                    : std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - op.submit_time)
                          .count();
          records_processed_total_->Increment();
          {
            MutexLock lock(&shard->stats_mu);
            shard->latency.Add(latency_s);
          }
          if (trace) tracer_->Record(span, op.object_id, shard->index);
          break;
        }
        case OpKind::kClose: {
          const auto it = shard->sessions.find(op.object_id);
          if (it == shard->sessions.end()) break;
          Session* session = it->second.get();
          complete_pending_for(session);
          const bool trace = tracer_ != nullptr;
          obs::PipelineTracer::Span span;
          if (trace) {
            span.Start(op.submit_time);
            span.FinishStage(obs::PipelineStage::kQueueWait);
          }
          session->annotator.FlushInto(&shard->decode_workspace, &emitted);
          if (trace) span.FinishStage(obs::PipelineStage::kDecode);
          for (const MSemantics& ms : emitted) {
            if (session->sink) session->sink(session->object_id, ms);
          }
          if (trace && !emitted.empty()) {
            span.FinishStage(obs::PipelineStage::kSinkEmit);
          }
          int deltas_fired = 0;
          if (analytics_ != nullptr) {
            for (const MSemantics& ms : emitted) {
              uint64_t seq = 0;
              deltas_fired += analytics_->Ingest(
                  shard->index, session->object_id, ms,
                  storage_ != nullptr ? &seq : nullptr);
              if (storage_ != nullptr) {
                storage_->BufferIngest(shard->index, seq, session->object_id,
                                       ms);
              }
            }
            uint64_t close_seq = 0;
            analytics_->NoteSessionClosed(
                shard->index, session->object_id,
                storage_ != nullptr ? &close_seq : nullptr);
            if (storage_ != nullptr) {
              storage_->BufferClose(shard->index, close_seq,
                                    session->object_id);
            }
            if (trace) {
              span.FinishStage(obs::PipelineStage::kAnalyticsIngest);
            }
          }
          const double latency_s =
              trace ? span.total_seconds()
                    : std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - op.submit_time)
                          .count();
          if (!emitted.empty()) {
            semantics_emitted_total_->Increment(emitted.size());
          }
          if (deltas_fired > 0) {
            MutexLock lock(&shard->stats_mu);
            shard->push_latency.Add(latency_s);
          }
          if (trace) tracer_->Record(span, op.object_id, shard->index);
          shard->sessions.erase(it);
          break;
        }
      }
      NoteOpDone();
    }
    // Drain the parked decodes back-to-back over the shared workspace —
    // this is the cross-session decode batch.  Nothing may straddle the
    // next PopBatch: Drain() counts these ops as pending until here.
    size_t ran = 0;
    for (PendingDecode& pd : pending) {
      if (pd.session != nullptr) {
        complete_pending(&pd);
        ++ran;
      }
    }
    if (ran > 0) decode_batches_total_->Increment();
    pending.clear();
    batch.clear();
    // Batch boundary: push this shard's buffered log records to disk so
    // a crash loses at most the current batch.
    if (storage_ != nullptr) storage_->FlushShard(shard->index);
  }
}

Result<int> AnnotationService::SubscribeAnalytics(
    StandingQuery query, StandingQueryCallback callback) {
  if (analytics_ == nullptr) {
    return Status::FailedPrecondition(
        "analytics are disabled (Options::analytics.enabled)");
  }
  // The engine treats a non-finite trailing window as "no window"; at
  // the service edge that is almost certainly a caller bug, so reject
  // it loudly instead.  A negative value just means the legacy
  // whole-horizon behavior.
  if (std::isnan(query.trailing_seconds) ||
      std::isinf(query.trailing_seconds)) {
    return Status::InvalidArgument(
        "standing query: trailing_seconds must be finite");
  }
  if (query.trailing_seconds < 0.0) query.trailing_seconds = 0.0;
  return analytics_->Subscribe(std::move(query), std::move(callback));
}

Status AnnotationService::UnsubscribeAnalytics(int subscription_id) {
  if (analytics_ == nullptr) {
    return Status::FailedPrecondition(
        "analytics are disabled (Options::analytics.enabled)");
  }
  if (!analytics_->Unsubscribe(subscription_id)) {
    return Status::NotFound("no standing query with id " +
                            std::to_string(subscription_id));
  }
  return Status::OK();
}

AnalyticsSnapshot AnnotationService::AnalyticsStats() const {
  if (analytics_ == nullptr) return AnalyticsSnapshot{};
  AnalyticsSnapshot snapshot = analytics_->Snapshot();
  StreamingHistogram push_latency;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->stats_mu);
    if (!push_latency.Merge(shard->push_latency)) {
      // A mismatched bucket config silently loses the shard's samples;
      // count it (and log once) instead of ignoring the failure.
      merge_mismatches_total_->Increment();
      std::call_once(push_merge_mismatch_logged_, [] {
        C2MN_LOG_ERROR << "histogram merge skipped: shard push-latency "
                          "histogram has a mismatched bucket config";
      });
    }
  }
  snapshot.push_samples = push_latency.count();
  snapshot.push_p50_ms = push_latency.Quantile(0.5) * 1e3;
  snapshot.push_p99_ms = push_latency.Quantile(0.99) * 1e3;
  snapshot.push_max_ms = push_latency.max() * 1e3;
  return snapshot;
}

ServiceStats AnnotationService::Stats() const {
  ServiceStats stats;
  {
    MutexLock lock(&registry_mu_);
    stats.sessions_open = open_sessions_.size();
    stats.sessions_opened = sessions_opened_;
    stats.sessions_closed = sessions_closed_;
    sessions_open_gauge_->Set(static_cast<double>(stats.sessions_open));
  }
  // Thin views over the registry counters the workers increment.
  stats.records_submitted = records_submitted_total_->Value();
  stats.records_processed = records_processed_total_->Value();
  stats.semantics_emitted = semantics_emitted_total_->Value();
  stats.timestamp_violations = timestamp_violations_total_->Value();
  stats.batched_decodes = batched_decodes_total_->Value();
  stats.decode_batches = decode_batches_total_->Value();
  StreamingHistogram latency;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const auto& shard = shards_[i];
    const size_t depth = shard->queue.size();
    stats.queue_depths.push_back(depth);
    queue_depth_gauges_[i]->Set(static_cast<double>(depth));
    MutexLock lock(&shard->stats_mu);
    if (!latency.Merge(shard->latency)) {
      merge_mismatches_total_->Increment();
      std::call_once(latency_merge_mismatch_logged_, [] {
        C2MN_LOG_ERROR << "histogram merge skipped: shard latency "
                          "histogram has a mismatched bucket config";
      });
    }
  }
  stats.histogram_merge_mismatches = merge_mismatches_total_->Value();
  stats.elapsed_seconds = uptime_.ElapsedSeconds();
  stats.records_per_second =
      stats.elapsed_seconds > 0.0
          ? static_cast<double>(stats.records_processed) / stats.elapsed_seconds
          : 0.0;
  stats.latency_samples = latency.count();
  stats.latency_p50_ms = latency.Quantile(0.5) * 1e3;
  stats.latency_p99_ms = latency.Quantile(0.99) * 1e3;
  stats.latency_max_ms = latency.max() * 1e3;
  return stats;
}

}  // namespace c2mn
