#ifndef C2MN_SERVICE_ANNOTATION_SERVICE_H_
#define C2MN_SERVICE_ANNOTATION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "analytics/analytics_engine.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "service/service_stats.h"
#include "service/session.h"

namespace c2mn {

/// \brief A concurrent streaming annotation service: thousands of
/// per-object positioning streams, each annotated by its own
/// OnlineAnnotator, sharded across a fixed pool of worker threads.
///
/// Sharding is by object id (hash -> shard), so every session is
/// processed by exactly one worker and needs no per-record locking;
/// submissions enter bounded per-shard MPSC queues whose backpressure
/// blocks producers instead of growing memory.  As long as each
/// session's records are submitted from one thread at a time (in
/// timestamp order), the m-semantics delivered to its sink are
/// *identical* to a standalone OnlineAnnotator fed the same records —
/// concurrency never changes the answer, only the throughput.
///
/// Thread model:
///  - OpenSession / Submit / CloseSession / Drain / Stats are safe to
///    call from any thread.
///  - Sinks run on shard worker threads, one session at a time.
///  - Drain() returns once every record submitted before the call has
///    been fully processed (and its emissions delivered).
class AnnotationService {
 public:
  /// Opt-in live analytics over the service's m-semantics stream.
  struct AnalyticsOptions {
    /// When true the service owns an AnalyticsEngine and feeds it every
    /// m-semantics it delivers to sinks (shard-local, so ingestion never
    /// crosses threads).
    bool enabled = false;
    /// Engine configuration; num_shards is overridden with the
    /// service's shard count.
    AnalyticsEngine::Options engine;
  };

  struct Options {
    /// Worker threads; each owns one queue and a disjoint set of
    /// sessions.
    int num_shards = 4;
    /// Per-shard queue bound; Submit() blocks when the shard is this
    /// far behind.
    size_t queue_capacity = 4096;
    /// Max operations a worker drains per wakeup (amortizes lock and
    /// wakeup costs across a decode stride).
    size_t max_batch = 64;
    /// Streaming-decode knobs forwarded to every session's annotator.
    OnlineAnnotator::Options annotator;
    /// Live analytics over everything the sinks receive.
    AnalyticsOptions analytics;
  };

  /// The world and weights are shared (read-only) by all sessions; the
  /// caller keeps `world` alive for the service's lifetime.
  AnnotationService(const World& world, FeatureOptions feature_options,
                    C2mnStructure structure, std::vector<double> weights,
                    Options options);

  AnnotationService(const World& world, FeatureOptions feature_options,
                    C2mnStructure structure, std::vector<double> weights)
      : AnnotationService(world, std::move(feature_options), structure,
                          std::move(weights), Options()) {}

  /// Drains and joins the workers.  Sessions still open are discarded
  /// without a final flush — call CloseSession (plus Drain) first if
  /// their tails matter.
  ~AnnotationService();

  AnnotationService(const AnnotationService&) = delete;
  AnnotationService& operator=(const AnnotationService&) = delete;

  /// Registers a new stream; `sink` receives its completed m-semantics
  /// in order.  Fails if the id is already open or the service stopped.
  Status OpenSession(int64_t object_id, SemanticsSink sink);

  /// Enqueues one record for the session's shard; blocks under
  /// backpressure.  Records of one session must arrive in timestamp
  /// order (out-of-order timestamps are clamped and counted, see
  /// ServiceStats::timestamp_violations).
  Status Submit(int64_t object_id, const PositioningRecord& record);

  /// Flushes the session (the sink receives the remaining m-semantics)
  /// and releases it.  Asynchronous: the flush has happened once a
  /// subsequent Drain() returns.
  Status CloseSession(int64_t object_id);

  /// Blocks until the service is idle: every operation submitted so far
  /// (including ones racing this call) is fully processed, establishing
  /// a happens-before edge with all sink invocations for that work.
  /// Under continuous concurrent submission this waits until producers
  /// pause — pair it with quiescing the producers first.
  void Drain();

  /// Drains, stops the workers, and joins them.  Idempotent; called by
  /// the destructor.  Submissions after Stop() fail.
  void Stop();

  /// A consistent point-in-time snapshot; cheap enough to poll.
  ServiceStats Stats() const;

  /// The live analytics engine, or nullptr when analytics are disabled.
  /// Queries and snapshots are safe from any thread while the service
  /// runs; Drain() first for answers covering everything submitted.
  const AnalyticsEngine* analytics() const { return analytics_.get(); }

  /// \brief Registers a standing continuous top-k query over the live
  /// analytics stream.  The callback receives the initial answer
  /// (sequence 1) on this thread before the call returns, then a delta
  /// on the owning shard worker every time ingest or retention-aging
  /// changes the answer set.  Keep callbacks fast — they run on the
  /// record-processing path.  Fails when analytics are disabled.
  Result<int> SubscribeAnalytics(StandingQuery query,
                                 StandingQueryCallback callback);

  /// Cancels a standing query; no deltas fire after this returns.
  Status UnsubscribeAnalytics(int subscription_id);

  /// Merged analytics gauges alongside ServiceStats, including
  /// standing-query push latency (submit to delta-callback-returned,
  /// over ingests that pushed at least one delta); empty when analytics
  /// are disabled.
  AnalyticsSnapshot AnalyticsStats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard;

  Shard* ShardOf(int64_t object_id) const;
  void WorkerLoop(Shard* shard);
  void NoteOpDone();

  const World& world_;
  const FeatureOptions fopts_;
  const C2mnStructure structure_;
  const std::vector<double> weights_;
  const Options options_;
  const Stopwatch uptime_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<AnalyticsEngine> analytics_;

  /// Caller-visible session registry (which ids are open right now);
  /// the authoritative per-session state lives with the shard workers.
  mutable std::mutex registry_mu_;
  std::unordered_set<int64_t> open_sessions_;
  uint64_t sessions_opened_ = 0;
  uint64_t sessions_closed_ = 0;
  bool stopped_ = false;

  std::atomic<uint64_t> records_submitted_{0};

  /// Operations enqueued but not yet fully processed, across all
  /// shards; Drain() waits for zero.
  std::atomic<uint64_t> pending_ops_{0};
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace c2mn

#endif  // C2MN_SERVICE_ANNOTATION_SERVICE_H_
