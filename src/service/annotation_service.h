#ifndef C2MN_SERVICE_ANNOTATION_SERVICE_H_
#define C2MN_SERVICE_ANNOTATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>  // std::once_flag
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "analytics/analytics_engine.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/sync.h"
#include "obs/metrics_registry.h"
#include "obs/pipeline_trace.h"
#include "service/service_stats.h"
#include "service/session.h"
#include "storage/storage_manager.h"

namespace c2mn {

/// \brief A concurrent streaming annotation service: thousands of
/// per-object positioning streams, each annotated by its own
/// OnlineAnnotator, sharded across a fixed pool of worker threads.
///
/// Sharding is by object id (hash -> shard), so every session is
/// processed by exactly one worker and needs no per-record locking;
/// submissions enter bounded per-shard MPSC queues whose backpressure
/// blocks producers instead of growing memory.  As long as each
/// session's records are submitted from one thread at a time (in
/// timestamp order), the m-semantics delivered to its sink are
/// *identical* to a standalone OnlineAnnotator fed the same records —
/// concurrency never changes the answer, only the throughput.
///
/// Thread model:
///  - OpenSession / Submit / CloseSession / Drain / Stats are safe to
///    call from any thread.
///  - Sinks run on shard worker threads, one session at a time.
///  - Drain() returns once every record submitted before the call has
///    been fully processed (and its emissions delivered).
class AnnotationService {
 public:
  /// Opt-in live analytics over the service's m-semantics stream.
  struct AnalyticsOptions {
    /// When true the service owns an AnalyticsEngine and feeds it every
    /// m-semantics it delivers to sinks (shard-local, so ingestion never
    /// crosses threads).
    bool enabled = false;
    /// Engine configuration; num_shards is overridden with the
    /// service's shard count.
    AnalyticsEngine::Options engine;
  };

  /// Observability wiring: where the service's metrics live and how
  /// finely records are traced.
  struct ObsOptions {
    /// Registry to register into.  nullptr (the default) gives the
    /// service a private registry so two services in one process never
    /// fold their counters together; pass &obs::MetricsRegistry::Global()
    /// for one unified process-wide export.
    obs::MetricsRegistry* registry = nullptr;
    /// Per-stage latency tracing (queue_wait/decode/sink_emit/
    /// analytics_ingest histograms).  Off leaves only the single
    /// submit-to-done clock read the legacy stats need.
    bool stage_tracing = true;
    /// End-to-end latency beyond which a record is logged as a slow op
    /// with its full stage breakdown; 0 disables the slow-op log.
    double slow_trace_threshold_seconds = 0.0;
    /// Log 1 in N slow ops (all are counted).
    int slow_trace_log_every = 1;
    /// When > 0, a background thread renders the registry to
    /// `export_path` every interval.  Requires a non-empty path.
    double export_interval_seconds = 0.0;
    std::string export_path;
    /// "prom" or "json".
    std::string export_format = "prom";
  };

  /// Opt-in durable analytics state: a write-ahead visit log plus
  /// periodic snapshots in a state directory, recovered on construction.
  /// Requires analytics to be enabled (the log records what the engine
  /// ingests).
  struct StorageOptions {
    /// Empty (the default) disables durability entirely.
    std::string state_dir;
    /// Background checkpoint period; <= 0 leaves checkpointing to
    /// explicit CheckpointStorage() calls (and Stop(), below).
    double checkpoint_interval_seconds = 0.0;
    /// Run a final checkpoint during Stop().  When false, Stop() still
    /// flushes and fsyncs the log tail, so nothing processed is lost —
    /// the next boot just replays more.
    bool checkpoint_on_stop = true;
    /// Forwarded to StorageManager (tests disable for speed).
    bool fsync = true;
  };

  struct Options {
    /// Worker threads; each owns one queue and a disjoint set of
    /// sessions.
    int num_shards = 4;
    /// Per-shard queue bound; Submit() blocks when the shard is this
    /// far behind.
    size_t queue_capacity = 4096;
    /// Max operations a worker drains per wakeup (amortizes lock and
    /// wakeup costs across a decode stride).
    size_t max_batch = 64;
    /// Streaming-decode knobs forwarded to every session's annotator.
    OnlineAnnotator::Options annotator;
    /// Live analytics over everything the sinks receive.
    AnalyticsOptions analytics;
    /// Metrics registry, stage tracing, and periodic export.
    ObsOptions obs;
    /// Durable state (snapshot + write-ahead log) for the analytics.
    StorageOptions storage;
  };

  /// The world and weights are shared (read-only) by all sessions; the
  /// caller keeps `world` alive for the service's lifetime.
  AnnotationService(const World& world, FeatureOptions feature_options,
                    C2mnStructure structure, std::vector<double> weights,
                    Options options);

  AnnotationService(const World& world, FeatureOptions feature_options,
                    C2mnStructure structure, std::vector<double> weights)
      : AnnotationService(world, std::move(feature_options), structure,
                          std::move(weights), Options()) {}

  /// Drains and joins the workers.  Sessions still open are discarded
  /// without a final flush — call CloseSession (plus Drain) first if
  /// their tails matter.
  ~AnnotationService();

  AnnotationService(const AnnotationService&) = delete;
  AnnotationService& operator=(const AnnotationService&) = delete;

  /// Registers a new stream; `sink` receives its completed m-semantics
  /// in order.  Fails if the id is already open or the service stopped.
  Status OpenSession(int64_t object_id, SemanticsSink sink);

  /// Enqueues one record for the session's shard; blocks under
  /// backpressure.  Records of one session must arrive in timestamp
  /// order (out-of-order timestamps are clamped and counted, see
  /// ServiceStats::timestamp_violations).
  Status Submit(int64_t object_id, const PositioningRecord& record);

  /// Flushes the session (the sink receives the remaining m-semantics)
  /// and releases it.  Asynchronous: the flush has happened once a
  /// subsequent Drain() returns.
  Status CloseSession(int64_t object_id);

  /// Blocks until the service is idle: every operation submitted so far
  /// (including ones racing this call) is fully processed, establishing
  /// a happens-before edge with all sink invocations for that work.
  /// Under continuous concurrent submission this waits until producers
  /// pause — pair it with quiescing the producers first.
  void Drain();

  /// Drains, stops the workers, and joins them.  Idempotent; called by
  /// the destructor.  Submissions after Stop() fail.
  void Stop();

  /// A consistent point-in-time snapshot; cheap enough to poll.
  ServiceStats Stats() const;

  /// The live analytics engine, or nullptr when analytics are disabled.
  /// Queries and snapshots are safe from any thread while the service
  /// runs; Drain() first for answers covering everything submitted.
  const AnalyticsEngine* analytics() const { return analytics_.get(); }

  /// \brief Registers a standing continuous top-k query over the live
  /// analytics stream.  The callback receives the initial answer
  /// (sequence 1) on this thread before the call returns, then a delta
  /// on the owning shard worker every time ingest or retention-aging
  /// changes the answer set.  Keep callbacks fast — they run on the
  /// record-processing path.  Fails when analytics are disabled.
  Result<int> SubscribeAnalytics(StandingQuery query,
                                 StandingQueryCallback callback);

  /// Cancels a standing query; no deltas fire after this returns.
  Status UnsubscribeAnalytics(int subscription_id);

  /// Merged analytics gauges alongside ServiceStats, including
  /// standing-query push latency (submit to delta-callback-returned,
  /// over ingests that pushed at least one delta); empty when analytics
  /// are disabled.
  AnalyticsSnapshot AnalyticsStats() const;

  /// Runs one checkpoint cycle now (rotate the log, publish a snapshot,
  /// compact).  Safe from any thread while the service runs; fails when
  /// durability is disabled, recovery failed at boot, or another
  /// checkpoint is in flight.
  Status CheckpointStorage();

  /// OK when durability is active (or disabled deliberately via an
  /// empty state_dir); the recovery error when boot-time recovery
  /// refused the state directory — the service still runs, but nothing
  /// is logged and CheckpointStorage() fails.
  const Status& storage_status() const { return storage_status_; }

  /// What boot-time recovery found; zeros when durability is off.
  const storage::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The registry this service's metrics live in (the injected one, or
  /// the private per-instance default).  Safe to snapshot/render from
  /// any thread while the service exists.
  obs::MetricsRegistry& metrics_registry() const { return *registry_; }

  /// The per-stage tracer, or nullptr when stage tracing is disabled.
  const obs::PipelineTracer* tracer() const { return tracer_.get(); }

 private:
  struct Shard;

  Shard* ShardOf(int64_t object_id) const;
  void WorkerLoop(Shard* shard);
  void NoteOpDone();
  void RegisterMetrics();
  void UpdateGauges() const;
  void ExportLoop();
  void CheckpointLoop();

  const World& world_;
  const FeatureOptions fopts_;
  const C2mnStructure structure_;
  const std::vector<double> weights_;
  const Options options_;
  const Stopwatch uptime_;

  /// Private registry when none was injected; registry_ points at it or
  /// at the injected one.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  std::unique_ptr<obs::PipelineTracer> tracer_;

  /// Registry-backed counters; ServiceStats is a thin view over these.
  obs::Counter* records_submitted_total_ = nullptr;
  obs::Counter* records_processed_total_ = nullptr;
  obs::Counter* semantics_emitted_total_ = nullptr;
  obs::Counter* timestamp_violations_total_ = nullptr;
  obs::Counter* merge_mismatches_total_ = nullptr;
  obs::Counter* batched_decodes_total_ = nullptr;
  obs::Counter* decode_batches_total_ = nullptr;
  obs::Gauge* sessions_open_gauge_ = nullptr;
  std::vector<obs::Gauge*> queue_depth_gauges_;

  /// Per-instance (not function-local static) so each service logs its
  /// own histogram-config mismatch; a process-wide flag would mute every
  /// instance after the first one logged.  Mutable: flipped from the
  /// const Stats()/AnalyticsStats() accessors.
  mutable std::once_flag latency_merge_mismatch_logged_;
  mutable std::once_flag push_merge_mismatch_logged_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<AnalyticsEngine> analytics_;

  /// Durable state.  Created (and recovered) before the workers start,
  /// reset to null on recovery failure — so by the time any worker or
  /// caller can observe it, the pointer is immutable.
  std::unique_ptr<storage::StorageManager> storage_;
  Status storage_status_;
  storage::RecoveryStats recovery_stats_;

  /// Background checkpointer (storage.checkpoint_interval_seconds > 0).
  std::thread checkpoint_thread_;
  mutable Mutex checkpoint_mu_{LockRank::kServiceCheckpoint,
                               "AnnotationService::checkpoint_mu_"};
  CondVar checkpoint_cv_;
  bool checkpoint_stop_ C2MN_GUARDED_BY(checkpoint_mu_) = false;

  /// Periodic exporter (obs.export_interval_seconds > 0).
  std::thread export_thread_;
  mutable Mutex export_mu_{LockRank::kServiceExport,
                           "AnnotationService::export_mu_"};
  CondVar export_cv_;
  bool export_stop_ C2MN_GUARDED_BY(export_mu_) = false;

  /// Caller-visible session registry (which ids are open right now);
  /// the authoritative per-session state lives with the shard workers.
  /// Acquired before the queue mutexes (Submit checks the registry, then
  /// pushes) — the declared rank order makes that edge explicit.
  mutable Mutex registry_mu_{LockRank::kServiceRegistry,
                             "AnnotationService::registry_mu_"};
  std::unordered_set<int64_t> open_sessions_ C2MN_GUARDED_BY(registry_mu_);
  uint64_t sessions_opened_ C2MN_GUARDED_BY(registry_mu_) = 0;
  uint64_t sessions_closed_ C2MN_GUARDED_BY(registry_mu_) = 0;
  bool stopped_ C2MN_GUARDED_BY(registry_mu_) = false;

  /// Operations enqueued but not yet fully processed, across all
  /// shards; Drain() waits for zero.
  std::atomic<uint64_t> pending_ops_{0};
  mutable Mutex drain_mu_{LockRank::kServiceDrain,
                          "AnnotationService::drain_mu_"};
  CondVar drain_cv_;
};

}  // namespace c2mn

#endif  // C2MN_SERVICE_ANNOTATION_SERVICE_H_
