#ifndef C2MN_SERVICE_BOUNDED_QUEUE_H_
#define C2MN_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace c2mn {

/// \brief A bounded multi-producer single-consumer blocking queue.
///
/// Producers block in Push() while the queue is at capacity
/// (backpressure: a flood of Submit() calls slows the callers down
/// instead of growing memory without bound).  The single consumer drains
/// with PopBatch(), which hands back up to `max_items` at once so the
/// worker amortizes wakeups and lock traffic across a whole decode
/// stride.  FIFO order is global across producers, which is what makes
/// per-session processing deterministic when each session has a single
/// submitting thread.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full.  Returns false (dropping the item) once the
  /// queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Appends up to `max_items` into `*out` and
  /// returns true; returns false once the queue is closed and drained.
  bool PopBatch(std::vector<T>* out, size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // Closed and drained.
    const size_t n = std::min(max_items, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Wakes all waiters; subsequent Push() calls fail, PopBatch() keeps
  /// succeeding until the backlog is drained.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace c2mn

#endif  // C2MN_SERVICE_BOUNDED_QUEUE_H_
