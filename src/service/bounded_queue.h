#ifndef C2MN_SERVICE_BOUNDED_QUEUE_H_
#define C2MN_SERVICE_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace c2mn {

/// \brief A bounded multi-producer single-consumer blocking queue.
///
/// Producers block in Push() while the queue is at capacity
/// (backpressure: a flood of Submit() calls slows the callers down
/// instead of growing memory without bound).  The single consumer drains
/// with PopBatch(), which hands back up to `max_items` at once so the
/// worker amortizes wakeups and lock traffic across a whole decode
/// stride.  FIFO order is global across producers, which is what makes
/// per-session processing deterministic when each session has a single
/// submitting thread.
///
/// The queue mutex is a leaf in the lock lattice (LockRank::kServiceQueue):
/// nothing is ever acquired while holding it, so producers can call Push
/// from under any caller-side locking discipline without adding an edge.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : mu_(LockRank::kServiceQueue, "BoundedQueue::mu_"),
        capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full.  Returns false (dropping the item) once the
  /// queue is closed.
  bool Push(T item) C2MN_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while empty.  Appends up to `max_items` into `*out` and
  /// returns true; returns false once the queue is closed and drained.
  bool PopBatch(std::vector<T>* out, size_t max_items) C2MN_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
      if (items_.empty()) return false;  // Closed and drained.
      const size_t n = std::min(max_items, items_.size());
      for (size_t i = 0; i < n; ++i) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_full_.NotifyAll();
    return true;
  }

  /// Wakes all waiters; subsequent Push() calls fail, PopBatch() keeps
  /// succeeding until the backlog is drained.
  void Close() C2MN_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t size() const C2MN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ C2MN_GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ C2MN_GUARDED_BY(mu_) = false;
};

}  // namespace c2mn

#endif  // C2MN_SERVICE_BOUNDED_QUEUE_H_
