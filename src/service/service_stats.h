#ifndef C2MN_SERVICE_SERVICE_STATS_H_
#define C2MN_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <vector>

namespace c2mn {

/// \brief A point-in-time snapshot of AnnotationService health, cheap
/// enough to poll from a monitoring thread.
struct ServiceStats {
  /// Sessions currently open (opened and not yet closed by the caller).
  size_t sessions_open = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;

  /// Records accepted by Submit() so far.
  uint64_t records_submitted = 0;
  /// Records fully processed by shard workers.
  uint64_t records_processed = 0;
  /// M-semantics handed to session sinks.
  uint64_t semantics_emitted = 0;
  /// Out-of-order timestamps clamped by the per-session annotators.
  uint64_t timestamp_violations = 0;
  /// Latency-histogram merges that hit a shard histogram with a
  /// different bucket configuration and were skipped.  Always 0 unless
  /// the service's histograms were misconfigured; surfaced (instead of
  /// silently dropping the shard's samples) so the gap is visible.
  uint64_t histogram_merge_mismatches = 0;

  /// Window decodes executed through the cross-session decode batch
  /// (parked by the shard worker and run back-to-back on the shard's
  /// shared workspace).
  uint64_t batched_decodes = 0;
  /// Queue drains that ran at least one parked decode.
  uint64_t decode_batches = 0;

  /// Per-shard backlog at snapshot time.
  std::vector<size_t> queue_depths;

  /// Seconds since the service started.
  double elapsed_seconds = 0.0;
  /// records_processed / elapsed_seconds.
  double records_per_second = 0.0;

  /// Submit-to-emit latency: from Submit() accepting a record to the
  /// shard worker finishing the push that consumed it (including any
  /// m-semantics emission it triggered).
  uint64_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

}  // namespace c2mn

#endif  // C2MN_SERVICE_SERVICE_STATS_H_
