#ifndef C2MN_SERVICE_SESSION_H_
#define C2MN_SERVICE_SESSION_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "core/online_annotator.h"

namespace c2mn {

/// Receives every completed m-semantics of one session, in stream order.
/// Invoked on the owning shard's worker thread; implementations must be
/// fast (hand off to another queue if they are not) and need no locking
/// against other calls for the same session.
using SemanticsSink = std::function<void(int64_t object_id, const MSemantics&)>;

namespace service_internal {

/// \brief One live object stream inside the service: the streaming
/// annotator plus its sink and counters.  Owned by exactly one shard
/// worker thread, so none of this needs synchronization.
struct Session {
  Session(const World& world, const FeatureOptions& fopts,
          C2mnStructure structure, const std::vector<double>& weights,
          OnlineAnnotator::Options options, int64_t id, SemanticsSink s)
      : object_id(id),
        annotator(world, fopts, structure, weights, options),
        sink(std::move(s)) {}

  int64_t object_id;
  OnlineAnnotator annotator;
  SemanticsSink sink;
};

}  // namespace service_internal
}  // namespace c2mn

#endif  // C2MN_SERVICE_SESSION_H_
