#include "sim/building_gen.h"

#include <string>
#include <vector>

namespace c2mn {

namespace {

/// Per-floor bookkeeping while laying out one floor.
struct FloorLayout {
  std::vector<PartitionId> rooms;       // All room partitions, row-major.
  std::vector<PartitionId> corridors;   // One per block.
  PartitionId spine = kInvalidId;
  std::vector<PartitionId> stairs;      // One per staircase shaft.
};

}  // namespace

Result<Floorplan> GenerateBuilding(const BuildingConfig& config, Rng* rng) {
  if (config.num_floors < 1 || config.rooms_per_row < 1 ||
      config.blocks_per_floor < 1) {
    return Status::InvalidArgument("building dimensions must be positive");
  }
  if (config.num_staircases < 1 && config.num_floors > 1) {
    return Status::InvalidArgument("multi-floor building needs staircases");
  }

  FloorplanBuilder builder;
  const double rw = config.room_width;
  const double rd = config.room_depth;
  const double cw = config.corridor_width;
  const double sw = config.spine_width;
  const double block_h = 2.0 * rd + cw;
  const double total_h = config.blocks_per_floor * block_h;
  const double rooms_x0 = sw;
  const double rooms_x1 = sw + config.rooms_per_row * rw;

  std::vector<FloorLayout> layouts(config.num_floors);
  for (FloorId f = 0; f < config.num_floors; ++f) {
    FloorLayout& layout = layouts[f];
    // Spine corridor along the left edge.
    layout.spine = builder.AddPartition(
        f, PartitionKind::kHallway,
        Polygon::Rectangle({0.0, 0.0}, {sw, total_h}));
    for (int b = 0; b < config.blocks_per_floor; ++b) {
      const double y0 = b * block_h;
      const double corridor_y0 = y0 + rd;
      const double corridor_y1 = y0 + rd + cw;
      const PartitionId corridor = builder.AddPartition(
          f, PartitionKind::kHallway,
          Polygon::Rectangle({rooms_x0, corridor_y0},
                             {rooms_x1, corridor_y1}));
      layout.corridors.push_back(corridor);
      // Corridor opens into the spine.
      builder.AddDoor(layout.spine, corridor,
                      {sw, 0.5 * (corridor_y0 + corridor_y1)});
      for (int i = 0; i < config.rooms_per_row; ++i) {
        const double x0 = rooms_x0 + i * rw;
        const double x1 = x0 + rw;
        const double door_x = 0.5 * (x0 + x1);
        // Bottom row room (door on its top wall).
        const PartitionId bottom = builder.AddPartition(
            f, PartitionKind::kRoom,
            Polygon::Rectangle({x0, y0}, {x1, corridor_y0}));
        builder.AddDoor(bottom, corridor, {door_x, corridor_y0});
        layout.rooms.push_back(bottom);
        // Top row room (door on its bottom wall).
        const PartitionId top = builder.AddPartition(
            f, PartitionKind::kRoom,
            Polygon::Rectangle({x0, corridor_y1}, {x1, corridor_y1 + rd}));
        builder.AddDoor(top, corridor, {door_x, corridor_y1});
        layout.rooms.push_back(top);
      }
    }
    // Staircase shafts on the right edge, attached to distinct corridors.
    for (int s = 0; s < config.num_staircases; ++s) {
      const int block = s % config.blocks_per_floor;
      const double corridor_y0 = block * block_h + rd;
      const double corridor_y1 = corridor_y0 + cw;
      // Offset shafts that share a corridor so their footprints differ.
      const int shaft_rank = s / config.blocks_per_floor;
      const double x0 = rooms_x1 + shaft_rank * config.stair_width;
      const double x1 = x0 + config.stair_width;
      const PartitionId shaft = builder.AddPartition(
          f, PartitionKind::kStaircase,
          Polygon::Rectangle({x0, corridor_y0}, {x1, corridor_y1}));
      builder.AddDoor(layouts[f].corridors[block], shaft,
                      {x0, 0.5 * (corridor_y0 + corridor_y1)});
      layout.stairs.push_back(shaft);
    }
    // Connect shafts to the floor below.
    if (f > 0) {
      for (int s = 0; s < config.num_staircases; ++s) {
        const PartitionId below = layouts[f - 1].stairs[s];
        const PartitionId here = layout.stairs[s];
        const int block = s % config.blocks_per_floor;
        const int shaft_rank = s / config.blocks_per_floor;
        const double corridor_y0 = block * block_h + rd;
        const double x0 = rooms_x1 + shaft_rank * config.stair_width;
        builder.AddStairDoor(below, here,
                             {x0 + 0.5 * config.stair_width,
                              corridor_y0 + 0.5 * cw},
                             config.stair_traversal_cost);
      }
    }
  }

  // Designate semantic regions over the rooms.  Same-type shops cluster
  // together in malls, so we walk rooms in layout order and draw
  // contiguous decisions; some regions merge two adjacent rooms.
  int region_counter = 0;
  for (FloorId f = 0; f < config.num_floors; ++f) {
    const auto& rooms = layouts[f].rooms;
    std::vector<bool> used(rooms.size(), false);
    for (size_t i = 0; i < rooms.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      if (!rng->Bernoulli(config.region_fraction)) {
        continue;  // Room stays non-semantic (storage, service space).
      }
      std::vector<PartitionId> members = {rooms[i]};
      // Rooms come in (bottom, top) pairs along the corridor; the next
      // room in the same row is two indices away.
      if (i + 2 < rooms.size() && !used[i + 2] &&
          rng->Bernoulli(config.multi_partition_fraction)) {
        members.push_back(rooms[i + 2]);
        used[i + 2] = true;
      }
      std::string name = "shop-F" + std::to_string(f) + "-" +
                         std::to_string(region_counter++);
      builder.AddRegion(std::move(name), std::move(members));
    }
  }

  return builder.Build();
}

BuildingConfig MallConfig() {
  BuildingConfig config;
  config.num_floors = 7;
  config.rooms_per_row = 8;
  config.blocks_per_floor = 2;
  // Mall shops are sized so one inter-record stride (~1.2 m/s x 15 s)
  // spans about one storefront, matching the paper's relative scale.
  config.room_width = 14.0;
  config.room_depth = 12.0;
  config.corridor_width = 5.0;
  config.num_staircases = 2;
  config.region_fraction = 0.85;
  config.multi_partition_fraction = 0.15;
  return config;
}

BuildingConfig SyntheticConfig() {
  BuildingConfig config;
  config.num_floors = 10;
  config.rooms_per_row = 9;
  config.blocks_per_floor = 2;
  config.room_width = 12.0;
  config.room_depth = 10.0;
  config.num_staircases = 4;
  config.region_fraction = 0.75;
  config.multi_partition_fraction = 0.1;
  return config;
}

}  // namespace c2mn
