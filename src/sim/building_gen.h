#ifndef C2MN_SIM_BUILDING_GEN_H_
#define C2MN_SIM_BUILDING_GEN_H_

#include "common/rng.h"
#include "common/status.h"
#include "indoor/floorplan.h"

namespace c2mn {

/// \brief Parameters of the procedural multi-floor building generator.
///
/// Every floor is a stack of "blocks": a bottom room row, a corridor, and
/// a top room row, all served by one vertical spine corridor on the left
/// and staircase shafts on the right.  The layout reproduces the
/// structural traits the paper calls out for indoor venues — a relatively
/// small extent, a compact distribution of semantic regions of the same
/// type placed together, and movement constrained by doors and hallways.
struct BuildingConfig {
  int num_floors = 7;
  /// Rooms per row (a block has two rows).
  int rooms_per_row = 10;
  /// Double-sided corridor blocks per floor.
  int blocks_per_floor = 2;
  double room_width = 8.0;    ///< Meters along the corridor.
  double room_depth = 10.0;   ///< Meters away from the corridor.
  double corridor_width = 4.0;
  double spine_width = 5.0;
  double stair_width = 5.0;
  /// Number of staircase shafts (paper synthetic building: 4).
  int num_staircases = 2;
  /// Walking length of one flight of stairs in meters.
  double stair_traversal_cost = 12.0;
  /// Fraction of rooms that become single-partition semantic regions.
  /// The remainder is merged pairwise into two-partition regions or left
  /// as non-semantic space.
  double region_fraction = 0.8;
  /// Fraction of semantic regions that span two adjacent rooms.
  double multi_partition_fraction = 0.15;
};

/// Generates a building per `config`; `rng` drives the random choice of
/// which rooms become (multi-partition) semantic regions.
Result<Floorplan> GenerateBuilding(const BuildingConfig& config, Rng* rng);

/// A 7-floor mall-style configuration sized as the surrogate for the
/// paper's Hangzhou mall deployment (202 shop regions at full scale; this
/// yields about the same region density per floor).
BuildingConfig MallConfig();

/// The 10-floor synthetic building of Section V-C (4 staircases, regions
/// chosen at random over the partitions).
BuildingConfig SyntheticConfig();

}  // namespace c2mn

#endif  // C2MN_SIM_BUILDING_GEN_H_
