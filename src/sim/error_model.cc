#include "sim/error_model.h"

#include <algorithm>

#include "geometry/circle_overlap.h"
#include <cmath>
#include <vector>

namespace c2mn {

namespace {

/// Displaces `p` by a uniformly random direction and a radius drawn
/// uniformly from [r_lo, r_hi].
Vec2 Displace(const Vec2& p, double r_lo, double r_hi, Rng* rng) {
  const double angle = rng->Uniform(0.0, 2.0 * M_PI);
  const double radius = rng->Uniform(r_lo, r_hi);
  return {p.x + radius * std::cos(angle), p.y + radius * std::sin(angle)};
}

/// The annotation emulator's view of record i: the window-averaged
/// observed position on the window's majority floor.  This is what a
/// reviewer effectively sees when judging a noisy point against the
/// rendered trajectory.
IndoorPoint SmoothedObservation(const std::vector<PositioningRecord>& records,
                                int i) {
  const int n = static_cast<int>(records.size());
  const int lo = std::max(0, i - 1);
  const int hi = std::min(n - 1, i + 1);
  Vec2 mean{0, 0};
  std::vector<int> floor_votes;
  int cnt = 0;
  for (int j = lo; j <= hi; ++j) {
    mean = mean + records[j].location.xy;
    ++cnt;
    const int f = records[j].location.floor;
    if (f >= static_cast<int>(floor_votes.size())) floor_votes.resize(f + 1, 0);
    if (f >= 0) ++floor_votes[f];
  }
  mean = mean / static_cast<double>(cnt);
  int floor = records[i].location.floor;
  int best_votes = 0;
  for (size_t f = 0; f < floor_votes.size(); ++f) {
    if (floor_votes[f] > best_votes) {
      best_votes = floor_votes[f];
      floor = static_cast<int>(f);
    }
  }
  return IndoorPoint(mean, floor);
}

/// The reviewer's judgment of how strongly a region claims a rendered
/// point: the overlap of the region's footprint with a perceptual disk
/// around the point (floor-matched partitions only).
double RegionClaim(const World& world, const IndoorPoint& view, double radius,
                   RegionId region) {
  double overlap = 0.0;
  for (PartitionId pid : world.plan().region(region).partitions) {
    const Partition& part = world.plan().partition(pid);
    if (part.floor != view.floor) continue;
    overlap += CirclePolygonIntersectionArea(view.xy, radius, part.shape);
  }
  return overlap;
}

/// Re-derives pass-record regions from the observed (smoothed) positions,
/// emulating the paper's human annotation of the rendered trajectory: the
/// region with the visually dominant claim wins, and the reviewer keeps
/// the current pass region until another clearly dominates (hysteresis).
void AnnotatePassRegions(const World& world, const ObservationConfig& config,
                         LabeledSequence* out) {
  const int n = static_cast<int>(out->sequence.size());
  RegionId current = kInvalidId;
  for (int i = 0; i < n; ++i) {
    if (out->labels.events[i] == MobilityEvent::kStay) {
      // Stays keep the simulator truth; the hysteresis restarts from the
      // stayed region (an annotator tracks "leaving shop X").
      current = out->labels.regions[i];
      continue;
    }
    const IndoorPoint view = SmoothedObservation(out->sequence.records, i);
    RegionId best = kInvalidId;
    double best_claim = 0.0;
    for (const auto& [region, dist] :
         world.index().NearestRegions(view, 5, 4.0 * config.annotation_radius)) {
      const double claim =
          RegionClaim(world, view, config.annotation_radius, region);
      if (claim > best_claim) {
        best_claim = claim;
        best = region;
      }
    }
    RegionId label = current;
    if (best == kInvalidId) {
      // Nothing within view (outlier): keep the current span, falling
      // back to the nearest region at the start of a trajectory.
      if (current == kInvalidId) label = world.index().NearestRegion(view);
    } else if (current == kInvalidId || current == best) {
      label = best;
    } else {
      const double current_claim =
          RegionClaim(world, view, config.annotation_radius, current);
      label = best_claim >
                      config.annotation_hysteresis_ratio * current_claim
                  ? best
                  : current;
    }
    if (label != kInvalidId) out->labels.regions[i] = label;
    current = out->labels.regions[i];
  }
}

}  // namespace

LabeledSequence Observe(const GroundTruthTrace& trace, const World& world,
                        const ObservationConfig& config, Rng* rng) {
  LabeledSequence out;
  out.sequence.object_id = trace.object_id;
  if (trace.empty()) return out;

  const double t0 = trace.points.front().timestamp;
  const double t_last = trace.points.back().timestamp;
  double t = t0;
  while (t <= t_last) {
    // The trace is per-second; index by offset from its start.
    const size_t idx = std::min(
        trace.points.size() - 1, static_cast<size_t>(std::llround(t - t0)));
    const TracePoint& truth = trace.points[idx];

    PositioningRecord record;
    record.timestamp = truth.timestamp;
    IndoorPoint estimate = truth.position;
    if (rng->Bernoulli(config.outlier_prob)) {
      estimate.xy = Displace(estimate.xy, 2.5 * config.error_mu,
                             10.0 * config.error_mu, rng);
    } else {
      estimate.xy = Displace(estimate.xy, 0.0, config.error_mu, rng);
    }
    if (rng->Bernoulli(config.false_floor_prob)) {
      const int delta =
          (rng->Bernoulli(0.5) ? 1 : -1) *
          static_cast<int>(rng->UniformInt(int64_t{1}, int64_t{2}));
      estimate.floor = std::clamp(estimate.floor + delta, 0,
                                  config.num_floors - 1);
    }
    record.location = estimate;
    out.sequence.records.push_back(record);
    out.labels.regions.push_back(truth.region);
    out.labels.events.push_back(truth.event);

    t += rng->Uniform(config.min_period_seconds, config.max_period_seconds);
  }

  if (config.annotate_pass_from_observations) {
    AnnotatePassRegions(world, config, &out);
  }
  return out;
}

}  // namespace c2mn
