#ifndef C2MN_SIM_ERROR_MODEL_H_
#define C2MN_SIM_ERROR_MODEL_H_

#include "common/rng.h"
#include "data/labels.h"
#include "sim/trace.h"
#include "sim/world.h"

namespace c2mn {

/// \brief The positioning error model of Section V-C.
///
/// "After an object has reported an estimate, it keeps silent for at most
/// T seconds. ... A location estimate is randomly within μ meters from the
/// true location.  False floor values and location outliers are added to
/// the reports with certain probabilities (3% and 3%).  A false floor
/// value is produced within two floors up or down, and an outlier is
/// within 2.5μ–10μ meters from the true location."
struct ObservationConfig {
  /// T: maximum positioning period in seconds; report gaps are drawn
  /// uniformly from [min_period_seconds, T].
  double max_period_seconds = 5.0;
  double min_period_seconds = 1.0;
  /// μ: positioning error factor in meters; regular estimates are
  /// displaced uniformly within μ of the truth.
  double error_mu = 3.0;
  /// Probability of a false floor value (±1 or ±2 floors, clamped).
  double false_floor_prob = 0.03;
  /// Probability of a location outlier at 2.5μ–10μ.
  double outlier_prob = 0.03;
  /// Number of floors in the building, for clamping false floors.
  int num_floors = 1;

  /// Emulate the paper's human annotation of pass records (the TRIPS
  /// Event Editor reviewers labeled the *rendered noisy trajectory*): the
  /// ground-truth region of a pass record is re-derived from the smoothed
  /// observed positions, choosing the region whose footprint overlaps a
  /// perceptual disk around the point the most, with hysteresis (the
  /// reviewer keeps the current region until another clearly dominates).
  /// Stay records keep the simulator's exact region (dwell clusters are
  /// unambiguous to an annotator).  See DESIGN.md, substitution 4.
  bool annotate_pass_from_observations = true;
  /// Radius of the reviewer's perceptual disk in meters.
  double annotation_radius = 6.0;
  /// Relative overlap advantage a region needs before the reviewer
  /// re-labels the pass span.
  double annotation_hysteresis_ratio = 1.3;
};

/// \brief Samples noisy positioning records from a ground-truth trace and
/// derives the per-record labels at the sampled instants.
///
/// The returned LabeledSequence is the supervised-learning unit: records
/// are what an indoor positioning system would report, labels are what the
/// paper's human reviewers would have annotated at the same seconds.
LabeledSequence Observe(const GroundTruthTrace& trace, const World& world,
                        const ObservationConfig& config, Rng* rng);

}  // namespace c2mn

#endif  // C2MN_SIM_ERROR_MODEL_H_
