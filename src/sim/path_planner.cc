#include "sim/path_planner.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace c2mn {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<IndoorPoint> PathPlanner::PlanWaypoints(
    const IndoorPoint& from, const IndoorPoint& to) const {
  const PartitionId start = plan_.PartitionAt(from);
  const PartitionId goal = plan_.PartitionAt(to);
  if (start == kInvalidId || goal == kInvalidId) return {};
  if (start == goal) return {from, to};

  // Multi-source Dijkstra over doors, seeded from the doors of the start
  // partition, stopped once every goal-partition door is settled.
  const size_t nd = plan_.doors().size();
  std::vector<double> dist(nd, kInf);
  std::vector<DoorId> parent(nd, kInvalidId);
  using Item = std::pair<double, DoorId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (DoorId d : plan_.partition(start).doors) {
    const Door& door = plan_.door(d);
    const double cost =
        Distance(from.xy, door.PositionIn(start).xy) +
        0.5 * door.traversal_cost;
    if (cost < dist[d]) {
      dist[d] = cost;
      heap.emplace(cost, d);
    }
  }
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (const BaseGraph::Edge& e : graph_.Neighbors(u)) {
      const double nd_cost = d + e.weight;
      if (nd_cost < dist[e.to]) {
        dist[e.to] = nd_cost;
        parent[e.to] = u;
        heap.emplace(nd_cost, e.to);
      }
    }
  }

  DoorId best_door = kInvalidId;
  double best_total = kInf;
  for (DoorId d : plan_.doors().empty()
                      ? std::vector<DoorId>{}
                      : plan_.partition(goal).doors) {
    if (dist[d] == kInf) continue;
    const Door& door = plan_.door(d);
    const double total = dist[d] + 0.5 * door.traversal_cost +
                         Distance(to.xy, door.PositionIn(goal).xy);
    if (total < best_total) {
      best_total = total;
      best_door = d;
    }
  }
  if (best_door == kInvalidId) return {};

  // Reconstruct the door chain back to the start partition.
  std::vector<DoorId> chain;
  for (DoorId d = best_door; d != kInvalidId; d = parent[d]) chain.push_back(d);
  std::reverse(chain.begin(), chain.end());

  // Convert doors to waypoints, tracking which partition we are in so each
  // door contributes its position on the entry side (and the exit side
  // when it changes floors).
  std::vector<IndoorPoint> waypoints = {from};
  PartitionId current = start;
  for (DoorId d : chain) {
    const Door& door = plan_.door(d);
    const IndoorPoint& entry = door.PositionIn(current);
    waypoints.push_back(entry);
    current = door.Opposite(current);
    const IndoorPoint& exit = door.PositionIn(current);
    if (exit.floor != entry.floor) waypoints.push_back(exit);
  }
  waypoints.push_back(to);
  return waypoints;
}

double PathPlanner::RouteLength(
    const std::vector<IndoorPoint>& waypoints) const {
  double total = 0.0;
  for (size_t i = 1; i < waypoints.size(); ++i) {
    const IndoorPoint& a = waypoints[i - 1];
    const IndoorPoint& b = waypoints[i];
    if (a.floor == b.floor) {
      total += Distance(a.xy, b.xy);
    } else {
      // Stair crossing: find the stair door at this (x, y) to charge its
      // traversal cost.  Falls back to a nominal flight length.
      double cost = 10.0;
      for (const Door& door : plan_.doors()) {
        if (door.IsInterFloor() && door.position_a.xy == a.xy) {
          cost = door.traversal_cost;
          break;
        }
      }
      total += cost;
    }
  }
  return total;
}

}  // namespace c2mn
