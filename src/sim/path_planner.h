#ifndef C2MN_SIM_PATH_PLANNER_H_
#define C2MN_SIM_PATH_PLANNER_H_

#include <vector>

#include "indoor/base_graph.h"
#include "indoor/floorplan.h"

namespace c2mn {

/// \brief Shortest-route planner over the accessibility base graph, used
/// by the waypoint mobility model ("an object moves towards its
/// destination along a pre-planned path", Section V-C).
///
/// A route is a polyline of IndoorPoints.  Consecutive points on the same
/// floor are walked in a straight line inside one partition; a floor
/// change happens only between two points with equal (x, y) at a stair
/// door, whose walking length is the door's traversal cost.
class PathPlanner {
 public:
  PathPlanner(const Floorplan& plan, const BaseGraph& graph)
      : plan_(plan), graph_(graph) {}

  /// Plans from `from` to `to` (both must resolve to partitions).  The
  /// result includes both endpoints; empty when no route exists.
  std::vector<IndoorPoint> PlanWaypoints(const IndoorPoint& from,
                                         const IndoorPoint& to) const;

  /// Total walking length of a waypoint polyline, counting stair costs.
  double RouteLength(const std::vector<IndoorPoint>& waypoints) const;

 private:
  const Floorplan& plan_;
  const BaseGraph& graph_;
};

}  // namespace c2mn

#endif  // C2MN_SIM_PATH_PLANNER_H_
