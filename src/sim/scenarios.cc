#include "sim/scenarios.h"

#include <utility>

#include "common/logging.h"

namespace c2mn {

Dataset GenerateDataset(const World& world, const MobilityConfig& mobility,
                        const ObservationConfig& observation,
                        const PreprocessOptions& preprocess, Rng* rng) {
  MobilitySimulator simulator(world, mobility);
  Dataset dataset;
  std::vector<LabeledSequence> raw;
  for (GroundTruthTrace& trace : simulator.SimulateAll(rng)) {
    LabeledSequence labeled = Observe(trace, world, observation, rng);
    if (!labeled.sequence.empty()) raw.push_back(std::move(labeled));
  }
  dataset.sequences = Preprocess(raw, preprocess);
  return dataset;
}

Scenario MakeMallScenario(const ScenarioOptions& options) {
  Rng rng(options.seed);
  auto plan_result = GenerateBuilding(MallConfig(), &rng);
  if (!plan_result.ok()) {
    C2MN_LOG_ERROR << "mall generation failed: "
                   << plan_result.status().ToString();
    return {};
  }
  Scenario scenario;
  scenario.world = std::make_shared<World>(
      World::Create(std::move(plan_result).ValueOrDie()));

  MobilityConfig mobility;
  mobility.num_objects = options.num_objects;
  mobility.horizon_seconds = options.horizon_seconds;
  // Visit lengths give Table III-like averages (~2200 s per sequence).
  mobility.min_lifespan_seconds = 1900.0;
  mobility.max_lifespan_seconds =
      std::min(3200.0, options.horizon_seconds);

  // Wi-Fi-grade positioning: ~1/15 Hz average rate, error factor 6 m so
  // that with outliers the observed MIWD error spans roughly 2-25 m as in
  // Table III of the paper.
  ObservationConfig observation;
  observation.min_period_seconds = 10.0;
  observation.max_period_seconds = 26.0;
  observation.error_mu = 5.0;
  observation.num_floors = scenario.world->plan().num_floors();

  PreprocessOptions preprocess;  // η = 3 min, ψ = 30 min defaults.

  scenario.dataset = GenerateDataset(*scenario.world, mobility, observation,
                                     preprocess, &rng);
  return scenario;
}

Scenario MakeSyntheticScenario(const ScenarioOptions& options,
                               double max_period_T, double error_mu) {
  Rng rng(options.seed);
  auto plan_result = GenerateBuilding(SyntheticConfig(), &rng);
  if (!plan_result.ok()) {
    C2MN_LOG_ERROR << "synthetic generation failed: "
                   << plan_result.status().ToString();
    return {};
  }
  Scenario scenario;
  scenario.world = std::make_shared<World>(
      World::Create(std::move(plan_result).ValueOrDie()));

  MobilityConfig mobility;
  mobility.num_objects = options.num_objects;
  mobility.horizon_seconds = options.horizon_seconds;
  mobility.min_lifespan_seconds = 1800.0;
  mobility.max_lifespan_seconds = options.horizon_seconds;

  ObservationConfig observation;
  observation.min_period_seconds = 1.0;
  observation.max_period_seconds = max_period_T;
  observation.error_mu = error_mu;
  observation.num_floors = scenario.world->plan().num_floors();

  PreprocessOptions preprocess;
  preprocess.min_duration_seconds = 900.0;  // Denser data, shorter floor.

  scenario.dataset = GenerateDataset(*scenario.world, mobility, observation,
                                     preprocess, &rng);
  return scenario;
}

}  // namespace c2mn
