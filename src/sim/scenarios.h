#ifndef C2MN_SIM_SCENARIOS_H_
#define C2MN_SIM_SCENARIOS_H_

#include <memory>

#include "data/dataset.h"
#include "data/preprocess.h"
#include "sim/building_gen.h"
#include "sim/error_model.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace c2mn {

/// \brief A ready-to-use experimental setup: a prepared venue plus a
/// labeled mobility dataset generated in it.
struct Scenario {
  std::shared_ptr<World> world;
  Dataset dataset;
};

/// \brief Knobs shared by the canned scenarios.
struct ScenarioOptions {
  int num_objects = 120;
  double horizon_seconds = 4 * 3600.0;
  uint64_t seed = 7;
};

/// The surrogate for the paper's real Hangzhou-mall dataset (Table III):
/// a 7-floor mall, Wi-Fi-grade noise (error up to ~10 m plus outliers up
/// to tens of meters, matching the reported 2–25 m MIWD-based error), and
/// a ~1/15 Hz average sampling rate.  Sequences are preprocessed with
/// η = 3 min splits and ψ = 30 min minimum duration, as in Section V-B1.
Scenario MakeMallScenario(const ScenarioOptions& options);

/// The synthetic setup of Section V-C / Table V: a 10-floor building with
/// 4 staircases; `max_period_T` and `error_mu` are the T and μ knobs of
/// the robustness experiments (Figs. 14–19).
Scenario MakeSyntheticScenario(const ScenarioOptions& options,
                               double max_period_T, double error_mu);

/// Generates a labeled dataset in an existing world (used when several
/// parameter settings share one building, e.g. the T/μ sweeps).
Dataset GenerateDataset(const World& world, const MobilityConfig& mobility,
                        const ObservationConfig& observation,
                        const PreprocessOptions& preprocess, Rng* rng);

}  // namespace c2mn

#endif  // C2MN_SIM_SCENARIOS_H_
