#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c2mn {

IndoorPoint MobilitySimulator::RandomPointInRegion(RegionId region,
                                                   Rng* rng) const {
  const SemanticRegion& r = world_.plan().region(region);
  const PartitionId pid =
      r.partitions[rng->UniformInt(static_cast<uint64_t>(r.partitions.size()))];
  const Partition& part = world_.plan().partition(pid);
  const BoundingBox& box = part.shape.bbox();
  // Rejection sampling inside the partition polygon, with a margin so
  // destinations are not glued to walls.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Vec2 p{rng->Uniform(box.min.x, box.max.x),
                 rng->Uniform(box.min.y, box.max.y)};
    if (part.shape.Contains(p)) return IndoorPoint(p, part.floor);
  }
  return IndoorPoint(part.shape.Centroid(), part.floor);
}

RegionId MobilitySimulator::PassRegionAt(const IndoorPoint& p,
                                         RegionId current) const {
  constexpr double kHysteresisMeters = 3.0;
  const RegionId inside = world_.index().RegionAt(p);
  if (inside != kInvalidId) return inside;
  const RegionId nearest = world_.index().NearestRegion(p);
  if (current == kInvalidId || nearest == current) return nearest;
  const double d_current = world_.plan().DistanceToRegionOnFloor(p, current);
  const double d_nearest = world_.plan().DistanceToRegionOnFloor(p, nearest);
  // Keep the previous pass region until clearly closer to another one.
  if (d_current < 1e290 && d_nearest > d_current - kHysteresisMeters) {
    return current;
  }
  return nearest;
}

GroundTruthTrace MobilitySimulator::SimulateObject(int64_t object_id,
                                                   double start_time,
                                                   double lifespan,
                                                   Rng* rng) const {
  GroundTruthTrace trace;
  trace.object_id = object_id;
  const size_t num_regions = world_.plan().regions().size();
  assert(num_regions >= 2);

  RegionId current_region =
      static_cast<RegionId>(rng->UniformInt(num_regions));
  IndoorPoint position = RandomPointInRegion(current_region, rng);
  double t = start_time;
  const double t_end = start_time + lifespan;

  auto record = [&](const IndoorPoint& pos, RegionId region,
                    MobilityEvent event) {
    trace.points.push_back({t, pos, region, event});
    t += 1.0;
  };

  // Objects begin with a stay at their initial region, then alternate
  // walk / stay per the waypoint model.
  bool first_leg = true;
  while (t < t_end) {
    // Stay at the current destination.
    const double log_lo = std::log(config_.min_stay_seconds);
    const double log_hi = std::log(config_.max_stay_seconds);
    double stay = std::exp(rng->Uniform(log_lo, log_hi));
    if (first_leg) stay = std::min(stay, 120.0);  // Short initial dwell.
    first_leg = false;
    const double stay_end = std::min(t_end, t + stay);
    while (t < stay_end) {
      // Small jitter models milling around inside the shop.
      IndoorPoint jittered = position;
      jittered.xy.x += rng->Uniform(-0.4, 0.4);
      jittered.xy.y += rng->Uniform(-0.4, 0.4);
      record(jittered, current_region, MobilityEvent::kStay);
    }
    if (t >= t_end) break;

    // Pick the next destination and walk there.
    RegionId next_region = current_region;
    while (next_region == current_region) {
      next_region = static_cast<RegionId>(rng->UniformInt(num_regions));
    }
    const IndoorPoint destination = RandomPointInRegion(next_region, rng);
    const std::vector<IndoorPoint> route =
        planner_.PlanWaypoints(position, destination);
    if (route.size() < 2) {
      // Unreachable (should not happen in generated buildings): teleport.
      position = destination;
      current_region = next_region;
      continue;
    }
    const double speed =
        rng->Uniform(0.4 * config_.max_speed_mps, config_.max_speed_mps);
    RegionId pass_region = current_region;
    size_t leg = 1;
    double leg_progress = 0.0;  // Meters advanced along the current leg.
    IndoorPoint pos = route[0];
    while (t < t_end && leg < route.size()) {
      // Advance one second of walking, possibly across several waypoints.
      double budget = speed;
      while (budget > 0.0 && leg < route.size()) {
        const IndoorPoint& a = route[leg - 1];
        const IndoorPoint& b = route[leg];
        double leg_length;
        if (a.floor == b.floor) {
          leg_length = Distance(a.xy, b.xy);
        } else {
          leg_length = std::max(1.0, planner_.RouteLength({a, b}));
        }
        const double remaining = leg_length - leg_progress;
        if (budget >= remaining) {
          budget -= remaining;
          leg_progress = 0.0;
          pos = b;
          ++leg;
        } else {
          leg_progress += budget;
          budget = 0.0;
          if (a.floor == b.floor) {
            const double s = leg_length > 0 ? leg_progress / leg_length : 1.0;
            pos = IndoorPoint(a.xy + (b.xy - a.xy) * s, a.floor);
          } else {
            // On the stairs: hold (x, y), switch floor halfway up.
            pos = leg_progress < 0.5 * leg_length ? a : b;
          }
        }
      }
      if (leg >= route.size()) break;  // Arrived within this second.
      pass_region = PassRegionAt(pos, pass_region);
      record(pos, pass_region, MobilityEvent::kPass);
    }
    position = destination;
    current_region = next_region;
  }
  return trace;
}

std::vector<GroundTruthTrace> MobilitySimulator::SimulateAll(Rng* rng) const {
  std::vector<GroundTruthTrace> traces;
  traces.reserve(config_.num_objects);
  for (int i = 0; i < config_.num_objects; ++i) {
    const double lifespan = rng->Uniform(config_.min_lifespan_seconds,
                                         config_.max_lifespan_seconds);
    const double max_start =
        std::max(0.0, config_.horizon_seconds - lifespan);
    const double start = rng->Uniform(0.0, max_start);
    GroundTruthTrace trace =
        SimulateObject(i, start, std::min(lifespan, config_.horizon_seconds),
                       rng);
    if (!trace.empty()) traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace c2mn
