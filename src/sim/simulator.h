#ifndef C2MN_SIM_SIMULATOR_H_
#define C2MN_SIM_SIMULATOR_H_

#include <vector>

#include "common/rng.h"
#include "sim/path_planner.h"
#include "sim/trace.h"
#include "sim/world.h"

namespace c2mn {

/// \brief Parameters of the waypoint mobility model (paper Section V-C,
/// following Johnson & Maltz [9]).
struct MobilityConfig {
  /// Number of moving objects to simulate.
  int num_objects = 100;
  /// Total simulated wall-clock horizon in seconds (paper: 4 hours).
  double horizon_seconds = 4 * 3600.0;
  /// Object lifespan range in seconds (paper: 10 s to 4 hours).
  double min_lifespan_seconds = 1800.0;
  double max_lifespan_seconds = 4 * 3600.0;
  /// Maximum walking speed (paper: 1.7 m/s); per-trip speeds are drawn
  /// uniformly from [0.4 * max, max].
  double max_speed_mps = 1.7;
  /// Stay duration at a destination: log-uniform over
  /// [min_stay_seconds, max_stay_seconds] (paper: 1 s to 30 min).
  double min_stay_seconds = 20.0;
  double max_stay_seconds = 1800.0;
};

/// \brief Generates per-second ground-truth traces with the waypoint
/// model: pick a random destination region, walk a pre-planned door route
/// toward it, stay for a random period, repeat.
///
/// Ground-truth labels per second:
///  - event: stay while dwelling at a destination, pass while walking;
///  - region: the region containing the true position, or the nearest
///    region on the same floor when the position lies in circulation
///    space (hallways carry the semantics of the region being passed by).
class MobilitySimulator {
 public:
  MobilitySimulator(const World& world, const MobilityConfig& config)
      : world_(world),
        config_(config),
        planner_(world.plan(), world.graph()) {}

  /// Simulates all objects; each trace is one object's lifespan.
  std::vector<GroundTruthTrace> SimulateAll(Rng* rng) const;

  /// Simulates a single object starting at `start_time`.
  GroundTruthTrace SimulateObject(int64_t object_id, double start_time,
                                  double lifespan, Rng* rng) const;

 private:
  /// Uniformly random point inside a random partition of `region`.
  IndoorPoint RandomPointInRegion(RegionId region, Rng* rng) const;

  /// The ground-truth region of a pass position, with hysteresis:
  /// `current` (the previous second's pass region) is kept unless another
  /// region is closer by `hysteresis_meters` or the floor changed.  Human
  /// annotators label pass spans as piecewise-constant m-semantics, not
  /// per-second nearest-region flips; the hysteresis reproduces that.
  RegionId PassRegionAt(const IndoorPoint& p, RegionId current) const;

  const World& world_;
  MobilityConfig config_;
  PathPlanner planner_;
};

}  // namespace c2mn

#endif  // C2MN_SIM_SIMULATOR_H_
