#ifndef C2MN_SIM_TRACE_H_
#define C2MN_SIM_TRACE_H_

#include <vector>

#include "data/labels.h"
#include "indoor/ids.h"

namespace c2mn {

/// \brief One second of ground truth for a simulated object: exact
/// position, the true semantic region, and the true mobility event.
///
/// Paper, Section V-C: "We recorded an object's location and region every
/// second as the ground truth, and generated its true event labels
/// according to the simulated behavior."
struct TracePoint {
  double timestamp = 0.0;
  IndoorPoint position;
  RegionId region = kInvalidId;
  MobilityEvent event = MobilityEvent::kPass;
};

/// \brief A full per-second ground-truth trajectory of one object.
struct GroundTruthTrace {
  int64_t object_id = 0;
  std::vector<TracePoint> points;

  bool empty() const { return points.empty(); }
  size_t size() const { return points.size(); }
};

}  // namespace c2mn

#endif  // C2MN_SIM_TRACE_H_
