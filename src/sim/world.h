#ifndef C2MN_SIM_WORLD_H_
#define C2MN_SIM_WORLD_H_

#include <memory>
#include <utility>

#include "indoor/base_graph.h"
#include "indoor/distance.h"
#include "indoor/floorplan.h"
#include "indoor/region_index.h"

namespace c2mn {

/// \brief A fully-prepared indoor venue: the floorplan plus every derived
/// structure the annotation pipeline needs (accessibility graph with
/// pre-computed door distances, spatial index, MIWD oracle).
///
/// Move-only; all components hold stable pointers into the heap-allocated
/// floorplan.
class World {
 public:
  /// Builds every derived structure.  The all-pairs door matrix and the
  /// region distance matrix are computed eagerly, mirroring the paper's
  /// pre-computation of shortest door-to-door paths.
  static World Create(Floorplan plan) {
    World world;
    world.plan_ = std::make_unique<Floorplan>(std::move(plan));
    world.graph_ = std::make_unique<BaseGraph>(*world.plan_);
    world.index_ = std::make_unique<RegionIndex>(*world.plan_);
    world.oracle_ = std::make_unique<DistanceOracle>(
        *world.plan_, world.graph_.get(), world.index_.get());
    return world;
  }

  World(World&&) = default;
  World& operator=(World&&) = default;

  const Floorplan& plan() const { return *plan_; }
  const BaseGraph& graph() const { return *graph_; }
  BaseGraph* mutable_graph() { return graph_.get(); }
  const RegionIndex& index() const { return *index_; }
  const DistanceOracle& oracle() const { return *oracle_; }

 private:
  World() = default;

  std::unique_ptr<Floorplan> plan_;
  std::unique_ptr<BaseGraph> graph_;
  std::unique_ptr<RegionIndex> index_;
  std::unique_ptr<DistanceOracle> oracle_;
};

}  // namespace c2mn

#endif  // C2MN_SIM_WORLD_H_
