#include "storage/binary_format.h"

#include <array>

namespace c2mn {
namespace storage {

namespace {

/// The byte-wise loop's ~3-cycle dependency chain per byte is worth
/// trading for eight independent lookups per 8 bytes (slicing-by-8).
/// 8KB total, baked into .rodata at compile time: no init guard on the
/// hot path.
constexpr std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < tables.size(); ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xffu];
    }
  }
  return tables;
}

}  // namespace

constexpr std::array<std::array<uint32_t, 256>, 8> internal::kCrcTables =
    BuildCrcTables();

uint32_t Crc32(std::string_view data) {
  const auto& t = internal::kCrcTables;
  uint32_t crc = 0xFFFFFFFFu;
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
#if C2MN_STORAGE_LITTLE_ENDIAN
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
#else
    lo = (static_cast<uint32_t>(static_cast<uint8_t>(p[0]))) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
    hi = (static_cast<uint32_t>(static_cast<uint8_t>(p[4]))) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[5])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[6])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[7])) << 24);
#endif
    const uint32_t x = lo ^ crc;
    crc = t[7][x & 0xffu] ^ t[6][(x >> 8) & 0xffu] ^ t[5][(x >> 16) & 0xffu] ^
          t[4][(x >> 24) & 0xffu] ^ t[3][hi & 0xffu] ^
          t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^
          t[0][(hi >> 24) & 0xffu];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = (crc >> 8) ^ t[0][(crc ^ static_cast<uint8_t>(*p)) & 0xffu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace storage
}  // namespace c2mn
