#ifndef C2MN_STORAGE_BINARY_FORMAT_H_
#define C2MN_STORAGE_BINARY_FORMAT_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

/// \file Byte-level primitives shared by the snapshot and write-ahead-log
/// codecs: little-endian integer encoding (doubles travel as their IEEE
/// bit pattern, so round-trips are bit-exact, NaNs included), a
/// bounds-checked reader over an in-memory buffer, and CRC-32.  Pure
/// functions over strings — no I/O — so the fuzz harness exercises the
/// exact production decode paths.

namespace c2mn {
namespace storage {

/// CRC-32 (the IEEE 802.3 polynomial, reflected) over `data`.  Matches
/// zlib's crc32() so the framed files are checkable with standard tools.
uint32_t Crc32(std::string_view data);

namespace internal {
/// Slicing-by-8 tables behind Crc32 and Crc32Accumulator; [0] is the
/// classic byte-at-a-time table, [k][b] advances byte b through k
/// additional zero bytes.
extern const std::array<std::array<uint32_t, 256>, 8> kCrcTables;
}  // namespace internal

/// Accumulates the same CRC-32 field by field, straight from register
/// values.  The log append path encodes a record into stack scratch and
/// would otherwise immediately re-read those bytes to checksum them —
/// a store-to-load-forwarding stall on every word.  Feeding the
/// accumulator the values themselves produces bit-identical CRCs
/// without touching memory.
class Crc32Accumulator {
 public:
  void Add8(uint8_t v) {
    crc_ = (crc_ >> 8) ^ T(0, (crc_ ^ v) & 0xffu);
  }
  void Add32(uint32_t v) {
    const uint32_t x = crc_ ^ v;
    crc_ = T(3, x & 0xffu) ^ T(2, (x >> 8) & 0xffu) ^
           T(1, (x >> 16) & 0xffu) ^ T(0, (x >> 24) & 0xffu);
  }
  void Add64(uint64_t v) {
    const uint32_t x = crc_ ^ static_cast<uint32_t>(v);
    const uint32_t hi = static_cast<uint32_t>(v >> 32);
    crc_ = T(7, x & 0xffu) ^ T(6, (x >> 8) & 0xffu) ^
           T(5, (x >> 16) & 0xffu) ^ T(4, (x >> 24) & 0xffu) ^
           T(3, hi & 0xffu) ^ T(2, (hi >> 8) & 0xffu) ^
           T(1, (hi >> 16) & 0xffu) ^ T(0, (hi >> 24) & 0xffu);
  }
  void AddF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Add64(bits);
  }
  /// The CRC of everything added so far, equal to Crc32() over the same
  /// bytes in little-endian field order.
  uint32_t Finish() const { return crc_ ^ 0xFFFFFFFFu; }

 private:
  static uint32_t T(size_t k, uint32_t b) {
    return internal::kCrcTables[k][b];
  }

  uint32_t crc_ = 0xFFFFFFFFu;
};

/// The host stores multi-byte integers in the format's (little-endian)
/// byte order, so encode/decode can be a plain memcpy instead of a
/// byte-by-byte shift loop.  The portable loops below stay the fallback.
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define C2MN_STORAGE_LITTLE_ENDIAN 1
#else
#define C2MN_STORAGE_LITTLE_ENDIAN 0
#endif

/// Little-endian stores into a raw buffer, for codecs that encode into
/// stack scratch before a single string append (the log hot path).
/// Each returns the position just past what it wrote.
inline char* EncodeU8(char* p, uint8_t v) {
  *p = static_cast<char>(v);
  return p + 1;
}
inline char* EncodeU32(char* p, uint32_t v) {
#if C2MN_STORAGE_LITTLE_ENDIAN
  std::memcpy(p, &v, sizeof(v));
#else
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
#endif
  return p + 4;
}
inline char* EncodeU64(char* p, uint64_t v) {
#if C2MN_STORAGE_LITTLE_ENDIAN
  std::memcpy(p, &v, sizeof(v));
#else
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
#endif
  return p + 8;
}
inline char* EncodeF64(char* p, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return EncodeU64(p, bits);
}

/// Appends fixed-width little-endian values to a std::string.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    char buf[4];
    EncodeU32(buf, v);
    out_->append(buf, sizeof(buf));
  }
  void PutU64(uint64_t v) {
    char buf[8];
    EncodeU64(buf, v);
    out_->append(buf, sizeof(buf));
  }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBytes(std::string_view data) { out_->append(data); }

 private:
  std::string* out_;
};

/// Reads fixed-width little-endian values back out of a buffer.  Every
/// getter returns false (leaving the output untouched) instead of
/// reading past the end, so decoders stay well-defined on truncated or
/// hostile input.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[offset_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[offset_ + i]))
             << (8 * i);
    }
    offset_ += 4;
    *v = out;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[offset_ + i]))
             << (8 * i);
    }
    offset_ += 8;
    *v = out;
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }
  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = data_.substr(offset_, n);
    offset_ += n;
    return true;
  }
  bool Skip(size_t n) {
    if (remaining() < n) return false;
    offset_ += n;
    return true;
  }

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

}  // namespace storage
}  // namespace c2mn

#endif  // C2MN_STORAGE_BINARY_FORMAT_H_
