#include "storage/snapshot_codec.h"

#include <cstring>
#include <vector>

#include "storage/binary_format.h"

namespace c2mn {
namespace storage {

namespace {

void EncodeHistogram(const StreamingHistogram::State& state, Writer* w) {
  w->PutF64(state.min_value);
  w->PutF64(state.max_value);
  w->PutF64(state.growth);
  w->PutU64(state.counts.size());
  for (const uint64_t c : state.counts) w->PutU64(c);
  w->PutU64(state.count);
  w->PutU64(state.non_finite);
  w->PutF64(state.sum);
  w->PutF64(state.min);
  w->PutF64(state.max);
}

void EncodeShard(uint32_t index, const AnalyticsShardState& shard,
                 Writer* w) {
  w->PutU8(kShardSectionTag);
  w->PutU32(index);
  w->PutU64(shard.mutation_seq);
  w->PutF64(shard.watermark_seconds);
  w->PutI64(shard.max_bucket);
  w->PutU64(shard.regions.size());
  for (const auto& r : shard.regions) {
    w->PutU32(static_cast<uint32_t>(r.region));
    w->PutU64(r.visits);
    w->PutU64(r.stays);
    w->PutU64(r.passes);
    w->PutF64(r.total_dwell_seconds);
    w->PutI64(r.occupancy);
    EncodeHistogram(r.dwell, w);
  }
  w->PutU64(shard.flows.size());
  for (const auto& f : shard.flows) {
    w->PutU32(static_cast<uint32_t>(f.from));
    w->PutU32(static_cast<uint32_t>(f.to));
    w->PutU64(f.count);
  }
  w->PutU64(shard.objects.size());
  for (const auto& o : shard.objects) {
    w->PutI64(o.object_id);
    w->PutU32(static_cast<uint32_t>(o.last_region));
    w->PutU8(o.occupying ? 1 : 0);
    w->PutU32(static_cast<uint32_t>(o.occupied_region));
  }
  w->PutU64(shard.visits.size());
  for (const auto& v : shard.visits) {
    w->PutI64(v.object_id);
    w->PutU32(static_cast<uint32_t>(v.region));
    w->PutF64(v.t_start);
    w->PutF64(v.t_end);
  }
  w->PutU64(shard.preagg.region_counts.size());
  for (const auto& [region, count] : shard.preagg.region_counts) {
    w->PutU32(static_cast<uint32_t>(region));
    w->PutI64(count);
  }
  w->PutU64(shard.preagg.pair_counts.size());
  for (const auto& [pair, count] : shard.preagg.pair_counts) {
    w->PutU32(static_cast<uint32_t>(pair.first));
    w->PutU32(static_cast<uint32_t>(pair.second));
    w->PutI64(count);
  }
  w->PutU64(shard.preagg.object_region_refs.size());
  for (const auto& ref : shard.preagg.object_region_refs) {
    w->PutI64(ref.object_id);
    w->PutU32(static_cast<uint32_t>(ref.region));
    w->PutI64(ref.count);
  }
}

/// Reads an element count and refuses counts that could not possibly
/// fit in the remaining payload (each element takes at least
/// `min_element_bytes`): hostile counts must fail fast, not reserve.
bool GetCount(Reader* r, size_t min_element_bytes, uint64_t* count) {
  if (!r->GetU64(count)) return false;
  return *count <= r->remaining() / min_element_bytes;
}

bool DecodeHistogram(Reader* r, StreamingHistogram::State* state) {
  if (!r->GetF64(&state->min_value) || !r->GetF64(&state->max_value) ||
      !r->GetF64(&state->growth)) {
    return false;
  }
  uint64_t n = 0;
  if (!GetCount(r, 8, &n)) return false;
  state->counts.resize(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    if (!r->GetU64(&state->counts[static_cast<size_t>(i)])) return false;
  }
  return r->GetU64(&state->count) && r->GetU64(&state->non_finite) &&
         r->GetF64(&state->sum) && r->GetF64(&state->min) &&
         r->GetF64(&state->max);
}

bool DecodeShardBody(Reader* r, AnalyticsShardState* shard) {
  if (!r->GetU64(&shard->mutation_seq) ||
      !r->GetF64(&shard->watermark_seconds) ||
      !r->GetI64(&shard->max_bucket)) {
    return false;
  }
  uint64_t n = 0;
  if (!GetCount(r, 4 + 8 * 3 + 8 + 8 + 8 * 3 + 8, &n)) return false;
  shard->regions.resize(static_cast<size_t>(n));
  for (auto& region : shard->regions) {
    uint32_t id = 0;
    if (!r->GetU32(&id) || !r->GetU64(&region.visits) ||
        !r->GetU64(&region.stays) || !r->GetU64(&region.passes) ||
        !r->GetF64(&region.total_dwell_seconds) ||
        !r->GetI64(&region.occupancy) || !DecodeHistogram(r, &region.dwell)) {
      return false;
    }
    region.region = static_cast<RegionId>(id);
  }
  if (!GetCount(r, 4 + 4 + 8, &n)) return false;
  shard->flows.resize(static_cast<size_t>(n));
  for (auto& flow : shard->flows) {
    uint32_t from = 0, to = 0;
    if (!r->GetU32(&from) || !r->GetU32(&to) || !r->GetU64(&flow.count)) {
      return false;
    }
    flow.from = static_cast<RegionId>(from);
    flow.to = static_cast<RegionId>(to);
  }
  if (!GetCount(r, 8 + 4 + 1 + 4, &n)) return false;
  shard->objects.resize(static_cast<size_t>(n));
  for (auto& object : shard->objects) {
    uint32_t last = 0, occupied = 0;
    uint8_t occupying = 0;
    if (!r->GetI64(&object.object_id) || !r->GetU32(&last) ||
        !r->GetU8(&occupying) || occupying > 1 || !r->GetU32(&occupied)) {
      return false;
    }
    object.last_region = static_cast<RegionId>(last);
    object.occupying = occupying != 0;
    object.occupied_region = static_cast<RegionId>(occupied);
  }
  if (!GetCount(r, 8 + 4 + 8 + 8, &n)) return false;
  shard->visits.resize(static_cast<size_t>(n));
  for (auto& visit : shard->visits) {
    uint32_t region = 0;
    if (!r->GetI64(&visit.object_id) || !r->GetU32(&region) ||
        !r->GetF64(&visit.t_start) || !r->GetF64(&visit.t_end)) {
      return false;
    }
    visit.region = static_cast<RegionId>(region);
  }
  if (!GetCount(r, 4 + 8, &n)) return false;
  shard->preagg.region_counts.resize(static_cast<size_t>(n));
  for (auto& entry : shard->preagg.region_counts) {
    uint32_t region = 0;
    if (!r->GetU32(&region) || !r->GetI64(&entry.second)) return false;
    entry.first = static_cast<RegionId>(region);
  }
  if (!GetCount(r, 4 + 4 + 8, &n)) return false;
  shard->preagg.pair_counts.resize(static_cast<size_t>(n));
  for (auto& entry : shard->preagg.pair_counts) {
    uint32_t a = 0, b = 0;
    if (!r->GetU32(&a) || !r->GetU32(&b) || !r->GetI64(&entry.second)) {
      return false;
    }
    entry.first = RegionPair{static_cast<RegionId>(a),
                             static_cast<RegionId>(b)};
  }
  if (!GetCount(r, 8 + 4 + 8, &n)) return false;
  shard->preagg.object_region_refs.resize(static_cast<size_t>(n));
  for (auto& ref : shard->preagg.object_region_refs) {
    uint32_t region = 0;
    if (!r->GetI64(&ref.object_id) || !r->GetU32(&region) ||
        !r->GetI64(&ref.count)) {
      return false;
    }
    ref.region = static_cast<RegionId>(region);
  }
  return true;
}

}  // namespace

void EncodeSnapshot(const SnapshotData& data, std::string* out) {
  std::string payload;
  Writer w(&payload);
  w.PutU64(data.wal_epoch_covered);
  w.PutU32(static_cast<uint32_t>(data.engine.num_shards));
  w.PutF64(data.engine.bucket_seconds);
  w.PutF64(data.engine.horizon_seconds);
  w.PutF64(data.engine.min_visit_seconds);
  w.PutF64(data.engine.dwell_min_seconds);
  w.PutF64(data.engine.dwell_max_seconds);
  w.PutF64(data.engine.dwell_growth);
  w.PutU64(data.engine.semantics_ingested);
  w.PutU64(data.engine.late_dropped);
  w.PutU64(data.engine.invalid_dropped);
  w.PutU64(data.engine.buckets_evicted);
  for (size_t i = 0; i < data.engine.shards.size(); ++i) {
    EncodeShard(static_cast<uint32_t>(i), data.engine.shards[i], &w);
  }
  w.PutU8(kEndTag);

  out->clear();
  out->append(kSnapshotMagic, sizeof(kSnapshotMagic));
  Writer framer(out);
  framer.PutU32(kSnapshotVersion);
  framer.PutU64(payload.size());
  framer.PutU32(Crc32(payload));
  framer.PutBytes(payload);
}

Status DecodeSnapshot(std::string_view bytes, SnapshotData* data) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  Reader reader(bytes);
  reader.Skip(sizeof(kSnapshotMagic));
  uint32_t version = 0;
  reader.GetU32(&version);
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot: unsupported format version " +
                                   std::to_string(version));
  }
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  std::string_view payload;
  if (!reader.GetU64(&payload_size) || !reader.GetU32(&crc) ||
      payload_size != reader.remaining() ||
      !reader.GetBytes(static_cast<size_t>(payload_size), &payload)) {
    return Status::InvalidArgument("snapshot: truncated or oversized file");
  }
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument("snapshot: payload CRC mismatch");
  }
  Reader r(payload);
  AnalyticsEngineState& engine = data->engine;
  uint32_t num_shards = 0;
  if (!r.GetU64(&data->wal_epoch_covered) || !r.GetU32(&num_shards) ||
      !r.GetF64(&engine.bucket_seconds) ||
      !r.GetF64(&engine.horizon_seconds) ||
      !r.GetF64(&engine.min_visit_seconds) ||
      !r.GetF64(&engine.dwell_min_seconds) ||
      !r.GetF64(&engine.dwell_max_seconds) ||
      !r.GetF64(&engine.dwell_growth) ||
      !r.GetU64(&engine.semantics_ingested) ||
      !r.GetU64(&engine.late_dropped) ||
      !r.GetU64(&engine.invalid_dropped) ||
      !r.GetU64(&engine.buckets_evicted)) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  // Each shard section needs at least its fixed fields; this bounds the
  // shard count against the payload like every other element count.
  if (num_shards > payload.size() / (1 + 4 + 8 + 8 + 8)) {
    return Status::InvalidArgument("snapshot: implausible shard count");
  }
  engine.num_shards = static_cast<int>(num_shards);
  engine.shards.clear();
  engine.shards.resize(num_shards);
  std::vector<bool> seen(num_shards, false);
  for (;;) {
    uint8_t tag = 0;
    if (!r.GetU8(&tag)) {
      return Status::InvalidArgument("snapshot: missing end tag");
    }
    if (tag == kEndTag) break;
    if (tag != kShardSectionTag) {
      return Status::InvalidArgument("snapshot: unknown section tag");
    }
    uint32_t index = 0;
    if (!r.GetU32(&index) || index >= num_shards) {
      return Status::InvalidArgument("snapshot: shard index out of range");
    }
    if (seen[index]) {
      return Status::InvalidArgument("snapshot: duplicate shard section");
    }
    seen[index] = true;
    if (!DecodeShardBody(&r, &engine.shards[index])) {
      return Status::InvalidArgument("snapshot: truncated shard section");
    }
  }
  for (uint32_t i = 0; i < num_shards; ++i) {
    if (!seen[i]) {
      return Status::InvalidArgument("snapshot: missing shard section");
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes after end tag");
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace c2mn
