#ifndef C2MN_STORAGE_SNAPSHOT_CODEC_H_
#define C2MN_STORAGE_SNAPSHOT_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "analytics/analytics_engine.h"
#include "common/status.h"

/// \file The versioned snapshot format: one self-contained binary file
/// holding the complete durable analytics state (config, counters, every
/// shard's accumulators, retained visits, and pre-aggregation sketch)
/// plus the write-ahead-log epoch it covers.  Columnar-ish
/// struct-of-arrays sections with explicit counts, all little-endian,
/// doubles as IEEE bits so a decode-encode round trip is byte-identical.
///
/// Layout:
///
///   file    := magic "C2MNSNAP" | u32 format_version |
///              u64 payload_size | u32 crc32(payload) | payload
///   payload := u64 wal_epoch_covered | config | counters | shard* | u8 end
///   shard   := u8 tag(kShardSectionTag) | u32 shard_index | ...sections
///
/// Compatibility rule: a reader accepts exactly its own format_version.
/// Any format change — field added, width changed, section reordered —
/// bumps kSnapshotVersion, and old files are refused (kInvalidArgument),
/// never reinterpreted; recovery then falls back to an empty state plus
/// whatever the log still holds.  The snapshot is advisory cache, the
/// log is truth, so refusing a skewed snapshot loses time, not data.
///
/// Unlike the log, a snapshot is all-or-nothing: it is published by
/// rename only after a full write + fsync, so a torn snapshot means the
/// publish protocol was violated and the whole file is refused (CRC or
/// size mismatch), not salvaged.
///
/// Pure byte codec, no I/O.

namespace c2mn {
namespace storage {

inline constexpr char kSnapshotMagic[8] = {'C', '2', 'M', 'N',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint8_t kShardSectionTag = 1;
inline constexpr uint8_t kEndTag = 0xFF;

/// Everything one snapshot file holds.
struct SnapshotData {
  /// Log segments with epoch <= this value are fully contained in the
  /// snapshot (modulo the per-shard seq skip) and are deleted after the
  /// snapshot publishes.
  uint64_t wal_epoch_covered = 0;
  AnalyticsEngineState engine;
};

/// Serializes `data` into the framed snapshot file format.
void EncodeSnapshot(const SnapshotData& data, std::string* out);

/// Parses a snapshot file.  kInvalidArgument for anything unacceptable:
/// bad magic, version skew, truncation, CRC mismatch, duplicate or
/// missing shard sections, counts that overrun the payload.  On failure
/// `data` is left in an unspecified state.
Status DecodeSnapshot(std::string_view bytes, SnapshotData* data);

}  // namespace storage
}  // namespace c2mn

#endif  // C2MN_STORAGE_SNAPSHOT_CODEC_H_
