#include "storage/storage_manager.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/snapshot_codec.h"
#include "storage/visit_log.h"

namespace c2mn {
namespace storage {

namespace {

Status IoError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status ReadFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open " + path);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read " + path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status WriteAll(int fd, const std::string& bytes, const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write " + path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError("open " + dir);
  if (::fsync(fd) != 0) {
    const Status status = IoError("fsync " + dir);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

/// Matches "wal-<digits>.log" and extracts the epoch.
bool ParseSegmentEpoch(const char* name, uint64_t* epoch) {
  const size_t len = std::strlen(name);
  if (len < 4 + 1 + 4 || std::strncmp(name, "wal-", 4) != 0 ||
      std::strcmp(name + len - 4, ".log") != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 4; i < len - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *epoch = value;
  return true;
}

Status ListSegments(const std::string& dir, std::vector<uint64_t>* epochs) {
  epochs->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return IoError("opendir " + dir);
  while (struct dirent* entry = ::readdir(d)) {
    uint64_t epoch = 0;
    if (ParseSegmentEpoch(entry->d_name, &epoch)) epochs->push_back(epoch);
  }
  ::closedir(d);
  std::sort(epochs->begin(), epochs->end());
  return Status::OK();
}

uint64_t FileSizeOrZero(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

struct StorageManager::LogFile {
  explicit LogFile(int fd) : fd(fd) {}
  ~LogFile() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
};

StorageManager::StorageManager(Options options, int num_shards)
    : options_(std::move(options)),
      buffers_(static_cast<size_t>(std::max(num_shards, 1))) {
  if (options_.metrics_registry != nullptr) {
    registry_ = options_.metrics_registry;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  checkpoint_seconds_ = registry_->GetHistogram(
      "c2mn_storage_checkpoint_seconds",
      "End-to-end time of one checkpoint cycle (rotate, save, publish, "
      "compact)",
      obs::Histogram::Config{1e-5, 1e2, 2.0});
  checkpoints_total_ = registry_->GetCounter(
      "c2mn_storage_checkpoints_total",
      "Checkpoint cycles that published a snapshot");
  replayed_visits_total_ = registry_->GetCounter(
      "c2mn_storage_replayed_visits_total",
      "Visit ingests replayed from the write-ahead log at recovery");
  torn_tail_truncations_total_ = registry_->GetCounter(
      "c2mn_storage_torn_tail_truncations_total",
      "Recoveries that truncated a torn tail off the last log segment");
  log_bytes_gauge_ = registry_->GetGauge(
      "c2mn_storage_log_bytes",
      "Bytes across live (not yet compacted) write-ahead-log segments");
}

StorageManager::~StorageManager() {
  {
    MutexLock lock(&flush_mu_);
    writer_stop_ = true;
    flush_work_cv_.NotifyAll();
  }
  if (writer_thread_.joinable()) writer_thread_.join();
}

void StorageManager::StartWriter() {
  MutexLock lock(&flush_mu_);
  accepting_flushes_ = true;
  writer_thread_ = std::thread([this] { WriterLoop(); });
}

void StorageManager::WriterLoop() {
  std::vector<std::string> batch;
  for (;;) {
    {
      MutexLock lock(&flush_mu_);
      writer_busy_ = false;
      if (flush_queue_.empty()) flush_drained_cv_.NotifyAll();
      while (flush_queue_.empty() && !writer_stop_) {
        flush_work_cv_.Wait(&flush_mu_);
      }
      if (flush_queue_.empty() && writer_stop_) return;
      // Take everything queued in one go; the FIFO order is what keeps
      // each shard's durable log a sequence-contiguous prefix.
      batch.clear();
      while (!flush_queue_.empty()) {
        batch.push_back(std::move(flush_queue_.front()));
        flush_queue_.pop_front();
      }
      writer_busy_ = true;
    }
    Status status;
    size_t written = 0;
    {
      MutexLock lock(&log_mu_);
      for (; written < batch.size(); ++written) {
        status = WriteCurrentSegment(batch[written]);
        if (!status.ok()) break;
      }
    }
    MutexLock lock(&flush_mu_);
    writer_status_ = status;
    if (status.ok()) {
      // Recycle the consumed buffers so the shards' next fills reuse
      // their capacity instead of growing from scratch.
      for (std::string& consumed : batch) {
        if (spare_buffers_.size() >= buffers_.size() + 2) break;
        consumed.clear();
        spare_buffers_.push_back(std::move(consumed));
      }
      batch.clear();
      continue;
    }
    C2MN_LOG_ERROR << "storage: log write failed, will retry: "
                   << status.ToString();
    // Wake any Sync() drain-waiter so it can observe the sticky error.
    flush_drained_cv_.NotifyAll();
    if (writer_stop_) {
      // Shutting down with a wedged log: nothing left to retry into.
      return;
    }
    // Put the unwritten tail back at the front, in order, and back off
    // so a persistent failure does not spin.
    for (size_t i = batch.size(); i > written; --i) {
      flush_queue_.emplace_front(std::move(batch[i - 1]));
    }
    batch.clear();
    flush_work_cv_.WaitUntil(
        &flush_mu_,
        std::chrono::steady_clock::now() + std::chrono::milliseconds(100));
  }
}

std::string StorageManager::SnapshotPath() const {
  return options_.state_dir + "/snapshot.c2mn";
}

std::string StorageManager::SnapshotTmpPath() const {
  return options_.state_dir + "/snapshot.c2mn.tmp";
}

std::string StorageManager::SegmentPath(uint64_t epoch) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(epoch));
  return options_.state_dir + "/" + name;
}

Status StorageManager::OpenSegment(uint64_t epoch) {
  const std::string path = SegmentPath(epoch);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IoError("open " + path);
  log_ = std::make_unique<LogFile>(fd);
  if (FileSizeOrZero(path) == 0) {
    std::string header;
    AppendVisitLogHeader(&header);
    C2MN_RETURN_NOT_OK(WriteAll(fd, header, path));
    log_bytes_ += header.size();
    log_bytes_gauge_->Set(static_cast<double>(log_bytes_));
  }
  return Status::OK();
}

Status StorageManager::WriteCurrentSegment(const std::string& bytes) {
  if (log_ == nullptr) {
    return Status::FailedPrecondition("storage: no open log segment");
  }
  C2MN_RETURN_NOT_OK(WriteAll(log_->fd, bytes, SegmentPath(current_epoch_)));
  log_bytes_ += bytes.size();
  log_bytes_gauge_->Set(static_cast<double>(log_bytes_));
  return Status::OK();
}

Status StorageManager::Start() {
  if (options_.state_dir.empty()) {
    return Status::InvalidArgument("storage: empty state directory");
  }
  if (::mkdir(options_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return IoError("mkdir " + options_.state_dir);
  }
  std::vector<uint64_t> epochs;
  C2MN_RETURN_NOT_OK(ListSegments(options_.state_dir, &epochs));
  {
    MutexLock lock(&log_mu_);
    if (started_) {
      return Status::FailedPrecondition("storage: already started");
    }
    current_epoch_ = epochs.empty() ? 1 : epochs.back() + 1;
    log_bytes_ = 0;
    for (const uint64_t epoch : epochs) {
      log_bytes_ += FileSizeOrZero(SegmentPath(epoch));
    }
    C2MN_RETURN_NOT_OK(OpenSegment(current_epoch_));
    started_ = true;
  }
  StartWriter();
  return Status::OK();
}

Status StorageManager::Recover(AnalyticsEngine* engine, RecoveryStats* stats) {
  *stats = RecoveryStats{};
  if (engine == nullptr || engine->num_shards() != num_shards()) {
    return Status::InvalidArgument(
        "storage: recovery engine is missing or has a different shard "
        "count");
  }
  if (options_.state_dir.empty()) {
    return Status::InvalidArgument("storage: empty state directory");
  }
  if (::mkdir(options_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return IoError("mkdir " + options_.state_dir);
  }
  // An in-flight publish that never renamed is garbage by definition.
  if (::unlink(SnapshotTmpPath().c_str()) != 0 && errno != ENOENT) {
    return IoError("unlink " + SnapshotTmpPath());
  }

  uint64_t covered_epoch = 0;
  std::vector<uint64_t> restored_seq(static_cast<size_t>(num_shards()), 0);
  if (FileExists(SnapshotPath())) {
    std::string bytes;
    C2MN_RETURN_NOT_OK(ReadFile(SnapshotPath(), &bytes));
    SnapshotData data;
    C2MN_RETURN_NOT_OK(DecodeSnapshot(bytes, &data));
    C2MN_RETURN_NOT_OK(engine->RestoreState(data.engine));
    covered_epoch = data.wal_epoch_covered;
    for (size_t i = 0; i < data.engine.shards.size(); ++i) {
      restored_seq[i] = data.engine.shards[i].mutation_seq;
    }
    stats->snapshot_loaded = true;
  }

  std::vector<uint64_t> epochs;
  C2MN_RETURN_NOT_OK(ListSegments(options_.state_dir, &epochs));
  uint64_t max_epoch = covered_epoch;
  std::vector<uint64_t> surviving;
  for (const uint64_t epoch : epochs) {
    max_epoch = std::max(max_epoch, epoch);
    if (epoch <= covered_epoch) {
      // Fully inside the snapshot; a crash between publish and compact
      // left it behind.
      if (::unlink(SegmentPath(epoch).c_str()) != 0 && errno != ENOENT) {
        return IoError("unlink " + SegmentPath(epoch));
      }
      continue;
    }
    surviving.push_back(epoch);
  }

  uint64_t live_bytes = 0;
  for (size_t i = 0; i < surviving.size(); ++i) {
    const std::string path = SegmentPath(surviving[i]);
    std::string data;
    C2MN_RETURN_NOT_OK(ReadFile(path, &data));
    VisitLogReplay replay;
    C2MN_RETURN_NOT_OK(DecodeVisitLog(data, &replay));
    if (!replay.clean) {
      if (i + 1 != surviving.size()) {
        // A torn frame mid-chain cannot come from a crash mid-append
        // (only the newest segment was being written); something else
        // damaged the log, and replaying past a hole would silently
        // diverge from the pre-crash state.
        return Status::Internal("storage: torn frame in non-final log "
                                "segment " + path);
      }
      if (::truncate(path.c_str(), static_cast<off_t>(replay.valid_bytes)) !=
          0) {
        return IoError("truncate " + path);
      }
      stats->truncated_torn_tail = true;
      stats->truncated_bytes += data.size() - replay.valid_bytes;
      torn_tail_truncations_total_->Increment();
    }
    live_bytes += replay.valid_bytes;
    for (const VisitLogRecord& record : replay.records) {
      if (record.shard < 0 || record.shard >= num_shards()) {
        return Status::InvalidArgument(
            "storage: log record for out-of-range shard");
      }
      uint64_t& last = restored_seq[static_cast<size_t>(record.shard)];
      if (record.seq <= last) {
        // The snapshot (or an earlier duplicate flush) already covers
        // this mutation.
        ++stats->skipped_records;
        continue;
      }
      uint64_t applied = 0;
      if (record.kind == VisitLogRecord::Kind::kIngest) {
        engine->Ingest(record.shard, record.object_id, record.ms, &applied);
        ++stats->replayed_visits;
      } else {
        engine->NoteSessionClosed(record.shard, record.object_id, &applied);
      }
      if (applied != record.seq) {
        // The engine assigns sequences densely, so a mismatch means the
        // log has a gap or reordering relative to what was applied
        // before the crash — state we cannot faithfully rebuild.
        return Status::Internal(
            "storage: replay sequence cross-check failed in " + path);
      }
      last = record.seq;
      ++stats->replayed_records;
    }
  }
  replayed_visits_total_->Increment(stats->replayed_visits);

  {
    MutexLock lock(&log_mu_);
    if (started_) {
      return Status::FailedPrecondition("storage: already started");
    }
    current_epoch_ = max_epoch + 1;
    log_bytes_ = live_bytes;
    C2MN_RETURN_NOT_OK(OpenSegment(current_epoch_));
    started_ = true;
  }
  StartWriter();
  return Status::OK();
}

void StorageManager::BufferIngest(int shard, uint64_t seq, int64_t object_id,
                                  const MSemantics& ms) {
  VisitLogRecord record;
  record.kind = VisitLogRecord::Kind::kIngest;
  record.shard = shard;
  record.seq = seq;
  record.object_id = object_id;
  record.ms = ms;
  std::string& buffer = buffers_[static_cast<size_t>(shard)];
  AppendVisitLogRecord(record, &buffer);
  if (buffer.size() >= options_.flush_buffer_bytes) FlushShard(shard);
}

void StorageManager::BufferClose(int shard, uint64_t seq, int64_t object_id) {
  VisitLogRecord record;
  record.kind = VisitLogRecord::Kind::kClose;
  record.shard = shard;
  record.seq = seq;
  record.object_id = object_id;
  std::string& buffer = buffers_[static_cast<size_t>(shard)];
  AppendVisitLogRecord(record, &buffer);
  if (buffer.size() >= options_.flush_buffer_bytes) FlushShard(shard);
}

void StorageManager::FlushShard(int shard) {
  std::string& buffer = buffers_[static_cast<size_t>(shard)];
  if (buffer.empty()) return;
  MutexLock lock(&flush_mu_);
  // Not started: keep the records buffered (nowhere to send them yet).
  if (!accepting_flushes_) return;
  std::string replacement;
  if (!spare_buffers_.empty()) {
    replacement = std::move(spare_buffers_.back());
    spare_buffers_.pop_back();
  }
  flush_queue_.push_back(std::move(buffer));
  buffer = std::move(replacement);
  flush_work_cv_.NotifyOne();
}

Status StorageManager::Checkpoint(const AnalyticsEngine& engine) {
  const Stopwatch watch;
  // Serialized by an atomic flag, not a mutex: the cycle interleaves
  // the log mutex with the analytics shard locks (a lower rank), so no
  // single lock may legally span it.
  if (checkpoint_running_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition(
        "storage: another checkpoint is already running");
  }
  struct FlagReset {
    std::atomic<bool>* flag;
    ~FlagReset() { flag->store(false, std::memory_order_release); }
  } flag_reset{&checkpoint_running_};

  uint64_t covered_epoch = 0;
  {
    MutexLock lock(&log_mu_);
    if (!started_) {
      return Status::FailedPrecondition("storage: not started");
    }
    // Rotate before saving: every record in the covered segments was
    // applied before this point, so the state we save below contains
    // all of them.  Records applied after this point land in the new
    // segment; the ones the save still catches replay as no-ops via
    // the sequence skip.
    covered_epoch = current_epoch_;
    log_.reset();
    ++current_epoch_;
    const Status opened = OpenSegment(current_epoch_);
    if (!opened.ok()) {
      started_ = false;  // No segment to append to: storage is dead.
      return opened;
    }
  }

  SnapshotData data;
  data.wal_epoch_covered = covered_epoch;
  data.engine = engine.SaveState();
  std::string bytes;
  EncodeSnapshot(data, &bytes);

  const std::string tmp = SnapshotTmpPath();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open " + tmp);
  Status write_status = WriteAll(fd, bytes, tmp);
  if (write_status.ok() && options_.fsync_on_checkpoint &&
      ::fsync(fd) != 0) {
    write_status = IoError("fsync " + tmp);
  }
  ::close(fd);
  if (!write_status.ok()) {
    ::unlink(tmp.c_str());
    return write_status;
  }
  if (::rename(tmp.c_str(), SnapshotPath().c_str()) != 0) {
    const Status status = IoError("rename " + tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  if (options_.fsync_on_checkpoint) {
    C2MN_RETURN_NOT_OK(SyncDir(options_.state_dir));
  }

  // The snapshot is live; the covered segments are now redundant.
  std::vector<uint64_t> epochs;
  C2MN_RETURN_NOT_OK(ListSegments(options_.state_dir, &epochs));
  uint64_t live_bytes = 0;
  for (const uint64_t epoch : epochs) {
    if (epoch <= covered_epoch) {
      if (::unlink(SegmentPath(epoch).c_str()) != 0 && errno != ENOENT) {
        return IoError("unlink " + SegmentPath(epoch));
      }
    } else {
      live_bytes += FileSizeOrZero(SegmentPath(epoch));
    }
  }
  {
    MutexLock lock(&log_mu_);
    log_bytes_ = live_bytes;
    log_bytes_gauge_->Set(static_cast<double>(log_bytes_));
  }
  checkpoints_total_->Increment();
  checkpoint_seconds_->Observe(watch.ElapsedSeconds());
  return Status::OK();
}

Status StorageManager::Sync() {
  for (int shard = 0; shard < num_shards(); ++shard) FlushShard(shard);
  {
    // Wait for the writer to drain what we just queued; a wedged log
    // surfaces as the writer's sticky error instead of a hang.
    MutexLock lock(&flush_mu_);
    while ((!flush_queue_.empty() || writer_busy_) && writer_status_.ok()) {
      flush_drained_cv_.Wait(&flush_mu_);
    }
    if (!writer_status_.ok()) return writer_status_;
  }
  MutexLock lock(&log_mu_);
  if (!started_ || log_ == nullptr) {
    return Status::FailedPrecondition("storage: not started");
  }
  if (::fsync(log_->fd) != 0) {
    return IoError("fsync " + SegmentPath(current_epoch_));
  }
  return Status::OK();
}

uint64_t StorageManager::log_bytes() const {
  MutexLock lock(&log_mu_);
  return log_bytes_;
}

}  // namespace storage
}  // namespace c2mn
