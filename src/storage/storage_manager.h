#ifndef C2MN_STORAGE_STORAGE_MANAGER_H_
#define C2MN_STORAGE_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/analytics_engine.h"
#include "common/status.h"
#include "common/sync.h"
#include "data/msemantics.h"
#include "obs/metrics_registry.h"

/// \file Durable analytics state: a write-ahead visit log layered under
/// periodic versioned snapshots, living together in one state directory:
///
///   <state_dir>/snapshot.c2mn       the last published snapshot
///   <state_dir>/snapshot.c2mn.tmp   in-flight publish (deleted on boot)
///   <state_dir>/wal-%08u.log        log segments, epoch-numbered
///
/// Write path: the worker that owns a shard applies the mutation to the
/// engine, then buffers the log record carrying the engine-assigned
/// mutation sequence, and flushes its buffer at batch boundaries.  A
/// flush is a hand-off, not an I/O: the buffer moves onto a FIFO queue
/// that a single background writer thread drains to the current
/// segment, so the ingest hot path never blocks on the filesystem.  The
/// durable log of one shard is still always a sequence-contiguous
/// prefix of what the engine applied — the queue preserves order, and a
/// crash loses at most the buffered + queued tail, never a middle
/// record (the pre-async behavior already only made data durable at
/// fsync points: Sync() and checkpoints, both of which drain the queue
/// first).
///
/// Checkpoint cycle (any thread): rotate to a fresh log segment, save
/// the engine state, publish it atomically (write temp + fsync + rename
/// + directory fsync), then delete the covered segments.  Rotation
/// happens before the state save, so every record in a covered segment
/// is inside the snapshot; records that straddle the cycle land in the
/// new segment and replay skips them by sequence.
///
/// Recovery: load the snapshot (if any), restore the engine, replay the
/// surviving segments in epoch order skipping records the snapshot
/// already covers, and cross-check that every applied record receives
/// exactly the sequence it logged.  A torn tail is legal only on the
/// last segment (a crash mid-append) and is truncated; anything torn
/// earlier in the chain, or a snapshot that fails its CRC or carries an
/// unknown format version, refuses recovery instead of guessing.

namespace c2mn {
namespace storage {

/// What recovery found and did.
struct RecoveryStats {
  bool snapshot_loaded = false;
  /// Log records applied to the engine (ingests + closes).
  uint64_t replayed_records = 0;
  /// The subset of replayed records that were visit ingests.
  uint64_t replayed_visits = 0;
  /// Records skipped because the snapshot already covered their sequence.
  uint64_t skipped_records = 0;
  bool truncated_torn_tail = false;
  uint64_t truncated_bytes = 0;
};

/// \brief Owns the state directory: log segments, snapshot publishing,
/// and recovery.  One instance per AnnotationService (or per CLI
/// command).
///
/// Thread model: BufferIngest / BufferClose / FlushShard for one shard
/// are owner-exclusive, exactly like AnalyticsEngine::Ingest — only the
/// worker feeding the shard calls them while the service runs.  The log
/// file behind the buffers is guarded by a ranked mutex, so flushes and
/// the checkpoint rotation interleave safely.  Checkpoint / Sync /
/// log_bytes are safe from any thread; Sync and Recover additionally
/// require the shard owners to be quiescent (drained or not yet
/// started).
class StorageManager {
 public:
  struct Options {
    /// Directory for the snapshot + log files; created if missing.
    std::string state_dir;
    /// fsync the snapshot temp file (and directory) before publishing.
    /// Always on outside of tests.
    bool fsync_on_checkpoint = true;
    /// A shard buffer past this size flushes itself on the next append.
    size_t flush_buffer_bytes = 64 * 1024;
    /// Registry for the storage metrics; nullptr gives the manager a
    /// private registry.  Not owned; must outlive the manager.
    obs::MetricsRegistry* metrics_registry = nullptr;
  };

  StorageManager(Options options, int num_shards);
  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Rebuilds `engine` from the state directory (snapshot + log replay)
  /// and opens a fresh log segment for the new run.  The engine must be
  /// fresh (nothing ingested, no subscriptions) and its shard count must
  /// match this manager's.  Call exactly once, before any Buffer* call.
  /// On failure the directory is left as found (minus a deleted
  /// in-flight snapshot temp file and a truncated torn tail) and the
  /// manager must not be used for writing.
  Status Recover(AnalyticsEngine* engine, RecoveryStats* stats);

  /// Opens a fresh log segment without restoring anything — for a brand
  /// new state directory, or standalone encoding tools.  Alternative to
  /// Recover; exactly one of the two starts the manager.
  Status Start();

  /// Buffers one log record for `shard`.  `seq` is the mutation sequence
  /// the engine assigned when the mutation was applied (the out-param of
  /// AnalyticsEngine::Ingest / NoteSessionClosed).
  void BufferIngest(int shard, uint64_t seq, int64_t object_id,
                    const MSemantics& ms);
  void BufferClose(int shard, uint64_t seq, int64_t object_id);

  /// Hands `shard`'s buffered records to the background writer, which
  /// appends them to the current log segment.  Called by the owning
  /// worker at batch boundaries; does not block on I/O.
  void FlushShard(int shard);

  /// Runs one checkpoint cycle against `engine` (which this manager
  /// recovered or started alongside).  Safe from any thread, including
  /// concurrently with live ingestion.
  Status Checkpoint(const AnalyticsEngine& engine);

  /// Flushes every shard buffer, waits for the background writer to
  /// drain the queue, and fsyncs the current segment.  Only legal while
  /// the shard owners are quiescent (e.g. after Drain or worker join):
  /// makes the in-memory tail durable without paying for a full
  /// checkpoint.
  Status Sync();

  /// Bytes across the live (not yet compacted) log segments.
  uint64_t log_bytes() const;

  const Options& options() const { return options_; }
  int num_shards() const { return static_cast<int>(buffers_.size()); }

 private:
  struct LogFile;

  std::string SnapshotPath() const;
  std::string SnapshotTmpPath() const;
  std::string SegmentPath(uint64_t epoch) const;
  /// Spawns the background writer once a segment is open.
  void StartWriter();
  /// Body of the writer thread: drains flush_queue_ to the current
  /// segment until told to stop, then drains whatever is left.
  void WriterLoop();
  /// Opens segment `epoch` for append, writing the header if new.
  Status OpenSegment(uint64_t epoch) C2MN_REQUIRES(log_mu_);
  Status WriteCurrentSegment(const std::string& bytes)
      C2MN_REQUIRES(log_mu_);

  Options options_;

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Histogram* checkpoint_seconds_ = nullptr;
  obs::Counter* checkpoints_total_ = nullptr;
  obs::Counter* replayed_visits_total_ = nullptr;
  obs::Counter* torn_tail_truncations_total_ = nullptr;
  obs::Gauge* log_bytes_gauge_ = nullptr;

  /// Per-shard append buffers, owner-exclusive (see the thread model).
  std::vector<std::string> buffers_;

  /// Serializes checkpoint cycles (see Checkpoint in the .cc for why
  /// this cannot be a mutex).
  std::atomic<bool> checkpoint_running_{false};

  /// Guards the current segment file and the epoch/byte bookkeeping.
  /// A leaf on the write path: flushes hold it alone, and the
  /// checkpoint cycle takes it only for the rotation step — never
  /// nested with the engine's shard locks.
  mutable Mutex log_mu_{LockRank::kStorageLog, "StorageManager::log_mu_"};
  std::unique_ptr<LogFile> log_ C2MN_GUARDED_BY(log_mu_);
  uint64_t current_epoch_ C2MN_GUARDED_BY(log_mu_) = 0;
  /// Bytes across live segments (current + not-yet-compacted older ones).
  uint64_t log_bytes_ C2MN_GUARDED_BY(log_mu_) = 0;
  bool started_ C2MN_GUARDED_BY(log_mu_) = false;

  /// Hand-off between the shard workers and the writer thread: FIFO of
  /// flushed buffers, plus consumed buffers recycled back to the shards
  /// so steady state never reallocates.
  Mutex flush_mu_{LockRank::kStorageFlush, "StorageManager::flush_mu_"};
  CondVar flush_work_cv_;
  CondVar flush_drained_cv_;
  std::deque<std::string> flush_queue_ C2MN_GUARDED_BY(flush_mu_);
  std::vector<std::string> spare_buffers_ C2MN_GUARDED_BY(flush_mu_);
  bool accepting_flushes_ C2MN_GUARDED_BY(flush_mu_) = false;
  bool writer_busy_ C2MN_GUARDED_BY(flush_mu_) = false;
  bool writer_stop_ C2MN_GUARDED_BY(flush_mu_) = false;
  /// The most recent write attempt's result — sticky across retries so
  /// Sync() can surface a wedged log instead of waiting forever.
  Status writer_status_ C2MN_GUARDED_BY(flush_mu_);
  std::thread writer_thread_;
};

}  // namespace storage
}  // namespace c2mn

#endif  // C2MN_STORAGE_STORAGE_MANAGER_H_
