#include "storage/visit_log.h"

#include <cstring>

#include "storage/binary_format.h"

namespace c2mn {
namespace storage {

namespace {

/// Fixed payload sizes per record kind (the format has no variable-width
/// fields yet, which makes hostile lengths easy to reject).
constexpr size_t kCommonPayloadSize = 1 + 4 + 8 + 8;
constexpr size_t kIngestPayloadSize = kCommonPayloadSize + 4 + 8 + 8 + 1 + 4;
/// u32 payload_len + u32 crc, in front of every frame.
constexpr size_t kFrameHeaderSize = 4 + 4;

bool DecodePayload(std::string_view payload, VisitLogRecord* record) {
  Reader reader(payload);
  uint8_t kind = 0;
  uint32_t shard = 0;
  if (!reader.GetU8(&kind) || !reader.GetU32(&shard) ||
      !reader.GetU64(&record->seq) || !reader.GetI64(&record->object_id)) {
    return false;
  }
  record->shard = static_cast<int>(shard);
  if (kind == static_cast<uint8_t>(VisitLogRecord::Kind::kClose)) {
    record->kind = VisitLogRecord::Kind::kClose;
    record->ms = MSemantics{};
    return payload.size() == kCommonPayloadSize;
  }
  if (kind != static_cast<uint8_t>(VisitLogRecord::Kind::kIngest) ||
      payload.size() != kIngestPayloadSize) {
    return false;
  }
  record->kind = VisitLogRecord::Kind::kIngest;
  uint32_t region = 0;
  uint8_t event = 0;
  uint32_t support = 0;
  if (!reader.GetU32(&region) || !reader.GetF64(&record->ms.t_start) ||
      !reader.GetF64(&record->ms.t_end) || !reader.GetU8(&event) ||
      !reader.GetU32(&support)) {
    return false;
  }
  if (event != static_cast<uint8_t>(MobilityEvent::kStay) &&
      event != static_cast<uint8_t>(MobilityEvent::kPass)) {
    return false;
  }
  record->ms.region = static_cast<RegionId>(region);
  record->ms.event = static_cast<MobilityEvent>(event);
  record->ms.support = static_cast<int>(support);
  return true;
}

}  // namespace

bool VisitLogRecord::operator==(const VisitLogRecord& other) const {
  if (kind != other.kind || shard != other.shard || seq != other.seq ||
      object_id != other.object_id) {
    return false;
  }
  if (kind == Kind::kClose) return true;
  // Bit-wise time comparison: the codec must round-trip every double
  // exactly, including NaNs and signed zeros.
  uint64_t a_start = 0, b_start = 0, a_end = 0, b_end = 0;
  std::memcpy(&a_start, &ms.t_start, sizeof(a_start));
  std::memcpy(&b_start, &other.ms.t_start, sizeof(b_start));
  std::memcpy(&a_end, &ms.t_end, sizeof(a_end));
  std::memcpy(&b_end, &other.ms.t_end, sizeof(b_end));
  return ms.region == other.ms.region && a_start == b_start &&
         a_end == b_end && ms.event == other.ms.event &&
         ms.support == other.ms.support;
}

void AppendVisitLogHeader(std::string* out) {
  out->append(kVisitLogMagic, sizeof(kVisitLogMagic));
  Writer(out).PutU32(kVisitLogVersion);
}

void AppendVisitLogRecord(const VisitLogRecord& record, std::string* out) {
  // This runs once per ingested m-semantics on the service's hot path,
  // so the whole frame is encoded into stack scratch and appended with
  // a single call — no temporary string, no per-field append.  The CRC
  // accumulates from the field values in registers as they are encoded:
  // checksumming the scratch bytes afterwards would stall on
  // store-to-load forwarding for every word.
  char frame[kFrameHeaderSize + kIngestPayloadSize];
  char* p = frame + kFrameHeaderSize;
  Crc32Accumulator crc;
  p = EncodeU8(p, static_cast<uint8_t>(record.kind));
  crc.Add8(static_cast<uint8_t>(record.kind));
  p = EncodeU32(p, static_cast<uint32_t>(record.shard));
  crc.Add32(static_cast<uint32_t>(record.shard));
  p = EncodeU64(p, record.seq);
  crc.Add64(record.seq);
  p = EncodeU64(p, static_cast<uint64_t>(record.object_id));
  crc.Add64(static_cast<uint64_t>(record.object_id));
  if (record.kind == VisitLogRecord::Kind::kIngest) {
    p = EncodeU32(p, static_cast<uint32_t>(record.ms.region));
    crc.Add32(static_cast<uint32_t>(record.ms.region));
    p = EncodeF64(p, record.ms.t_start);
    crc.AddF64(record.ms.t_start);
    p = EncodeF64(p, record.ms.t_end);
    crc.AddF64(record.ms.t_end);
    p = EncodeU8(p, static_cast<uint8_t>(record.ms.event));
    crc.Add8(static_cast<uint8_t>(record.ms.event));
    p = EncodeU32(p, static_cast<uint32_t>(record.ms.support));
    crc.Add32(static_cast<uint32_t>(record.ms.support));
  }
  const size_t payload_len =
      static_cast<size_t>(p - frame) - kFrameHeaderSize;
  EncodeU32(frame, static_cast<uint32_t>(payload_len));
  EncodeU32(frame + 4, crc.Finish());
  out->append(frame, kFrameHeaderSize + payload_len);
}

Status DecodeVisitLog(std::string_view data, VisitLogReplay* replay) {
  replay->records.clear();
  replay->valid_bytes = 0;
  replay->clean = false;
  if (data.size() < kVisitLogHeaderSize ||
      std::memcmp(data.data(), kVisitLogMagic, sizeof(kVisitLogMagic)) != 0) {
    return Status::InvalidArgument("visit log: bad magic");
  }
  Reader header(data.substr(sizeof(kVisitLogMagic)));
  uint32_t version = 0;
  header.GetU32(&version);
  if (version != kVisitLogVersion) {
    return Status::InvalidArgument("visit log: unsupported format version " +
                                   std::to_string(version));
  }
  Reader reader(data);
  reader.Skip(kVisitLogHeaderSize);
  replay->valid_bytes = kVisitLogHeaderSize;
  while (reader.remaining() > 0) {
    uint32_t payload_len = 0;
    uint32_t crc = 0;
    std::string_view payload;
    VisitLogRecord record;
    if (!reader.GetU32(&payload_len) || !reader.GetU32(&crc) ||
        payload_len > kVisitLogMaxPayload ||
        !reader.GetBytes(payload_len, &payload) || Crc32(payload) != crc ||
        !DecodePayload(payload, &record)) {
      // Torn or corrupt tail: stop at the last good frame.  The caller
      // decides whether a tail here is legal (last live segment) or a
      // mid-chain corruption that must refuse recovery.
      return Status::OK();
    }
    replay->records.push_back(record);
    replay->valid_bytes = reader.offset();
  }
  replay->clean = true;
  return Status::OK();
}

}  // namespace storage
}  // namespace c2mn
