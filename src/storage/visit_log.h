#ifndef C2MN_STORAGE_VISIT_LOG_H_
#define C2MN_STORAGE_VISIT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/msemantics.h"

/// \file The write-ahead visit log format: an append-only sequence of
/// CRC-framed records, one per analytics mutation (an ingested
/// m-semantics or a session close), written before the mutation is
/// considered durable.  Recovery replays surviving records on top of the
/// last published snapshot; records whose shard mutation sequence the
/// snapshot already covers are skipped, which makes replay idempotent
/// across the checkpoint race window.
///
/// Layout (all integers little-endian, doubles as IEEE bits):
///
///   file   := magic "C2MNWAL0" | u32 format_version | frame*
///   frame  := u32 payload_len | u32 crc32(payload) | payload
///   payload:= u8 kind | u32 shard | u64 seq | i64 object_id
///             [kind == kIngest: i32 region | f64 t_start | f64 t_end |
///              u8 event | i32 support]
///
/// A torn tail — a frame cut short by a crash mid-append — is expected
/// and reported (not an error): the decoder returns every complete,
/// CRC-valid frame plus the byte offset where the log stops being
/// trustworthy, and recovery truncates there.  A bad magic or an
/// unsupported version is a refusal: the file is not (or is no longer)
/// ours to interpret.
///
/// Pure byte codec, no I/O — StorageManager owns the files, the fuzz
/// harness feeds the decoder directly.

namespace c2mn {
namespace storage {

inline constexpr char kVisitLogMagic[8] = {'C', '2', 'M', 'N',
                                           'W', 'A', 'L', '0'};
inline constexpr uint32_t kVisitLogVersion = 1;
/// Bytes of magic + version every valid log file starts with.
inline constexpr size_t kVisitLogHeaderSize = sizeof(kVisitLogMagic) + 4;
/// Frames larger than this are rejected as corrupt (no legitimate record
/// comes close; the cap keeps hostile lengths from driving allocations).
inline constexpr uint32_t kVisitLogMaxPayload = 1u << 20;

/// One logged analytics mutation.
struct VisitLogRecord {
  enum class Kind : uint8_t {
    kIngest = 1,  ///< An m-semantics folded into the engine.
    kClose = 2,   ///< A session close (NoteSessionClosed).
  };

  Kind kind = Kind::kIngest;
  int shard = 0;
  /// The shard mutation sequence the engine assigned this mutation.
  uint64_t seq = 0;
  int64_t object_id = 0;
  /// Meaningful for kIngest only.
  MSemantics ms;

  bool operator==(const VisitLogRecord& other) const;
};

/// Appends the file header (magic + version) to `out`.  Written once at
/// the start of every log segment.
void AppendVisitLogHeader(std::string* out);

/// Frames `record` (length + CRC + payload) and appends it to `out`.
void AppendVisitLogRecord(const VisitLogRecord& record, std::string* out);

/// The result of decoding one log segment.
struct VisitLogReplay {
  std::vector<VisitLogRecord> records;
  /// Offset just past the last complete, CRC-valid frame: everything
  /// before it is trustworthy, everything after is the torn tail.
  size_t valid_bytes = 0;
  /// True when the segment ends exactly at a frame boundary (no tail).
  bool clean = false;
};

/// Decodes a log segment.  Non-OK only for refusals — bad magic, version
/// skew, or a header too short to identify the file (kInvalidArgument).
/// Torn or corrupt tails are tolerated: decoding stops at the first
/// incomplete or CRC-failing frame and `replay` reports how far the
/// trustworthy prefix reaches.
Status DecodeVisitLog(std::string_view data, VisitLogReplay* replay);

}  // namespace storage
}  // namespace c2mn

#endif  // C2MN_STORAGE_VISIT_LOG_H_
