#include "analytics/analytics_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace c2mn {
namespace {

MSemantics Stay(RegionId region, double t_start, double t_end) {
  MSemantics ms;
  ms.region = region;
  ms.t_start = t_start;
  ms.t_end = t_end;
  ms.event = MobilityEvent::kStay;
  ms.support = 1;
  return ms;
}

MSemantics Pass(RegionId region, double t_start, double t_end) {
  MSemantics ms = Stay(region, t_start, t_end);
  ms.event = MobilityEvent::kPass;
  return ms;
}

TEST(AnalyticsEngineOptionsTest, ValidatedRepairsBadConfigs) {
  AnalyticsEngine::Options bad;
  bad.num_shards = -3;
  bad.bucket_seconds = 0.0;
  bad.horizon_seconds = -10.0;
  bad.min_visit_seconds = std::nan("");
  bad.dwell_min_seconds = -1.0;
  bad.dwell_max_seconds = 0.5;
  bad.dwell_growth = 0.9;
  const AnalyticsEngine::Options v = bad.Validated();
  EXPECT_GE(v.num_shards, 1);
  EXPECT_GT(v.bucket_seconds, 0.0);
  EXPECT_GE(v.horizon_seconds, v.bucket_seconds);
  EXPECT_GE(v.min_visit_seconds, 0.0);
  EXPECT_GT(v.dwell_min_seconds, 0.0);
  EXPECT_GT(v.dwell_max_seconds, v.dwell_min_seconds);
  EXPECT_GT(v.dwell_growth, 1.0);
  // A sane config passes through untouched.
  AnalyticsEngine::Options good;
  good.num_shards = 4;
  good.bucket_seconds = 30.0;
  good.horizon_seconds = 600.0;
  const AnalyticsEngine::Options gv = good.Validated();
  EXPECT_EQ(gv.num_shards, 4);
  EXPECT_EQ(gv.bucket_seconds, 30.0);
  EXPECT_EQ(gv.horizon_seconds, 600.0);
}

TEST(AnalyticsEngineTest, RegionGaugesAccumulate) {
  AnalyticsEngine::Options options;
  options.min_visit_seconds = 10.0;
  AnalyticsEngine engine(options);
  engine.Ingest(1, Stay(2, 0.0, 60.0));    // Visit (>= 10 s).
  engine.Ingest(1, Pass(3, 60.0, 65.0));
  engine.Ingest(1, Stay(2, 65.0, 70.0));   // Stay but too short for a visit.
  engine.Ingest(2, Stay(2, 0.0, 30.0));    // Visit from another object.

  const AnalyticsSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.semantics_ingested, 4u);
  EXPECT_EQ(snap.retained_visits, 3u);  // Stays only.
  EXPECT_EQ(snap.objects_tracked, 2u);
  EXPECT_DOUBLE_EQ(snap.watermark_seconds, 70.0);
  ASSERT_EQ(snap.regions.size(), 2u);

  const RegionAnalytics& r2 = snap.regions[0];
  EXPECT_EQ(r2.region, 2);
  EXPECT_EQ(r2.stays, 3u);
  EXPECT_EQ(r2.passes, 0u);
  EXPECT_EQ(r2.visits, 2u);  // The 5-second stay is not a visit.
  EXPECT_DOUBLE_EQ(r2.total_dwell_seconds, 95.0);
  EXPECT_DOUBLE_EQ(r2.dwell_max_seconds, 60.0);
  EXPECT_GT(r2.dwell_p50_seconds, 0.0);

  const RegionAnalytics& r3 = snap.regions[1];
  EXPECT_EQ(r3.region, 3);
  EXPECT_EQ(r3.stays, 0u);
  EXPECT_EQ(r3.passes, 1u);
}

TEST(AnalyticsEngineTest, OccupancyFollowsLastSemanticsAndSessionClose) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  engine.Ingest(1, Stay(5, 0.0, 10.0));
  engine.Ingest(2, Stay(5, 0.0, 12.0));
  auto occupancy_of = [&](RegionId region) -> int64_t {
    for (const RegionAnalytics& r : engine.Snapshot().regions) {
      if (r.region == region) return r.occupancy;
    }
    return 0;
  };
  EXPECT_EQ(occupancy_of(5), 2);

  engine.Ingest(1, Pass(6, 10.0, 11.0));  // Object 1 moved on.
  EXPECT_EQ(occupancy_of(5), 1);
  EXPECT_EQ(occupancy_of(6), 0);  // A pass does not occupy.

  engine.Ingest(1, Stay(6, 11.0, 20.0));
  EXPECT_EQ(occupancy_of(6), 1);

  engine.NoteSessionClosed(2);
  EXPECT_EQ(occupancy_of(5), 0);
  EXPECT_EQ(engine.Snapshot().objects_tracked, 1u);
  // Closing an unknown object is harmless.
  engine.NoteSessionClosed(99);
}

TEST(AnalyticsEngineTest, FlowMatrixCountsRegionChanges) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  engine.Ingest(1, Stay(1, 0.0, 10.0));
  engine.Ingest(1, Pass(2, 10.0, 12.0));   // 1 -> 2.
  engine.Ingest(1, Stay(2, 12.0, 30.0));   // Same region: no edge.
  engine.Ingest(1, Stay(1, 30.0, 40.0));   // 2 -> 1.
  engine.Ingest(2, Stay(1, 0.0, 5.0));
  engine.Ingest(2, Stay(2, 5.0, 9.0));     // 1 -> 2 again.

  const AnalyticsSnapshot snap = engine.Snapshot();
  ASSERT_EQ(snap.flows.size(), 2u);
  EXPECT_EQ(snap.flows[0].from, 1);
  EXPECT_EQ(snap.flows[0].to, 2);
  EXPECT_EQ(snap.flows[0].count, 2u);
  EXPECT_EQ(snap.flows[1].from, 2);
  EXPECT_EQ(snap.flows[1].to, 1);
  EXPECT_EQ(snap.flows[1].count, 1u);
}

TEST(AnalyticsEngineTest, NonFiniteSemanticsAreDroppedAndCounted) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  engine.Ingest(1, Stay(1, 0.0, std::numeric_limits<double>::quiet_NaN()));
  engine.Ingest(1, Stay(1, std::numeric_limits<double>::infinity(), 10.0));
  // Finite but too extreme to bucket: the int64 cast would be UB.
  engine.Ingest(1, Stay(1, 0.0, 1e30));
  engine.Ingest(1, Stay(1, 0.0, -1e30));
  engine.Ingest(1, Stay(1, 0.0, 10.0));
  const AnalyticsSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.semantics_ingested, 5u);
  EXPECT_EQ(snap.invalid_dropped, 4u);
  EXPECT_EQ(snap.retained_visits, 1u);
  ASSERT_EQ(snap.regions.size(), 1u);
  EXPECT_EQ(snap.regions[0].stays, 1u);
}

TEST(AnalyticsEngineTest, RetentionAgesOutOldBuckets) {
  AnalyticsEngine::Options options;
  options.bucket_seconds = 10.0;
  options.horizon_seconds = 30.0;  // 3 buckets + 1 slack.
  AnalyticsEngine engine(options);

  engine.Ingest(1, Stay(1, 0.0, 5.0));
  engine.Ingest(1, Stay(1, 10.0, 15.0));
  EXPECT_EQ(engine.Snapshot().retained_visits, 2u);

  // Jump the watermark far past the horizon: both old buckets recycle.
  engine.Ingest(1, Stay(1, 200.0, 205.0));
  AnalyticsSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.retained_visits, 1u);
  EXPECT_EQ(snap.buckets_evicted, 2u);

  // A visit older than the horizon arrives late: dropped, counted.
  engine.Ingest(1, Stay(1, 20.0, 25.0));
  snap = engine.Snapshot();
  EXPECT_EQ(snap.retained_visits, 1u);
  EXPECT_EQ(snap.late_dropped, 1u);

  // A visit slightly behind the watermark but inside the horizon lands.
  engine.Ingest(2, Stay(1, 190.0, 195.0));
  EXPECT_EQ(engine.Snapshot().retained_visits, 2u);

  // Aged-out visits are invisible to the windowed queries; the
  // cumulative gauges still remember every stay.
  const TimeWindow everything{0.0, 1e9};
  const auto popular = engine.TopKPopularRegions({1}, everything, 5);
  ASSERT_EQ(popular.size(), 1u);
  ASSERT_EQ(snap.regions.size(), 1u);
  EXPECT_EQ(engine.Snapshot().regions[0].stays, 5u);
}

TEST(AnalyticsEngineTest, WindowedQueriesFilterLikeBatch) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  // Object 1 stays at regions 1, 2 inside [0, 100]; object 2 at 2, 3.
  engine.Ingest(1, Stay(1, 0.0, 40.0));
  engine.Ingest(1, Stay(2, 50.0, 90.0));
  engine.Ingest(2, Stay(2, 10.0, 60.0));
  engine.Ingest(2, Stay(3, 70.0, 75.0));     // Short stay.
  engine.Ingest(2, Stay(4, 300.0, 400.0));   // Outside the window.

  const TimeWindow window{0.0, 100.0};
  const std::vector<RegionId> all = {1, 2, 3, 4};

  // Region 2 has two visits; 1 and 3 one each (tie broken by id).
  EXPECT_EQ(engine.TopKPopularRegions(all, window, 3),
            (std::vector<RegionId>{2, 1, 3}));
  // A 10-second minimum drops region 3's blip.
  EXPECT_EQ(engine.TopKPopularRegions(all, window, 3, 10.0),
            (std::vector<RegionId>{2, 1}));
  // Region filtering works.
  EXPECT_EQ(engine.TopKPopularRegions({2, 3}, window, 3),
            (std::vector<RegionId>{2, 3}));

  // Pairs: object 1 co-visited {1,2}, object 2 co-visited {2,3}.
  const auto pairs = engine.TopKFrequentRegionPairs(all, window, 5);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<RegionId, RegionId>{1, 2}));
  EXPECT_EQ(pairs[1], (std::pair<RegionId, RegionId>{2, 3}));
}

TEST(AnalyticsEngineTest, ShardCountDoesNotChangeAnswers) {
  // The same per-object streams, sharded three different ways, must
  // produce identical snapshots and query answers.
  auto feed = [](AnalyticsEngine* engine) {
    for (int64_t object = 0; object < 12; ++object) {
      const double base = 17.0 * static_cast<double>(object);
      engine->Ingest(object, Stay(static_cast<RegionId>(object % 3),
                                  base, base + 30.0));
      engine->Ingest(object, Pass(static_cast<RegionId>((object + 1) % 3),
                                  base + 30.0, base + 35.0));
      engine->Ingest(object, Stay(static_cast<RegionId>((object + 2) % 3),
                                  base + 35.0, base + 80.0));
    }
  };
  const TimeWindow window{0.0, 500.0};
  const std::vector<RegionId> regions = {0, 1, 2};

  std::vector<std::vector<RegionId>> popular;
  std::vector<std::vector<std::pair<RegionId, RegionId>>> pairs;
  std::vector<AnalyticsSnapshot> snaps;
  for (int shards : {1, 2, 4}) {
    AnalyticsEngine::Options options;
    options.num_shards = shards;
    AnalyticsEngine engine(options);
    feed(&engine);
    popular.push_back(engine.TopKPopularRegions(regions, window, 3));
    pairs.push_back(engine.TopKFrequentRegionPairs(regions, window, 3));
    snaps.push_back(engine.Snapshot());
  }
  for (size_t i = 1; i < popular.size(); ++i) {
    EXPECT_EQ(popular[i], popular[0]);
    EXPECT_EQ(pairs[i], pairs[0]);
    EXPECT_EQ(snaps[i].semantics_ingested, snaps[0].semantics_ingested);
    EXPECT_EQ(snaps[i].retained_visits, snaps[0].retained_visits);
    EXPECT_EQ(snaps[i].objects_tracked, snaps[0].objects_tracked);
    ASSERT_EQ(snaps[i].regions.size(), snaps[0].regions.size());
    for (size_t r = 0; r < snaps[0].regions.size(); ++r) {
      EXPECT_EQ(snaps[i].regions[r].region, snaps[0].regions[r].region);
      EXPECT_EQ(snaps[i].regions[r].stays, snaps[0].regions[r].stays);
      EXPECT_EQ(snaps[i].regions[r].occupancy, snaps[0].regions[r].occupancy);
      EXPECT_DOUBLE_EQ(snaps[i].regions[r].total_dwell_seconds,
                       snaps[0].regions[r].total_dwell_seconds);
    }
    ASSERT_EQ(snaps[i].flows.size(), snaps[0].flows.size());
    for (size_t f = 0; f < snaps[0].flows.size(); ++f) {
      EXPECT_EQ(snaps[i].flows[f].from, snaps[0].flows[f].from);
      EXPECT_EQ(snaps[i].flows[f].to, snaps[0].flows[f].to);
      EXPECT_EQ(snaps[i].flows[f].count, snaps[0].flows[f].count);
    }
  }
}

}  // namespace
}  // namespace c2mn
