#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "analytics/analytics_engine.h"
#include "core/weights_io.h"
#include "eval/queries.h"
#include "service/annotation_service.h"
#include "tests/test_util.h"

namespace c2mn {
namespace {

/// The ISSUE-4 acceptance gate: replay a simulated multi-session stream
/// through the analytics engine (wired into AnnotationService) and
/// assert its top-k answers are bit-identical to the batch eval/queries
/// implementation over the collected corpus — for 1, 2, and 4 shards.
class AnalyticsEquivalenceTest : public ::testing::Test {
 protected:
  AnalyticsEquivalenceTest() : scenario_(testing_util::SmallMallScenario()) {
    // Annotation *quality* is irrelevant here — both sides consume the
    // same m-semantics stream — so fixed weights skip the training cost.
    weights_.assign(static_cast<size_t>(kNumWeights), 0.5);
    for (const LabeledSequence& ls : scenario_.dataset.sequences) {
      std::vector<PositioningRecord> records = ls.sequence.records;
      if (records.size() > 120) records.resize(120);
      sources_.push_back(std::move(records));
    }
  }

  /// Replays every source stream through a service with live analytics,
  /// collecting the sink output into a corpus (one sequence per object,
  /// exactly what the batch queries expect).
  struct Replay {
    AnalyticsSnapshot snapshot;
    AnnotatedCorpus corpus;
    std::vector<RegionId> popular[3];
    std::vector<std::pair<RegionId, RegionId>> pairs[3];
    std::vector<RegionId> batch_popular[3];
    std::vector<std::pair<RegionId, RegionId>> batch_pairs[3];
    /// The last delta pushed by a standing top-k subscribed before any
    /// record was submitted.
    std::vector<RegionId> standing_answer;
  };

  Replay Run(int num_shards) {
    AnnotationService::Options options;
    options.num_shards = num_shards;
    options.annotator.window_records = 24;
    options.annotator.finalize_lag = 6;
    options.annotator.decode_stride = 4;
    options.analytics.enabled = true;
    // A horizon wide enough that nothing ages out during the replay.
    options.analytics.engine.bucket_seconds = 60.0;
    options.analytics.engine.horizon_seconds = 1e9;
    // A standing query riding along with the replay: its final pushed
    // answer must equal the poll (and therefore the batch answer).  Its
    // captured state precedes the service so teardown-time deltas (an
    // early EXPECT failure path) never touch destroyed objects.
    std::mutex standing_mu;
    std::vector<RegionId> standing_answer;

    AnnotationService service(*scenario_.world, FeatureOptions{},
                              C2mnStructure{}, weights_, options);

    StandingQuery standing;
    standing.spec.all_regions = true;
    standing.k = 5;
    EXPECT_TRUE(service
                    .SubscribeAnalytics(
                        standing,
                        [&standing_mu, &standing_answer](
                            const StandingQueryDelta& delta) {
                          std::lock_guard<std::mutex> lock(standing_mu);
                          standing_answer = delta.regions;
                        })
                    .ok());

    const size_t n = sources_.size();
    std::vector<MSemanticsSequence> emitted(n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(service
                      .OpenSession(static_cast<int64_t>(i),
                                   [&emitted](int64_t id,
                                              const MSemantics& ms) {
                                     emitted[static_cast<size_t>(id)]
                                         .push_back(ms);
                                   })
                      .ok());
    }
    for (size_t i = 0; i < n; ++i) {
      for (const PositioningRecord& rec : sources_[i]) {
        EXPECT_TRUE(service.Submit(static_cast<int64_t>(i), rec).ok());
      }
    }
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(service.CloseSession(static_cast<int64_t>(i)).ok());
    }
    service.Drain();

    Replay replay;
    for (size_t i = 0; i < n; ++i) {
      replay.corpus.Add(static_cast<int64_t>(i), emitted[i]);
    }
    replay.snapshot = service.AnalyticsStats();

    // Every region the venue knows about, plus ids nobody visited.
    std::vector<RegionId> query_regions;
    for (const SemanticRegion& region : scenario_.world->plan().regions()) {
      query_regions.push_back(region.id);
    }
    query_regions.push_back(10000);

    const double t0 = replay.corpus.semantics.empty()
                          ? 0.0
                          : replay.corpus.semantics[0][0].t_start;
    const TimeWindow windows[3] = {
        {t0 - 1e6, t0 + 1e6},   // Everything.
        {t0, t0 + 300.0},       // An early slice.
        {t0 + 120.0, t0 + 600.0},  // A middle slice.
    };
    const double min_visit[3] = {0.0, 0.0, 20.0};
    const size_t k[3] = {5, 3, 100};

    const AnalyticsEngine* engine = service.analytics();
    EXPECT_NE(engine, nullptr);
    for (int q = 0; q < 3; ++q) {
      replay.popular[q] = engine->TopKPopularRegions(query_regions, windows[q],
                                                     k[q], min_visit[q]);
      replay.pairs[q] = engine->TopKFrequentRegionPairs(
          query_regions, windows[q], k[q], min_visit[q]);
      replay.batch_popular[q] = TopKPopularRegions(
          replay.corpus, query_regions, windows[q], k[q], min_visit[q]);
      replay.batch_pairs[q] = TopKFrequentRegionPairs(
          replay.corpus, query_regions, windows[q], k[q], min_visit[q]);
    }
    {
      std::lock_guard<std::mutex> lock(standing_mu);
      replay.standing_answer = standing_answer;
    }
    // The refreshed snapshot sees the queries above: query 0 (window
    // covering everything, threshold 0 = the engine's maintained spec)
    // must have been served by the pre-aggregated sketches, the sliced
    // windows by the scan fallback.
    replay.snapshot = service.AnalyticsStats();
    EXPECT_GE(replay.snapshot.preagg_queries, 2u);
    EXPECT_GE(replay.snapshot.scan_queries, 2u);
    return replay;
  }

  const Scenario& scenario_;
  std::vector<double> weights_;
  std::vector<std::vector<PositioningRecord>> sources_;
};

TEST_F(AnalyticsEquivalenceTest, TopKIdenticalToBatchAcrossShardCounts) {
  Replay first = Run(1);
  // The stream actually produced stays to rank, or the test is vacuous.
  ASSERT_GT(first.snapshot.retained_visits, 0u);
  ASSERT_FALSE(first.popular[0].empty());

  for (int q = 0; q < 3; ++q) {
    EXPECT_EQ(first.popular[q], first.batch_popular[q]) << "query " << q;
    EXPECT_EQ(first.pairs[q], first.batch_pairs[q]) << "query " << q;
  }
  // The standing query's final pushed answer is the polled (and batch)
  // top-5 over everything retained.
  EXPECT_EQ(first.standing_answer, first.popular[0]);

  for (int shards : {2, 4}) {
    const Replay replay = Run(shards);
    EXPECT_EQ(replay.standing_answer, replay.popular[0])
        << shards << " shards";
    for (int q = 0; q < 3; ++q) {
      // Engine == its own run's batch answers...
      EXPECT_EQ(replay.popular[q], replay.batch_popular[q])
          << shards << " shards, query " << q;
      EXPECT_EQ(replay.pairs[q], replay.batch_pairs[q])
          << shards << " shards, query " << q;
      // ...and the whole pipeline is shard-count invariant.
      EXPECT_EQ(replay.popular[q], first.popular[q])
          << shards << " shards, query " << q;
      EXPECT_EQ(replay.pairs[q], first.pairs[q])
          << shards << " shards, query " << q;
    }
    EXPECT_EQ(replay.snapshot.semantics_ingested,
              first.snapshot.semantics_ingested);
    EXPECT_EQ(replay.snapshot.retained_visits,
              first.snapshot.retained_visits);
  }
}

TEST_F(AnalyticsEquivalenceTest, ServiceWithoutAnalyticsHasNoEngine) {
  AnnotationService service(*scenario_.world, FeatureOptions{},
                            C2mnStructure{}, weights_);
  EXPECT_EQ(service.analytics(), nullptr);
  const AnalyticsSnapshot snapshot = service.AnalyticsStats();
  EXPECT_EQ(snapshot.semantics_ingested, 0u);
  EXPECT_TRUE(snapshot.regions.empty());
}

TEST_F(AnalyticsEquivalenceTest, SessionCloseClearsOccupancy) {
  AnnotationService::Options options;
  options.num_shards = 2;
  options.annotator.window_records = 24;
  options.annotator.finalize_lag = 6;
  options.annotator.decode_stride = 4;
  options.analytics.enabled = true;
  AnnotationService service(*scenario_.world, FeatureOptions{},
                            C2mnStructure{}, weights_, options);
  for (size_t i = 0; i < sources_.size(); ++i) {
    ASSERT_TRUE(service.OpenSession(static_cast<int64_t>(i), nullptr).ok());
    for (const PositioningRecord& rec : sources_[i]) {
      ASSERT_TRUE(service.Submit(static_cast<int64_t>(i), rec).ok());
    }
    ASSERT_TRUE(service.CloseSession(static_cast<int64_t>(i)).ok());
  }
  service.Drain();
  const AnalyticsSnapshot snapshot = service.AnalyticsStats();
  EXPECT_GT(snapshot.semantics_ingested, 0u);
  // Every session closed: nobody occupies anything, nobody is tracked.
  EXPECT_EQ(snapshot.objects_tracked, 0u);
  for (const RegionAnalytics& region : snapshot.regions) {
    EXPECT_EQ(region.occupancy, 0) << "region " << region.region;
  }
}

}  // namespace
}  // namespace c2mn
