#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <random>
#include <vector>

#include "analytics/analytics_engine.h"
#include "query/query_core.h"
#include "query/sliding_window.h"
#include "service/annotation_service.h"
#include "tests/test_util.h"

namespace c2mn {
namespace {

MSemantics Stay(RegionId region, double t_start, double t_end) {
  MSemantics ms;
  ms.region = region;
  ms.t_start = t_start;
  ms.t_end = t_end;
  ms.event = MobilityEvent::kStay;
  ms.support = 1;
  return ms;
}

/// Collects every delta and validates the exactly-once contract: deltas
/// arrive in sequence order and replaying entered/exited reconstructs
/// each delta's own full answer.
struct DeltaLog {
  std::mutex mu;
  std::vector<StandingQueryDelta> deltas;

  StandingQueryCallback Callback() {
    return [this](const StandingQueryDelta& delta) {
      std::lock_guard<std::mutex> lock(mu);
      deltas.push_back(delta);
    };
  }
  size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return deltas.size();
  }
  StandingQueryDelta last() {
    std::lock_guard<std::mutex> lock(mu);
    return deltas.back();
  }
  std::vector<RegionId> ReconstructRegions() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<RegionId> state;
    uint64_t expected_sequence = 1;
    for (const StandingQueryDelta& delta : deltas) {
      EXPECT_EQ(delta.sequence, expected_sequence++);
      for (RegionId r : delta.regions_exited) {
        state.erase(std::remove(state.begin(), state.end(), r), state.end());
      }
      for (RegionId r : delta.regions_entered) state.push_back(r);
      std::vector<RegionId> sorted_state = state;
      std::vector<RegionId> sorted_answer = delta.regions;
      std::sort(sorted_state.begin(), sorted_state.end());
      std::sort(sorted_answer.begin(), sorted_answer.end());
      EXPECT_EQ(sorted_state, sorted_answer)
          << "delta sequence " << delta.sequence;
      state = delta.regions;
    }
    return state;
  }
  std::vector<RegionPair> ReconstructPairs() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<RegionPair> state;
    uint64_t expected_sequence = 1;
    for (const StandingQueryDelta& delta : deltas) {
      EXPECT_EQ(delta.sequence, expected_sequence++);
      for (const RegionPair& p : delta.pairs_exited) {
        state.erase(std::remove(state.begin(), state.end(), p), state.end());
      }
      for (const RegionPair& p : delta.pairs_entered) state.push_back(p);
      std::vector<RegionPair> sorted_state = state;
      std::vector<RegionPair> sorted_answer = delta.pairs;
      std::sort(sorted_state.begin(), sorted_state.end());
      std::sort(sorted_answer.begin(), sorted_answer.end());
      EXPECT_EQ(sorted_state, sorted_answer)
          << "delta sequence " << delta.sequence;
      state = delta.pairs;
    }
    return state;
  }
};

/// Brute-force trailing scan over the ingested stays, using the same
/// bucket quantization the engine advertises for trailing_seconds.
struct TrailingReference {
  double bucket_seconds;
  double horizon_seconds;
  double trailing_seconds;

  int64_t WindowBuckets() const {
    const int64_t ring = static_cast<int64_t>(
                             std::ceil(horizon_seconds / bucket_seconds)) +
                         1;
    const double buckets_d = std::ceil(trailing_seconds / bucket_seconds);
    const int64_t wanted =
        buckets_d >= static_cast<double>(ring)
            ? ring
            : std::max<int64_t>(static_cast<int64_t>(buckets_d), 1);
    return wanted;
  }

  query::TopKSketch Scan(
      const std::vector<std::pair<int64_t, MSemantics>>& stays,
      const query::CompiledSpec& spec) const {
    int64_t watermark = INT64_MIN;
    for (const auto& [object_id, ms] : stays) {
      (void)object_id;
      watermark = std::max(watermark, static_cast<int64_t>(std::floor(
                                          ms.t_end / bucket_seconds)));
    }
    const int64_t edge = watermark - WindowBuckets();
    query::TopKSketch sketch(&spec);
    for (const auto& [object_id, ms] : stays) {
      const int64_t b =
          static_cast<int64_t>(std::floor(ms.t_end / bucket_seconds));
      if (b > edge) sketch.AddVisit(object_id, ms.region, ms.t_start, ms.t_end);
    }
    return sketch;
  }
};

TEST(SlidingStandingTest, WatermarkAdvanceRetractsWithoutEviction) {
  AnalyticsEngine::Options options;
  options.bucket_seconds = 10.0;
  options.horizon_seconds = 1e6;  // Retention never evicts here.
  AnalyticsEngine engine(options);

  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 5;
  standing.trailing_seconds = 20.0;  // Two 10 s buckets.
  DeltaLog log;
  engine.Subscribe(standing, log.Callback());
  ASSERT_EQ(log.size(), 1u);

  engine.Ingest(1, Stay(1, 0.0, 5.0));    // Bucket 0.
  engine.Ingest(2, Stay(2, 12.0, 15.0));  // Bucket 1.
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{1, 2}));

  // Bucket 2: region 1 (bucket 0) slides out in the same delta that
  // admits region 3 — retention evicted nothing (horizon is huge).
  engine.Ingest(3, Stay(3, 25.0, 28.0));
  const StandingQueryDelta delta = log.last();
  EXPECT_EQ(delta.regions, (std::vector<RegionId>{2, 3}));
  EXPECT_EQ(delta.regions_exited, (std::vector<RegionId>{1}));
  EXPECT_EQ(delta.regions_entered, (std::vector<RegionId>{3}));

  const AnalyticsSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.buckets_evicted, 0u);
  EXPECT_EQ(snap.sliding_queries, 1u);
  EXPECT_EQ(snap.standing_queries, 1u);
  EXPECT_GE(snap.window_rotations, 2u);
  EXPECT_GE(snap.window_expired_visits, 1u);

  // The non-trailing poll still sees everything retained.
  EXPECT_EQ(engine.TopKPopularRegions({1, 2, 3}, TimeWindow::All(), 5),
            (std::vector<RegionId>{1, 2, 3}));
  log.ReconstructRegions();
}

/// Tie-heavy fixture replayed at 1/2/4 shards: the trailing answer must
/// be bit-identical to the brute-force trailing scan and shard-count
/// invariant, and the delta stream must reconstruct it exactly-once.
TEST(SlidingStandingTest, ShardCountInvariantAndBruteForceIdentical) {
  // A deterministic tie-heavy stream: 6 regions, many equal counts,
  // objects hopping regions so pairs form, spread over ~40 buckets.
  std::vector<std::pair<int64_t, MSemantics>> stays;
  std::mt19937 rng(4242);
  double clock = 0.0;
  for (int step = 0; step < 300; ++step) {
    clock += static_cast<double>(rng() % 6);
    const int64_t object = static_cast<int64_t>(rng() % 8);
    const RegionId region = static_cast<RegionId>(rng() % 6);
    stays.emplace_back(object, Stay(region, clock, clock + 3.0));
  }

  AnalyticsEngine::Options base;
  base.bucket_seconds = 10.0;
  base.horizon_seconds = 1e6;
  TrailingReference ref{base.bucket_seconds, base.horizon_seconds, 50.0};

  query::VisitSpec vs;
  vs.all_regions = true;
  const query::CompiledSpec spec(vs);
  query::TopKSketch expected = ref.Scan(stays, spec);
  const auto expected_regions = expected.TopKRegions(4);
  const auto expected_pairs = expected.TopKPairs(4);
  ASSERT_FALSE(expected_regions.empty());
  ASSERT_FALSE(expected_pairs.empty());

  for (int shards : {1, 2, 4}) {
    AnalyticsEngine::Options options = base;
    options.num_shards = shards;
    AnalyticsEngine engine(options);

    StandingQuery regions_q;
    regions_q.spec.all_regions = true;
    regions_q.k = 4;
    regions_q.trailing_seconds = 50.0;
    DeltaLog region_log;
    engine.Subscribe(regions_q, region_log.Callback());

    StandingQuery pairs_q;
    pairs_q.kind = StandingQuery::Kind::kFrequentPairs;
    pairs_q.spec.all_regions = true;
    pairs_q.k = 4;
    pairs_q.trailing_seconds = 50.0;
    DeltaLog pair_log;
    engine.Subscribe(pairs_q, pair_log.Callback());

    for (const auto& [object, ms] : stays) engine.Ingest(object, ms);

    EXPECT_EQ(region_log.ReconstructRegions(), expected_regions)
        << shards << " shards";
    EXPECT_EQ(region_log.last().regions, expected_regions)
        << shards << " shards";
    EXPECT_EQ(pair_log.ReconstructPairs(), expected_pairs)
        << shards << " shards";
    EXPECT_EQ(pair_log.last().pairs, expected_pairs) << shards << " shards";
  }
}

TEST(SlidingStandingTest, MidStreamSubscribeSeedsTrailingWindow) {
  AnalyticsEngine::Options options;
  options.bucket_seconds = 10.0;
  options.horizon_seconds = 1e6;
  AnalyticsEngine engine(options);

  std::vector<std::pair<int64_t, MSemantics>> stays = {
      {1, Stay(1, 0.0, 5.0)},     // Bucket 0: out of the trailing window.
      {1, Stay(2, 100.0, 104.0)},  // Bucket 10.
      {2, Stay(3, 112.0, 115.0)},  // Bucket 11.
      {2, Stay(2, 123.0, 126.0)},  // Bucket 12 (watermark).
  };
  for (const auto& [object, ms] : stays) engine.Ingest(object, ms);

  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 5;
  standing.trailing_seconds = 30.0;  // Buckets 10..12.
  DeltaLog log;
  engine.Subscribe(standing, log.Callback());
  ASSERT_EQ(log.size(), 1u);

  TrailingReference ref{options.bucket_seconds, options.horizon_seconds,
                        standing.trailing_seconds};
  query::VisitSpec vs;
  vs.all_regions = true;
  const query::CompiledSpec spec(vs);
  query::TopKSketch expected = ref.Scan(stays, spec);
  EXPECT_EQ(log.last().regions, expected.TopKRegions(5));
  // Region 1's bucket-0 visit is behind the window; region 2 leads with
  // its two in-window visits.
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{2, 3}));
}

/// Retention eviction and window expiry interleave: a visit can expire
/// from the trailing window first and evict from retention later — the
/// second retraction must be a no-op, not a double-exit.
TEST(SlidingStandingTest, RetentionEvictionAfterWindowExpiryIsExactlyOnce) {
  AnalyticsEngine::Options options;
  options.bucket_seconds = 10.0;
  options.horizon_seconds = 50.0;  // Retention: 5 buckets + slack.
  AnalyticsEngine engine(options);

  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 5;
  standing.trailing_seconds = 10.0;  // One bucket: tighter than retention.
  DeltaLog log;
  engine.Subscribe(standing, log.Callback());

  engine.Ingest(1, Stay(1, 0.0, 5.0));
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{1}));
  // Bucket 2: region 1 leaves the window (but stays retained).
  engine.Ingest(2, Stay(2, 25.0, 28.0));
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{2}));
  EXPECT_EQ(log.last().regions_exited, (std::vector<RegionId>{1}));
  const size_t after_window_exit = log.size();

  // Far future: retention now evicts the bucket-0 visit too.  The
  // standing answer must not push a second exit for region 1.
  engine.Ingest(3, Stay(3, 500.0, 505.0));
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{3}));
  EXPECT_EQ(log.last().regions_exited, (std::vector<RegionId>{2}));
  EXPECT_GT(engine.Snapshot().buckets_evicted, 0u);
  EXPECT_GE(log.size(), after_window_exit + 1);
  // Sequence + entered/exited bookkeeping stayed consistent throughout.
  log.ReconstructRegions();
}

TEST(SlidingStandingTest, UnsubscribeDropsSlidingGauge) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.trailing_seconds = 120.0;
  const int id = engine.Subscribe(standing,
                                  [](const StandingQueryDelta&) {});
  EXPECT_EQ(engine.Snapshot().sliding_queries, 1u);
  EXPECT_EQ(engine.Snapshot().standing_queries, 1u);
  EXPECT_TRUE(engine.Unsubscribe(id));
  EXPECT_EQ(engine.Snapshot().sliding_queries, 0u);
  EXPECT_EQ(engine.Snapshot().standing_queries, 0u);
}

/// Service-level: trailing_seconds must be finite (NaN / Inf rejected,
/// negatives clamped to plain standing), and a trailing subscription
/// through the full service pushes a consistent delta stream.
TEST(SlidingStandingServiceTest, ValidatesAndPushesThroughService) {
  const Scenario& scenario = testing_util::SmallMallScenario();
  std::vector<double> weights(static_cast<size_t>(kNumWeights), 0.5);

  AnnotationService::Options options;
  options.num_shards = 2;
  options.annotator.window_records = 24;
  options.annotator.finalize_lag = 6;
  options.annotator.decode_stride = 4;
  options.analytics.enabled = true;
  options.analytics.engine.horizon_seconds = 1e9;
  DeltaLog log;
  AnnotationService service(*scenario.world, FeatureOptions{},
                            C2mnStructure{}, weights, options);

  StandingQuery bad;
  bad.spec.all_regions = true;
  bad.trailing_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      service.SubscribeAnalytics(bad, [](const StandingQueryDelta&) {}).ok());
  bad.trailing_seconds = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      service.SubscribeAnalytics(bad, [](const StandingQueryDelta&) {}).ok());
  // Negative clamps to 0: a plain (whole-horizon) standing query.
  StandingQuery clamped;
  clamped.spec.all_regions = true;
  clamped.trailing_seconds = -5.0;
  auto clamped_sub = service.SubscribeAnalytics(
      clamped, [](const StandingQueryDelta&) {});
  ASSERT_TRUE(clamped_sub.ok());
  EXPECT_EQ(service.AnalyticsStats().sliding_queries, 0u);
  ASSERT_TRUE(service.UnsubscribeAnalytics(*clamped_sub).ok());

  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 5;
  standing.trailing_seconds = 600.0;
  auto subscribed = service.SubscribeAnalytics(standing, log.Callback());
  ASSERT_TRUE(subscribed.ok()) << subscribed.status().ToString();
  EXPECT_EQ(service.AnalyticsStats().sliding_queries, 1u);

  for (size_t i = 0; i < scenario.dataset.sequences.size() && i < 6; ++i) {
    std::vector<PositioningRecord> records =
        scenario.dataset.sequences[i].sequence.records;
    if (records.size() > 120) records.resize(120);
    const int64_t object = static_cast<int64_t>(i);
    ASSERT_TRUE(service.OpenSession(object, nullptr).ok());
    for (const PositioningRecord& rec : records) {
      ASSERT_TRUE(service.Submit(object, rec).ok());
    }
    ASSERT_TRUE(service.CloseSession(object).ok());
  }
  service.Drain();

  // The delta stream is internally consistent (sequence + exactly-once
  // entered/exited), and the engine reports its sliding telemetry.
  log.ReconstructRegions();
  EXPECT_GE(log.size(), 1u);
  const AnalyticsSnapshot snap = service.AnalyticsStats();
  EXPECT_EQ(snap.sliding_queries, 1u);
  EXPECT_EQ(snap.standing_queries, 1u);
  ASSERT_TRUE(service.UnsubscribeAnalytics(*subscribed).ok());
  EXPECT_EQ(service.AnalyticsStats().sliding_queries, 0u);
}

}  // namespace
}  // namespace c2mn
