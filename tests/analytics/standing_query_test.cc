#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "analytics/analytics_engine.h"
#include "core/options.h"
#include "service/annotation_service.h"
#include "tests/test_util.h"

namespace c2mn {
namespace {

MSemantics Stay(RegionId region, double t_start, double t_end) {
  MSemantics ms;
  ms.region = region;
  ms.t_start = t_start;
  ms.t_end = t_end;
  ms.event = MobilityEvent::kStay;
  ms.support = 1;
  return ms;
}

/// Collects every delta a subscription pushes; thread-safe so service
/// workers can feed it.
struct DeltaLog {
  std::mutex mu;
  std::vector<StandingQueryDelta> deltas;

  StandingQueryCallback Callback() {
    return [this](const StandingQueryDelta& delta) {
      std::lock_guard<std::mutex> lock(mu);
      deltas.push_back(delta);
    };
  }
  size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return deltas.size();
  }
  StandingQueryDelta last() {
    std::lock_guard<std::mutex> lock(mu);
    return deltas.back();
  }
  /// Re-applies entered/exited in sequence order and checks the running
  /// set always matches the delta's own full answer.
  std::vector<RegionId> ReconstructRegions() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<RegionId> state;
    uint64_t expected_sequence = 1;
    for (const StandingQueryDelta& delta : deltas) {
      EXPECT_EQ(delta.sequence, expected_sequence++);
      for (RegionId r : delta.regions_exited) {
        state.erase(std::remove(state.begin(), state.end(), r), state.end());
      }
      for (RegionId r : delta.regions_entered) state.push_back(r);
      // Order within the answer comes from the delta itself; membership
      // must agree with the incremental reconstruction.
      std::vector<RegionId> sorted_state = state;
      std::vector<RegionId> sorted_answer = delta.regions;
      std::sort(sorted_state.begin(), sorted_state.end());
      std::sort(sorted_answer.begin(), sorted_answer.end());
      EXPECT_EQ(sorted_state, sorted_answer)
          << "delta sequence " << delta.sequence;
      state = delta.regions;
    }
    return state;
  }
};

TEST(StandingQueryTest, DeltasFireOnAnswerChangesOnly) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 2;
  DeltaLog log;
  const int id = engine.Subscribe(standing, log.Callback());
  EXPECT_GE(id, 1);
  // The initial snapshot (empty answer) arrives synchronously.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.last().sequence, 1u);
  EXPECT_TRUE(log.last().regions.empty());

  engine.Ingest(1, Stay(5, 0.0, 10.0));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{5}));
  EXPECT_EQ(log.last().regions_entered, (std::vector<RegionId>{5}));

  // A second visit at region 5: counts change but the top-2 answer
  // (still just {5}) does not — no delta.
  engine.Ingest(2, Stay(5, 1.0, 11.0));
  EXPECT_EQ(log.size(), 2u);

  // Region 7 enters the top-2.
  engine.Ingest(1, Stay(7, 12.0, 20.0));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{5, 7}));

  // Region 7 overtakes region 5: same set, different order — the
  // ranked answer changed, so a delta fires with empty entered/exited.
  engine.Ingest(2, Stay(7, 13.0, 21.0));
  engine.Ingest(3, Stay(7, 14.0, 22.0));
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{7, 5}));
  EXPECT_TRUE(log.last().regions_entered.empty());
  EXPECT_TRUE(log.last().regions_exited.empty());

  EXPECT_EQ(engine.Snapshot().standing_queries, 1u);
  EXPECT_EQ(engine.Snapshot().deltas_pushed, 4u);
  EXPECT_TRUE(engine.Unsubscribe(id));
  EXPECT_FALSE(engine.Unsubscribe(id));
  // Unsubscribed: further ingest pushes nothing.
  engine.Ingest(4, Stay(9, 30.0, 40.0));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(engine.Snapshot().standing_queries, 0u);
}

TEST(StandingQueryTest, CallbackMayQueryAndSnapshotTheEngine) {
  // Delta callbacks run inside the notify walk; the engine guarantees
  // its queries and Snapshot stay callable from there (only
  // Subscribe/Unsubscribe are off limits).
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 3;
  uint64_t snapshots_taken = 0;
  engine.Subscribe(standing, [&engine, &snapshots_taken](
                                 const StandingQueryDelta& delta) {
    const AnalyticsSnapshot snap = engine.Snapshot();
    EXPECT_EQ(snap.standing_queries, 1u);
    const auto poll =
        engine.TopKPopularRegions({5, 6, 7}, TimeWindow::All(), 3);
    EXPECT_EQ(poll, delta.regions);
    ++snapshots_taken;
  });
  engine.Ingest(1, Stay(5, 0.0, 10.0));
  engine.Ingest(1, Stay(6, 11.0, 20.0));
  EXPECT_EQ(snapshots_taken, 3u);  // Initial snapshot + two deltas.
}

TEST(StandingQueryTest, SubscribeMidStreamSeedsFromRetainedVisits) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  engine.Ingest(1, Stay(3, 0.0, 10.0));
  engine.Ingest(1, Stay(4, 12.0, 20.0));
  engine.Ingest(2, Stay(3, 0.0, 10.0));

  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 5;
  DeltaLog log;
  engine.Subscribe(standing, log.Callback());
  // The initial snapshot already ranks the retained visits.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{3, 4}));
  EXPECT_EQ(log.last().regions_entered, (std::vector<RegionId>{3, 4}));

  StandingQuery pairs;
  pairs.kind = StandingQuery::Kind::kFrequentPairs;
  pairs.spec.all_regions = true;
  pairs.k = 5;
  DeltaLog pair_log;
  engine.Subscribe(pairs, pair_log.Callback());
  ASSERT_EQ(pair_log.size(), 1u);
  EXPECT_EQ(pair_log.last().pairs, (std::vector<RegionPair>{{3, 4}}));
}

TEST(StandingQueryTest, FilteredSpecIgnoresOtherRegions) {
  AnalyticsEngine engine(AnalyticsEngine::Options{});
  StandingQuery standing;
  standing.spec.regions = {1, 2};
  standing.spec.min_visit_seconds = 10.0;
  standing.k = 5;
  DeltaLog log;
  engine.Subscribe(standing, log.Callback());
  ASSERT_EQ(log.size(), 1u);

  engine.Ingest(1, Stay(9, 0.0, 60.0));   // Region not watched.
  engine.Ingest(1, Stay(1, 60.0, 65.0));  // Watched but too short.
  EXPECT_EQ(log.size(), 1u);
  engine.Ingest(1, Stay(2, 70.0, 90.0));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.last().regions, (std::vector<RegionId>{2}));
}

/// The regression the scan path used to hide: visits aging out of the
/// retention horizon must decrement the sketches and push deltas for
/// the evicted regions — including visits of sessions already closed.
TEST(StandingQueryTest, RetentionAgingFiresEvictionDeltas) {
  AnalyticsEngine::Options options;
  options.bucket_seconds = 10.0;
  options.horizon_seconds = 30.0;
  AnalyticsEngine engine(options);

  StandingQuery standing;
  standing.spec.all_regions = true;
  standing.k = 5;
  DeltaLog log;
  engine.Subscribe(standing, log.Callback());

  engine.Ingest(1, Stay(1, 0.0, 5.0));
  engine.Ingest(1, Stay(2, 6.0, 9.0));
  engine.Ingest(2, Stay(1, 0.0, 8.0));
  ASSERT_EQ(log.last().regions, (std::vector<RegionId>{1, 2}));
  const size_t before = log.size();
  // Object 1's session closes; its retained visits must keep counting
  // (batch semantics) until they age out.
  engine.NoteSessionClosed(1);
  EXPECT_EQ(log.size(), before);
  EXPECT_EQ(engine.TopKPopularRegions({1, 2}, TimeWindow::All(), 5),
            (std::vector<RegionId>{1, 2}));

  // A far-future stay advances the watermark past the horizon: every
  // earlier visit evicts, and the standing answer must shed regions 1
  // and 2 in the same delta that admits region 3.
  engine.Ingest(3, Stay(3, 200.0, 205.0));
  const StandingQueryDelta last = log.last();
  EXPECT_EQ(last.regions, (std::vector<RegionId>{3}));
  std::vector<RegionId> exited = last.regions_exited;
  std::sort(exited.begin(), exited.end());
  EXPECT_EQ(exited, (std::vector<RegionId>{1, 2}));
  // The pre-aggregated poll agrees (nothing stale left behind).
  EXPECT_EQ(engine.TopKPopularRegions({1, 2, 3}, TimeWindow::All(), 5),
            (std::vector<RegionId>{3}));
  const AnalyticsSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.retained_visits, 1u);
  EXPECT_GT(snap.buckets_evicted, 0u);
}

TEST(StandingQueryTest, PairEvictionDecrementsCoVisits) {
  AnalyticsEngine::Options options;
  options.bucket_seconds = 10.0;
  options.horizon_seconds = 20.0;
  AnalyticsEngine engine(options);

  StandingQuery standing;
  standing.kind = StandingQuery::Kind::kFrequentPairs;
  standing.spec.all_regions = true;
  standing.k = 5;
  DeltaLog log;
  engine.Subscribe(standing, log.Callback());

  engine.Ingest(1, Stay(1, 0.0, 5.0));
  engine.Ingest(1, Stay(2, 6.0, 9.0));
  ASSERT_EQ(log.last().pairs, (std::vector<RegionPair>{{1, 2}}));

  // Aging out region 1's visit dissolves the co-visit pair.
  engine.Ingest(1, Stay(2, 100.0, 105.0));
  EXPECT_EQ(log.last().pairs, std::vector<RegionPair>{});
  EXPECT_EQ(log.last().pairs_exited, (std::vector<RegionPair>{{1, 2}}));
}

/// End-to-end through the service: deltas pushed from shard workers
/// reconstruct exactly the answer a poll returns after draining, for
/// every shard count, and push latency lands in AnalyticsStats.
TEST(StandingQueryServiceTest, PushedDeltasReconstructPolledAnswer) {
  const Scenario& scenario = testing_util::SmallMallScenario();
  std::vector<double> weights(static_cast<size_t>(kNumWeights), 0.5);
  std::vector<std::vector<PositioningRecord>> sources;
  for (const LabeledSequence& ls : scenario.dataset.sequences) {
    std::vector<PositioningRecord> records = ls.sequence.records;
    if (records.size() > 120) records.resize(120);
    sources.push_back(std::move(records));
  }

  std::vector<RegionId> query_regions;
  for (const SemanticRegion& region : scenario.world->plan().regions()) {
    query_regions.push_back(region.id);
  }

  std::vector<RegionId> first_answer;
  for (int shards : {1, 2, 4}) {
    AnnotationService::Options options;
    options.num_shards = shards;
    options.annotator.window_records = 24;
    options.annotator.finalize_lag = 6;
    options.annotator.decode_stride = 4;
    options.analytics.enabled = true;
    options.analytics.engine.horizon_seconds = 1e9;
    // Callback state outlives the service (declared first): workers can
    // still push deltas from ~AnnotationService's final Drain().
    DeltaLog log;
    AnnotationService service(*scenario.world, FeatureOptions{},
                              C2mnStructure{}, weights, options);

    StandingQuery standing;
    standing.spec.all_regions = true;
    standing.k = 5;
    auto subscribed = service.SubscribeAnalytics(standing, log.Callback());
    ASSERT_TRUE(subscribed.ok()) << subscribed.status().ToString();

    for (size_t i = 0; i < sources.size(); ++i) {
      ASSERT_TRUE(service.OpenSession(static_cast<int64_t>(i), nullptr).ok());
    }
    for (size_t i = 0; i < sources.size(); ++i) {
      for (const PositioningRecord& rec : sources[i]) {
        ASSERT_TRUE(service.Submit(static_cast<int64_t>(i), rec).ok());
      }
    }
    for (size_t i = 0; i < sources.size(); ++i) {
      ASSERT_TRUE(service.CloseSession(static_cast<int64_t>(i)).ok());
    }
    service.Drain();

    // Replaying the delta stream must land exactly on the polled
    // answer (same engine, same spec: unbounded window, threshold 0).
    const std::vector<RegionId> polled = service.analytics()->TopKPopularRegions(
        query_regions, TimeWindow::All(), standing.k);
    ASSERT_FALSE(polled.empty());
    EXPECT_EQ(log.ReconstructRegions(), polled) << shards << " shards";
    EXPECT_EQ(log.last().regions, polled) << shards << " shards";

    // The final answer is shard-count invariant (delta *timing* need
    // not be: interleaving differs, the fixed point does not).
    if (first_answer.empty()) {
      first_answer = polled;
    } else {
      EXPECT_EQ(polled, first_answer) << shards << " shards";
    }

    const AnalyticsSnapshot snap = service.AnalyticsStats();
    EXPECT_EQ(snap.standing_queries, 1u);
    EXPECT_GT(snap.deltas_pushed, 1u);
    EXPECT_GT(snap.push_samples, 0u);
    EXPECT_GE(snap.push_p99_ms, snap.push_p50_ms);

    ASSERT_TRUE(service.UnsubscribeAnalytics(*subscribed).ok());
    EXPECT_FALSE(service.UnsubscribeAnalytics(*subscribed).ok());
  }
}

TEST(StandingQueryServiceTest, SubscribeFailsWithoutAnalytics) {
  const Scenario& scenario = testing_util::SmallMallScenario();
  std::vector<double> weights(static_cast<size_t>(kNumWeights), 0.5);
  AnnotationService service(*scenario.world, FeatureOptions{},
                            C2mnStructure{}, weights);
  StandingQuery standing;
  auto result = service.SubscribeAnalytics(
      standing, [](const StandingQueryDelta&) {});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(service.UnsubscribeAnalytics(1).ok());
}

}  // namespace
}  // namespace c2mn
